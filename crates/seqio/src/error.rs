//! Error type shared by the I/O entry points of this crate.

use std::fmt;

/// Errors produced while reading or building sequence banks.
#[derive(Debug)]
pub enum SeqIoError {
    /// Underlying I/O failure (file not found, read error, …).
    Io(std::io::Error),
    /// The FASTA input is malformed (e.g. sequence data before any header).
    Format {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A bank constraint was violated (e.g. empty bank where one is required).
    Bank(String),
}

impl fmt::Display for SeqIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqIoError::Io(e) => write!(f, "I/O error: {e}"),
            SeqIoError::Format { line, message } => {
                write!(f, "FASTA format error at line {line}: {message}")
            }
            SeqIoError::Bank(msg) => write!(f, "bank error: {msg}"),
        }
    }
}

impl std::error::Error for SeqIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SeqIoError {
    fn from(e: std::io::Error) -> Self {
        SeqIoError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_number() {
        let e = SeqIoError::Format {
            line: 7,
            message: "bad header".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 7"), "{s}");
        assert!(s.contains("bad header"), "{s}");
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = SeqIoError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
