//! # oris-seqio — sequence model and FASTA I/O for the ORIS reproduction
//!
//! This crate provides the data substrate every other crate builds on:
//!
//! * the 2-bit nucleotide coding used by the paper (`A=00, C=01, G=11, T=10`,
//!   section 2.1),
//! * [`Bank`]: a set of DNA sequences stored as one contiguous code array with
//!   sentinel separators — the `char *SEQ` array of the paper's Figure 2,
//! * a FASTA reader/writer able to load banks directly from FASTA text,
//! * [`PackedSeq`]: a 4-nucleotides-per-byte packed representation used where
//!   memory footprint matters.
//!
//! Positions inside a [`Bank`] are *global* (offsets into the concatenated
//! code array); [`Bank::locate`] maps a global position back to the sequence
//! record containing it, which is how alignment coordinates are reported in
//! sequence-local terms.

pub mod alphabet;
pub mod bank;
pub mod error;
pub mod fasta;
pub mod packed;

pub use alphabet::{code_to_char, complement_code, nuc_from_char, Nuc, AMBIG, NUC_CODES, SENTINEL};
pub use bank::{Bank, BankBuilder, SeqRecord};
pub use error::SeqIoError;
pub use fasta::{
    parse_fasta, read_fasta, read_fasta_file, write_fasta, write_fasta_file, FastaRecord,
};
pub use packed::PackedSeq;
