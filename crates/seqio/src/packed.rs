//! 2-bit packed sequence storage (4 nucleotides per byte).
//!
//! The working representation everywhere else in the reproduction is one
//! code byte per nucleotide (that is what the paper's prototype does — its
//! index costs ≈5·N bytes: 1 byte of `SEQ` plus 4 bytes of `INDEX` per
//! position). `PackedSeq` exists for the places where a bank must be held
//! at rest (the simulator's latent gene pools, snapshots in tests) at a
//! quarter of the footprint, and to document the trade-off measured in the
//! memory experiment (E7).
//!
//! Packing is lossy for ambiguous bases: `N` cannot be represented in 2
//! bits, so [`PackedSeq::from_codes`] records ambiguous positions in a
//! side list and restores them on unpacking.

use crate::alphabet::AMBIG;

/// An immutable 2-bit packed DNA sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSeq {
    words: Vec<u8>,
    len: usize,
    /// Positions that held ambiguous codes before packing, kept sorted.
    ambig: Vec<u32>,
}

impl PackedSeq {
    /// Packs a slice of code bytes (0–3 or [`AMBIG`]).
    ///
    /// # Panics
    /// Panics if a byte is neither a nucleotide code nor [`AMBIG`]
    /// (sentinels must be stripped before packing).
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        assert!(
            codes.len() < u32::MAX as usize,
            "packed sequences are limited to 2^32-1 residues"
        );
        let mut words = vec![0u8; codes.len().div_ceil(4)];
        let mut ambig = Vec::new();
        for (i, &c) in codes.iter().enumerate() {
            let two_bit = match c {
                0..=3 => c,
                AMBIG => {
                    ambig.push(i as u32);
                    0 // stored as A; restored on unpack
                }
                other => panic!("cannot pack code byte {other}"),
            };
            words[i / 4] |= two_bit << ((i % 4) * 2);
        }
        PackedSeq {
            words,
            len: codes.len(),
            ambig,
        }
    }

    /// Number of residues.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sequence holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 2-bit code at position `i`, ignoring ambiguity restoration.
    #[inline]
    pub fn code_2bit(&self, i: usize) -> u8 {
        debug_assert!(i < self.len);
        (self.words[i / 4] >> ((i % 4) * 2)) & 0b11
    }

    /// The code at position `i`, restoring [`AMBIG`] where applicable.
    pub fn code_at(&self, i: usize) -> u8 {
        if self.ambig.binary_search(&(i as u32)).is_ok() {
            AMBIG
        } else {
            self.code_2bit(i)
        }
    }

    /// Unpacks to one code byte per residue.
    pub fn to_codes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.code_2bit(i));
        }
        for &p in &self.ambig {
            out[p as usize] = AMBIG;
        }
        out
    }

    /// Heap bytes used by the packed representation.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() + self.ambig.len() * 4
    }

    /// Number of ambiguous positions recorded.
    pub fn num_ambiguous(&self) -> usize {
        self.ambig.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{nuc_from_char, AMBIG};

    fn codes(s: &str) -> Vec<u8> {
        s.bytes().map(nuc_from_char).collect()
    }

    #[test]
    fn roundtrip_simple() {
        let c = codes("ACGTACGTT");
        let p = PackedSeq::from_codes(&c);
        assert_eq!(p.len(), 9);
        assert_eq!(p.to_codes(), c);
    }

    #[test]
    fn roundtrip_with_ambiguous() {
        let c = codes("ACGNNTAGN");
        let p = PackedSeq::from_codes(&c);
        assert_eq!(p.num_ambiguous(), 3);
        assert_eq!(p.to_codes(), c);
        assert_eq!(p.code_at(3), AMBIG);
        assert_eq!(p.code_at(0), 0);
    }

    #[test]
    fn empty() {
        let p = PackedSeq::from_codes(&[]);
        assert!(p.is_empty());
        assert_eq!(p.to_codes(), Vec::<u8>::new());
    }

    #[test]
    fn footprint_is_quarter() {
        let c = codes(&"ACGT".repeat(1000));
        let p = PackedSeq::from_codes(&c);
        assert_eq!(p.heap_bytes(), 1000);
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        for n in 1..9 {
            let c = codes(&"ACGTGCA"[..n.min(7)]);
            let p = PackedSeq::from_codes(&c);
            assert_eq!(p.to_codes(), c, "length {n}");
        }
    }

    #[test]
    #[should_panic]
    fn sentinel_rejected() {
        let _ = PackedSeq::from_codes(&[crate::alphabet::SENTINEL]);
    }
}
