//! DNA banks: the `char *SEQ` array of the paper's Figure 2.
//!
//! A [`Bank`] stores any number of DNA sequences in one contiguous code
//! array. Sequences are separated (and the whole array is framed) by
//! [`SENTINEL`] bytes, so windows and alignment extensions can walk the
//! array freely: any window touching a boundary contains a sentinel and is
//! rejected by the matching rules, with no per-step bounds bookkeeping in
//! the hot loops beyond the array ends.
//!
//! Layout for a bank holding sequences `s0, s1`:
//!
//! ```text
//! index:  0   1 .. n0   n0+1   n0+2 .. n0+n1+1   n0+n1+2
//! byte:   #   s0 ...    #      s1 ...            #
//! ```
//!
//! where `#` is the sentinel. Every sequence therefore starts at
//! `record.start` and occupies `record.len` bytes, and
//! `data[record.start - 1]` / `data[record.start + record.len]` are always
//! valid sentinel-or-ambiguous stops.

use crate::alphabet::{code_to_char, is_nucleotide, SENTINEL};

/// Metadata for one sequence inside a [`Bank`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqRecord {
    /// Identifier (first whitespace-delimited token of the FASTA header).
    pub name: String,
    /// Global offset of the first residue inside [`Bank::data`].
    pub start: usize,
    /// Number of residues (including ambiguous ones).
    pub len: usize,
}

impl SeqRecord {
    /// Global offset one past the last residue.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }

    /// Converts a global bank position inside this record to a 0-based
    /// sequence-local position.
    #[inline]
    pub fn to_local(&self, global: usize) -> usize {
        debug_assert!(global >= self.start && global < self.end());
        global - self.start
    }
}

/// A bank of DNA sequences stored as one sentinel-framed code array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    data: Vec<u8>,
    records: Vec<SeqRecord>,
    residues: usize,
}

impl Bank {
    /// Creates an empty bank (no sequences; data holds a single sentinel).
    pub fn empty() -> Bank {
        Bank {
            data: vec![SENTINEL],
            records: Vec::new(),
            residues: 0,
        }
    }

    /// The raw code array, including framing sentinels.
    #[inline]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Code byte at global position `pos`.
    #[inline]
    pub fn code_at(&self, pos: usize) -> u8 {
        self.data[pos]
    }

    /// Sequence records, in bank order.
    #[inline]
    pub fn records(&self) -> &[SeqRecord] {
        &self.records
    }

    /// Number of sequences.
    #[inline]
    pub fn num_sequences(&self) -> usize {
        self.records.len()
    }

    /// Total residues over all sequences (the paper's "nb. nt").
    #[inline]
    pub fn num_residues(&self) -> usize {
        self.residues
    }

    /// Total residues expressed in Mbp, as used for the paper's
    /// search-space axis (Figure 3).
    #[inline]
    pub fn mbp(&self) -> f64 {
        self.residues as f64 / 1.0e6
    }

    /// Returns the index of the sequence record containing global position
    /// `pos`, or `None` if `pos` falls on a sentinel / outside any sequence.
    pub fn locate(&self, pos: usize) -> Option<usize> {
        // Binary search over record starts; records are in increasing order.
        let idx = self.records.partition_point(|r| r.start <= pos);
        if idx == 0 {
            return None;
        }
        let rec = &self.records[idx - 1];
        if pos < rec.end() {
            Some(idx - 1)
        } else {
            None
        }
    }

    /// The record at `seq_index`.
    #[inline]
    pub fn record(&self, seq_index: usize) -> &SeqRecord {
        &self.records[seq_index]
    }

    /// The code slice of sequence `seq_index` (no sentinels).
    pub fn sequence(&self, seq_index: usize) -> &[u8] {
        let r = &self.records[seq_index];
        &self.data[r.start..r.end()]
    }

    /// Renders sequence `seq_index` as an ASCII string (ambiguous → `N`).
    pub fn sequence_string(&self, seq_index: usize) -> String {
        self.sequence(seq_index)
            .iter()
            .map(|&c| code_to_char(c))
            .collect()
    }

    /// Iterates over `(global_start, record)` pairs.
    pub fn iter_records(&self) -> impl Iterator<Item = (usize, &SeqRecord)> {
        self.records.iter().map(|r| (r.start, r))
    }

    /// Approximate heap footprint of the bank in bytes (code array plus
    /// record metadata). Used by the memory-accounting experiment (E7).
    pub fn heap_bytes(&self) -> usize {
        self.data.len()
            + self.records.len() * std::mem::size_of::<SeqRecord>()
            + self.records.iter().map(|r| r.name.len()).sum::<usize>()
    }

    /// Builds the reverse-complement bank: same records (names and
    /// lengths preserved, same order), every sequence reverse-complemented.
    ///
    /// This is the substrate for complementary-strand search — the paper's
    /// announced next-release feature ("Currently, the SCORIS-N prototype
    /// doesn't perform search on the complementary strand", section 3.3).
    /// Comparing bank 1 against `bank2.reverse_complement()` finds all
    /// minus-strand alignments; coordinates map back via
    /// `L − pos + 1` on each subject record.
    pub fn reverse_complement(&self) -> Bank {
        let mut b = BankBuilder::with_capacity(self.residues, self.records.len());
        for i in 0..self.num_sequences() {
            let codes: Vec<u8> = self
                .sequence(i)
                .iter()
                .rev()
                .map(|&c| crate::alphabet::complement_code(c))
                .collect();
            b.push_codes(&self.records[i].name.clone(), &codes);
        }
        b.finish()
    }

    /// Fraction of residues that are concrete nucleotides (not `N`).
    pub fn acgt_fraction(&self) -> f64 {
        if self.residues == 0 {
            return 0.0;
        }
        let acgt = self.data.iter().filter(|&&c| is_nucleotide(c)).count();
        acgt as f64 / self.residues as f64
    }
}

/// Incremental builder for [`Bank`].
///
/// ```
/// use oris_seqio::{BankBuilder, Nuc};
///
/// let mut b = BankBuilder::new();
/// b.push_str("read1", "ACGTACGT").unwrap();
/// b.push_codes("read2", &[Nuc::A.code(), Nuc::C.code()]);
/// let bank = b.finish();
/// assert_eq!(bank.num_sequences(), 2);
/// assert_eq!(bank.num_residues(), 10);
/// ```
#[derive(Debug)]
pub struct BankBuilder {
    data: Vec<u8>,
    records: Vec<SeqRecord>,
    residues: usize,
}

impl Default for BankBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BankBuilder {
    /// Creates a builder with the opening sentinel already in place.
    pub fn new() -> BankBuilder {
        BankBuilder {
            data: vec![SENTINEL],
            records: Vec::new(),
            residues: 0,
        }
    }

    /// Creates a builder pre-sized for `total_nt` residues across
    /// `num_seqs` sequences.
    pub fn with_capacity(total_nt: usize, num_seqs: usize) -> BankBuilder {
        let mut b = BankBuilder {
            data: Vec::with_capacity(total_nt + num_seqs + 2),
            records: Vec::with_capacity(num_seqs),
            residues: 0,
        };
        b.data.push(SENTINEL);
        b
    }

    /// Appends a sequence given as raw code bytes (values 0–3 or
    /// [`crate::AMBIG`]).
    ///
    /// # Panics
    /// Panics in debug builds if a code byte is a sentinel.
    pub fn push_codes(&mut self, name: &str, codes: &[u8]) {
        debug_assert!(
            codes.iter().all(|&c| c != SENTINEL),
            "sequence data must not contain sentinel bytes"
        );
        let start = self.data.len();
        self.data.extend_from_slice(codes);
        self.data.push(SENTINEL);
        self.residues += codes.len();
        self.records.push(SeqRecord {
            name: name.to_string(),
            start,
            len: codes.len(),
        });
    }

    /// Appends a sequence given as ASCII text (`ACGT`, case-insensitive;
    /// other letters become ambiguous codes).
    pub fn push_str(&mut self, name: &str, seq: &str) -> Result<(), crate::SeqIoError> {
        let codes: Vec<u8> = seq.bytes().map(crate::alphabet::nuc_from_char).collect();
        self.push_codes(name, &codes);
        Ok(())
    }

    /// Number of residues pushed so far.
    pub fn residues(&self) -> usize {
        self.residues
    }

    /// Finalizes the bank.
    pub fn finish(self) -> Bank {
        Bank {
            data: self.data,
            records: self.records,
            residues: self.residues,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{AMBIG, SENTINEL};

    fn two_seq_bank() -> Bank {
        let mut b = BankBuilder::new();
        b.push_str("s0", "ACGT").unwrap();
        b.push_str("s1", "GGNTA").unwrap();
        b.finish()
    }

    #[test]
    fn layout_has_framing_sentinels() {
        let bank = two_seq_bank();
        let d = bank.data();
        assert_eq!(d[0], SENTINEL);
        assert_eq!(*d.last().unwrap(), SENTINEL);
        // sentinel between the two sequences
        assert_eq!(d[bank.record(0).end()], SENTINEL);
    }

    #[test]
    fn records_and_residues() {
        let bank = two_seq_bank();
        assert_eq!(bank.num_sequences(), 2);
        assert_eq!(bank.num_residues(), 9);
        assert_eq!(bank.record(0).len, 4);
        assert_eq!(bank.record(1).len, 5);
        assert_eq!(bank.record(1).start, bank.record(0).end() + 1);
    }

    #[test]
    fn ambiguous_bases_are_kept_in_length() {
        let bank = two_seq_bank();
        assert_eq!(bank.sequence(1)[2], AMBIG);
        assert_eq!(bank.sequence_string(1), "GGNTA");
    }

    #[test]
    fn locate_maps_positions_to_records() {
        let bank = two_seq_bank();
        assert_eq!(bank.locate(0), None); // leading sentinel
        assert_eq!(bank.locate(1), Some(0));
        assert_eq!(bank.locate(4), Some(0));
        assert_eq!(bank.locate(5), None); // separator
        assert_eq!(bank.locate(6), Some(1));
        assert_eq!(bank.locate(10), Some(1));
        assert_eq!(bank.locate(11), None); // trailing sentinel
    }

    #[test]
    fn locate_out_of_range_is_none() {
        let bank = two_seq_bank();
        assert_eq!(bank.locate(usize::MAX / 2), None);
    }

    #[test]
    fn to_local_roundtrip() {
        let bank = two_seq_bank();
        let rec = bank.record(1);
        assert_eq!(rec.to_local(rec.start), 0);
        assert_eq!(rec.to_local(rec.start + 3), 3);
    }

    #[test]
    fn empty_bank() {
        let bank = Bank::empty();
        assert_eq!(bank.num_sequences(), 0);
        assert_eq!(bank.num_residues(), 0);
        assert_eq!(bank.data(), &[SENTINEL]);
        assert_eq!(bank.locate(0), None);
    }

    #[test]
    fn sequence_string_roundtrip() {
        let bank = two_seq_bank();
        assert_eq!(bank.sequence_string(0), "ACGT");
    }

    #[test]
    fn mbp_scaling() {
        let mut b = BankBuilder::new();
        b.push_codes("x", &vec![0u8; 500_000]);
        let bank = b.finish();
        assert!((bank.mbp() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn acgt_fraction_counts_ambig() {
        let bank = two_seq_bank(); // 9 residues, 1 N
        let f = bank.acgt_fraction();
        assert!((f - 8.0 / 9.0).abs() < 1e-9, "{f}");
    }

    #[test]
    fn reverse_complement_is_involution() {
        let bank = two_seq_bank();
        let rc = bank.reverse_complement();
        assert_eq!(rc.num_sequences(), 2);
        assert_eq!(rc.record(0).name, "s0");
        assert_eq!(rc.sequence_string(0), "ACGT"); // palindrome
        assert_eq!(rc.sequence_string(1), "TANCC"); // revcomp of GGNTA
        assert_eq!(rc.reverse_complement(), bank);
    }

    #[test]
    fn with_capacity_builder_equivalent() {
        let mut a = BankBuilder::new();
        a.push_str("s", "ACGTTT").unwrap();
        let mut b = BankBuilder::with_capacity(6, 1);
        b.push_str("s", "ACGTTT").unwrap();
        assert_eq!(a.finish(), b.finish());
    }
}
