//! Nucleotide alphabet and the paper's 2-bit code.
//!
//! Section 2.1 of the paper fixes the nucleotide code used to order seeds:
//!
//! ```text
//!  A    C    G    T
//!  00   01   11   10
//! ```
//!
//! Note the *non-alphabetical* order (`A < C < T < G` by code value). The
//! ordering itself is irrelevant to correctness — the algorithm only needs a
//! strict total order on W-mers — but we keep the paper's table so seed codes
//! match the publication exactly.
//!
//! Two extra byte values exist in bank code arrays:
//!
//! * [`SENTINEL`] separates sequences (and pads both ends of a bank) so that
//!   no seed window or extension can cross a sequence boundary: the sentinel
//!   never compares equal to any code, including itself.
//! * [`AMBIG`] represents any non-ACGT FASTA character (N and the IUPAC
//!   ambiguity codes). Like the sentinel it never matches, but it *is* part
//!   of a sequence and counted in its length.

/// 2-bit code of `A` (00).
pub const CODE_A: u8 = 0b00;
/// 2-bit code of `C` (01).
pub const CODE_C: u8 = 0b01;
/// 2-bit code of `G` (11) — the paper's table, not alphabetical order.
pub const CODE_G: u8 = 0b11;
/// 2-bit code of `T` (10).
pub const CODE_T: u8 = 0b10;

/// The four nucleotide codes in code order (`A`, `C`, `T`, `G`).
pub const NUC_CODES: [u8; 4] = [CODE_A, CODE_C, CODE_T, CODE_G];

/// Separator byte between sequences inside a [`crate::Bank`].
///
/// Chosen `> 3` so it is never a valid nucleotide code; comparisons against
/// it (including against another sentinel) must be treated as mismatches.
pub const SENTINEL: u8 = 4;

/// Code byte for ambiguous / non-ACGT characters (e.g. `N`).
pub const AMBIG: u8 = 5;

/// A concrete nucleotide.
///
/// The discriminant of each variant is its 2-bit code from the paper, so
/// `Nuc::G as u8 == 0b11`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Nuc {
    /// Adenine, code `00`.
    A = CODE_A,
    /// Cytosine, code `01`.
    C = CODE_C,
    /// Thymine, code `10`.
    T = CODE_T,
    /// Guanine, code `11`.
    G = CODE_G,
}

impl Nuc {
    /// All four nucleotides, in increasing code order.
    pub const ALL: [Nuc; 4] = [Nuc::A, Nuc::C, Nuc::T, Nuc::G];

    /// The 2-bit code of this nucleotide.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Builds a nucleotide from a 2-bit code.
    ///
    /// # Panics
    /// Panics if `code > 3`.
    #[inline]
    pub fn from_code(code: u8) -> Nuc {
        match code {
            CODE_A => Nuc::A,
            CODE_C => Nuc::C,
            CODE_T => Nuc::T,
            CODE_G => Nuc::G,
            _ => panic!("invalid nucleotide code {code}"),
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Nuc {
        match self {
            Nuc::A => Nuc::T,
            Nuc::T => Nuc::A,
            Nuc::C => Nuc::G,
            Nuc::G => Nuc::C,
        }
    }

    /// Upper-case ASCII letter of this nucleotide.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Nuc::A => 'A',
            Nuc::C => 'C',
            Nuc::G => 'G',
            Nuc::T => 'T',
        }
    }
}

/// Maps an ASCII character to a bank code byte.
///
/// `A/C/G/T` (either case) map to their 2-bit codes; every other letter
/// (IUPAC ambiguity codes, `N`, `-`, …) maps to [`AMBIG`].
#[inline]
pub fn nuc_from_char(c: u8) -> u8 {
    match c {
        b'A' | b'a' => CODE_A,
        b'C' | b'c' => CODE_C,
        b'G' | b'g' => CODE_G,
        b'T' | b't' | b'U' | b'u' => CODE_T,
        _ => AMBIG,
    }
}

/// Maps a bank code byte back to an ASCII character.
///
/// Codes 0–3 map to `A/C/G/T`; [`AMBIG`] maps to `N`; [`SENTINEL`] maps to
/// `|` (it should never appear inside a written sequence — the bank writer
/// splits on sentinels).
#[inline]
pub fn code_to_char(code: u8) -> char {
    match code {
        CODE_A => 'A',
        CODE_C => 'C',
        CODE_G => 'G',
        CODE_T => 'T',
        AMBIG => 'N',
        SENTINEL => '|',
        _ => '?',
    }
}

/// Complements a bank code byte; sentinel and ambiguous codes are unchanged.
#[inline]
pub fn complement_code(code: u8) -> u8 {
    match code {
        CODE_A => CODE_T,
        CODE_T => CODE_A,
        CODE_C => CODE_G,
        CODE_G => CODE_C,
        other => other,
    }
}

/// Returns `true` if `code` is one of the four concrete nucleotide codes.
#[inline]
pub fn is_nucleotide(code: u8) -> bool {
    code < 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_code_table() {
        // The exact table from section 2.1 of the paper.
        assert_eq!(Nuc::A.code(), 0b00);
        assert_eq!(Nuc::C.code(), 0b01);
        assert_eq!(Nuc::G.code(), 0b11);
        assert_eq!(Nuc::T.code(), 0b10);
    }

    #[test]
    fn code_order_is_a_c_t_g() {
        let mut sorted = Nuc::ALL;
        sorted.sort_by_key(|n| n.code());
        assert_eq!(sorted, [Nuc::A, Nuc::C, Nuc::T, Nuc::G]);
    }

    #[test]
    fn roundtrip_code() {
        for n in Nuc::ALL {
            assert_eq!(Nuc::from_code(n.code()), n);
        }
    }

    #[test]
    fn complement_is_involution() {
        for n in Nuc::ALL {
            assert_eq!(n.complement().complement(), n);
        }
        for code in 0u8..6 {
            assert_eq!(complement_code(complement_code(code)), code);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Nuc::A.complement(), Nuc::T);
        assert_eq!(Nuc::G.complement(), Nuc::C);
    }

    #[test]
    fn char_mapping_both_cases() {
        assert_eq!(nuc_from_char(b'a'), CODE_A);
        assert_eq!(nuc_from_char(b'A'), CODE_A);
        assert_eq!(nuc_from_char(b'g'), CODE_G);
        assert_eq!(nuc_from_char(b'U'), CODE_T); // RNA input tolerated
        assert_eq!(nuc_from_char(b'N'), AMBIG);
        assert_eq!(nuc_from_char(b'X'), AMBIG);
    }

    #[test]
    fn char_roundtrip_for_concrete_nucleotides() {
        for n in Nuc::ALL {
            assert_eq!(nuc_from_char(n.to_char() as u8), n.code());
        }
    }

    #[test]
    fn sentinel_and_ambig_are_not_nucleotides() {
        assert!(!is_nucleotide(SENTINEL));
        assert!(!is_nucleotide(AMBIG));
        for code in NUC_CODES {
            assert!(is_nucleotide(code));
        }
    }

    #[test]
    #[should_panic]
    fn from_code_rejects_sentinel() {
        let _ = Nuc::from_code(SENTINEL);
    }
}
