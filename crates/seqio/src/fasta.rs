//! FASTA reading and writing.
//!
//! The paper's prototype (SCORIS-N) takes its two banks directly from FASTA
//! files (section 2.1: "Bank indexing is directly performed from FASTA format
//! input files"). This module parses FASTA text into a [`Bank`] in one pass,
//! tolerating the usual real-world variations: multi-line sequences, blank
//! lines, `\r\n` endings, lower-case residues and IUPAC ambiguity codes.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::alphabet::nuc_from_char;
use crate::bank::{Bank, BankBuilder};
use crate::error::SeqIoError;

/// An owned FASTA record (header + raw sequence text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Identifier: first whitespace-delimited token after `>`.
    pub id: String,
    /// Full header line after `>`, including the description.
    pub header: String,
    /// Sequence as ASCII (exactly as read, case preserved).
    pub seq: String,
}

/// Parses FASTA text into a [`Bank`].
///
/// Returns a [`SeqIoError::Format`] if sequence data precedes the first
/// header or if a record has an empty identifier.
pub fn parse_fasta(text: &str) -> Result<Bank, SeqIoError> {
    read_fasta(text.as_bytes())
}

/// Reads FASTA from any [`Read`] implementation into a [`Bank`].
pub fn read_fasta<R: Read>(reader: R) -> Result<Bank, SeqIoError> {
    let mut builder = BankBuilder::new();
    let mut current_name: Option<String> = None;
    let mut current_codes: Vec<u8> = Vec::new();
    let mut line_no = 0usize;

    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        let n = buf.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some(name) = current_name.take() {
                builder.push_codes(&name, &current_codes);
                current_codes.clear();
            }
            let id = header.split_whitespace().next().unwrap_or("");
            if id.is_empty() {
                return Err(SeqIoError::Format {
                    line: line_no,
                    message: "empty sequence identifier".into(),
                });
            }
            current_name = Some(id.to_string());
        } else if trimmed.starts_with(';') {
            // Old-style FASTA comment line: skip.
            continue;
        } else {
            if current_name.is_none() {
                return Err(SeqIoError::Format {
                    line: line_no,
                    message: "sequence data before any '>' header".into(),
                });
            }
            current_codes.extend(
                trimmed
                    .bytes()
                    .filter(|b| !b.is_ascii_whitespace())
                    .map(nuc_from_char),
            );
        }
    }
    if let Some(name) = current_name.take() {
        builder.push_codes(&name, &current_codes);
    }
    Ok(builder.finish())
}

/// Reads a FASTA file from disk into a [`Bank`].
pub fn read_fasta_file<P: AsRef<Path>>(path: P) -> Result<Bank, SeqIoError> {
    let file = std::fs::File::open(path)?;
    read_fasta(file)
}

/// Writes a [`Bank`] as FASTA with lines wrapped at `width` characters
/// (`width = 0` disables wrapping).
pub fn write_fasta<W: Write>(bank: &Bank, mut out: W, width: usize) -> std::io::Result<()> {
    for i in 0..bank.num_sequences() {
        let rec = bank.record(i);
        writeln!(out, ">{}", rec.name)?;
        let s = bank.sequence_string(i);
        if width == 0 {
            writeln!(out, "{s}")?;
        } else {
            for chunk in s.as_bytes().chunks(width) {
                out.write_all(chunk)?;
                out.write_all(b"\n")?;
            }
        }
    }
    Ok(())
}

/// Writes a bank to a FASTA file on disk (60-column wrapping).
pub fn write_fasta_file<P: AsRef<Path>>(bank: &Bank, path: P) -> Result<(), SeqIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write_fasta(bank, &mut w, 60)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_records() {
        let bank = parse_fasta(">a desc\nACGT\n>b\nGG\nTT\n").unwrap();
        assert_eq!(bank.num_sequences(), 2);
        assert_eq!(bank.record(0).name, "a");
        assert_eq!(bank.sequence_string(0), "ACGT");
        assert_eq!(bank.sequence_string(1), "GGTT");
    }

    #[test]
    fn header_id_is_first_token() {
        let bank = parse_fasta(">gi|123|ref some description\nAC\n").unwrap();
        assert_eq!(bank.record(0).name, "gi|123|ref");
    }

    #[test]
    fn tolerates_blank_lines_and_crlf() {
        let bank = parse_fasta(">a\r\nAC\r\n\r\nGT\r\n").unwrap();
        assert_eq!(bank.sequence_string(0), "ACGT");
    }

    #[test]
    fn lowercase_and_ambiguous() {
        let bank = parse_fasta(">a\nacgtn\n").unwrap();
        assert_eq!(bank.sequence_string(0), "ACGTN");
    }

    #[test]
    fn skips_comment_lines() {
        let bank = parse_fasta(";comment\n>a\n;another\nAC\n").unwrap();
        assert_eq!(bank.sequence_string(0), "AC");
    }

    #[test]
    fn data_before_header_is_error() {
        let err = parse_fasta("ACGT\n>a\nAC\n").unwrap_err();
        match err {
            SeqIoError::Format { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_identifier_is_error() {
        assert!(parse_fasta("> \nACGT\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_bank() {
        let bank = parse_fasta("").unwrap();
        assert_eq!(bank.num_sequences(), 0);
    }

    #[test]
    fn record_with_no_sequence_is_kept_empty() {
        let bank = parse_fasta(">a\n>b\nAC\n").unwrap();
        assert_eq!(bank.num_sequences(), 2);
        assert_eq!(bank.record(0).len, 0);
        assert_eq!(bank.sequence_string(1), "AC");
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let bank = parse_fasta(">a\nACGTACGTACGT\n>b\nGGNTTA\n").unwrap();
        let mut out = Vec::new();
        write_fasta(&bank, &mut out, 5).unwrap();
        let reparsed = read_fasta(&out[..]).unwrap();
        assert_eq!(bank, reparsed);
    }

    #[test]
    fn write_unwrapped() {
        let bank = parse_fasta(">a\nACGT\n").unwrap();
        let mut out = Vec::new();
        write_fasta(&bank, &mut out, 0).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), ">a\nACGT\n");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("oris_seqio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.fa");
        let bank = parse_fasta(">x\nACGTACGT\n").unwrap();
        write_fasta_file(&bank, &path).unwrap();
        let back = read_fasta_file(&path).unwrap();
        assert_eq!(bank, back);
    }
}
