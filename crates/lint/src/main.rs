//! CLI entry point: `cargo run -p oris-lint --release [workspace-root]`.
//!
//! Prints findings as `file:line: rule: message` (one per line, sorted)
//! and exits non-zero when there are any — the shape CI and editors
//! expect. With no argument the workspace root is found by walking up
//! from the current directory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match oris_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("oris-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match oris_lint::scan_workspace(&root) {
        Ok((findings, stats)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!(
                    "oris-lint: clean ({} files across {} crates)",
                    stats.files, stats.crates
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "oris-lint: {} finding(s) in {} files across {} crates",
                    findings.len(),
                    stats.files,
                    stats.crates
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("oris-lint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}
