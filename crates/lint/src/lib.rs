//! `oris-lint` — the workspace invariant checker.
//!
//! The ORIS pipeline is only correct under invariants the compiler
//! cannot see. Each one was learned the hard way by an earlier PR, and
//! each is now a machine-enforced rule (findings print as
//! `file:line: rule: message`; any finding is a non-zero exit):
//!
//! | rule | invariant | origin |
//! |------|-----------|--------|
//! | `float-ord` | float orderings use `total_cmp`/`total_order`, never `.partial_cmp().unwrap()` | PR 2: a NaN e-value panicked the merge sort |
//! | `io-seam` | every `oris-db` read flows through the `VolumeIo` seam (`io.rs`; `makedb` writes allowlisted) | PR 6: reads outside the seam silently escape fault injection |
//! | `unsafe-safety` | every `unsafe` block/impl carries a `// SAFETY:` comment | PR 5's mmap layer set the convention |
//! | `unsafe-budget` | per-crate `unsafe` counts match `crates/lint/unsafe_budget.txt` exactly | unsafe must not grow (or shrink) without an explicit, reviewed budget edit |
//! | `det-hash` | no `HashMap`/`HashSet` in result-path crates without a sorting justification | PR 4: output is byte-identical for any thread count |
//! | `det-time` | no `Instant::now`/`SystemTime::now` outside the `oris-obs` crate (the one sanctioned clock) | PR 4/PR 6: results must not depend on wall clock |
//! | `narrow-cast` | no narrowing `as` on length/offset/residue arithmetic in `oris-index`/`oris-db`; use `try_from` or justify the guard | PR 5: a database residue total truncated at 32 bits |
//!
//! Scoped escapes: `// oris-lint: allow(<rule>) — <reason>` (covers its
//! line and the next) and `// oris-lint: allow-file(<rule>) — <reason>`.
//! The reason is mandatory, unknown rules are `bad-allow` errors, and an
//! allow that suppresses nothing is an `unused-allow` error — escapes
//! cannot rot. See [`rules`] for the scoping tables and their rationale.
//!
//! The scanner is a hand-rolled token lexer ([`lexer`]) — no `syn`, no
//! dependencies — that never matches inside comments or string literals
//! and skips `#[cfg(test)]`/`#[test]` items entirely. It walks every
//! `crates/*/src` tree plus the root facade `src/`; `vendor/*` (stand-in
//! shims for crates.io dependencies) and non-`src` trees (`tests/`,
//! `examples/`, `benches/`, fixtures) are out of scope.
//!
//! Run it with `cargo run -p oris-lint --release` from anywhere in the
//! workspace; CI runs it as the "Invariant lints" step. The crate's own
//! test suite contains a fixture corpus per rule (detection, allow
//! suppression, stale-allow flagging) and a self-test that the real
//! workspace is clean.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use rules::{check_file, FileCtx};

/// Workspace-relative location of the unsafe budget file.
pub const BUDGET_PATH: &str = "crates/lint/unsafe_budget.txt";

/// One lint finding. Sorts by (file, line, rule).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line (0 for whole-crate findings like the budget).
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// Human-oriented message, including the rule's origin.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// What `scan_workspace` covered, for reporting.
#[derive(Debug, Default)]
pub struct ScanStats {
    /// Rust files checked.
    pub files: usize,
    /// Crates walked.
    pub crates: usize,
}

/// Scans the workspace rooted at `root`: every `crates/*/src` tree plus
/// the root facade `src/`, then the unsafe budget. Findings come back
/// sorted by file/line.
pub fn scan_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, ScanStats)> {
    let mut findings = Vec::new();
    let mut stats = ScanStats::default();
    // Per-crate non-test `unsafe` counts; every scanned crate gets an
    // entry (0 included) so stale budget rows are detectable.
    let mut unsafe_counts: BTreeMap<String, usize> = BTreeMap::new();

    let mut targets: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)
    if root.join("src").is_dir() {
        targets.push((package_name(&root.join("Cargo.toml")), root.join("src")));
    }
    let crates_dir = root.join("crates");
    let mut crate_entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file() && p.join("src").is_dir())
        .collect();
    crate_entries.sort();
    for dir in crate_entries {
        targets.push((package_name(&dir.join("Cargo.toml")), dir.join("src")));
    }

    for (crate_name, src_dir) in targets {
        stats.crates += 1;
        let count = unsafe_counts.entry(crate_name.clone()).or_insert(0);
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            stats.files += 1;
            let src = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let file_name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let report = check_file(
                &FileCtx {
                    crate_name: &crate_name,
                    file_name: &file_name,
                    rel_path: &rel,
                },
                &src,
            );
            *count += report.unsafe_sites;
            findings.extend(report.findings);
        }
    }

    let budget_path = root.join(BUDGET_PATH);
    match std::fs::read_to_string(&budget_path) {
        Ok(src) => findings.extend(check_budget(&src, BUDGET_PATH, &unsafe_counts)),
        Err(_) => findings.push(Finding {
            file: BUDGET_PATH.to_string(),
            line: 0,
            rule: "unsafe-budget",
            message: "budget file missing — every crate's unsafe count must be declared"
                .to_string(),
        }),
    }

    findings.sort();
    Ok((findings, stats))
}

/// Compares declared per-crate unsafe budgets against actual counts.
///
/// The budget is exact in both directions: more unsafe than budgeted
/// means new unsafe landed without review; less means the budget is
/// stale and must be lowered so the headroom cannot be spent silently.
pub fn check_budget(
    budget_src: &str,
    budget_file: &str,
    actual: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut budgeted: BTreeMap<String, (usize, usize)> = BTreeMap::new(); // name -> (line, count)
    for (idx, raw_line) in budget_src.lines().enumerate() {
        let line = idx + 1;
        let text = raw_line.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut parts = text.splitn(2, '=');
        let name = parts.next().unwrap_or("").trim();
        let count = parts
            .next()
            .map(str::trim)
            .and_then(|v| v.parse::<usize>().ok());
        match count {
            Some(n) if !name.is_empty() => {
                budgeted.insert(name.to_string(), (line, n));
            }
            _ => findings.push(Finding {
                file: budget_file.to_string(),
                line,
                rule: "unsafe-budget",
                message: format!("malformed budget line `{raw_line}` (expected `crate = N`)"),
            }),
        }
    }
    for (name, &count) in actual {
        let declared = budgeted.remove(name);
        match declared {
            None if count > 0 => findings.push(Finding {
                file: budget_file.to_string(),
                line: 0,
                rule: "unsafe-budget",
                message: format!(
                    "crate `{name}` has {count} unsafe site(s) but no budget entry — \
                     declare `{name} = {count}` after review"
                ),
            }),
            Some((line, budget)) if count > budget => findings.push(Finding {
                file: budget_file.to_string(),
                line,
                rule: "unsafe-budget",
                message: format!(
                    "unsafe grew in `{name}`: {count} site(s), budget {budget} — review the \
                     new site(s) and bump the budget explicitly"
                ),
            }),
            Some((line, budget)) if count < budget => findings.push(Finding {
                file: budget_file.to_string(),
                line,
                rule: "unsafe-budget",
                message: format!(
                    "stale budget for `{name}`: {count} site(s), budget {budget} — lower the \
                     budget so the headroom cannot be spent silently"
                ),
            }),
            _ => {}
        }
    }
    for (name, (line, _)) in budgeted {
        findings.push(Finding {
            file: budget_file.to_string(),
            line,
            rule: "unsafe-budget",
            message: format!("budget entry for unknown crate `{name}` — remove it"),
        });
    }
    findings
}

/// First `name = "..."` in a Cargo.toml; falls back to the directory
/// name when unparsable.
fn package_name(manifest: &Path) -> String {
    if let Ok(text) = std::fs::read_to_string(manifest) {
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let rest = rest.trim();
                    if let Some(stripped) = rest.strip_prefix('"') {
                        if let Some(end) = stripped.find('"') {
                            return stripped[..end].to_string();
                        }
                    }
                }
            }
        }
    }
    manifest
        .parent()
        .and_then(|p| p.file_name())
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(&str, usize)]) -> BTreeMap<String, usize> {
        pairs.iter().map(|(n, c)| (n.to_string(), *c)).collect()
    }

    #[test]
    fn budget_exact_match_is_clean() {
        let f = check_budget(
            "# comment\noris-index = 8\noris-bench = 5\n",
            "b.txt",
            &counts(&[("oris-index", 8), ("oris-bench", 5), ("oris-core", 0)]),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn budget_flags_growth_staleness_missing_and_unknown() {
        let f = check_budget(
            "oris-index = 8\noris-bench = 9\nghost-crate = 1\n",
            "b.txt",
            &counts(&[("oris-index", 9), ("oris-bench", 5), ("oris-db", 2)]),
        );
        let msgs: Vec<&str> = f.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(f.len(), 4, "{msgs:?}");
        assert!(msgs
            .iter()
            .any(|m| m.contains("unsafe grew in `oris-index`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("stale budget for `oris-bench`")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("`oris-db` has 2 unsafe site(s) but no budget")));
        assert!(msgs
            .iter()
            .any(|m| m.contains("unknown crate `ghost-crate`")));
    }

    #[test]
    fn budget_flags_malformed_lines() {
        let f = check_budget("oris-index eight\n", "b.txt", &counts(&[]));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("malformed"));
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn finding_display_format() {
        let f = Finding {
            file: "crates/db/src/session.rs".into(),
            line: 42,
            rule: "io-seam",
            message: "msg".into(),
        };
        assert_eq!(f.to_string(), "crates/db/src/session.rs:42: io-seam: msg");
    }
}
