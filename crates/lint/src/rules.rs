//! The invariant rules, their scoping tables, and the allow escape
//! hatch.
//!
//! Each rule encodes a failure an earlier PR paid for once; the scoping
//! tables below say *where* a rule applies, and every scope decision is
//! commented so the next reader knows whether an exemption is policy or
//! an accident. Test code (`#[cfg(test)]` / `#[test]` items) is never
//! linted — tests legitimately use hash sets for order-free comparison,
//! scratch-file I/O, and so on.
//!
//! # The escape hatch
//!
//! A finding can be suppressed, with a mandatory reason, by a comment:
//!
//! ```text
//! // oris-lint: allow(det-time) — stats metering only; records never depend on wall clock
//! let t0 = std::time::Instant::now();
//! ```
//!
//! A line-scoped `allow(<rule>)` covers its own line and the next line.
//! `allow-file(<rule>)` covers the whole file (for files whose purpose
//! is the exempted behaviour, e.g. stage timers filling a stats
//! struct). An allow that suppresses nothing is itself an error
//! (`unused-allow`), so stale escapes cannot linger; an allow naming an
//! unknown rule or missing its `— reason` is a `bad-allow` error.

use crate::lexer::{lex, test_mask, Lexed};
use crate::Finding;

/// Rule names an `allow(...)` may target.
pub const ALLOWABLE_RULES: &[&str] = &[
    "float-ord",
    "io-seam",
    "unsafe-safety",
    "det-hash",
    "det-time",
    "narrow-cast",
];

/// Crates whose non-test code may feed a sink or writer — the det-hash
/// scope. `oris-bench` (a measurement harness whose outputs are timing
/// tables) and `oris-simulate` (test-data generation) sit outside every
/// result path; `oris-lint` itself emits findings it sorts explicitly.
const HASH_SCOPE: &[&str] = &[
    "oris",
    "oris-core",
    "oris-eval",
    "oris-blast",
    "oris-db",
    "oris-index",
    "oris-align",
    "oris-stats",
    "oris-dust",
    "oris-seqio",
    "oris-cli",
];

/// det-time: the one crate allowed to touch `Instant`/`SystemTime`.
/// `oris-obs` owns the process clock (the monotonic epoch behind
/// `monotonic_now`, `Stopwatch`, and the `Clock` trait); every other
/// crate — bench and the old deadline/timing modules included — must go
/// through it, so a wall-clock read anywhere else is a bug, not a
/// style choice.
const TIME_EXEMPT_CRATES: &[&str] = &["oris-obs"];

/// io-seam applies only inside the database crate…
const IO_SEAM_CRATE: &str = "oris-db";

/// …and not to the seam itself (`io.rs` is where the filesystem is
/// *allowed* to appear) nor the `makedb` write path: build-time writes
/// target a directory the operator owns, and the fault model worth
/// testing is the serving path (see `oris-db/src/io.rs` module docs).
const IO_SEAM_EXEMPT_FILES: &[&str] = &["io.rs", "makedb.rs"];

/// narrow-cast: the crates doing residue/offset arithmetic where a
/// 32-bit truncation has already bitten once (PR 5's `SubjectSpace`
/// residue total).
const NARROW_SCOPE: &[&str] = &["oris-index", "oris-db"];

/// Cast targets that narrow on the LP64 targets this project supports.
/// `as usize` is deliberately absent: it widens from `u32` (the
/// dominant cast here), and the persist layer validates counts against
/// `u32::MAX` before any `u64 → usize` could matter.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that smell like length/offset/residue
/// arithmetic. `c as u32` (a 2-bit base code widening) passes;
/// `pos as u32` and `x.len() as u32` must justify themselves.
const SUSPECT_FRAGMENTS: &[&str] = &[
    "len", "pos", "total", "residue", "offset", "count", "size", "sum",
];

/// Identity of the file being checked, used for rule scoping.
pub struct FileCtx<'a> {
    /// Cargo package name, e.g. `oris-db`.
    pub crate_name: &'a str,
    /// File name only, e.g. `session.rs`.
    pub file_name: &'a str,
    /// Workspace-relative path used in findings.
    pub rel_path: &'a str,
}

/// Result of checking one file.
pub struct FileReport {
    /// Findings after allow-filtering (includes `unused-allow` /
    /// `bad-allow` meta findings).
    pub findings: Vec<Finding>,
    /// Non-test `unsafe` occurrences (blocks, impls, *and* fn
    /// signatures), for the per-crate budget.
    pub unsafe_sites: usize,
}

#[derive(Debug)]
struct Allow {
    line: usize,
    rule: String,
    file_scope: bool,
    used: bool,
}

/// Parses `// oris-lint: allow(<rule>) — <reason>` directives.
fn parse_allows(lx: &Lexed, ctx: &FileCtx, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, info) in lx.lines.iter().enumerate() {
        // Directives live in plain `//` (or `/* */`) comments only. Doc
        // comments quote the syntax when documenting it — including this
        // crate's own docs — and must never act as suppressions.
        let Some(at) = info.plain_comment.find("oris-lint:") else {
            continue;
        };
        let rest = info.plain_comment[at + "oris-lint:".len()..].trim_start();
        let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line,
                rule: "bad-allow",
                message: "malformed oris-lint directive: expected `allow(<rule>)` or \
                          `allow-file(<rule>)`"
                    .to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line,
                rule: "bad-allow",
                message: "unclosed `allow(` directive".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !ALLOWABLE_RULES.contains(&rule.as_str()) {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line,
                rule: "bad-allow",
                message: format!(
                    "unknown rule `{rule}` in allow (allowable: {})",
                    ALLOWABLE_RULES.join(", ")
                ),
            });
            continue;
        }
        // The reason is not optional: an escape hatch without a written
        // justification is how invariants rot.
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix('—')
            .or_else(|| after.strip_prefix('–'))
            .or_else(|| after.strip_prefix('-'))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line,
                rule: "bad-allow",
                message: format!("allow({rule}) needs a reason: `allow({rule}) — <why>`"),
            });
            continue;
        }
        allows.push(Allow {
            line,
            rule,
            file_scope,
            used: false,
        });
    }
    allows
}

fn suppressed(allows: &mut [Allow], rule: &str, line: usize) -> bool {
    // Line-scoped allows are preferred over file-scoped ones so a
    // file-level escape does not mask (and mark stale) a line-level one.
    if let Some(a) = allows
        .iter_mut()
        .filter(|a| a.rule == rule && !a.file_scope)
        .find(|a| a.line == line || a.line + 1 == line)
    {
        a.used = true;
        return true;
    }
    if let Some(a) = allows.iter_mut().find(|a| a.rule == rule && a.file_scope) {
        a.used = true;
        return true;
    }
    false
}

/// Whether a `// SAFETY:` comment covers the unsafe site on `line`: on
/// the line itself, or in the run of comment-only lines directly above
/// it (a blank or code line ends the run — the comment must be
/// attached).
fn has_safety_comment(lx: &Lexed, line: usize) -> bool {
    if lx.comment(line).contains("SAFETY:") {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && !lx.has_code(l) && !lx.comment(l).is_empty() {
        if lx.comment(l).contains("SAFETY:") {
            return true;
        }
        l -= 1;
    }
    false
}

/// Runs every rule over one file.
pub fn check_file(ctx: &FileCtx, src: &str) -> FileReport {
    let lx = lex(src);
    let mask = test_mask(&lx.toks);
    let mut findings = Vec::new();
    let mut allows = parse_allows(&lx, ctx, &mut findings);
    let mut unsafe_sites = 0usize;

    // Candidate findings before allow-filtering: (line, rule, message).
    let mut raw: Vec<(usize, &'static str, String)> = Vec::new();

    let t = |k: usize| lx.toks.get(k).map(|x| x.text.as_str()).unwrap_or("");
    let in_hash_scope = HASH_SCOPE.contains(&ctx.crate_name);
    let in_time_scope = !TIME_EXEMPT_CRATES.contains(&ctx.crate_name);
    let in_io_scope =
        ctx.crate_name == IO_SEAM_CRATE && !IO_SEAM_EXEMPT_FILES.contains(&ctx.file_name);
    let in_narrow_scope = NARROW_SCOPE.contains(&ctx.crate_name);

    for (i, masked) in mask.iter().enumerate() {
        if *masked {
            continue;
        }
        let line = lx.toks[i].line;
        let tx = t(i);

        // float-ord — PR 2: an e-value `partial_cmp().unwrap()` sort
        // panicked on NaN. Applies everywhere: a float total order is
        // never wrong, and `fn partial_cmp` trait impls are not calls.
        if tx == "partial_cmp" && i > 0 && t(i - 1) == "." {
            raw.push((
                line,
                "float-ord",
                "`.partial_cmp` ordering: use `f64::total_cmp` / `M8Record::total_order` \
                 (NaN-safe total order; PR 2's e-value sort panicked on NaN)"
                    .to_string(),
            ));
        }

        // io-seam — PR 6: every database read must flow through
        // `VolumeIo` or fault injection silently loses coverage.
        if in_io_scope {
            let hit = (tx == "std" && t(i + 1) == "::" && t(i + 2) == "fs")
                || (tx == "File"
                    && t(i + 1) == "::"
                    && (t(i + 2) == "open" || t(i + 2) == "create"))
                || matches!(tx, "OpenOptions" | "read_dir" | "read_to_string")
                || matches!(
                    tx,
                    "attach_index_file" | "read_index_file" | "map_index_file" | "Mapping"
                )
                || (i > 0
                    && t(i - 1) == "."
                    && matches!(
                        tx,
                        "exists" | "metadata" | "symlink_metadata" | "canonicalize"
                    ));
            if hit {
                raw.push((
                    line,
                    "io-seam",
                    "direct filesystem/index access in oris-db: route reads through the \
                     `VolumeIo` seam (io.rs) so `FaultyIo` provably covers them (PR 6); \
                     the makedb write path is allowlisted"
                        .to_string(),
                ));
            }
        }

        // unsafe discipline — every block/impl explains itself; the
        // count feeds the per-crate budget. `unsafe fn` signatures are
        // counted but not comment-checked: the caller-side obligation
        // lives in their `# Safety` docs (clippy::missing_safety_doc).
        if tx == "unsafe" {
            unsafe_sites += 1;
            if t(i + 1) != "fn" && !has_safety_comment(&lx, line) {
                raw.push((
                    line,
                    "unsafe-safety",
                    "`unsafe` block/impl without a `// SAFETY:` comment directly above it"
                        .to_string(),
                ));
            }
        }

        // det-hash — PR 4: output must be byte-identical for any thread
        // count; hash iteration order feeding a sink/writer breaks that.
        if in_hash_scope && (tx == "HashMap" || tx == "HashSet") {
            let is_use_line = lx
                .raw
                .get(line - 1)
                .map(|l| l.trim_start().starts_with("use "))
                .unwrap_or(false);
            if !is_use_line {
                raw.push((
                    line,
                    "det-hash",
                    "HashMap/HashSet in a result-path crate: iteration order is \
                     nondeterministic (PR 4 byte-identity) — sort before anything reaches \
                     a sink/writer and allow with that justification, or use an ordered \
                     structure"
                        .to_string(),
                ));
            }
        }

        // det-time — wall-clock reads outside the clock-owning crate.
        if in_time_scope
            && (tx == "Instant" || tx == "SystemTime")
            && t(i + 1) == "::"
            && t(i + 2) == "now"
        {
            raw.push((
                line,
                "det-time",
                "wall-clock read outside `oris-obs`: results must not depend on time — \
                 use `oris_obs::Stopwatch` / `monotonic_now` (the one sanctioned clock), \
                 or allow with a justification for why this read cannot go through it"
                    .to_string(),
            ));
        }

        // narrow-cast — PR 5: a residue total truncated at 32 bits.
        if in_narrow_scope && tx == "as" && NARROW_TARGETS.contains(&t(i + 1)) && i > 0 {
            let prev = t(i - 1);
            let computed = prev == ")" || prev == "]";
            let suspect = prev
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
                && {
                    let low = prev.to_ascii_lowercase();
                    SUSPECT_FRAGMENTS.iter().any(|f| low.contains(f))
                };
            if computed || suspect {
                raw.push((
                    line,
                    "narrow-cast",
                    format!(
                        "narrowing `as {}` on length/offset arithmetic: use \
                         `try_from`/`try_into` (PR 5's residue total truncated at 32 bits) \
                         or allow naming the guard that bounds the value",
                        t(i + 1)
                    ),
                ));
            }
        }
    }

    // One finding per (line, rule): several tokens on a line (e.g.
    // `HashMap<…> = HashMap::new()`) are one decision for the reader.
    raw.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);

    for (line, rule, message) in raw {
        if !suppressed(&mut allows, rule, line) {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line,
                rule,
                message,
            });
        }
    }

    for a in &allows {
        if !a.used {
            findings.push(Finding {
                file: ctx.rel_path.to_string(),
                line: a.line,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing — the violation it excused is gone; \
                     remove the comment",
                    a.rule
                ),
            });
        }
    }

    findings.sort();
    FileReport {
        findings,
        unsafe_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(krate: &'a str, file: &'a str) -> FileCtx<'a> {
        FileCtx {
            crate_name: krate,
            file_name: file,
            rel_path: file,
        }
    }

    fn rules_of(report: &FileReport) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn directives_in_doc_comments_are_inert() {
        // Docs quoting the syntax (as this crate's own docs do) must
        // neither suppress findings nor count as bad/unused allows.
        let src = "\
//! Escapes: `// oris-lint: allow(<rule>) — <reason>`.

/// Example: `// oris-lint: allow(det-time) — stats only`.
fn doc_target() {}
";
        let r = check_file(&ctx("oris-core", "x.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn fn_partial_cmp_impl_is_not_a_call() {
        let src = "impl PartialOrd for W { fn partial_cmp(&self, o: &W) -> Option<Ordering> { Some(self.cmp(o)) } }";
        let r = check_file(&ctx("oris-core", "sink.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn line_allow_covers_next_line_only() {
        let src = "\
// oris-lint: allow(det-time) — stats only
fn a() { let t = Instant::now(); }
fn b() { let t = Instant::now(); }
";
        let r = check_file(&ctx("oris-core", "engine.rs"), src);
        assert_eq!(rules_of(&r), vec!["det-time"]);
        assert_eq!(r.findings[0].line, 3);
    }

    #[test]
    fn file_allow_covers_everything_and_counts_as_used() {
        let src = "\
// oris-lint: allow-file(det-time) — this module is a stage timer
fn a() { let t = Instant::now(); }
fn b() { let t = Instant::now(); }
";
        let r = check_file(&ctx("oris-blast", "engine.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "// oris-lint: allow(det-time)\nfn a() { let t = Instant::now(); }\n";
        let r = check_file(&ctx("oris-core", "engine.rs"), src);
        assert!(rules_of(&r).contains(&"bad-allow"));
        assert!(rules_of(&r).contains(&"det-time"));
    }

    #[test]
    fn unknown_rule_in_allow_is_bad() {
        let src = "// oris-lint: allow(no-such-rule) — because\nfn a() {}\n";
        let r = check_file(&ctx("oris-core", "engine.rs"), src);
        assert_eq!(rules_of(&r), vec!["bad-allow"]);
    }

    #[test]
    fn unsafe_fn_signature_needs_no_comment_but_counts() {
        let src = "pub unsafe fn alloc(&self) -> *mut u8 { core() }";
        let r = check_file(&ctx("oris-bench", "memtrack.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.unsafe_sites, 1);
    }

    #[test]
    fn consecutive_unsafe_impls_need_their_own_comments() {
        let src = "\
// SAFETY: read-only view.
unsafe impl Send for X {}
unsafe impl Sync for X {}
";
        let r = check_file(&ctx("oris-index", "section.rs"), src);
        assert_eq!(rules_of(&r), vec!["unsafe-safety"]);
        assert_eq!(r.findings[0].line, 3);
        assert_eq!(r.unsafe_sites, 2);
    }

    #[test]
    fn hash_in_use_statement_is_not_flagged() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}\n";
        let r = check_file(&ctx("oris-core", "x.rs"), src);
        assert_eq!(rules_of(&r), vec!["det-hash"]);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn obs_crate_owns_the_clock() {
        // oris-obs is the one crate that may read the wall clock.
        let src = "fn f() { let t = Instant::now(); }";
        let r = check_file(&ctx("oris-obs", "clock.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn bench_crate_keeps_det_hash_exemption_but_not_det_time() {
        // oris-bench lost its det-time blanket when the clock moved into
        // oris-obs: its timing goes through `Stopwatch` like everyone
        // else's. Hash iteration in the harness stays fine (its outputs
        // are timing tables, not result records).
        let src = "fn f() { let t = Instant::now(); let h: HashMap<u8,u8> = HashMap::new(); }";
        let r = check_file(&ctx("oris-bench", "lib.rs"), src);
        assert_eq!(rules_of(&r), vec!["det-time"]);
    }

    #[test]
    fn formerly_exempt_time_modules_are_in_scope() {
        // deadline.rs and timing.rs had file-level exemptions before the
        // clock was centralised; a raw read there is now a finding.
        let src = "fn f() { let t = Instant::now(); }";
        for (krate, file) in [("oris-core", "deadline.rs"), ("oris-eval", "timing.rs")] {
            let r = check_file(&ctx(krate, file), src);
            assert_eq!(rules_of(&r), vec!["det-time"], "{krate}/{file}");
        }
    }

    #[test]
    fn widening_base_code_cast_passes_narrow_rule() {
        let src = "fn f(c: u8) -> u32 { (c as u32) << 2 }";
        let r = check_file(&ctx("oris-index", "seedcode.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn len_cast_is_flagged_in_scope_only() {
        let src = "fn f(v: &[u8]) -> u32 { v.len() as u32 }";
        let r = check_file(&ctx("oris-index", "structure.rs"), src);
        assert_eq!(rules_of(&r), vec!["narrow-cast"]);
        // Same source in a crate outside the narrow scope: clean.
        let r = check_file(&ctx("oris-core", "structure.rs"), src);
        assert!(r.findings.is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_all_rules() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() {
        let _ = a.partial_cmp(b);
        let _ = Instant::now();
        let h = HashSet::new();
        unsafe { danger() }
    }
}
";
        let r = check_file(&ctx("oris-core", "x.rs"), src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.unsafe_sites, 0);
    }

    #[test]
    fn io_seam_flags_and_exempts() {
        let src = "fn f() { let b = std::fs::read(p); }";
        let r = check_file(&ctx("oris-db", "session.rs"), src);
        assert_eq!(rules_of(&r), vec!["io-seam"]);
        // The seam itself and the write path are allowlisted.
        assert!(check_file(&ctx("oris-db", "io.rs"), src)
            .findings
            .is_empty());
        assert!(check_file(&ctx("oris-db", "makedb.rs"), src)
            .findings
            .is_empty());
        // Other crates read files freely.
        assert!(check_file(&ctx("oris-seqio", "fasta.rs"), src)
            .findings
            .is_empty());
    }
}
