//! A minimal, comment/string-aware Rust token scanner.
//!
//! This is deliberately **not** a parser: the invariant rules in
//! [`crate::rules`] only need a token stream that (a) never mistakes a
//! comment or string literal for code, (b) keeps line numbers, and
//! (c) knows which lines carry comments (for `// SAFETY:` and
//! `// oris-lint: allow(...)` detection). Hand-rolling this keeps the
//! crate dependency-free — the build environment has no crates.io
//! access, so `syn` is not an option — and the subset of Rust lexing
//! needed here is small: line/block comments (nested), string literals
//! (plain, raw, byte, C), char literals vs. lifetimes, identifiers,
//! and punctuation (`::` merged into one token, everything else
//! single-char).

/// One code token: its 1-based line and its text. Literals are *not*
/// emitted as tokens — rules must never match inside strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based source line.
    pub line: usize,
    /// Token text (identifier, number, `::`, or a single punctuation
    /// character).
    pub text: String,
}

/// Per-line facts the rules need besides tokens.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Whether any code token or literal starts on this line.
    pub has_code: bool,
    /// Concatenated comment text on this line (empty when none).
    pub comment: String,
    /// Like `comment`, but only plain (non-doc) chunks. Doc comments
    /// (`///`, `//!`, `/**`, `/*!`) quote directive syntax when
    /// documenting it, so `oris-lint:` directives are only honoured
    /// here.
    pub plain_comment: String,
}

/// A lexed file: tokens plus per-line comment/code facts.
#[derive(Debug)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Indexed by 1-based line number (index 0 is a dummy).
    pub lines: Vec<LineInfo>,
    /// Raw source lines (0-based), for cheap line-shape checks.
    pub raw: Vec<String>,
}

impl Lexed {
    /// The comment text on `line` (1-based), or `""`.
    pub fn comment(&self, line: usize) -> &str {
        self.lines
            .get(line)
            .map(|l| l.comment.as_str())
            .unwrap_or("")
    }

    /// The plain (non-doc) comment text on `line` (1-based), or `""`.
    pub fn plain_comment(&self, line: usize) -> &str {
        self.lines
            .get(line)
            .map(|l| l.plain_comment.as_str())
            .unwrap_or("")
    }

    /// Whether `line` (1-based) carries any code.
    pub fn has_code(&self, line: usize) -> bool {
        self.lines.get(line).is_some_and(|l| l.has_code)
    }
}

/// Lexes `src`. Never fails: unterminated constructs simply end the
/// token stream (the real compiler rejects those files long before the
/// linter matters).
pub fn lex(src: &str) -> Lexed {
    let c: Vec<char> = src.chars().collect();
    let nlines = src.lines().count() + 2;
    let mut lines = vec![LineInfo::default(); nlines + 1];
    let raw: Vec<String> = src.lines().map(|l| l.to_string()).collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    let push_comment = |lines: &mut Vec<LineInfo>, line: usize, text: &str, doc: bool| {
        let slot = &mut lines[line];
        if !slot.comment.is_empty() {
            slot.comment.push(' ');
        }
        slot.comment.push_str(text);
        if !doc {
            if !slot.plain_comment.is_empty() {
                slot.plain_comment.push(' ');
            }
            slot.plain_comment.push_str(text);
        }
    };

    while i < c.len() {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!`).
        if ch == '/' && c.get(i + 1) == Some(&'/') {
            // `///` and `//!` are doc comments; `////...` is a
            // decorative rule, plain per the Rust grammar.
            let doc = matches!(c.get(i + 2), Some('/' | '!')) && c.get(i + 3) != Some(&'/');
            let start = i;
            while i < c.len() && c[i] != '\n' {
                i += 1;
            }
            let text: String = c[start..i].iter().collect();
            push_comment(&mut lines, line, &text, doc);
            continue;
        }
        // Block comment, nesting per the Rust grammar.
        if ch == '/' && c.get(i + 1) == Some(&'*') {
            // `/**` and `/*!` are doc; the empty `/**/` is plain.
            let doc = matches!(c.get(i + 2), Some('*' | '!')) && c.get(i + 3) != Some(&'/');
            let mut depth = 1usize;
            i += 2;
            let mut text = String::from("/*");
            while i < c.len() && depth > 0 {
                if c[i] == '/' && c.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if c[i] == '*' && c.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    text.push_str("*/");
                    i += 2;
                } else if c[i] == '\n' {
                    push_comment(&mut lines, line, &text, doc);
                    text.clear();
                    line += 1;
                    i += 1;
                } else {
                    text.push(c[i]);
                    i += 1;
                }
            }
            push_comment(&mut lines, line, &text, doc);
            continue;
        }
        // String literals: plain "...", raw r"..." / r#"..."#, with
        // optional b/c prefixes. Consumed without emitting tokens.
        if ch == '"' || ((ch == 'r' || ch == 'b' || ch == 'c') && string_follows(&c, i)) {
            lines[line].has_code = true;
            let mut j = i;
            if c[j] == 'b' || c[j] == 'c' {
                j += 1;
            }
            let raw_str = j < c.len() && c[j] == 'r';
            if raw_str {
                j += 1;
            }
            let mut hashes = 0usize;
            while raw_str && j < c.len() && c[j] == '#' {
                hashes += 1;
                j += 1;
            }
            debug_assert_eq!(c.get(j), Some(&'"'));
            j += 1; // past the opening quote
            loop {
                match c.get(j) {
                    None => break,
                    Some('\n') => {
                        line += 1;
                        j += 1;
                    }
                    Some('\\') if !raw_str => {
                        // `\` + newline is a line continuation: the
                        // escape is consumed, but the newline is still a
                        // real source line.
                        if c.get(j + 1) == Some(&'\n') {
                            line += 1;
                        }
                        j += 2;
                    }
                    Some('"') => {
                        j += 1;
                        if !raw_str {
                            break;
                        }
                        let closing = (0..hashes).all(|k| c.get(j + k) == Some(&'#'));
                        if closing {
                            j += hashes;
                            break;
                        }
                    }
                    Some(_) => j += 1,
                }
            }
            i = j;
            continue;
        }
        // Char literal vs. lifetime.
        if ch == '\'' {
            lines[line].has_code = true;
            if c.get(i + 1) == Some(&'\\') {
                // Escaped char literal: scan to the closing quote.
                let mut j = i + 1;
                while j < c.len() {
                    if c[j] == '\\' {
                        j += 2;
                    } else if c[j] == '\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            } else if c.get(i + 2) == Some(&'\'') {
                i += 3; // 'x'
            } else {
                // Lifetime: consume the quote + identifier, emit nothing.
                i += 1;
                while i < c.len() && (c[i].is_alphanumeric() || c[i] == '_') {
                    i += 1;
                }
            }
            continue;
        }
        // Identifier / number.
        if ch.is_alphanumeric() || ch == '_' {
            let start = i;
            while i < c.len() && (c[i].is_alphanumeric() || c[i] == '_') {
                i += 1;
            }
            lines[line].has_code = true;
            toks.push(Tok {
                line,
                text: c[start..i].iter().collect(),
            });
            continue;
        }
        // `::` as one token (path matching reads much better).
        if ch == ':' && c.get(i + 1) == Some(&':') {
            lines[line].has_code = true;
            toks.push(Tok {
                line,
                text: "::".to_string(),
            });
            i += 2;
            continue;
        }
        lines[line].has_code = true;
        toks.push(Tok {
            line,
            text: ch.to_string(),
        });
        i += 1;
    }

    Lexed { toks, lines, raw }
}

/// Whether the characters at `i` (which start with `r`, `b`, or `c`)
/// open a string literal rather than an identifier: `r"`, `r#"`,
/// `b"`, `br"`, `br#"`, `c"`, `cr"`, ...
fn string_follows(c: &[char], i: usize) -> bool {
    let mut j = i;
    if c[j] == 'b' || c[j] == 'c' {
        j += 1;
        if c.get(j) == Some(&'"') {
            return true;
        }
    }
    if c.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while c.get(j) == Some(&'#') {
        j += 1;
    }
    c.get(j) == Some(&'"')
}

/// Marks every token inside a `#[cfg(test)]`- or `#[test]`-gated item.
///
/// The production invariants do not apply to test code (tests use
/// `HashSet` for order-free comparisons, raw `std::fs` for scratch
/// files, and so on), so the rules skip masked tokens. Detection is
/// token-shaped, not tree-shaped: a test attribute is followed by any
/// further attributes, then an item whose extent is the matching
/// `{...}` block (or the first top-level `;` for block-less items).
///
/// Coarseness note: a `cfg` attribute is treated as test-gating when
/// its argument tokens contain `test` and do not contain `not` — so
/// `#[cfg(all(test, unix))]` masks, and `#[cfg(not(test))]` correctly
/// does not.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let t = |k: usize| toks.get(k).map(|x| x.text.as_str()).unwrap_or("");
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if t(i) != "#" || t(i + 1) != "[" {
            i += 1;
            continue;
        }
        let Some(attr_end) = match_bracket(toks, i + 1, "[", "]") else {
            break;
        };
        let inner: Vec<&str> = (i + 2..attr_end).map(t).collect();
        let is_test = inner.first() == Some(&"test")
            || (inner.first() == Some(&"cfg")
                && inner.contains(&"test")
                && !inner.contains(&"not"));
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end + 1;
        while t(j) == "#" && t(j + 1) == "[" {
            match match_bracket(toks, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        // The item body: first top-level `{...}` or a `;` outside
        // parens/brackets.
        let mut depth = 0i32;
        let mut end = toks.len().saturating_sub(1);
        let mut k = j;
        while k < toks.len() {
            match t(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    end = match_bracket(toks, k, "{", "}").unwrap_or(toks.len() - 1);
                    break;
                }
                ";" if depth == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Index of the token closing the bracket opened at `open` (whose text
/// must equal `open_text`).
fn match_bracket(toks: &[Tok], open: usize, open_text: &str, close_text: &str) -> Option<usize> {
    debug_assert_eq!(toks[open].text, open_text);
    let mut depth = 0i32;
    for (k, tok) in toks.iter().enumerate().skip(open) {
        if tok.text == open_text {
            depth += 1;
        } else if tok.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_emit_no_tokens() {
        let src = r##"
            // partial_cmp in a comment
            /* unsafe { } in a block comment */
            let a = "partial_cmp inside a string";
            let b = r#"Instant::now in a raw string"#;
            let c = b"HashMap bytes";
        "##;
        let toks = texts(src);
        assert!(!toks.contains(&"partial_cmp".to_string()));
        assert!(!toks.contains(&"unsafe".to_string()));
        assert!(!toks.contains(&"Instant".to_string()));
        assert!(!toks.contains(&"HashMap".to_string()));
        assert!(toks.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_the_rest_of_the_file() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } struct S;";
        let toks = texts(src);
        assert!(toks.contains(&"struct".to_string()));
        assert!(toks.contains(&"S".to_string()));
    }

    #[test]
    fn char_literals_including_escapes() {
        let src = "let q = '\\''; let n = '\\n'; let x = 'z'; let u = '\\u{1F600}'; done";
        let toks = texts(src);
        assert!(toks.contains(&"done".to_string()));
        // Char contents never become tokens.
        assert!(!toks.contains(&"z".to_string()));
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = texts("std::fs::read(path)");
        assert_eq!(
            toks[..5],
            ["std", "::", "fs", "::", "read"].map(String::from)
        );
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        // `\` + newline inside a string is a continuation, but the
        // newline is still a source line — later tokens must not drift
        // (CLI usage strings use this heavily).
        let src = "let u = \"a\\\n b\\\n c\";\nafter";
        let lx = lex(src);
        let after = lx.toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn comments_recorded_per_line_with_code_flag() {
        let src = "// SAFETY: fine\nunsafe impl Send for X {}\n";
        let lx = lex(src);
        assert!(lx.comment(1).contains("SAFETY:"));
        assert!(!lx.has_code(1));
        assert!(lx.has_code(2));
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("/* outer /* inner */ still comment */ code");
        assert_eq!(toks, ["code"].map(String::from));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { let h = HashMap::new(); }\n}\nfn prod2() {}";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        let masked: Vec<&str> = lx
            .toks
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"HashMap"));
        assert!(!masked.contains(&"prod"));
        assert!(!masked.contains(&"prod2"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn prod() { let h = HashMap::new(); }";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn test_attribute_masks_one_fn_only() {
        let src = "#[test]\nfn t() { unsafe { danger() } }\nfn prod() { fine() }";
        let lx = lex(src);
        let mask = test_mask(&lx.toks);
        let unmasked: Vec<&str> = lx
            .toks
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(!unmasked.contains(&"unsafe"));
        assert!(unmasked.contains(&"prod"));
    }
}
