// Fixture: the unsafe block became safe code; the allow must be
// flagged as unused.
fn view(bytes: &[u8]) -> &[u8] {
    // oris-lint: allow(unsafe-safety) — invariants documented on the constructor
    bytes
}
