// Fixture: a wall-clock read outside the Deadline/timing modules, with
// no stats-only justification.
use std::time::Instant;

fn search(queries: &[String]) -> Vec<String> {
    let t0 = Instant::now();
    let out = queries.to_vec();
    if t0.elapsed().as_secs() > 1 {
        // time-dependent result shaping: exactly what the rule exists for
        return Vec::new();
    }
    out
}
