// Fixture: SAFETY comments satisfy the rule without any allow; the
// escape hatch also works for a site whose justification lives
// elsewhere.
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: read-only mapping, never handed out mutably.
unsafe impl Send for Mapping {}
// SAFETY: same rationale as Send — no interior mutability anywhere.
unsafe impl Sync for Mapping {}

fn view(m: &Mapping) -> &[u8] {
    // oris-lint: allow(unsafe-safety) — invariants documented on Mapping's constructor
    unsafe { std::slice::from_raw_parts(m.ptr, m.len) }
}
