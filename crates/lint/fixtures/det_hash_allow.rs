// Fixture: a HashMap whose contents are sorted before anything reaches
// the writer — justified with a line-scoped allow on each occurrence.
use std::collections::HashMap;

struct Sink {
    // oris-lint: allow(det-hash) — drained per query and sorted with total_order before exposure
    current: HashMap<String, Vec<u32>>,
}

impl Sink {
    fn end_query(&mut self, out: &mut String) {
        let mut rows: Vec<(String, Vec<u32>)> = self.current.drain().collect();
        rows.sort();
        for (qid, hits) in rows {
            out.push_str(&format!("{qid}\t{}\n", hits.len()));
        }
    }
}
