// Fixture: a guarded hot-path cast carries an allow naming the guard;
// the cold path uses try_from and needs nothing.
fn push_positions(data: &[u8], out: &mut Vec<u32>) {
    assert!(data.len() < u32::MAX as usize, "bank exceeds u32 positions");
    for (pos, _) in data.iter().enumerate() {
        // oris-lint: allow(narrow-cast) — guarded by the data.len() < u32::MAX assert above
        out.push(pos as u32);
    }
}

fn header_field(w: usize) -> u32 {
    u32::try_from(w).expect("w bounded by IndexConfig validation")
}
