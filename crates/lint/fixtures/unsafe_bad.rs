// Fixture: unsafe without a SAFETY comment — both the bare block and
// the impl two lines below a comment that only covers its sibling.
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: read-only mapping, never handed out mutably.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

fn view(m: &Mapping) -> &[u8] {
    unsafe { std::slice::from_raw_parts(m.ptr, m.len) }
}
