// Fixture: the violation was fixed but the allow remained — the allow
// itself must now be flagged (`unused-allow`).
fn sort_probabilities(rows: &mut Vec<f64>) {
    // oris-lint: allow(float-ord) — values are clamped to [0, 1] upstream
    rows.sort_by(f64::total_cmp);
}
