// Fixture: a raw wall-clock read inside a formerly file-exempt time
// module (deadline.rs / timing.rs). Since the clock moved into
// oris-obs, these files are in scope like everyone else: measurement
// goes through `oris_obs::Stopwatch`, not `Instant::now`.

pub fn time_secs<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = std::time::Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}
