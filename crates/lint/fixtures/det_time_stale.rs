// Fixture: the timing moved into oris_eval::timing; the allow must be
// flagged as unused.
fn search(queries: &[String]) -> Vec<String> {
    // oris-lint: allow(det-time) — fills the stats line only
    queries.to_vec()
}
