// Fixture: the direct read was routed through the seam, the allow
// stayed behind — flagged as unused-allow.
fn load_volume(io: &dyn VolumeIoLike, path: &std::path::Path) -> Vec<u8> {
    // oris-lint: allow(io-seam) — debug dump helper
    io.read(path).unwrap()
}
