// Fixture: PR 5's bug shape — a residue total pushed through a
// narrowing cast truncates above 4 Gbp. Checked as if in oris-index.
fn total_residues(volumes: &[Vec<u8>]) -> u32 {
    let total: usize = volumes.iter().map(|v| v.len()).sum();
    total as u32
}

fn row_len(offsets: &[u32], code: usize) -> u32 {
    (offsets[code + 1] - offsets[code]) as u32
}
