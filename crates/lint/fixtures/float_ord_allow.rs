// Fixture: a justified partial_cmp (e.g. ordering a type whose NaN-free
// range is proven elsewhere) is suppressed by a line-scoped allow.
fn sort_probabilities(rows: &mut Vec<f64>) {
    // oris-lint: allow(float-ord) — values are clamped to [0, 1] upstream; NaN cannot reach this sort
    rows.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
