// Fixture: the map became a BTreeMap; the allow must be flagged.
use std::collections::BTreeMap;

struct Sink {
    // oris-lint: allow(det-hash) — drained per query and sorted before exposure
    current: BTreeMap<String, Vec<u32>>,
}
