// Fixture: PR 4's bug shape — hash-order iteration feeding a writer
// makes output depend on the hasher, not the data.
use std::collections::HashMap;

fn write_hits(out: &mut String, hits: HashMap<String, u32>) {
    for (qid, n) in &hits {
        out.push_str(&format!("{qid}\t{n}\n"));
    }
}
