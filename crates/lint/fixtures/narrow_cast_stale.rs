// Fixture: the cast was converted to try_from; the allow must be
// flagged as unused.
fn push_positions(data: &[u8], out: &mut Vec<u32>) {
    for (pos, _) in data.iter().enumerate() {
        // oris-lint: allow(narrow-cast) — guarded by the caller
        out.push(u32::try_from(pos).expect("bounded by the bank-size check"));
    }
}
