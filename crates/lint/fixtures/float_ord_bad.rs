// Fixture: PR 2's bug shape — a float sort through partial_cmp panics
// the moment an e-value is NaN. Must be caught by `float-ord`.
fn sort_by_evalue(rows: &mut Vec<(f64, String)>) {
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}
