// Fixture: stats-only metering under a line-scoped allow.
use std::time::Instant;

fn search(queries: &[String], stats_secs: &mut f64) -> Vec<String> {
    // oris-lint: allow(det-time) — fills the stats line only; records never depend on wall clock
    let t0 = Instant::now();
    let out = queries.to_vec();
    *stats_secs = t0.elapsed().as_secs_f64();
    out
}
