// Fixture: the same read, justified. The only legitimate reason left
// after the clock centralised in oris-obs is bootstrapping a clock that
// oris-obs itself cannot provide (e.g. a platform-specific fallback).

pub fn time_secs<T>(f: impl FnOnce() -> T) -> (f64, T) {
    // oris-lint: allow(det-time) — platform clock shim; cannot depend on oris-obs from here
    let t0 = std::time::Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}
