// Fixture: PR 6's blind spot — a database read outside the VolumeIo
// seam escapes fault injection. Checked as if it lived in oris-db.
fn load_volume(path: &std::path::Path) -> Vec<u8> {
    std::fs::read(path).unwrap()
}

fn probe(path: &std::path::Path) -> bool {
    path.exists()
}
