// Fixture: a justified direct read (e.g. a diagnostic dump that is
// explicitly outside the fault model) under a line-scoped allow.
fn dump_raw(path: &std::path::Path) -> Vec<u8> {
    // oris-lint: allow(io-seam) — debug dump helper, documented outside the serving fault model
    std::fs::read(path).unwrap()
}
