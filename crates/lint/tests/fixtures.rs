//! The fixture corpus: every rule has a detection fixture (bad snippet
//! caught), an allow fixture (escape hatch suppresses, with its reason),
//! and a stale fixture (an allow that no longer suppresses anything is
//! itself an error). Fixtures live in `fixtures/` and are checked as if
//! they belonged to the crate named per rule scope — `io-seam` fixtures
//! as `oris-db`, `narrow-cast` fixtures as `oris-index`, the rest as
//! `oris-core`.

use oris_lint::rules::{check_file, FileCtx, FileReport};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn check(name: &str, crate_name: &str, file_name: &str) -> FileReport {
    check_file(
        &FileCtx {
            crate_name,
            file_name,
            rel_path: name,
        },
        &fixture(name),
    )
}

fn rules_of(r: &FileReport) -> Vec<&'static str> {
    r.findings.iter().map(|f| f.rule).collect()
}

/// (fixture stem, crate the rule targets, pretend file name, rule)
const CASES: &[(&str, &str, &str, &str)] = &[
    ("float_ord", "oris-core", "pipeline.rs", "float-ord"),
    ("io_seam", "oris-db", "session.rs", "io-seam"),
    ("unsafe", "oris-index", "mmap.rs", "unsafe-safety"),
    ("det_hash", "oris-core", "sink.rs", "det-hash"),
    ("det_time", "oris-core", "engine.rs", "det-time"),
    ("narrow_cast", "oris-index", "structure.rs", "narrow-cast"),
];

#[test]
fn every_rule_detects_its_bad_fixture() {
    for (stem, krate, file, rule) in CASES {
        let r = check(&format!("{stem}_bad.rs"), krate, file);
        assert!(
            r.findings.iter().any(|f| f.rule == *rule),
            "{stem}_bad.rs should trip {rule}, got {:?}",
            r.findings
        );
        // Bad fixtures carry no allows, so nothing else fires either.
        assert!(
            r.findings.iter().all(|f| f.rule == *rule),
            "{stem}_bad.rs tripped extra rules: {:?}",
            r.findings
        );
    }
}

#[test]
fn every_rule_is_suppressed_by_its_allow_fixture() {
    for (stem, krate, file, _) in CASES {
        let r = check(&format!("{stem}_allow.rs"), krate, file);
        assert!(
            r.findings.is_empty(),
            "{stem}_allow.rs should be clean (allows used), got {:?}",
            r.findings
        );
    }
}

#[test]
fn every_rule_flags_its_stale_allow_fixture() {
    for (stem, _, file, _) in CASES {
        // Stale fixtures are checked in the same crate scope as bad ones.
        let krate = CASES.iter().find(|c| c.0 == *stem).unwrap().1;
        let r = check(&format!("{stem}_stale.rs"), krate, file);
        assert_eq!(
            rules_of(&r),
            vec!["unused-allow"],
            "{stem}_stale.rs should be exactly one unused-allow, got {:?}",
            r.findings
        );
    }
}

#[test]
fn bad_fixture_findings_name_file_line_rule() {
    let r = check("float_ord_bad.rs", "oris-core", "pipeline.rs");
    assert_eq!(r.findings.len(), 1);
    let f = &r.findings[0];
    assert_eq!(f.rule, "float-ord");
    assert_eq!(f.line, 4);
    let line = f.to_string();
    assert!(
        line.starts_with("float_ord_bad.rs:4: float-ord: "),
        "finding format drifted: {line}"
    );
}

#[test]
fn unsafe_bad_fixture_flags_exactly_the_uncommented_sites() {
    let r = check("unsafe_bad.rs", "oris-index", "mmap.rs");
    let lines: Vec<usize> = r.findings.iter().map(|f| f.line).collect();
    // The Sync impl below a comment covering only Send, and the bare
    // block — but not the commented Send impl.
    assert_eq!(lines, vec![10, 13], "{:?}", r.findings);
    assert_eq!(r.unsafe_sites, 3);
}

#[test]
fn det_time_applies_to_formerly_exempt_time_modules() {
    // deadline.rs / timing.rs carried file-level exemptions until the
    // clock centralised in oris-obs; this pair pins that the tightened
    // rule fires there and that the escape hatch still works.
    for (krate, file) in [("oris-eval", "timing.rs"), ("oris-core", "deadline.rs")] {
        let r = check("det_time_timing_bad.rs", krate, file);
        assert_eq!(rules_of(&r), vec!["det-time"], "{krate}/{file}");
        let r = check("det_time_timing_allow.rs", krate, file);
        assert!(r.findings.is_empty(), "{krate}/{file}: {:?}", r.findings);
    }
    // The same source inside oris-obs is clean without any allow.
    let r = check("det_time_timing_bad.rs", "oris-obs", "clock.rs");
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn io_seam_bad_fixture_catches_read_and_existence_probe() {
    let r = check("io_seam_bad.rs", "oris-db", "session.rs");
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}

#[test]
fn narrow_cast_bad_fixture_catches_both_shapes() {
    // A suspect identifier (`total as u32`) and a computed expression
    // (`(... - ...) as u32`).
    let r = check("narrow_cast_bad.rs", "oris-index", "structure.rs");
    assert_eq!(r.findings.len(), 2, "{:?}", r.findings);
}
