//! The self-test the tentpole demands: the real workspace passes its
//! own invariant checker. This runs in plain `cargo test`, so the tree
//! cannot drift out of compliance between CI's dedicated lint step and
//! the test suite.

#[test]
fn the_real_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf();
    let (findings, stats) = oris_lint::scan_workspace(&root).expect("scan");
    assert!(
        findings.is_empty(),
        "oris-lint found {} violation(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the scan actually covered the tree (all 14 crates + the
    // root facade), not an empty directory.
    assert!(stats.crates >= 15, "only {} crates scanned", stats.crates);
    assert!(stats.files > 60, "only {} files scanned", stats.files);
}
