//! Exposition: `--metrics-json`, Prometheus text, and the `--stats`
//! stderr block shared by every CLI mode.

use std::fmt::Display;
use std::fmt::Write as _;

use crate::metrics::{Snapshot, BUCKET_BOUNDS};
use crate::trace::{push_escaped, push_json_f64};

/// Render a snapshot as the `--metrics-json` document:
///
/// ```json
/// {"counters":{"queries_total":4},
///  "gauges":{"cache_bytes":1024.0},
///  "histograms":{"query_seconds":{"sum":0.5,"count":3,
///    "buckets":[{"le":1e-6,"count":0},...,{"le":"+Inf","count":3}]}}}
/// ```
///
/// Bucket counts are cumulative (Prometheus `le` semantics); the
/// `"+Inf"` bound is spelled as a string because JSON has no infinity.
pub fn render_json(s: &Snapshot) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"counters\":{");
    for (i, (k, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_key(&mut out, k);
        let _ = write!(out, "{v}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_key(&mut out, k);
        push_json_f64(&mut out, *v);
    }
    out.push_str("},\"histograms\":{");
    for (i, (k, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_key(&mut out, k);
        out.push_str("{\"sum\":");
        push_json_f64(&mut out, h.sum());
        let _ = write!(out, ",\"count\":{},\"buckets\":[", h.count());
        let cum = h.cumulative();
        for (j, c) in cum.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"le\":");
            match BUCKET_BOUNDS.get(j) {
                Some(b) => push_json_f64(&mut out, *b),
                None => out.push_str("\"+Inf\""),
            }
            let _ = write!(out, ",\"count\":{c}}}");
        }
        out.push_str("]}");
    }
    out.push_str("}}\n");
    out
}

/// Render a snapshot in the Prometheus text exposition format, every
/// instrument prefixed `oris_`. This is the scrape-endpoint hook for a
/// future `scoris-serve`; today the CLI writes it via `--metrics-prom`.
pub fn render_prometheus(s: &Snapshot) -> String {
    let mut out = String::with_capacity(512);
    for (k, v) in &s.counters {
        let _ = writeln!(out, "# TYPE oris_{k} counter");
        let _ = writeln!(out, "oris_{k} {v}");
    }
    for (k, v) in &s.gauges {
        let _ = writeln!(out, "# TYPE oris_{k} gauge");
        let _ = writeln!(out, "oris_{k} {v:?}");
    }
    for (k, h) in &s.histograms {
        let _ = writeln!(out, "# TYPE oris_{k} histogram");
        let cum = h.cumulative();
        for (j, c) in cum.iter().enumerate() {
            match BUCKET_BOUNDS.get(j) {
                Some(b) => {
                    let _ = writeln!(out, "oris_{k}_bucket{{le=\"{b:?}\"}} {c}");
                }
                None => {
                    let _ = writeln!(out, "oris_{k}_bucket{{le=\"+Inf\"}} {c}");
                }
            }
        }
        let _ = writeln!(out, "oris_{k}_sum {:?}", h.sum());
        let _ = writeln!(out, "oris_{k}_count {}", h.count());
    }
    out
}

fn push_json_key(out: &mut String, k: &str) {
    out.push('"');
    push_escaped(out, k);
    out.push_str("\":");
}

/// The one `--stats` formatter: an ordered list of `key=value` fields
/// rendered as a single space-separated stderr line, so plain, index,
/// db, and batch runs all print the same schema. Seconds fields go
/// through [`StatsBlock::secs`] (three decimals, `_secs` suffix by
/// convention at the call site); counts through [`StatsBlock::field`].
#[derive(Debug, Default)]
pub struct StatsBlock {
    fields: Vec<(String, String)>,
}

impl StatsBlock {
    /// Start a block: every line leads with `engine=` and `mode=`.
    pub fn new(engine: &str, mode: &str) -> StatsBlock {
        let mut b = StatsBlock::default();
        b.field("engine", engine);
        b.field("mode", mode);
        b
    }

    /// Append `key=value`.
    pub fn field(&mut self, key: &str, value: impl Display) -> &mut StatsBlock {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Append a seconds measurement, three decimals.
    pub fn secs(&mut self, key: &str, secs: f64) -> &mut StatsBlock {
        self.fields.push((key.to_string(), format!("{secs:.3}")));
        self
    }

    /// Render as one space-separated line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(self.fields.len() * 16);
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{names, Registry};

    fn sample() -> Snapshot {
        let r = Registry::default();
        r.count(names::QUERIES_TOTAL, 4);
        r.set_gauge(names::CACHE_BYTES, 1024.0);
        r.observe_secs(names::QUERY_SECONDS, 0.5);
        r.observe_secs(names::QUERY_SECONDS, 2e-6);
        r.snapshot()
    }

    #[test]
    fn json_contains_every_instrument_and_balances() {
        let s = sample();
        let j = render_json(&s);
        assert!(j.contains("\"queries_total\":4"), "{j}");
        assert!(j.contains("\"cache_bytes\":1024.0"), "{j}");
        assert!(j.contains("\"query_seconds\":{"), "{j}");
        assert!(j.contains("\"le\":\"+Inf\",\"count\":2"), "{j}");
        let opens = j.matches(['{', '[']).count();
        let closes = j.matches(['}', ']']).count();
        assert_eq!(opens, closes, "{j}");
    }

    #[test]
    fn prometheus_has_type_lines_and_cumulative_buckets() {
        let s = sample();
        let p = render_prometheus(&s);
        assert!(p.contains("# TYPE oris_queries_total counter"), "{p}");
        assert!(p.contains("oris_queries_total 4"), "{p}");
        assert!(p.contains("# TYPE oris_query_seconds histogram"), "{p}");
        assert!(
            p.contains("oris_query_seconds_bucket{le=\"+Inf\"} 2"),
            "{p}"
        );
        assert!(p.contains("oris_query_seconds_count 2"), "{p}");
        // 2e-6 is <= 4e-6, so that bucket and all later ones count it.
        assert!(
            p.contains("oris_query_seconds_bucket{le=\"4e-6\"} 1"),
            "{p}"
        );
    }

    #[test]
    fn stats_block_renders_space_separated_schema() {
        let mut b = StatsBlock::new("oris", "db");
        b.field("workers", 2).field("cache_hits", 9);
        b.secs("attach_secs", 0.12345);
        assert_eq!(
            b.render(),
            "engine=oris mode=db workers=2 cache_hits=9 attach_secs=0.123"
        );
    }
}
