//! Wall-clock reads, fenced into one module.
//!
//! This file is the only place in the workspace where
//! `Instant::now`/`SystemTime::now` may appear (oris-lint `det-time`
//! exempts the `oris-obs` crate and nothing else). Everything is
//! expressed as a [`Duration`] since a process-global monotonic epoch,
//! so clock values compose with [`ManualClock`] in tests and never leak
//! absolute wall time into output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Time elapsed since the process-global monotonic epoch (the first
/// call in this process). This is the one sanctioned wall-clock read:
/// `Deadline` budgets and every [`Stopwatch`] are measured against it.
pub fn monotonic_now() -> Duration {
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// A monotonic time source. `&self` receivers and `Send + Sync` bounds
/// let one clock be shared across worker threads.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// Production clock: reads the process-global monotonic epoch.
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        monotonic_now()
    }
}

/// Test clock: time advances only when told to. Keep an
/// `Arc<ManualClock>` on the test side and hand a clone to
/// [`crate::ObsBuilder::clock`]; histograms and trace timestamps then
/// become exact, not approximate.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at its epoch.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(add, Ordering::SeqCst);
    }

    /// Jump the clock to an absolute offset from its epoch.
    pub fn set(&self, d: Duration) {
        let v = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.store(v, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// Drop-in replacement for the `let t = Instant::now(); ...
/// t.elapsed()` idiom, metering through the global monotonic epoch so
/// call sites stay det-time clean.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Duration,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: monotonic_now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        monotonic_now().saturating_sub(self.start)
    }

    /// Elapsed time in seconds, the unit every stats struct records.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_now_is_monotone() {
        let a = monotonic_now();
        let b = monotonic_now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances_exactly() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        c.advance(Duration::from_micros(250));
        assert_eq!(c.now(), Duration::from_micros(5250));
        c.set(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(1));
    }

    #[test]
    fn stopwatch_measures_nonnegative() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
        assert!(sw.elapsed() <= monotonic_now());
    }
}
