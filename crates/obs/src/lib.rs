//! # oris-obs — observability for the oris workspace
//!
//! One dependency-free crate holding everything that reads the wall
//! clock or exports runtime telemetry: a [`Clock`] abstraction, a
//! metrics registry (counters, gauges, fixed-bucket latency
//! histograms), and a span-style JSON-lines trace sink.
//!
//! ## Why the clock lives here
//!
//! The workspace's central invariant is *byte identity*: `-m 8` output
//! must not depend on thread count, worker count, cache state, volume
//! layout — or on what time it is. PR 4 encoded that as oris-lint's
//! `det-time` rule, but enforcement was porous: 15 scoped allows let
//! `Instant::now` leak into whatever module needed a timer. This crate
//! closes the seam. `Instant::now`/`SystemTime::now` are permitted
//! **only inside `oris-obs`** (the lint's single remaining exemption);
//! every other crate meters time through [`Stopwatch`]/[`Clock`] and
//! the cooperative deadline reads [`monotonic_now`]. A reviewer
//! auditing determinism now has exactly one crate to read, and tests
//! get a steerable [`ManualClock`] instead of sleeping.
//!
//! ## The off-result-path rule
//!
//! Instrumentation observes the pipeline; it never participates in it.
//! Nothing returned by a registry or clock may influence which records
//! are produced, their order, or their formatting. Concretely:
//!
//! - The [`Obs`] handle is `Option`-shaped: a disarmed handle is a
//!   `None` and every operation on it is a single branch, so the
//!   default path stays within noise of un-instrumented code (asserted
//!   `<= 1.01x` in `BENCH_index.json -> db_serve.obs_overhead`).
//! - Registry maps are `BTreeMap`s: exposition order is deterministic
//!   and det-hash clean by construction.
//! - An armed handle at max verbosity must leave `-m 8` bytes and the
//!   `SearchReport` identical to a disarmed run — pinned by the
//!   `db_equivalence` proptests, which quantify over obs on/off.
//!
//! ## Instruments
//!
//! Instrument names are centralized in [`names`]; the documented set is
//! [`names::ALL`]. Exposition: [`render_json`] (the `--metrics-json`
//! schema) and [`render_prometheus`] (text format for a future
//! `scoris-serve` scrape endpoint). Trace events are JSON lines,
//! `{"seq":N,"t_us":T,"ev":"begin|end|point","span":NAME,...}`, written
//! through `--trace <path>`.

mod clock;
mod format;
mod handle;
mod metrics;
mod trace;

pub use clock::{monotonic_now, Clock, ManualClock, MonotonicClock, Stopwatch};
pub use format::{render_json, render_prometheus, StatsBlock};
pub use handle::{Field, Obs, ObsBuilder, SpanGuard};
pub use metrics::{names, Histogram, Registry, Snapshot, BUCKET_BOUNDS};
