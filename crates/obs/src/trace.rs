//! Span-style trace events as JSON lines.
//!
//! One event per line, schema:
//!
//! ```json
//! {"seq":12,"t_us":48211,"ev":"begin","span":"volume_search","volume":3}
//! {"seq":13,"t_us":50090,"ev":"end","span":"volume_search","volume":3,"dur_us":1879}
//! ```
//!
//! `seq` is a process-wide monotone sequence number (allocation order,
//! stable under concurrent writers), `t_us` is microseconds since the
//! clock epoch, `ev` is `begin`/`end`/`point`, and any extra fields are
//! flattened into the object. Writes go through one mutex so lines
//! never interleave.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

/// One extra key/value on a trace event.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer field.
    U64(&'static str, u64),
    /// Float field (rendered as a JSON number).
    F64(&'static str, f64),
    /// String field (JSON-escaped).
    Str(&'static str, &'a str),
}

pub(crate) struct TraceSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

impl TraceSink {
    pub(crate) fn new(writer: Box<dyn Write + Send>) -> TraceSink {
        TraceSink {
            writer: Mutex::new(writer),
        }
    }

    /// Append one event line. I/O errors are swallowed: tracing is off
    /// the result path and must never fail a search.
    pub(crate) fn emit(&self, seq: u64, t: Duration, ev: &str, span: &str, fields: &[Field<'_>]) {
        let mut line = String::with_capacity(96);
        line.push_str("{\"seq\":");
        line.push_str(&seq.to_string());
        line.push_str(",\"t_us\":");
        line.push_str(&micros(t).to_string());
        line.push_str(",\"ev\":\"");
        line.push_str(ev);
        line.push_str("\",\"span\":\"");
        push_escaped(&mut line, span);
        line.push('"');
        for f in fields {
            line.push(',');
            match *f {
                Field::U64(k, v) => {
                    push_key(&mut line, k);
                    line.push_str(&v.to_string());
                }
                Field::F64(k, v) => {
                    push_key(&mut line, k);
                    push_json_f64(&mut line, v);
                }
                Field::Str(k, v) => {
                    push_key(&mut line, k);
                    line.push('"');
                    push_escaped(&mut line, v);
                    line.push('"');
                }
            }
        }
        line.push_str("}\n");
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = w.write_all(line.as_bytes());
    }

    pub(crate) fn flush(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush()
    }
}

pub(crate) fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn push_key(out: &mut String, k: &str) {
    out.push('"');
    push_escaped(out, k);
    out.push_str("\":");
}

/// Minimal JSON string escaping: quotes, backslashes, control bytes.
pub(crate) fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Render an f64 as a valid JSON number. `{:?}` on a finite f64 always
/// yields a JSON-parseable literal (`0.5`, `1e-6`); non-finite values
/// have no JSON spelling, so they degrade to null.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_json_object_per_line() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(Box::new(buf.clone()));
        sink.emit(
            1,
            Duration::from_micros(42),
            "begin",
            "attach",
            &[Field::U64("volume", 3)],
        );
        sink.emit(
            2,
            Duration::from_micros(99),
            "end",
            "attach",
            &[Field::U64("volume", 3), Field::U64("dur_us", 57)],
        );
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "{\"seq\":1,\"t_us\":42,\"ev\":\"begin\",\"span\":\"attach\",\"volume\":3}\n\
             {\"seq\":2,\"t_us\":99,\"ev\":\"end\",\"span\":\"attach\",\"volume\":3,\"dur_us\":57}\n"
        );
    }

    #[test]
    fn escapes_strings_and_degrades_nonfinite_floats() {
        let buf = SharedBuf::default();
        let sink = TraceSink::new(Box::new(buf.clone()));
        sink.emit(
            1,
            Duration::ZERO,
            "point",
            "q\"\\",
            &[Field::Str("note", "a\nb"), Field::F64("x", f64::INFINITY)],
        );
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("\"span\":\"q\\\"\\\\\""), "{text}");
        assert!(text.contains("\"note\":\"a\\nb\""), "{text}");
        assert!(text.contains("\"x\":null"), "{text}");
    }
}
