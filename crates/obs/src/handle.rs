//! The [`Obs`] handle: the one value instrumented code carries.
//!
//! A disarmed handle is `None` inside — every operation is a single
//! branch and no lock, allocation, or clock read happens. An armed
//! handle shares a clock, a [`Registry`], and (optionally) a trace
//! sink behind an `Arc`, so cloning is cheap and worker threads can
//! hold copies.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::clock::{Clock, MonotonicClock};
use crate::metrics::{Registry, Snapshot};
use crate::trace::TraceSink;

pub use crate::trace::Field;

struct ObsInner {
    clock: Arc<dyn Clock>,
    registry: Registry,
    trace: Option<TraceSink>,
    seq: AtomicU64,
}

/// Cloneable observability handle. `Obs::default()` is disarmed.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("armed", &self.is_armed())
            .finish()
    }
}

/// Configures an armed [`Obs`]: which clock, and whether trace events
/// are written anywhere.
pub struct ObsBuilder {
    clock: Arc<dyn Clock>,
    trace: Option<Box<dyn Write + Send>>,
}

impl Default for ObsBuilder {
    fn default() -> ObsBuilder {
        ObsBuilder {
            clock: Arc::new(MonotonicClock),
            trace: None,
        }
    }
}

impl ObsBuilder {
    /// Use `clock` instead of the default [`MonotonicClock`]. Tests
    /// pass an `Arc<ManualClock>` and keep a clone to advance it.
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> ObsBuilder {
        self.clock = clock;
        self
    }

    /// Write JSON-lines trace events to `writer` (max verbosity).
    pub fn trace(mut self, writer: Box<dyn Write + Send>) -> ObsBuilder {
        self.trace = Some(writer);
        self
    }

    /// Arm the handle. Every documented instrument is pre-registered at
    /// zero, so snapshots always carry the full schema.
    pub fn build(self) -> Obs {
        let registry = Registry::default();
        registry.preregister();
        Obs {
            inner: Some(Arc::new(ObsInner {
                clock: self.clock,
                registry,
                trace: self.trace.map(TraceSink::new),
                seq: AtomicU64::new(0),
            })),
        }
    }
}

impl Obs {
    /// The no-op handle: every operation is one branch.
    pub const fn disarmed() -> Obs {
        Obs { inner: None }
    }

    /// An armed handle with the monotonic clock, a fresh registry, and
    /// no trace sink (registry-only instrumentation).
    pub fn armed() -> Obs {
        ObsBuilder::default().build()
    }

    /// Start configuring an armed handle.
    pub fn builder() -> ObsBuilder {
        ObsBuilder::default()
    }

    /// Whether metrics and trace events are being recorded.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Clock read through this handle's clock; `Duration::ZERO` when
    /// disarmed (instrumented code never branches on this value — the
    /// off-result-path rule).
    pub fn now(&self) -> Duration {
        match &self.inner {
            Some(i) => i.clock.now(),
            None => Duration::ZERO,
        }
    }

    /// Add `n` to counter `name`.
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(i) = &self.inner {
            i.registry.count(name, n);
        }
    }

    /// Set counter `name` to an absolute value.
    pub fn set_counter(&self, name: &'static str, v: u64) {
        if let Some(i) = &self.inner {
            i.registry.set_counter(name, v);
        }
    }

    /// Set gauge `name`.
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        if let Some(i) = &self.inner {
            i.registry.set_gauge(name, v);
        }
    }

    /// Record `secs` into histogram `name`.
    pub fn observe_secs(&self, name: &'static str, secs: f64) {
        if let Some(i) = &self.inner {
            i.registry.observe_secs(name, secs);
        }
    }

    /// Counter value (zero when disarmed or never touched).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => 0,
        }
    }

    /// Gauge value (zero when disarmed or never touched).
    pub fn gauge(&self, name: &str) -> f64 {
        match &self.inner {
            Some(i) => i.registry.gauge(name),
            None => 0.0,
        }
    }

    /// Copy out every instrument; `None` when disarmed.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.inner.as_ref().map(|i| i.registry.snapshot())
    }

    /// Emit a `point` event (instantaneous, no matching end).
    pub fn point(&self, span: &'static str, fields: &[Field<'_>]) {
        if let Some(i) = &self.inner {
            if let Some(t) = &i.trace {
                let seq = i.seq.fetch_add(1, Ordering::Relaxed) + 1;
                t.emit(seq, i.clock.now(), "point", span, fields);
            }
        }
    }

    /// Open a span: emits `begin` now, `end` when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_impl(name, &[], None)
    }

    /// Open a span with extra fields on both `begin` and `end` events.
    /// Only `U64` fields are carried to the `end` event (span identity
    /// like a volume number; strings would need owned storage).
    pub fn span_with(&self, name: &'static str, fields: &[Field<'_>]) -> SpanGuard {
        self.span_impl(name, fields, None)
    }

    /// Open a span whose elapsed time is also recorded into histogram
    /// `histogram` when the guard drops.
    pub fn timed_span(&self, name: &'static str, histogram: &'static str) -> SpanGuard {
        self.span_impl(name, &[], Some(histogram))
    }

    /// [`Obs::timed_span`] with extra fields.
    pub fn timed_span_with(
        &self,
        name: &'static str,
        histogram: &'static str,
        fields: &[Field<'_>],
    ) -> SpanGuard {
        self.span_impl(name, fields, Some(histogram))
    }

    fn span_impl(
        &self,
        name: &'static str,
        fields: &[Field<'_>],
        histogram: Option<&'static str>,
    ) -> SpanGuard {
        let Some(i) = &self.inner else {
            return SpanGuard {
                obs: Obs::disarmed(),
                name,
                start: Duration::ZERO,
                histogram: None,
                carry: Vec::new(),
            };
        };
        let start = i.clock.now();
        if let Some(t) = &i.trace {
            let seq = i.seq.fetch_add(1, Ordering::Relaxed) + 1;
            t.emit(seq, start, "begin", name, fields);
        }
        let carry = fields
            .iter()
            .filter_map(|f| match *f {
                Field::U64(k, v) => Some((k, v)),
                _ => None,
            })
            .collect();
        SpanGuard {
            obs: self.clone(),
            name,
            start,
            histogram,
            carry,
        }
    }

    /// Flush the trace sink (call before reading the trace file).
    pub fn flush(&self) -> std::io::Result<()> {
        if let Some(i) = &self.inner {
            if let Some(t) = &i.trace {
                return t.flush();
            }
        }
        Ok(())
    }
}

/// RAII span: emits the `end` trace event (and the optional histogram
/// observation) on drop, so early returns and `?` close spans too.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    name: &'static str,
    start: Duration,
    histogram: Option<&'static str>,
    carry: Vec<(&'static str, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(i) = &self.obs.inner else { return };
        let end = i.clock.now();
        let dur = end.saturating_sub(self.start);
        if let Some(h) = self.histogram {
            i.registry.observe_secs(h, dur.as_secs_f64());
        }
        if let Some(t) = &i.trace {
            let mut fields: Vec<Field<'_>> =
                self.carry.iter().map(|&(k, v)| Field::U64(k, v)).collect();
            fields.push(Field::U64("dur_us", crate::trace::micros(dur)));
            let seq = i.seq.fetch_add(1, Ordering::Relaxed) + 1;
            t.emit(seq, end, "end", self.name, &fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::metrics::names;
    use std::sync::Mutex;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn disarmed_handle_is_inert() {
        let obs = Obs::disarmed();
        obs.count(names::QUERIES_TOTAL, 1);
        obs.observe_secs(names::QUERY_SECONDS, 0.5);
        let _g = obs.span("query");
        assert!(!obs.is_armed());
        assert_eq!(obs.counter(names::QUERIES_TOTAL), 0);
        assert!(obs.snapshot().is_none());
        assert_eq!(obs.now(), Duration::ZERO);
    }

    #[test]
    fn manual_clock_drives_exact_span_durations() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let obs = Obs::builder()
            .clock(clock.clone())
            .trace(Box::new(buf.clone()))
            .build();
        {
            let _q = obs.timed_span(names::QUERY_SECONDS, names::QUERY_SECONDS);
            clock.advance(Duration::from_millis(2));
            {
                let _v = obs.span_with("volume_search", &[Field::U64("volume", 7)]);
                clock.advance(Duration::from_millis(3));
            }
            clock.advance(Duration::from_millis(1));
        }
        let h = obs.snapshot().unwrap().histograms[names::QUERY_SECONDS].clone();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 0.006).abs() < 1e-12, "sum = {}", h.sum());
        let text = buf.text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        // Nesting: begin(query) begin(volume) end(volume) end(query),
        // with seq strictly increasing.
        assert!(lines[0].contains("\"seq\":1") && lines[0].contains("\"ev\":\"begin\""));
        assert!(lines[1].contains("\"seq\":2") && lines[1].contains("\"volume\":7"));
        assert!(lines[2].contains("\"seq\":3") && lines[2].contains("\"ev\":\"end\""));
        assert!(lines[2].contains("\"dur_us\":3000"), "{}", lines[2]);
        assert!(lines[3].contains("\"seq\":4") && lines[3].contains("\"span\":\"query_seconds\""));
        assert!(lines[3].contains("\"dur_us\":6000"), "{}", lines[3]);
    }

    #[test]
    fn span_closes_on_early_return() {
        let clock = Arc::new(ManualClock::new());
        let buf = SharedBuf::default();
        let obs = Obs::builder()
            .clock(clock.clone())
            .trace(Box::new(buf.clone()))
            .build();
        fn bails(obs: &Obs, clock: &ManualClock) -> Result<(), ()> {
            let _g = obs.span("attach");
            clock.advance(Duration::from_micros(10));
            Err(())
        }
        assert!(bails(&obs, &clock).is_err());
        let text = buf.text();
        assert!(text.contains("\"ev\":\"end\""), "{text}");
        assert!(text.contains("\"dur_us\":10"), "{text}");
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::armed();
        let c = obs.clone();
        c.count(names::WORKER_DISPATCH_TOTAL, 2);
        obs.count(names::WORKER_DISPATCH_TOTAL, 1);
        assert_eq!(obs.counter(names::WORKER_DISPATCH_TOTAL), 3);
    }
}
