//! Metrics registry: counters, gauges, and fixed-bucket latency
//! histograms behind one mutex, all `BTreeMap`-backed so exposition
//! order is deterministic (det-hash clean by construction).
//!
//! Instrument names are `&'static str` constants in [`names`] — call
//! sites and the `--metrics-json` schema check share one source of
//! truth.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// The documented instrument names. Adding an instrument means adding
/// it here *and* to [`names::ALL`] (the CI schema check walks `ALL`
/// against `--metrics-json` output).
pub mod names {
    /// Counter: queries fully executed (all modes).
    pub const QUERIES_TOTAL: &str = "queries_total";
    /// Counter: `-m 8` records emitted.
    pub const RECORDS_TOTAL: &str = "records_total";
    /// Counter: result-cache probes that found a usable entry.
    pub const CACHE_HITS_TOTAL: &str = "cache_hits_total";
    /// Counter: result-cache probes that missed.
    pub const CACHE_MISSES_TOTAL: &str = "cache_misses_total";
    /// Counter: result-cache entries inserted.
    pub const CACHE_INSERTIONS_TOTAL: &str = "cache_insertions_total";
    /// Counter: result-cache entries evicted by the memory bound.
    pub const CACHE_EVICTIONS_TOTAL: &str = "cache_evictions_total";
    /// Counter: result-cache entries dropped by volume invalidation.
    pub const CACHE_INVALIDATIONS_TOTAL: &str = "cache_invalidations_total";
    /// Gauge: result-cache entries currently resident.
    pub const CACHE_ENTRIES: &str = "cache_entries";
    /// Gauge: result-cache bytes currently charged.
    pub const CACHE_BYTES: &str = "cache_bytes";
    /// Counter: transient volume-I/O retries (bounded-backoff loop).
    pub const IO_RETRIES_TOTAL: &str = "io_retries_total";
    /// Counter: volumes quarantined for the session lifetime.
    pub const VOLUME_QUARANTINES_TOTAL: &str = "volume_quarantines_total";
    /// Counter: queries cut short by an expired deadline.
    pub const DEADLINE_EXPIRIES_TOTAL: &str = "deadline_expiries_total";
    /// Counter: per-volume work units claimed by search workers.
    pub const WORKER_DISPATCH_TOTAL: &str = "worker_dispatch_total";
    /// Counter: volume attaches performed (cold opens, not cache hits).
    pub const VOLUME_ATTACHES_TOTAL: &str = "volume_attaches_total";
    /// Histogram: end-to-end per-query latency, seconds.
    pub const QUERY_SECONDS: &str = "query_seconds";
    /// Histogram: per-volume attach time, seconds.
    pub const VOLUME_ATTACH_SECONDS: &str = "volume_attach_seconds";
    /// Histogram: per-volume search time, seconds.
    pub const VOLUME_SEARCH_SECONDS: &str = "volume_search_seconds";

    /// Every documented instrument, in exposition order.
    pub const ALL: &[&str] = &[
        QUERIES_TOTAL,
        RECORDS_TOTAL,
        CACHE_HITS_TOTAL,
        CACHE_MISSES_TOTAL,
        CACHE_INSERTIONS_TOTAL,
        CACHE_EVICTIONS_TOTAL,
        CACHE_INVALIDATIONS_TOTAL,
        CACHE_ENTRIES,
        CACHE_BYTES,
        IO_RETRIES_TOTAL,
        VOLUME_QUARANTINES_TOTAL,
        DEADLINE_EXPIRIES_TOTAL,
        WORKER_DISPATCH_TOTAL,
        VOLUME_ATTACHES_TOTAL,
        QUERY_SECONDS,
        VOLUME_ATTACH_SECONDS,
        VOLUME_SEARCH_SECONDS,
    ];
}

/// Histogram bucket upper bounds in seconds: powers of 4 from 1 µs to
/// ~67 s. Fourteen finite buckets resolve better than one order of
/// magnitude each across the microsecond-to-minute range a query can
/// span; observations above the last bound land in the implicit `+Inf`
/// bucket.
pub const BUCKET_BOUNDS: [f64; 14] = [
    1e-6, 4e-6, 1.6e-5, 6.4e-5, 2.56e-4, 1.024e-3, 4.096e-3, 1.6384e-2, 6.5536e-2, 2.62144e-1,
    1.048576, 4.194304, 16.777216, 67.108864,
];

/// A fixed-bucket latency histogram (cumulative exposition, like
/// Prometheus: bucket *i* counts observations `<= BUCKET_BOUNDS[i]`
/// once rendered; internally counts are per-bucket).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts; the last slot is the `+Inf`
    /// overflow bucket.
    buckets: [u64; BUCKET_BOUNDS.len() + 1],
    sum: f64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKET_BOUNDS.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }
}

impl Histogram {
    /// Record one observation (seconds). NaN and negative values land
    /// in the overflow bucket rather than corrupting a bound
    /// comparison.
    pub fn observe(&mut self, secs: f64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        self.sum += secs;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative counts per bound (Prometheus `le` semantics); the
    /// final entry is the `+Inf` count and equals [`Histogram::count`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Raw per-bucket counts (last slot is overflow).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Thread-safe instrument store. One mutex guards all three maps: the
/// armed path takes it per operation (micro-contended at worst — a
/// handful of updates per volume), the disarmed path never constructs
/// one.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of every instrument, detached from the
/// registry lock. Rendering and assertions work on this.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned metrics mutex must not take the search down with
        // it: instrumentation is off the result path by contract.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Add `n` to counter `name` (creating it at zero).
    pub fn count(&self, name: &'static str, n: u64) {
        *self.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Set counter `name` to an absolute value (for syncing from an
    /// authoritative source like `ResultCache::counters`).
    pub fn set_counter(&self, name: &'static str, v: u64) {
        self.lock().counters.insert(name, v);
    }

    /// Set gauge `name`.
    pub fn set_gauge(&self, name: &'static str, v: f64) {
        self.lock().gauges.insert(name, v);
    }

    /// Record `secs` into histogram `name` (creating it empty).
    pub fn observe_secs(&self, name: &'static str, secs: f64) {
        self.lock()
            .histograms
            .entry(name)
            .or_default()
            .observe(secs);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name` (zero if never touched).
    pub fn gauge(&self, name: &str) -> f64 {
        self.lock().gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Copy of histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Insert every documented instrument at zero. An armed handle
    /// calls this once, so an exported snapshot always carries the full
    /// documented schema — the CI check walks [`names::ALL`] against
    /// `--metrics-json` output, including instruments the run never
    /// touched.
    pub fn preregister(&self) {
        let mut g = self.lock();
        for &n in names::ALL {
            match n {
                names::CACHE_ENTRIES | names::CACHE_BYTES => {
                    g.gauges.entry(n).or_insert(0.0);
                }
                names::QUERY_SECONDS
                | names::VOLUME_ATTACH_SECONDS
                | names::VOLUME_SEARCH_SECONDS => {
                    g.histograms.entry(n).or_default();
                }
                _ => {
                    g.counters.entry(n).or_insert(0);
                }
            }
        }
    }

    /// Copy out every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        Snapshot {
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            histograms: g.histograms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::default();
        r.count(names::QUERIES_TOTAL, 1);
        r.count(names::QUERIES_TOTAL, 2);
        r.set_gauge(names::CACHE_BYTES, 512.0);
        assert_eq!(r.counter(names::QUERIES_TOTAL), 3);
        assert_eq!(r.gauge(names::CACHE_BYTES), 512.0);
        assert_eq!(r.counter("never_touched"), 0);
        r.set_counter(names::QUERIES_TOTAL, 10);
        assert_eq!(r.counter(names::QUERIES_TOTAL), 10);
    }

    #[test]
    fn histogram_bucketing_places_exact_values() {
        let mut h = Histogram::default();
        // Exactly on a bound: counts in that bucket (le semantics).
        h.observe(1e-6);
        // Between bounds: next bucket up.
        h.observe(2e-6);
        // Far past every bound: overflow bucket.
        h.observe(1e9);
        // NaN: overflow, not a panic or a misfiled bucket.
        h.observe(f64::NAN);
        let raw = h.bucket_counts();
        assert_eq!(raw[0], 1, "1e-6 lands in the first bucket");
        assert_eq!(raw[1], 1, "2e-6 lands in the second bucket");
        assert_eq!(raw[BUCKET_BOUNDS.len()], 2, "1e9 and NaN overflow");
        assert_eq!(h.count(), 4);
        let cum = h.cumulative();
        assert_eq!(*cum.last().unwrap(), h.count());
        assert!(
            cum.windows(2).all(|w| w[0] <= w[1]),
            "cumulative is monotone"
        );
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        assert!(BUCKET_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn preregister_covers_every_documented_name_exactly_once() {
        let r = Registry::default();
        r.preregister();
        let s = r.snapshot();
        for n in names::ALL {
            assert!(
                s.counters.contains_key(n)
                    || s.gauges.contains_key(n)
                    || s.histograms.contains_key(n),
                "{n} missing from a preregistered snapshot"
            );
        }
        assert_eq!(
            s.counters.len() + s.gauges.len() + s.histograms.len(),
            names::ALL.len()
        );
    }

    #[test]
    fn snapshot_is_deterministic_and_detached() {
        let r = Registry::default();
        r.count(names::CACHE_MISSES_TOTAL, 1);
        r.count(names::CACHE_HITS_TOTAL, 1);
        let s1 = r.snapshot();
        r.count(names::CACHE_HITS_TOTAL, 5);
        let s2 = r.snapshot();
        assert_eq!(s1.counters[names::CACHE_HITS_TOTAL], 1);
        assert_eq!(s2.counters[names::CACHE_HITS_TOTAL], 6);
        // BTreeMap: iteration order is lexicographic, run after run.
        let keys: Vec<_> = s2.counters.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
