//! The BLAST `-m 8` tabular record.
//!
//! Both programs in the paper emit this format (SCORIS-N natively, BLASTN
//! via `-m 8`), and the sensitivity analysis works entirely from it: "This
//! format provides the main characteristics of an alignment on a single
//! text line such as its coordinates, its identity percentage, its length,
//! its score, its expected value, etc."
//!
//! Field order (tab-separated): query id, subject id, % identity,
//! alignment length, mismatches, gap openings, q.start, q.end, s.start,
//! s.end, e-value, bit score. Coordinates are 1-based inclusive.

use std::fmt;

/// One `-m 8` alignment record.
#[derive(Debug, Clone, PartialEq)]
pub struct M8Record {
    /// Query sequence identifier.
    pub qid: String,
    /// Subject sequence identifier.
    pub sid: String,
    /// Percent identity over alignment columns.
    pub pident: f64,
    /// Alignment length in columns.
    pub length: usize,
    /// Number of mismatched columns.
    pub mismatch: usize,
    /// Number of gap openings.
    pub gapopen: usize,
    /// Query start (1-based, inclusive).
    pub qstart: usize,
    /// Query end (1-based, inclusive).
    pub qend: usize,
    /// Subject start (1-based, inclusive).
    pub sstart: usize,
    /// Subject end (1-based, inclusive).
    pub send: usize,
    /// Expected value.
    pub evalue: f64,
    /// Bit score.
    pub bitscore: f64,
}

impl M8Record {
    /// Query span length (inclusive coordinates).
    pub fn qspan(&self) -> usize {
        self.qend.saturating_sub(self.qstart) + 1
    }

    /// Subject span length (inclusive coordinates).
    pub fn sspan(&self) -> usize {
        self.send.saturating_sub(self.sstart) + 1
    }

    /// Parses one `-m 8` line.
    pub fn parse(line: &str) -> Option<M8Record> {
        let mut it = line.trim_end().split('\t');
        let qid = it.next()?.to_string();
        let sid = it.next()?.to_string();
        let pident = it.next()?.parse().ok()?;
        let length = it.next()?.parse().ok()?;
        let mismatch = it.next()?.parse().ok()?;
        let gapopen = it.next()?.parse().ok()?;
        let qstart = it.next()?.parse().ok()?;
        let qend = it.next()?.parse().ok()?;
        let sstart = it.next()?.parse().ok()?;
        let send = it.next()?.parse().ok()?;
        let evalue = it.next()?.parse().ok()?;
        let bitscore = it.next()?.parse().ok()?;
        Some(M8Record {
            qid,
            sid,
            pident,
            length,
            mismatch,
            gapopen,
            qstart,
            qend,
            sstart,
            send,
            evalue,
            bitscore,
        })
    }

    /// Parses a whole `-m 8` file body, skipping comment lines (`#`).
    pub fn parse_many(text: &str) -> Vec<M8Record> {
        text.lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(M8Record::parse)
            .collect()
    }
}

impl fmt::Display for M8Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\t{}\t{:.2}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2e}\t{:.1}",
            self.qid,
            self.sid,
            self.pident,
            self.length,
            self.mismatch,
            self.gapopen,
            self.qstart,
            self.qend,
            self.sstart,
            self.send,
            self.evalue,
            self.bitscore
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> M8Record {
        M8Record {
            qid: "q1".into(),
            sid: "s7".into(),
            pident: 97.5,
            length: 200,
            mismatch: 5,
            gapopen: 1,
            qstart: 11,
            qend: 210,
            sstart: 1001,
            send: 1198,
            evalue: 1.5e-40,
            bitscore: 180.4,
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let r = sample();
        let line = r.to_string();
        let p = M8Record::parse(&line).unwrap();
        assert_eq!(p.qid, r.qid);
        assert_eq!(p.sid, r.sid);
        assert_eq!(p.length, r.length);
        assert_eq!(p.qstart, r.qstart);
        assert_eq!(p.send, r.send);
        assert!((p.pident - r.pident).abs() < 0.01);
        assert!((p.evalue - r.evalue).abs() / r.evalue < 0.01);
    }

    #[test]
    fn spans_are_inclusive() {
        let r = sample();
        assert_eq!(r.qspan(), 200);
        assert_eq!(r.sspan(), 198);
    }

    #[test]
    fn parse_rejects_short_lines() {
        assert!(M8Record::parse("a\tb\t90.0\t100").is_none());
    }

    #[test]
    fn parse_many_skips_comments_and_blanks() {
        let r = sample();
        let text = format!("# header\n{r}\n\n{r}\n");
        let recs = M8Record::parse_many(&text);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn tab_separated_with_twelve_fields() {
        let line = sample().to_string();
        assert_eq!(line.split('\t').count(), 12);
    }
}
