//! The BLAST `-m 8` tabular record.
//!
//! Both programs in the paper emit this format (SCORIS-N natively, BLASTN
//! via `-m 8`), and the sensitivity analysis works entirely from it: "This
//! format provides the main characteristics of an alignment on a single
//! text line such as its coordinates, its identity percentage, its length,
//! its score, its expected value, etc."
//!
//! Field order (tab-separated): query id, subject id, % identity,
//! alignment length, mismatches, gap openings, q.start, q.end, s.start,
//! s.end, e-value, bit score. Coordinates are 1-based inclusive.
//!
//! Two pieces of shared machinery live next to the record type so every
//! producer (the ORIS engine, the BLAST baseline, streaming sinks) agrees
//! on them:
//!
//! * [`M8Record::total_order`] — the canonical record ordering, a *strict
//!   total order* (two records compare `Equal` only when every field is
//!   equal, i.e. their output lines are identical), so sorted output is
//!   byte-identical regardless of producer, thread count or batch order
//!   even under tied e-values;
//! * [`M8Writer`] — incremental `-m 8` emission over any `io::Write`,
//!   used by the streaming sinks to put records on the wire as each query
//!   finishes instead of materializing whole result sets.

use std::cmp::Ordering;
use std::fmt;
use std::io::{self, Write};

/// One `-m 8` alignment record.
#[derive(Debug, Clone, PartialEq)]
pub struct M8Record {
    /// Query sequence identifier.
    pub qid: String,
    /// Subject sequence identifier.
    pub sid: String,
    /// Percent identity over alignment columns.
    pub pident: f64,
    /// Alignment length in columns.
    pub length: usize,
    /// Number of mismatched columns.
    pub mismatch: usize,
    /// Number of gap openings.
    pub gapopen: usize,
    /// Query start (1-based, inclusive).
    pub qstart: usize,
    /// Query end (1-based, inclusive).
    pub qend: usize,
    /// Subject start (1-based, inclusive).
    pub sstart: usize,
    /// Subject end (1-based, inclusive).
    pub send: usize,
    /// Expected value.
    pub evalue: f64,
    /// Bit score.
    pub bitscore: f64,
}

impl M8Record {
    /// Query span length (inclusive coordinates).
    pub fn qspan(&self) -> usize {
        self.qend.saturating_sub(self.qstart) + 1
    }

    /// Subject span length (inclusive coordinates).
    pub fn sspan(&self) -> usize {
        self.send.saturating_sub(self.sstart) + 1
    }

    /// Parses one `-m 8` line.
    pub fn parse(line: &str) -> Option<M8Record> {
        let mut it = line.trim_end().split('\t');
        let qid = it.next()?.to_string();
        let sid = it.next()?.to_string();
        let pident = it.next()?.parse().ok()?;
        let length = it.next()?.parse().ok()?;
        let mismatch = it.next()?.parse().ok()?;
        let gapopen = it.next()?.parse().ok()?;
        let qstart = it.next()?.parse().ok()?;
        let qend = it.next()?.parse().ok()?;
        let sstart = it.next()?.parse().ok()?;
        let send = it.next()?.parse().ok()?;
        let evalue = it.next()?.parse().ok()?;
        let bitscore = it.next()?.parse().ok()?;
        Some(M8Record {
            qid,
            sid,
            pident,
            length,
            mismatch,
            gapopen,
            qstart,
            qend,
            sstart,
            send,
            evalue,
            bitscore,
        })
    }

    /// Parses a whole `-m 8` file body, skipping comment lines (`#`).
    pub fn parse_many(text: &str) -> Vec<M8Record> {
        text.lines()
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(M8Record::parse)
            .collect()
    }

    /// The canonical record ordering: e-value ascending, bit score
    /// descending, then query/subject ids, coordinates, and finally the
    /// remaining column-statistics fields.
    ///
    /// This is a **strict total order**: `Equal` is returned only when
    /// every field compares equal — i.e. when the two output lines are
    /// identical — so a sort under it has exactly one fixed point. That is
    /// what makes streamed and collected output byte-identical regardless
    /// of thread count or batch order even when e-values tie (duplicate
    /// sequences, symmetric hits). Float fields use `total_cmp`, so NaN
    /// e-values (degenerate Karlin–Altschul parameters) sort
    /// deterministically last instead of poisoning the comparator.
    pub fn total_order(&self, other: &M8Record) -> Ordering {
        self.evalue
            .total_cmp(&other.evalue)
            .then_with(|| other.bitscore.total_cmp(&self.bitscore))
            .then_with(|| self.qid.cmp(&other.qid))
            .then_with(|| self.sid.cmp(&other.sid))
            .then_with(|| self.qstart.cmp(&other.qstart))
            .then_with(|| self.qend.cmp(&other.qend))
            .then_with(|| self.sstart.cmp(&other.sstart))
            .then_with(|| self.send.cmp(&other.send))
            .then_with(|| self.length.cmp(&other.length))
            .then_with(|| self.mismatch.cmp(&other.mismatch))
            .then_with(|| self.gapopen.cmp(&other.gapopen))
            .then_with(|| self.pident.total_cmp(&other.pident))
    }
}

/// Incremental `-m 8` emission: writes records one line at a time to any
/// [`io::Write`], counting what went out. The streaming result sinks
/// (`oris-core`'s `StreamWriter`) put each query's sorted records on the
/// wire through this as soon as the query finishes, so peak memory tracks
/// the largest single query instead of the whole run.
#[derive(Debug)]
pub struct M8Writer<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> M8Writer<W> {
    /// Wraps a writer. Callers that care about syscall volume should hand
    /// in something buffered; the writer adds no buffering of its own so
    /// `flush` semantics stay the caller's.
    pub fn new(inner: W) -> M8Writer<W> {
        M8Writer { inner, written: 0 }
    }

    /// Writes one record as a single `-m 8` line.
    pub fn write_record(&mut self, rec: &M8Record) -> io::Result<()> {
        writeln!(self.inner, "{rec}")?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Unwraps the underlying writer (records already written stay
    /// wherever the writer put them).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl fmt::Display for M8Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}\t{}\t{:.2}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2e}\t{:.1}",
            self.qid,
            self.sid,
            self.pident,
            self.length,
            self.mismatch,
            self.gapopen,
            self.qstart,
            self.qend,
            self.sstart,
            self.send,
            self.evalue,
            self.bitscore
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> M8Record {
        M8Record {
            qid: "q1".into(),
            sid: "s7".into(),
            pident: 97.5,
            length: 200,
            mismatch: 5,
            gapopen: 1,
            qstart: 11,
            qend: 210,
            sstart: 1001,
            send: 1198,
            evalue: 1.5e-40,
            bitscore: 180.4,
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let r = sample();
        let line = r.to_string();
        let p = M8Record::parse(&line).unwrap();
        assert_eq!(p.qid, r.qid);
        assert_eq!(p.sid, r.sid);
        assert_eq!(p.length, r.length);
        assert_eq!(p.qstart, r.qstart);
        assert_eq!(p.send, r.send);
        assert!((p.pident - r.pident).abs() < 0.01);
        assert!((p.evalue - r.evalue).abs() / r.evalue < 0.01);
    }

    #[test]
    fn spans_are_inclusive() {
        let r = sample();
        assert_eq!(r.qspan(), 200);
        assert_eq!(r.sspan(), 198);
    }

    #[test]
    fn parse_rejects_short_lines() {
        assert!(M8Record::parse("a\tb\t90.0\t100").is_none());
    }

    #[test]
    fn parse_many_skips_comments_and_blanks() {
        let r = sample();
        let text = format!("# header\n{r}\n\n{r}\n");
        let recs = M8Record::parse_many(&text);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn tab_separated_with_twelve_fields() {
        let line = sample().to_string();
        assert_eq!(line.split('\t').count(), 12);
    }

    #[test]
    fn total_order_breaks_evalue_ties_deterministically() {
        // Same e-value, different score: higher bit score first. Then ids,
        // then coordinates. Sorting any permutation lands the same order.
        let mut a = sample();
        let mut b = sample();
        b.bitscore = 200.0; // stronger, same e-value
        let mut c = sample();
        c.qid = "q0".into(); // earlier id
        let mut d = sample();
        d.sstart = 900; // earlier coordinate
        let want = vec![b.clone(), c.clone(), d.clone(), a.clone()];
        let mut perm = vec![a.clone(), b.clone(), c.clone(), d.clone()];
        perm.sort_by(|x, y| x.total_order(y));
        assert_eq!(perm, want);
        perm.reverse();
        perm.sort_by(|x, y| x.total_order(y));
        assert_eq!(perm, want);
        // Strictness: Equal only for identical records.
        assert_eq!(a.total_order(&sample()), std::cmp::Ordering::Equal);
        a.gapopen += 1;
        assert_ne!(a.total_order(&sample()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn total_order_places_nan_last() {
        let mut nan = sample();
        nan.evalue = f64::NAN;
        let finite = sample();
        assert_eq!(finite.total_order(&nan), std::cmp::Ordering::Less);
        assert_eq!(nan.total_order(&finite), std::cmp::Ordering::Greater);
    }

    #[test]
    fn writer_matches_display_and_counts() {
        let r = sample();
        let mut w = M8Writer::new(Vec::new());
        w.write_record(&r).unwrap();
        w.write_record(&r).unwrap();
        assert_eq!(w.records_written(), 2);
        let bytes = w.into_inner();
        assert_eq!(String::from_utf8(bytes).unwrap(), format!("{r}\n{r}\n"));
    }
}
