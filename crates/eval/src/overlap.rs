//! The 80 %-overlap equivalence metric (paper section 3.4).
//!
//! "We consider that two alignments are equivalent if they overlap of more
//! than 80 %." We interpret overlap symmetrically on both coordinate axes:
//! the intersection of the query spans and of the subject spans must each
//! cover more than the threshold fraction of the *shorter* of the two
//! spans, and the sequence identifiers must agree. Borderline alignments
//! reported with slightly shifted ends (the common case between two
//! heuristic engines) then still count as the same alignment.

use crate::m8::M8Record;

/// Fraction of the shorter interval covered by the intersection of
/// `[a1, a2]` and `[b1, b2]` (1-based inclusive).
pub fn interval_overlap_fraction(a1: usize, a2: usize, b1: usize, b2: usize) -> f64 {
    let lo = a1.max(b1);
    let hi = a2.min(b2);
    if hi < lo {
        return 0.0;
    }
    let inter = (hi - lo + 1) as f64;
    let len_a = (a2.saturating_sub(a1) + 1) as f64;
    let len_b = (b2.saturating_sub(b1) + 1) as f64;
    inter / len_a.min(len_b)
}

/// Overlap fraction between two records: the minimum of the query-axis and
/// subject-axis overlaps (0 when ids differ).
pub fn overlap_fraction(a: &M8Record, b: &M8Record) -> f64 {
    if a.qid != b.qid || a.sid != b.sid {
        return 0.0;
    }
    let q = interval_overlap_fraction(a.qstart, a.qend, b.qstart, b.qend);
    let s = interval_overlap_fraction(a.sstart, a.send, b.sstart, b.send);
    q.min(s)
}

/// Whether two records are equivalent at the given threshold (the paper
/// uses 0.8).
pub fn equivalent(a: &M8Record, b: &M8Record, min_fraction: f64) -> bool {
    overlap_fraction(a, b) > min_fraction
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(qid: &str, sid: &str, q: (usize, usize), s: (usize, usize)) -> M8Record {
        M8Record {
            qid: qid.into(),
            sid: sid.into(),
            pident: 95.0,
            length: q.1 - q.0 + 1,
            mismatch: 0,
            gapopen: 0,
            qstart: q.0,
            qend: q.1,
            sstart: s.0,
            send: s.1,
            evalue: 1e-10,
            bitscore: 50.0,
        }
    }

    #[test]
    fn identical_records_are_equivalent() {
        let a = rec("q", "s", (10, 110), (200, 300));
        assert!(equivalent(&a, &a.clone(), 0.8));
        assert!((overlap_fraction(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_ends_still_equivalent() {
        let a = rec("q", "s", (10, 110), (200, 300));
        let b = rec("q", "s", (15, 115), (205, 305));
        assert!(equivalent(&a, &b, 0.8));
    }

    #[test]
    fn different_sequences_never_equivalent() {
        let a = rec("q", "s", (10, 110), (200, 300));
        let b = rec("q2", "s", (10, 110), (200, 300));
        assert_eq!(overlap_fraction(&a, &b), 0.0);
        let c = rec("q", "s2", (10, 110), (200, 300));
        assert_eq!(overlap_fraction(&a, &c), 0.0);
    }

    #[test]
    fn disjoint_intervals_not_equivalent() {
        let a = rec("q", "s", (10, 50), (200, 240));
        let b = rec("q", "s", (60, 100), (250, 290));
        assert!(!equivalent(&a, &b, 0.8));
    }

    #[test]
    fn one_axis_overlap_is_not_enough() {
        let a = rec("q", "s", (10, 110), (200, 300));
        // same query span, far-away subject span (repeat copy elsewhere)
        let b = rec("q", "s", (10, 110), (900, 1000));
        assert!(!equivalent(&a, &b, 0.8));
    }

    #[test]
    fn short_inside_long_counts_via_shorter() {
        // 30-col alignment nested in a 300-col one: overlap fraction is
        // 1.0 relative to the shorter → equivalent. This matches the
        // paper's treatment of contained borderline alignments.
        let a = rec("q", "s", (100, 129), (500, 529));
        let b = rec("q", "s", (1, 300), (401, 700));
        assert!(equivalent(&a, &b, 0.8));
    }

    #[test]
    fn threshold_boundary_is_strict() {
        let a = rec("q", "s", (1, 100), (1, 100));
        let b = rec("q", "s", (21, 120), (21, 120)); // exactly 80/100
        assert!(!equivalent(&a, &b, 0.8), "strictly-more-than semantics");
        assert!(equivalent(&a, &b, 0.79));
    }

    #[test]
    fn interval_math_edge_cases() {
        assert_eq!(interval_overlap_fraction(1, 10, 11, 20), 0.0);
        assert_eq!(interval_overlap_fraction(1, 10, 10, 20), 0.1);
        assert_eq!(interval_overlap_fraction(5, 5, 5, 5), 1.0);
    }
}
