//! Wall-clock measurement and speed-up rows (paper section 3.3).
//!
//! The paper measures `time` user seconds of whole program runs and
//! reports, per bank pair, the search space (product of bank sizes in
//! Mbp), both execution times, and the speed-up. [`SpeedupRow`] is that
//! table row; [`median_secs`] gives a robust single number per
//! configuration (the paper ran on a quiet machine; medians serve the
//! same purpose here).

use oris_obs::Stopwatch;

/// Times one invocation of `f` in seconds, returning the result too.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let sw = Stopwatch::start();
    let out = f();
    (sw.elapsed_secs(), out)
}

/// Runs `f` `runs` times and returns the median wall-clock seconds.
///
/// # Panics
/// Panics if `runs == 0`.
pub fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs > 0);
    let times: Vec<f64> = (0..runs)
        .map(|_| {
            let sw = Stopwatch::start();
            f();
            sw.elapsed_secs()
        })
        .collect();
    median_of(times)
}

/// Median under `f64::total_cmp`, so a stray NaN (a zero-duration
/// division upstream, a corrupted sample) sorts to the high end instead
/// of panicking the whole measurement run.
///
/// # Panics
/// Panics if `times` is empty.
pub fn median_of(mut times: Vec<f64>) -> f64 {
    assert!(!times.is_empty());
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// One row of a section-3.3 speed-up table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRow {
    /// Bank pair label, e.g. "EST1 vs EST2".
    pub banks: String,
    /// Search space: product of bank sizes in Mbp² (the paper's x-axis).
    pub search_space: f64,
    /// SCORIS-N (ORIS engine) seconds.
    pub scoris_secs: f64,
    /// BLASTN-like baseline seconds.
    pub blast_secs: f64,
}

impl SpeedupRow {
    /// Speed-up of the ORIS engine over the baseline.
    pub fn speedup(&self) -> f64 {
        if self.scoris_secs > 0.0 {
            self.blast_secs / self.scoris_secs
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_secs_returns_value() {
        let (secs, v) = time_secs(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn median_of_odd_runs() {
        let mut n = 0;
        let m = median_secs(3, || {
            n += 1;
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert_eq!(n, 3);
        assert!(m >= 0.001);
    }

    #[test]
    fn median_of_survives_nan_samples() {
        // PR 2's e-value sort panicked on NaN via `partial_cmp`; the
        // same failure shape existed here. total_cmp sorts NaN above
        // every real sample, so the median of mostly-real data stays a
        // real number and nothing panics.
        let m = median_of(vec![2.0, f64::NAN, 1.0]);
        assert_eq!(m, 2.0);
        assert!(median_of(vec![f64::NAN]).is_nan());
    }

    #[test]
    fn speedup_math() {
        let row = SpeedupRow {
            banks: "EST1 vs EST2".into(),
            search_space: 42.8,
            scoris_secs: 2.0,
            blast_secs: 20.0,
        };
        assert!((row.speedup() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_is_infinite_speedup() {
        let row = SpeedupRow {
            banks: "x".into(),
            search_space: 1.0,
            scoris_secs: 0.0,
            blast_secs: 1.0,
        };
        assert!(row.speedup().is_infinite());
    }
}
