//! Plain-text table rendering for the bench binaries.
//!
//! Every experiment binary prints its results in the row layout of the
//! corresponding paper table, so EXPERIMENTS.md can put paper values and
//! measured values side by side. Columns are right-aligned except the
//! first (the row label).

use std::fmt::Write as _;

/// A simple fixed-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[0]);
                } else {
                    let _ = write!(out, "  {:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["banks", "speed up"]);
        t.row(vec!["EST1 vs EST2", "10.0"]);
        t.row(vec!["EST5 vs EST7", "28.8"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("banks"));
        assert!(lines[2].starts_with("EST1 vs EST2"));
        // numeric column right-aligned to same end offset
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
