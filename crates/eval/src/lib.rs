//! # oris-eval — the paper's evaluation methodology (section 3)
//!
//! Everything section 3 of the paper measures lives here, engine-agnostic:
//!
//! * [`M8Record`]: the BLAST `-m 8` tabular alignment record both SCORIS-N
//!   and BLASTN emit — twelve tab-separated fields, 1-based inclusive
//!   coordinates;
//! * [`overlap`]: the sensitivity metric — "two alignments are equivalent
//!   if they overlap of more than 80 %";
//! * [`sensitivity`]: the `SCmiss` / `BLmiss` / `SCORISmiss` / `BLASTmiss`
//!   bookkeeping of section 3.4;
//! * [`space`]: the effective search-space conventions e-values are
//!   computed under — the paper's per-subject-sequence `n`, or a fixed
//!   database-wide residue total for sharded-database searches;
//! * [`timing`]: wall-clock measurement and the speed-up rows of the
//!   section 3.3 tables;
//! * [`tables`]: plain-text table rendering so every bench binary prints
//!   rows in the paper's layout.
//!
//! The engine crates (`oris-core`, `oris-blast`) depend on this crate for
//! the record type; this crate depends on nothing, so the evaluation
//! cannot accidentally favour either engine.

pub mod m8;
pub mod overlap;
pub mod sensitivity;
pub mod space;
pub mod tables;
pub mod timing;

pub use m8::{M8Record, M8Writer};
pub use overlap::{equivalent, overlap_fraction};
pub use sensitivity::{compare_outputs, MissReport};
pub use space::SubjectSpace;
pub use tables::Table;
pub use timing::{median_secs, time_secs, SpeedupRow};
