//! Effective search-space parameterization for e-values.
//!
//! The Karlin–Altschul expectation `E = K·m·n·e^{−λS}` needs a subject-
//! side length `n`, and the right `n` depends on what the caller is
//! searching:
//!
//! * **One bank, SCORIS-N convention** (paper section 3.1): `n` is the
//!   length of the *subject sequence* the alignment was found in, not
//!   the whole of bank 2. This is [`SubjectSpace::PerSequence`], the
//!   default — what the prototype computed and what all single-bank
//!   comparisons report.
//! * **A database**: when the subject is a sharded collection searched
//!   volume by volume, a per-sequence (or per-volume!) `n` would make an
//!   alignment's significance depend on how `makedb` happened to shard
//!   the input. [`SubjectSpace::Database`] fixes `n` to the total
//!   residue count of the **whole collection** — read once from the
//!   database manifest — so every volume computes e-values over the same
//!   database-wide effective search space and a multi-volume search
//!   reports exactly the numbers a single concatenated bank would under
//!   the same convention. (BLAST's `-z`/`dbsize` override is this same
//!   idea.)
//!
//! This type lives in `oris-eval` — next to [`crate::M8Record`], below
//! both engines — so the convention is a shared, engine-agnostic
//! parameter rather than a property of one pipeline's plumbing.

/// Subject-side effective search-space policy for e-value computation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SubjectSpace {
    /// `n` = the length of the subject sequence the alignment lies in
    /// (the SCORIS-N convention of paper section 3.1).
    #[default]
    PerSequence,
    /// `n` = this fixed residue total for every alignment — the whole
    /// database's size from its manifest, or an explicit `--dbsize`
    /// override. Volume- and shard-invariant by construction.
    Database(u64),
}

impl SubjectSpace {
    /// The subject-side length `n` for an alignment found in a subject
    /// sequence of `sequence_len` residues. Returned as `u64` (callers
    /// feed it into an `f64` search space): a >4 Gbp database total must
    /// not truncate on 32-bit targets.
    #[inline]
    pub fn subject_n(&self, sequence_len: usize) -> u64 {
        match self {
            SubjectSpace::PerSequence => sequence_len as u64,
            SubjectSpace::Database(total) => *total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_sequence_uses_the_record_length() {
        assert_eq!(SubjectSpace::PerSequence.subject_n(812), 812);
    }

    #[test]
    fn database_ignores_the_record_length() {
        let db = SubjectSpace::Database(5_000_000);
        assert_eq!(db.subject_n(812), 5_000_000);
        assert_eq!(db.subject_n(1), 5_000_000);
    }

    #[test]
    fn default_is_the_paper_convention() {
        assert_eq!(SubjectSpace::default(), SubjectSpace::PerSequence);
    }
}
