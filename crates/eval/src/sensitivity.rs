//! The miss-rate bookkeeping of paper section 3.4.
//!
//! Given the outputs of two programs A and B over the same bank pair:
//!
//! * `a_total`, `b_total` — alignments each reported;
//! * `a_miss` — alignments of **B** with no equivalent in A (what A
//!   missed); `b_miss` symmetrical;
//! * `a_miss_pct = 100 · a_miss / b_total` — the paper's
//!   `SCORISmiss = SCmiss / BLtotal × 100` with A = SCORIS-N, B = BLASTN;
//!   `b_miss_pct` is `BLASTmiss`.
//!
//! Matching uses the 80 %-overlap equivalence of [`crate::overlap`], with
//! records bucketed by `(qid, sid)` and sorted by query start so each
//! record only scans its overlapping neighbourhood.

use std::collections::HashMap;

use crate::m8::M8Record;
use crate::overlap::equivalent;

/// Result of comparing two programs' outputs on one bank pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissReport {
    /// Alignments reported by program A.
    pub a_total: usize,
    /// Alignments reported by program B.
    pub b_total: usize,
    /// B-alignments with no equivalent in A (A's misses).
    pub a_miss: usize,
    /// A-alignments with no equivalent in B (B's misses).
    pub b_miss: usize,
}

impl MissReport {
    /// `100 · a_miss / b_total` — the paper's `SCORISmiss` when A is
    /// SCORIS-N and B is BLASTN. `None` when B reported nothing (the
    /// paper prints "-").
    pub fn a_miss_pct(&self) -> Option<f64> {
        (self.b_total > 0).then(|| 100.0 * self.a_miss as f64 / self.b_total as f64)
    }

    /// `100 · b_miss / a_total` — the paper's `BLASTmiss`.
    pub fn b_miss_pct(&self) -> Option<f64> {
        (self.a_total > 0).then(|| 100.0 * self.b_miss as f64 / self.a_total as f64)
    }
}

/// Index of records bucketed by sequence pair, sorted by query start.
struct PairIndex<'a> {
    // oris-lint: allow(det-hash) — keyed lookup only; verdicts follow the probe record order, not map order
    buckets: HashMap<(&'a str, &'a str), Vec<&'a M8Record>>,
}

impl<'a> PairIndex<'a> {
    fn build(records: &'a [M8Record]) -> PairIndex<'a> {
        // oris-lint: allow(det-hash) — keyed lookup only; verdicts follow the probe record order, not map order
        let mut buckets: HashMap<(&str, &str), Vec<&M8Record>> = HashMap::new();
        for r in records {
            buckets
                .entry((r.qid.as_str(), r.sid.as_str()))
                .or_default()
                .push(r);
        }
        for v in buckets.values_mut() {
            v.sort_by_key(|r| r.qstart);
        }
        PairIndex { buckets }
    }

    /// Whether any indexed record is equivalent to `probe`.
    fn has_equivalent(&self, probe: &M8Record, min_fraction: f64) -> bool {
        let Some(bucket) = self.buckets.get(&(probe.qid.as_str(), probe.sid.as_str())) else {
            return false;
        };
        // Records are sorted by qstart; only those with qstart ≤ probe.qend
        // can overlap, and we can stop early scanning from the partition
        // point backwards once qend < probe.qstart would require unsorted
        // qends — so we scan the candidate prefix linearly but bail on the
        // common case via the partition point.
        let hi = bucket.partition_point(|r| r.qstart <= probe.qend);
        bucket[..hi]
            .iter()
            .any(|r| equivalent(r, probe, min_fraction))
    }
}

/// Compares the outputs of programs A and B at the given overlap
/// threshold (the paper uses 0.8).
pub fn compare_outputs(a: &[M8Record], b: &[M8Record], min_fraction: f64) -> MissReport {
    let ia = PairIndex::build(a);
    let ib = PairIndex::build(b);
    let a_miss = b
        .iter()
        .filter(|r| !ia.has_equivalent(r, min_fraction))
        .count();
    let b_miss = a
        .iter()
        .filter(|r| !ib.has_equivalent(r, min_fraction))
        .count();
    MissReport {
        a_total: a.len(),
        b_total: b.len(),
        a_miss,
        b_miss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(qid: &str, sid: &str, q: (usize, usize), s: (usize, usize)) -> M8Record {
        M8Record {
            qid: qid.into(),
            sid: sid.into(),
            pident: 95.0,
            length: q.1 - q.0 + 1,
            mismatch: 0,
            gapopen: 0,
            qstart: q.0,
            qend: q.1,
            sstart: s.0,
            send: s.1,
            evalue: 1e-10,
            bitscore: 50.0,
        }
    }

    #[test]
    fn identical_outputs_have_no_misses() {
        let recs = vec![
            rec("q1", "s1", (1, 100), (1, 100)),
            rec("q2", "s1", (5, 80), (10, 85)),
        ];
        let rep = compare_outputs(&recs, &recs.clone(), 0.8);
        assert_eq!(rep.a_miss, 0);
        assert_eq!(rep.b_miss, 0);
        assert_eq!(rep.a_miss_pct(), Some(0.0));
    }

    #[test]
    fn one_sided_miss_counted() {
        let a = vec![rec("q1", "s1", (1, 100), (1, 100))];
        let b = vec![
            rec("q1", "s1", (1, 100), (1, 100)),
            rec("q9", "s1", (1, 50), (1, 50)),
        ];
        let rep = compare_outputs(&a, &b, 0.8);
        assert_eq!(rep.a_miss, 1); // A missed q9
        assert_eq!(rep.b_miss, 0);
        assert_eq!(rep.a_miss_pct(), Some(50.0));
        assert_eq!(rep.b_miss_pct(), Some(0.0));
    }

    #[test]
    fn shifted_alignments_match() {
        let a = vec![rec("q1", "s1", (1, 100), (1, 100))];
        let b = vec![rec("q1", "s1", (4, 103), (4, 103))];
        let rep = compare_outputs(&a, &b, 0.8);
        assert_eq!(rep.a_miss, 0);
        assert_eq!(rep.b_miss, 0);
    }

    #[test]
    fn empty_b_gives_none_pct() {
        let a = vec![rec("q1", "s1", (1, 100), (1, 100))];
        let rep = compare_outputs(&a, &[], 0.8);
        assert_eq!(rep.a_miss_pct(), None);
        assert_eq!(rep.b_miss_pct(), Some(100.0));
    }

    #[test]
    fn repeat_copies_on_subject_are_distinct() {
        // Same query region aligning to two distant subject positions =
        // two distinct alignments; a program reporting only one misses one.
        let a = vec![rec("q1", "s1", (1, 100), (1, 100))];
        let b = vec![
            rec("q1", "s1", (1, 100), (1, 100)),
            rec("q1", "s1", (1, 100), (5001, 5100)),
        ];
        let rep = compare_outputs(&a, &b, 0.8);
        assert_eq!(rep.a_miss, 1);
    }

    #[test]
    fn bucketing_respects_sequence_ids() {
        let a = vec![rec("q1", "s1", (1, 100), (1, 100))];
        let b = vec![rec("q1", "s2", (1, 100), (1, 100))];
        let rep = compare_outputs(&a, &b, 0.8);
        assert_eq!(rep.a_miss, 1);
        assert_eq!(rep.b_miss, 1);
    }

    #[test]
    fn larger_mixed_case() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        // 50 shared, 5 A-only, 3 B-only
        for i in 0..50 {
            let q = (i * 200 + 1, i * 200 + 150);
            a.push(rec("q", "s", q, q));
            b.push(rec("q", "s", (q.0 + 3, q.1 + 3), (q.0 + 3, q.1 + 3)));
        }
        for i in 0..5 {
            let q = (20_000 + i * 300, 20_100 + i * 300);
            a.push(rec("q", "s", q, q));
        }
        for i in 0..3 {
            let q = (40_000 + i * 300, 40_100 + i * 300);
            b.push(rec("q", "s", q, q));
        }
        let rep = compare_outputs(&a, &b, 0.8);
        assert_eq!(rep.a_total, 55);
        assert_eq!(rep.b_total, 53);
        assert_eq!(rep.a_miss, 3);
        assert_eq!(rep.b_miss, 5);
    }
}
