//! Windowed Shannon-entropy masker — the "SCORIS-N side" filter.
//!
//! The paper states SCORIS-N's low-complexity filter differs from BLASTN's
//! dust (\[14\]) and charges part of the sensitivity gap to that difference.
//! We model SCORIS-N's filter as a windowed mononucleotide-entropy test:
//! a window is low-complexity when the Shannon entropy of its base
//! composition falls below a threshold (in bits; a uniform window has 2
//! bits, a homopolymer 0).
//!
//! Entropy and triplet scores disagree on the margins — e.g. a perfect
//! `ACGTACGT…` repeat has maximal mononucleotide entropy (2 bits, never
//! masked here) but an extreme triplet score (always masked by DUST) —
//! which is precisely the kind of discrepancy the paper describes.

use oris_seqio::alphabet::is_nucleotide;
use oris_seqio::Bank;

use oris_index::MaskSet;

/// Windowed Shannon-entropy low-complexity masker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntropyMasker {
    /// Window length in nucleotides.
    pub window: usize,
    /// Mask windows with entropy strictly below this many bits.
    pub min_bits: f64,
}

impl Default for EntropyMasker {
    fn default() -> Self {
        // A 20-nt window catches the short poly-A tails and
        // microsatellites that dominate spurious EST hits (a longer
        // window dilutes a short tail below the threshold), while random
        // 20-mers sit near 1.9 bits — comfortably above 1.25.
        EntropyMasker {
            window: 20,
            min_bits: 1.25,
        }
    }
}

impl EntropyMasker {
    /// Creates a masker with explicit parameters.
    pub fn new(window: usize, min_bits: f64) -> EntropyMasker {
        assert!(window >= 4);
        assert!((0.0..=2.0).contains(&min_bits));
        EntropyMasker { window, min_bits }
    }

    /// Shannon entropy (bits) of base counts.
    fn entropy_bits(counts: &[u32; 4], total: u32) -> f64 {
        if total == 0 {
            return 2.0;
        }
        let mut h = 0.0f64;
        for &c in counts {
            if c > 0 {
                let p = c as f64 / total as f64;
                h -= p * p.log2();
            }
        }
        h
    }

    /// Masks low-entropy regions of `bank` (global positions).
    pub fn mask(&self, bank: &Bank) -> MaskSet {
        let data = bank.data();
        let mut mask = MaskSet::new(data.len());

        for rec_idx in 0..bank.num_sequences() {
            let rec = bank.record(rec_idx);
            let seq = &data[rec.start..rec.end()];
            let mut counts = [0u32; 4];
            let mut run_start = 0usize; // start of the current valid run
            let mut i = 0usize;
            while i < seq.len() {
                let c = seq[i];
                if !is_nucleotide(c) {
                    counts = [0; 4];
                    run_start = i + 1;
                    i += 1;
                    continue;
                }
                counts[c as usize] += 1;
                let in_window = i + 1 - run_start;
                if in_window > self.window {
                    counts[seq[i - self.window] as usize] -= 1;
                    run_start = i + 1 - self.window;
                }
                let total = (i + 1 - run_start) as u32;
                if total as usize == self.window
                    && Self::entropy_bits(&counts, total) < self.min_bits
                {
                    mask.set_range(rec.start + run_start, rec.start + i + 1);
                }
                i += 1;
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn bank(s: &str) -> Bank {
        let mut b = BankBuilder::new();
        b.push_str("s", s).unwrap();
        b.finish()
    }

    #[test]
    fn homopolymer_masked() {
        let b = bank(&"T".repeat(100));
        let m = EntropyMasker::default().mask(&b);
        assert!(m.masked_count() >= 95);
    }

    #[test]
    fn two_letter_repeat_masked() {
        // AT repeat: entropy 1.0 bit < 1.2 threshold.
        let b = bank(&"AT".repeat(50));
        let m = EntropyMasker::default().mask(&b);
        assert!(m.masked_count() >= 95);
    }

    #[test]
    fn acgt_repeat_not_masked_unlike_dust() {
        // The documented divergence from DUST: maximal mononucleotide
        // entropy, extreme triplet repetitiveness.
        let b = bank(&"ACGT".repeat(30));
        let ent = EntropyMasker::default().mask(&b);
        assert_eq!(ent.masked_count(), 0);
        let dust = crate::DustMasker::default().mask(&b);
        assert!(dust.masked_count() > 100);
    }

    #[test]
    fn diverse_sequence_clear() {
        let s = "ACGTTGCAATCGGATCCTAGGTACCATGGCAATTCGCGATACGTAGCTAGCTAGGCATCG";
        let b = bank(s);
        let m = EntropyMasker::default().mask(&b);
        assert_eq!(m.masked_count(), 0);
    }

    #[test]
    fn window_shorter_than_sequence_required() {
        // Sequences shorter than the window are never masked (no full
        // window forms).
        let b = bank(&"A".repeat(30));
        let m = EntropyMasker::new(48, 1.2).mask(&b);
        assert_eq!(m.masked_count(), 0);
    }

    #[test]
    fn ambiguous_base_resets() {
        let s = format!("{}N{}", "A".repeat(60), "A".repeat(15));
        let b = bank(&s);
        let m = EntropyMasker::default().mask(&b);
        let rec = b.record(0);
        assert!(m.contains(rec.start + 30));
        // The 15-long tail after the N never fills a 20-window.
        assert!(!m.contains(rec.start + 70));
        assert!(!m.contains(rec.start + 60)); // the N itself
    }

    #[test]
    fn entropy_of_uniform_is_two_bits() {
        assert!((EntropyMasker::entropy_bits(&[25, 25, 25, 25], 100) - 2.0).abs() < 1e-12);
        assert_eq!(EntropyMasker::entropy_bits(&[100, 0, 0, 0], 100), 0.0);
    }
}
