//! Windowed triplet-scoring masker in the style of DUST / SDUST.
//!
//! The DUST statistic of a triplet interval is
//!
//! ```text
//! S = Σ_t c_t (c_t − 1) / 2   over the 64 triplet types,
//! score = 10 · S / (k − 1)    where k = number of triplets in the interval
//! ```
//!
//! A perfectly repetitive interval (`AAAA…`) has `S = k(k−1)/2`, score
//! ≈ 5k; a random interval keeps the score near 10·k/128. Following the
//! classic `dust` structure, the sequence is scanned in windows (default
//! 64 nt) advanced by half a window; within each window the
//! **maximum-scoring triplet subinterval** is located by exhaustive O(w²)
//! search, and masked when its score exceeds the threshold (default 20).
//! Because appending a non-repetitive triplet strictly lowers the
//! normalized score, the maximizing subinterval hugs the repetitive run
//! and the mask does not bleed into complex flanking sequence.
//!
//! Relative to the full SDUST algorithm (Morgulis et al. 2006) this keeps
//! the original windowed greedy structure rather than SDUST's
//! linear-time "perfect interval" bookkeeping — a documented
//! simplification (DESIGN.md): the complexity statistic and thresholds are
//! the same, only the boundary placement may differ by a few positions.
//! The paper requires exactly that the two engines' filters *differ
//! slightly* (see [`crate::EntropyMasker`], the SCORIS-N-side filter).

use oris_seqio::alphabet::is_nucleotide;
use oris_seqio::Bank;

use oris_index::MaskSet;

/// DUST-style windowed triplet masker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DustMasker {
    /// Window length in nucleotides (classic value 64).
    pub window: usize,
    /// Masking threshold on the ×10-scaled normalized score (classic 20).
    pub threshold: f64,
}

impl Default for DustMasker {
    fn default() -> Self {
        DustMasker {
            window: 64,
            threshold: 20.0,
        }
    }
}

impl DustMasker {
    /// Creates a masker with explicit parameters.
    pub fn new(window: usize, threshold: f64) -> DustMasker {
        assert!(window >= 5, "window must hold at least three triplets");
        DustMasker { window, threshold }
    }

    /// Masks low-complexity regions of `bank` (global positions).
    pub fn mask(&self, bank: &Bank) -> MaskSet {
        let data = bank.data();
        let mut mask = MaskSet::new(data.len());

        for rec_idx in 0..bank.num_sequences() {
            let rec = bank.record(rec_idx);
            let seq = &data[rec.start..rec.end()];
            // Process each maximal ACGT run independently; ambiguous bases
            // break complexity statistics just like sequence boundaries.
            let mut run_start = 0usize;
            let mut i = 0usize;
            while i <= seq.len() {
                let boundary = i == seq.len() || !is_nucleotide(seq[i]);
                if boundary {
                    if i > run_start {
                        self.mask_run(&seq[run_start..i], rec.start + run_start, &mut mask);
                    }
                    run_start = i + 1;
                }
                i += 1;
            }
        }
        mask
    }

    /// Masks one sentinel-free, ambiguity-free run.
    fn mask_run(&self, run: &[u8], global_offset: usize, mask: &mut MaskSet) {
        if run.len() < 5 {
            return;
        }
        // Triplet codes of the run.
        let tlen = run.len() - 2;
        let mut trips = Vec::with_capacity(tlen);
        let mut t: u8 = 0;
        for (i, &c) in run.iter().enumerate() {
            t = ((t << 2) | c) & 0b11_11_11;
            if i >= 2 {
                trips.push(t);
            }
        }

        let wtrip = self.window.saturating_sub(2).max(3);
        let step = (wtrip / 2).max(1);
        let mut ws = 0usize;
        loop {
            let we = (ws + wtrip).min(tlen);
            // Exhaustive max-scoring subinterval within [ws, we).
            let mut best_score = 0.0f64;
            let mut best = (0usize, 0usize);
            for s in ws..we {
                let mut counts = [0u16; 64];
                let mut pair = 0u32;
                for (k, &tc) in trips[s..we].iter().enumerate() {
                    let c = &mut counts[tc as usize];
                    pair += *c as u32;
                    *c += 1;
                    if k >= 1 {
                        let score = 10.0 * pair as f64 / k as f64;
                        if score > best_score {
                            best_score = score;
                            best = (s, s + k);
                        }
                    }
                }
            }
            if best_score > self.threshold {
                // Triplets [best.0, best.1] cover nucleotides
                // [best.0, best.1 + 2].
                mask.set_range(global_offset + best.0, global_offset + best.1 + 3);
            }
            if we == tlen {
                break;
            }
            ws += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn bank(s: &str) -> Bank {
        let mut b = BankBuilder::new();
        b.push_str("s", s).unwrap();
        b.finish()
    }

    fn masked_chars(b: &Bank, m: &MaskSet) -> usize {
        let rec = b.record(0);
        (rec.start..rec.end()).filter(|&p| m.contains(p)).count()
    }

    #[test]
    fn homopolymer_is_masked() {
        let b = bank(&"A".repeat(100));
        let m = DustMasker::default().mask(&b);
        assert!(
            masked_chars(&b, &m) > 90,
            "masked {} of 100",
            masked_chars(&b, &m)
        );
    }

    #[test]
    fn dinucleotide_repeat_is_masked() {
        let b = bank(&"AT".repeat(50));
        let m = DustMasker::default().mask(&b);
        assert!(masked_chars(&b, &m) > 90);
    }

    #[test]
    fn random_like_sequence_not_masked() {
        let s = "ACGTTGCAATCGGATCCTAGGTACCATGGCAATTCGCGATACGTAGCTAGCTAGGCATCG";
        let b = bank(s);
        let m = DustMasker::default().mask(&b);
        assert_eq!(
            masked_chars(&b, &m),
            0,
            "masked {} of {}",
            masked_chars(&b, &m),
            s.len()
        );
    }

    #[test]
    fn repeat_island_in_random_sea() {
        let clean = "ACGTTGCAATCGGATCCTAGGTACCATGGCAATTCGCGAT";
        let island = "CACACACACACACACACACACACACACACACA";
        let s = format!("{clean}{island}{clean}");
        let b = bank(&s);
        let m = DustMasker::default().mask(&b);
        let rec = b.record(0);
        // island center masked
        let mid = rec.start + clean.len() + island.len() / 2;
        assert!(m.contains(mid), "island center not masked");
        // clean flanks stay clear
        assert!(!m.contains(rec.start + 5), "left flank masked");
        assert!(!m.contains(rec.end() - 5), "right flank masked");
    }

    #[test]
    fn mask_hugs_the_repeat_boundaries() {
        let clean = "ACGTTGCAATCGGATCCTAGGTACCATGGCAATTCGCGAT";
        let island = "A".repeat(30);
        let s = format!("{clean}{island}{clean}");
        let b = bank(&s);
        let m = DustMasker::default().mask(&b);
        let rec = b.record(0);
        let intervals: Vec<(usize, usize)> = m
            .intervals()
            .into_iter()
            .map(|(a, e)| (a - rec.start, e - rec.start))
            .collect();
        assert_eq!(intervals.len(), 1, "{intervals:?}");
        let (a, e) = intervals[0];
        // boundary placement within a few nt of the island
        assert!(a >= clean.len().saturating_sub(4), "start {a}");
        assert!(e <= clean.len() + island.len() + 4, "end {e}");
    }

    #[test]
    fn ambiguous_bases_reset_window() {
        let s = format!("{}N{}", "A".repeat(40), "A".repeat(40));
        let b = bank(&s);
        let m = DustMasker::default().mask(&b);
        let rec = b.record(0);
        assert!(m.contains(rec.start + 20));
        assert!(m.contains(rec.start + 60));
        assert!(!m.contains(rec.start + 40)); // the N itself
    }

    #[test]
    fn mask_does_not_cross_sequences() {
        let mut bb = BankBuilder::new();
        bb.push_str("a", &"A".repeat(40)).unwrap();
        bb.push_str("b", "ACGTTGCAATCGGATCCTAG").unwrap();
        let b = bb.finish();
        let m = DustMasker::default().mask(&b);
        let rec_b = b.record(1);
        for p in rec_b.start..rec_b.end() {
            assert!(!m.contains(p), "position {p} wrongly masked");
        }
    }

    #[test]
    fn threshold_controls_aggressiveness() {
        let s = "ACACGTGTACACGTGTACACGTGTACACGTGT"; // moderate repeat
        let strict = DustMasker::new(64, 5.0).mask(&bank(s));
        let lax = DustMasker::new(64, 100.0).mask(&bank(s));
        assert!(strict.masked_count() > lax.masked_count());
        assert_eq!(lax.masked_count(), 0);
    }

    #[test]
    fn empty_bank() {
        let b = Bank::empty();
        let m = DustMasker::default().mask(&b);
        assert_eq!(m.masked_count(), 0);
    }

    #[test]
    fn long_repeat_fully_covered_by_stepping() {
        let s = format!("{}{}", "AGTC".repeat(30), "AAATTT".repeat(20));
        let b = bank(&s);
        let m = DustMasker::default().mask(&b);
        let rec = b.record(0);
        // the AAATTT region is repetitive at the triplet level; its tail
        // must be masked even though it lies several windows in
        assert!(m.contains(rec.end() - 10));
    }

    #[test]
    fn score_matches_hand_computation() {
        // 10 consecutive "AAA" triplets: S = 10·9/2 = 45, k−1 = 9 →
        // score 50 > 20 → masked. 12 A's give exactly 10 triplets.
        let b = bank(&"A".repeat(12));
        let m = DustMasker::default().mask(&b);
        assert_eq!(masked_chars(&b, &m), 12);
    }
}
