//! # oris-dust — low-complexity filters for the ORIS reproduction
//!
//! Section 2.1 of the paper: "To eliminate non interesting alignments made
//! of small repeats, a low complexity filter can be activated before
//! indexing. In that case, W character words belonging to low-complexity
//! regions are discarded from the index."
//!
//! Section 3.4 then attributes part of the SCORIS-N/BLASTN sensitivity gap
//! to the two programs using *different* filters: "the SCORIS-N low
//! complexity filter presents some difference with the dust filter
//! included in BLASTN". We reproduce that situation deliberately:
//!
//! * [`DustMasker`] — a windowed triplet-scoring masker in the style of
//!   DUST/SDUST (Morgulis et al. 2006, the paper's reference \[14\]): the
//!   score of a window is `Σ_t c_t(c_t−1)/2` over its 64 triplet types,
//!   normalized by `(#triplets − 1)`; windows above threshold are masked.
//!   This is the filter wired into the BLASTN-like baseline.
//! * [`EntropyMasker`] — a windowed Shannon-entropy filter standing in for
//!   SCORIS-N's own (unspecified, "different") filter; wired into the
//!   ORIS engine.
//!
//! Both produce a [`MaskSet`] of global bank positions; an indexed W-mer is
//! discarded when its start position is masked.

pub mod dust;
pub mod entropy;

pub use dust::DustMasker;
pub use entropy::EntropyMasker;
pub use oris_index::MaskSet;

use oris_seqio::Bank;

/// A low-complexity masker over banks.
pub trait Masker {
    /// Computes the mask over global bank positions.
    fn mask_bank(&self, bank: &Bank) -> MaskSet;
}

impl Masker for DustMasker {
    fn mask_bank(&self, bank: &Bank) -> MaskSet {
        self.mask(bank)
    }
}

impl Masker for EntropyMasker {
    fn mask_bank(&self, bank: &Bank) -> MaskSet {
        self.mask(bank)
    }
}
