//! The full BLASTN-style pipeline: filter → lookup → scan → gapped stage.
//!
//! The gapped stage and record output are shared with the ORIS engine —
//! including the sink-driven streaming shape: [`compare_banks_into`]
//! pushes records into any `oris_core::RecordSink` as each record-pair
//! group finishes, so baseline measurements stay comparable to the
//! streamed ORIS path. [`compare_banks`] is the collect-everything
//! wrapper.

use oris_core::sink::{CollectSink, RecordSink};
use oris_dust::{DustMasker, EntropyMasker, Masker};
use oris_eval::M8Record;
use oris_index::{BankIndex, IndexConfig};
use oris_obs::Stopwatch;
use oris_seqio::Bank;

use crate::config::BlastConfig;
use crate::scan::{scan_bank, ScanStats};

/// Timing and counter report for one baseline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlastStats {
    /// Seconds building the query lookup table (and masks).
    pub lookup_secs: f64,
    /// Seconds scanning the subject bank.
    pub scan_secs: f64,
    /// Seconds in the gapped stage.
    pub gapped_secs: f64,
    /// Seconds producing records.
    pub output_secs: f64,
    /// HSPs surviving the scan.
    pub hsps: usize,
    /// Scan counters.
    pub scan: ScanStats,
    /// Alignments before the e-value filter.
    pub raw_alignments: usize,
}

impl BlastStats {
    /// Total wall-clock seconds.
    pub fn total_secs(&self) -> f64 {
        self.lookup_secs + self.scan_secs + self.gapped_secs + self.output_secs
    }
}

/// Result of one baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BlastResult {
    /// Final `-m 8` records, sorted by e-value.
    pub alignments: Vec<M8Record>,
    /// Timing/counter report.
    pub stats: BlastStats,
}

fn mask_for(cfg: &BlastConfig, bank: &Bank) -> Option<oris_dust::MaskSet> {
    match cfg.filter {
        oris_core::FilterKind::None => None,
        oris_core::FilterKind::Dust => Some(DustMasker::default().mask_bank(bank)),
        oris_core::FilterKind::Entropy => Some(EntropyMasker::default().mask_bank(bank)),
    }
}

/// Splits bank-1 records into batches of roughly `batch_nt` residues
/// (always at least one record per batch), rebuilding each batch as a
/// stand-alone bank with the original sequence names.
fn query_batches(bank1: &Bank, batch_nt: usize) -> Vec<Bank> {
    let mut out = Vec::new();
    let mut builder: Option<oris_seqio::BankBuilder> = None;
    let mut acc = 0usize;
    for i in 0..bank1.num_sequences() {
        let rec = bank1.record(i);
        if builder.is_some() && acc > 0 && acc + rec.len > batch_nt {
            out.push(builder.take().unwrap().finish());
            acc = 0;
        }
        let b = builder.get_or_insert_with(oris_seqio::BankBuilder::new);
        b.push_codes(&rec.name, bank1.sequence(i));
        acc += rec.len;
    }
    if let Some(b) = builder {
        out.push(b.finish());
    }
    out
}

/// Shared gapped stage + streamed output for one query batch: literally
/// the ORIS engine's fused steps-3+4 runner
/// (`oris_core::pipeline::gapped_stage_into`), so the baseline's result
/// path stays byte-comparable by construction. Its step-3/step-4 seconds
/// land in the baseline's gapped/output buckets.
fn gapped_stage_into(
    batch: &Bank,
    bank2: &Bank,
    hsps: &[oris_core::Hsp],
    oris_cfg: &oris_core::OrisConfig,
    query_residues: usize,
    stats: &mut BlastStats,
    sink: &mut dyn RecordSink,
) {
    let mut push = |rec: M8Record| sink.accept(rec);
    let r = oris_core::pipeline::gapped_stage_into(
        batch,
        bank2,
        hsps,
        oris_cfg,
        query_residues,
        false,
        &mut push,
    );
    stats.raw_alignments += r.raw_alignments;
    stats.output_secs += r.step4_secs;
    stats.gapped_secs += r.step3_secs;
}

/// The blastall-style batched pipeline: lookup per query batch, full
/// database rescan per batch. Same records as the one-pass pipeline
/// (e-values use the full query-bank size), different cost structure.
fn run_batched(
    bank1: &Bank,
    bank2: &Bank,
    cfg: &BlastConfig,
    batch_nt: usize,
    sink: &mut dyn RecordSink,
) -> BlastStats {
    let mut stats = BlastStats::default();
    let oris_cfg = cfg.as_oris();
    let full_query_residues = bank1.num_residues();

    // Subject mask computed once, reused across batches.
    let t0 = Stopwatch::start();
    let mask2 = mask_for(cfg, bank2).map(|m| m.dilated_left(cfg.w));
    stats.lookup_secs += t0.elapsed_secs();

    for batch in query_batches(bank1, batch_nt) {
        let t0 = Stopwatch::start();
        let m1 = mask_for(cfg, &batch);
        let lookup = match &m1 {
            Some(m) => {
                let dilated = m.dilated_left(cfg.w);
                BankIndex::build_filtered(&batch, IndexConfig::full(cfg.w), |p| dilated.contains(p))
            }
            None => BankIndex::build(&batch, IndexConfig::full(cfg.w)),
        };
        stats.lookup_secs += t0.elapsed_secs();

        let t0 = Stopwatch::start();
        let (hsps, scan_stats) = scan_bank(&batch, &lookup, bank2, cfg, mask2.as_ref());
        stats.hsps += hsps.len();
        stats.scan = ScanStats {
            probes: stats.scan.probes + scan_stats.probes,
            hits: stats.scan.hits + scan_stats.hits,
            suppressed: stats.scan.suppressed + scan_stats.suppressed,
            extensions: stats.scan.extensions + scan_stats.extensions,
            kept: stats.scan.kept + scan_stats.kept,
        };
        stats.scan_secs += t0.elapsed_secs();

        // All batches stream into one sink; the single end_query sort in
        // `compare_banks_into` reproduces the old global cross-batch sort.
        gapped_stage_into(
            &batch,
            bank2,
            &hsps,
            &oris_cfg,
            full_query_residues,
            &mut stats,
            sink,
        );
    }
    stats
}

fn run_pipeline(
    bank1: &Bank,
    bank2: &Bank,
    cfg: &BlastConfig,
    sink: &mut dyn RecordSink,
) -> BlastStats {
    if let Some(batch_nt) = cfg.batch_nt {
        return run_batched(bank1, bank2, cfg, batch_nt, sink);
    }
    let mut stats = BlastStats::default();

    // Lookup table over the query bank (+ masks for both banks).
    let t0 = Stopwatch::start();
    let (lookup, mask2) = rayon::join(
        || {
            let m1 = mask_for(cfg, bank1);
            match &m1 {
                Some(m) => {
                    // discard words overlapping masked regions (BLAST
                    // lookup-table semantics)
                    let dilated = m.dilated_left(cfg.w);
                    BankIndex::build_filtered(bank1, IndexConfig::full(cfg.w), |p| {
                        dilated.contains(p)
                    })
                }
                None => BankIndex::build(bank1, IndexConfig::full(cfg.w)),
            }
        },
        || mask_for(cfg, bank2).map(|m| m.dilated_left(cfg.w)),
    );
    stats.lookup_secs = t0.elapsed_secs();

    // Subject scan.
    let t0 = Stopwatch::start();
    let (hsps, scan_stats) = scan_bank(bank1, &lookup, bank2, cfg, mask2.as_ref());
    stats.hsps = hsps.len();
    stats.scan = scan_stats;
    stats.scan_secs = t0.elapsed_secs();

    let oris_cfg = cfg.as_oris();
    gapped_stage_into(
        bank1,
        bank2,
        &hsps,
        &oris_cfg,
        bank1.num_residues(),
        &mut stats,
        sink,
    );
    stats
}

/// Compares two banks with the BLASTN-style baseline, streaming records
/// into `sink` (one `end_query` boundary for the whole run — the
/// baseline's unit of work is the full query bank).
///
/// # Panics
/// Panics if the configuration fails [`BlastConfig::validate`].
pub fn compare_banks_into(
    bank1: &Bank,
    bank2: &Bank,
    cfg: &BlastConfig,
    sink: &mut dyn RecordSink,
) -> std::io::Result<BlastStats> {
    if let Err(e) = cfg.validate() {
        panic!("invalid BLAST configuration: {e}");
    }
    let mut stats = match cfg.threads {
        None => run_pipeline(bank1, bank2, cfg, sink),
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("failed to build thread pool");
            pool.install(|| run_pipeline(bank1, bank2, cfg, sink))
        }
    };
    let t0 = Stopwatch::start();
    sink.end_query()?;
    stats.output_secs += t0.elapsed_secs();
    Ok(stats)
}

/// Compares two banks with the BLASTN-style baseline: a [`CollectSink`]
/// over [`compare_banks_into`].
///
/// # Panics
/// Panics if the configuration fails [`BlastConfig::validate`].
pub fn compare_banks(bank1: &Bank, bank2: &Bank, cfg: &BlastConfig) -> BlastResult {
    let mut sink = CollectSink::new();
    let stats = compare_banks_into(bank1, bank2, cfg, &mut sink)
        .expect("CollectSink does no IO and cannot fail");
    BlastResult {
        alignments: sink.into_records(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn end_to_end_finds_planted_homology() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
        let b1 = bank(&[&format!("TTACCGGTTAACC{core}GGTTACGCAT")]);
        let b2 = bank(&[&format!("CCGGAACCTT{core}TTGGCCAACGGT")]);
        let r = compare_banks(&b1, &b2, &BlastConfig::small(8));
        assert_eq!(r.alignments.len(), 1, "{:?}", r.alignments);
        assert!(r.alignments[0].pident > 90.0);
    }

    #[test]
    fn agrees_with_oris_engine_on_clean_input() {
        // The cross-engine check underlying the paper's section 3.4: on
        // inputs without filter-sensitive content, the two engines report
        // the same alignments.
        let cores = [
            "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT",
            "GGCCATTAGGCCATTAACGGTTAACCGGATCCAT",
            "TTGGCACGTGTCAAGGTCGATCGGATTACGGCAT",
        ];
        let b1 = bank(&[
            &format!("TTAACC{}GGTTAA", cores[0]),
            &format!("{}{}", cores[1], cores[2]),
        ]);
        let b2 = bank(&[
            &format!("CCGG{}AATT", cores[1]),
            cores[0],
            &format!("AA{}TT", cores[2]),
        ]);
        let oris_cfg = oris_core::OrisConfig::small(8);
        let blast_cfg = BlastConfig::matched(&oris_cfg);
        let r_oris = oris_core::compare_banks(&b1, &b2, &oris_cfg);
        let r_blast = compare_banks(&b1, &b2, &blast_cfg);
        let rep = oris_eval::compare_outputs(&r_oris.alignments, &r_blast.alignments, 0.8);
        assert_eq!(rep.a_miss, 0, "{rep:?}");
        assert_eq!(rep.b_miss, 0, "{rep:?}");
        assert!(rep.a_total > 0);
    }

    #[test]
    fn stats_populated() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let b = bank(&[s]);
        let r = compare_banks(&b, &b, &BlastConfig::small(6));
        assert!(r.stats.hsps > 0);
        assert!(r.stats.scan.probes > 0);
        assert!(r.stats.total_secs() > 0.0);
    }

    #[test]
    fn dust_filter_suppresses_repeats() {
        let repeat = "CA".repeat(60);
        let b1 = bank(&[&format!("ATGGCGTACGTTAGCC{repeat}")]);
        let b2 = bank(&[&format!("GGCCATTAGGCCTTAA{repeat}")]);
        let mut cfg = BlastConfig::small(8);
        cfg.filter = oris_core::FilterKind::None;
        let unfiltered = compare_banks(&b1, &b2, &cfg);
        assert!(!unfiltered.alignments.is_empty());
        cfg.filter = oris_core::FilterKind::Dust;
        let filtered = compare_banks(&b1, &b2, &cfg);
        assert!(filtered.alignments.len() < unfiltered.alignments.len());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let seqs: Vec<String> = (0..8)
            .map(|i| format!("{}{core}", "GT".repeat(i)))
            .collect();
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let b1 = bank(&[core]);
        let b2 = bank(&refs);
        let mut cfg = BlastConfig::small(8);
        cfg.threads = Some(1);
        let r1 = compare_banks(&b1, &b2, &cfg);
        cfg.threads = Some(4);
        let r4 = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r1.alignments, r4.alignments);
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn batching_changes_timing_not_records() {
        let cores = [
            "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT",
            "GGCCATTAGGCCATTAACGGTTAACCGGATCCAT",
            "TTGGCACGTGTCAAGGTCGATCGGATTACGGCAT",
            "CAGTACGGATTCAGGCATTACGATCAGGTTACGG",
        ];
        let seqs1: Vec<String> = cores.iter().map(|c| format!("TT{c}GG")).collect();
        let refs1: Vec<&str> = seqs1.iter().map(|s| s.as_str()).collect();
        let b1 = bank(&refs1);
        let seqs2: Vec<String> = cores.iter().rev().map(|c| format!("AA{c}CC")).collect();
        let refs2: Vec<&str> = seqs2.iter().map(|s| s.as_str()).collect();
        let b2 = bank(&refs2);

        let mut cfg = BlastConfig::small(8);
        let one_pass = compare_banks(&b1, &b2, &cfg);
        cfg.batch_nt = Some(40); // force ~one record per batch
        let batched = compare_banks(&b1, &b2, &cfg);
        assert_eq!(one_pass.alignments, batched.alignments);
        assert!(batched.alignments.len() >= cores.len());
    }

    #[test]
    fn query_batches_partition_all_records() {
        let seqs: Vec<String> = (0..10).map(|i| "ACGT".repeat(5 + i)).collect();
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let b = bank(&refs);
        let batches = query_batches(&b, 60);
        let total: usize = batches.iter().map(|x| x.num_sequences()).sum();
        assert_eq!(total, 10);
        assert!(batches.len() > 1);
        // every batch except possibly the last respects the budget unless
        // a single record exceeds it
        for batch in &batches {
            assert!(batch.num_sequences() >= 1);
        }
        // names survive
        assert_eq!(batches[0].record(0).name, "s0");
    }

    #[test]
    fn oversized_record_gets_own_batch() {
        let big = "ACGT".repeat(100);
        let b = bank(&[&big, "ACGTACGT", "GGTTGGTT"]);
        let batches = query_batches(&b, 50);
        assert_eq!(batches[0].num_sequences(), 1);
        assert_eq!(batches[0].num_residues(), 400);
    }
}
