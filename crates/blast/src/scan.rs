//! The BLASTN-style subject scan with per-diagonal duplicate suppression.
//!
//! For each subject (bank 2) position, the rolling W-mer probes the query
//! lookup table; every occurrence of that word in bank 1 is a *hit*.
//! Before extending, the scanner consults the diagonal array: if a
//! previous extension on the same diagonal already covered this position,
//! the hit is dropped (it would regenerate the same HSP — BLASTN's
//! classic suppression, the counterpart of ORIS's ordering rule). The
//! dict probe per subject position is inherently random-access — the
//! cache-hostile pattern the paper contrasts with ORIS's grouped
//! enumeration.
//!
//! The scan parallelizes over subject sequences: each worker carries a
//! reusable epoch-stamped diagonal table (one slot per possible diagonal)
//! so per-sequence resets are O(1).

use oris_align::{extend_hit, ExtensionOutcome, OrderGuard, UngappedParams};
use oris_core::Hsp;
use oris_index::BankIndex;
use oris_seqio::Bank;
use rayon::prelude::*;

use crate::config::BlastConfig;

/// Counters reported by the scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Subject positions probed against the lookup table.
    pub probes: u64,
    /// Raw hits returned by the lookup table.
    pub hits: u64,
    /// Hits suppressed by the diagonal array.
    pub suppressed: u64,
    /// Ungapped extensions performed.
    pub extensions: u64,
    /// HSPs kept (score above threshold).
    pub kept: u64,
}

impl ScanStats {
    fn merge(mut self, o: ScanStats) -> ScanStats {
        self.probes += o.probes;
        self.hits += o.hits;
        self.suppressed += o.suppressed;
        self.extensions += o.extensions;
        self.kept += o.kept;
        self
    }
}

/// Epoch-stamped per-diagonal "last covered end on bank 1" table.
struct DiagTable {
    /// `(end1, epoch)` per diagonal slot.
    slots: Vec<(u32, u32)>,
    epoch: u32,
    /// `diag_offset` maps diagonal `p1 − p2` to a slot index.
    offset: i64,
}

impl DiagTable {
    fn new(len1: usize, len2: usize) -> DiagTable {
        DiagTable {
            slots: vec![(0, 0); len1 + len2 + 2],
            epoch: 0,
            offset: len2 as i64 + 1,
        }
    }

    /// Starts a fresh subject sequence (O(1)).
    fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wrapped: clear physically once every 2^32 resets
            self.slots.fill((0, 0));
            self.epoch = 1;
        }
    }

    #[inline]
    fn slot(&self, diag: i64) -> usize {
        (diag + self.offset) as usize
    }

    /// End of the last extension on `diag`, if any this epoch.
    #[inline]
    fn last_end(&self, diag: i64) -> Option<u32> {
        let (end, ep) = self.slots[self.slot(diag)];
        (ep == self.epoch).then_some(end)
    }

    #[inline]
    fn set_end(&mut self, diag: i64, end1: u32) {
        let s = self.slot(diag);
        self.slots[s] = (end1, self.epoch);
    }
}

/// Scans one subject record against the query lookup table.
fn scan_record(
    bank1: &Bank,
    lookup: &BankIndex,
    bank2: &Bank,
    rec2: usize,
    params: &UngappedParams,
    min_score: i32,
    diags: &mut DiagTable,
    masked2: Option<&oris_dust::MaskSet>,
    out: &mut Vec<Hsp>,
) -> ScanStats {
    let d1 = bank1.data();
    let d2 = bank2.data();
    let coder = lookup.coder();
    let w = params.w;
    let rec = bank2.record(rec2);
    let mut stats = ScanStats::default();
    diags.reset();

    let window = &d2[rec.start..rec.end()];
    for (local, code) in oris_index::RollingCoder::new(coder, window) {
        let p2 = rec.start + local;
        if let Some(m) = masked2 {
            if m.contains(p2) {
                continue;
            }
        }
        stats.probes += 1;
        for &p1 in lookup.occurrences(code) {
            stats.hits += 1;
            // Table key: diagonal in record-local subject coordinates
            // (the table is sized for one record and reset per record).
            let diag = p1 as i64 - local as i64;
            if let Some(end) = diags.last_end(diag) {
                if end > p1 {
                    stats.suppressed += 1;
                    continue;
                }
            }
            stats.extensions += 1;
            match extend_hit(
                d1,
                d2,
                p1 as usize,
                p2,
                code,
                coder,
                params,
                OrderGuard::None,
            ) {
                ExtensionOutcome::Hsp { score, left, right } => {
                    let start1 = p1 - left as u32;
                    let len = left as u32 + w as u32 + right as u32;
                    // Mark the diagonal as covered up to the extension end
                    // so later seeds inside this HSP are suppressed.
                    diags.set_end(diag, start1 + len);
                    // `>=`: min_hsp_score is the minimum score to keep —
                    // kept in lockstep with ORIS step 2 so the HSP-set
                    // agreement tests compare like for like.
                    if score >= min_score {
                        stats.kept += 1;
                        out.push(Hsp {
                            start1,
                            start2: p2 as u32 - left as u32,
                            len,
                            score,
                        });
                    }
                }
                ExtensionOutcome::Aborted => unreachable!("guard disabled"),
            }
        }
    }
    stats
}

/// Scans the whole subject bank, parallel over subject sequences.
///
/// Returns HSPs sorted by diagonal (the shared step-3 input order).
pub fn scan_bank(
    bank1: &Bank,
    lookup: &BankIndex,
    bank2: &Bank,
    cfg: &BlastConfig,
    masked2: Option<&oris_dust::MaskSet>,
) -> (Vec<Hsp>, ScanStats) {
    let params = UngappedParams {
        w: cfg.w,
        xdrop: cfg.xdrop_ungapped,
        scheme: cfg.scheme,
        max_span: usize::MAX / 4,
    };
    let len1 = bank1.data().len();
    let max_len2 = bank2.records().iter().map(|r| r.len).max().unwrap_or(0);

    let results: Vec<(Vec<Hsp>, ScanStats)> = (0..bank2.num_sequences())
        .into_par_iter()
        .map_init(
            || DiagTable::new(len1, max_len2),
            |diags, rec2| {
                let mut out = Vec::new();
                let stats = scan_record(
                    bank1,
                    lookup,
                    bank2,
                    rec2,
                    &params,
                    cfg.min_hsp_score,
                    diags,
                    masked2,
                    &mut out,
                );
                (out, stats)
            },
        )
        .collect();

    let mut stats = ScanStats::default();
    let mut hsps = Vec::with_capacity(results.iter().map(|(v, _)| v.len()).sum());
    for (v, s) in results {
        hsps.extend(v);
        stats = stats.merge(s);
    }
    hsps.sort_by(Hsp::diag_order);
    hsps.dedup();
    (hsps, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_index::IndexConfig;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn run(b1: &Bank, b2: &Bank, cfg: &BlastConfig) -> (Vec<Hsp>, ScanStats) {
        let lookup = BankIndex::build(b1, IndexConfig::full(cfg.w));
        scan_bank(b1, &lookup, b2, cfg, None)
    }

    fn cfg(w: usize) -> BlastConfig {
        BlastConfig {
            w,
            min_hsp_score: w as i32,
            ..BlastConfig::small(w)
        }
    }

    #[test]
    fn identical_sequences_one_hsp() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let (hsps, stats) = run(&b1, &b2, &cfg(6));
        assert_eq!(hsps.len(), 1, "{hsps:?}");
        assert_eq!(hsps[0].len as usize, s.len());
        // Later seeds on the diagonal were suppressed, not re-extended.
        assert!(stats.suppressed > 0);
        assert_eq!(stats.extensions, 1);
    }

    #[test]
    fn diagonal_suppression_counts_every_inner_seed() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let (_, stats) = run(&b1, &b2, &cfg(6));
        // hits = extensions + suppressed (all on the main diagonal here)
        assert_eq!(stats.hits, stats.extensions + stats.suppressed);
    }

    #[test]
    fn scan_matches_oris_hsp_set() {
        // Same inputs, both engines at the same thresholds: the HSP sets
        // must coincide (this is the cross-engine agreement the paper's
        // sensitivity tables quantify at the alignment level).
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGG";
        let b1 = bank(&[&format!("TTAACC{core}GGTTAA"), "GGCCAATTGGCCAATT"]);
        let b2 = bank(&[&format!("CCGG{core}AATT")]);
        let c = cfg(6);
        let (blast_hsps, _) = run(&b1, &b2, &c);

        let oris_cfg = c.as_oris();
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let (oris_hsps, _) = oris_core::step2::find_hsps(&b1, &i1, &b2, &i2, &oris_cfg);

        let a: std::collections::HashSet<(u32, u32, u32)> = blast_hsps
            .iter()
            .map(|h| (h.start1, h.start2, h.len))
            .collect();
        let b: std::collections::HashSet<(u32, u32, u32)> = oris_hsps
            .iter()
            .map(|h| (h.start1, h.start2, h.len))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_over_subjects_is_deterministic() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTA";
        let seqs: Vec<String> = (0..12)
            .map(|i| format!("{}{core}{}", "GT".repeat(i), "CA".repeat(12 - i)))
            .collect();
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        let b1 = bank(&[core]);
        let b2 = bank(&refs);
        let c = cfg(8);
        let lookup = BankIndex::build(&b1, IndexConfig::full(c.w));
        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (h1, s1) = pool1.install(|| scan_bank(&b1, &lookup, &b2, &c, None));
        let (h4, s4) = pool4.install(|| scan_bank(&b1, &lookup, &b2, &c, None));
        assert_eq!(h1, h4);
        assert_eq!(s1, s4);
        assert_eq!(h1.len(), 12);
    }

    #[test]
    fn masked_subject_positions_skipped() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let c = cfg(6);
        let lookup = BankIndex::build(&b1, IndexConfig::full(c.w));
        let mut mask = oris_dust::MaskSet::new(b2.data().len());
        mask.set_range(0, b2.data().len());
        let (hsps, stats) = scan_bank(&b1, &lookup, &b2, &c, Some(&mask));
        assert!(hsps.is_empty());
        assert_eq!(stats.probes, 0);
    }

    #[test]
    fn empty_banks() {
        let b = bank(&["ACGTACGTACGT"]);
        let empty = Bank::empty();
        let c = cfg(6);
        let (h, _) = run(&empty, &b, &c);
        assert!(h.is_empty());
        let (h, _) = run(&b, &empty, &c);
        assert!(h.is_empty());
    }
}
