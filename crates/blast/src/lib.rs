//! # oris-blast — the BLASTN-style scan baseline
//!
//! The comparison target of the paper's evaluation (NCBI BLASTN 2.2.17)
//! reimplemented from scratch in the classical seed-and-extend structure,
//! so the speed-up experiments compare *algorithms*, not languages:
//!
//! 1. a **lookup table** over the query bank's W-mers (the same Figure-2
//!    chained structure the ORIS engine uses — BLAST's lookup is
//!    equivalent);
//! 2. a **subject scan**: every subject position probes the lookup table
//!    — this is the cache-hostile access pattern ORIS's ordered
//!    enumeration avoids — and every hit is extended ungapped (one-hit
//!    BLASTN) unless the **per-diagonal last-end array** shows the
//!    position was already covered by a previous extension on that
//!    diagonal (BLASTN's classic duplicate suppression);
//! 3. the same gapped stage and statistics as the ORIS engine (shared via
//!    `oris-core`): the paper's two programs differ in *hit detection*,
//!    not in gapped extension or e-values, and sharing the code keeps the
//!    comparison honest.
//!
//! The default low-complexity filter is the DUST-style masker — BLASTN's
//! `dust` — whereas the ORIS engine defaults to the entropy filter,
//! reproducing the paper's "the SCORIS-N low complexity filter presents
//! some difference with the dust filter included in BLASTN".

pub mod config;
pub mod engine;
pub mod scan;

pub use config::BlastConfig;
pub use engine::{compare_banks, compare_banks_into, BlastResult, BlastStats};
