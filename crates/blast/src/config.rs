//! BLASTN-like baseline configuration.

use oris_align::ScoringScheme;
use oris_core::FilterKind;

/// Configuration of the BLASTN-style baseline.
///
/// Mirrors [`oris_core::OrisConfig`] field-for-field where the stages are
/// shared, so experiments can run both engines with identical scoring,
/// thresholds and seed length — only the hit-detection machinery differs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlastConfig {
    /// Seed (word) length `W`; BLASTN's default for DNA is 11.
    pub w: usize,
    /// X-drop for the ungapped extension.
    pub xdrop_ungapped: i32,
    /// X-drop for the gapped extension.
    pub xdrop_gapped: i32,
    /// Minimum HSP score kept after the scan.
    pub min_hsp_score: i32,
    /// E-value threshold on final alignments.
    pub evalue_threshold: f64,
    /// Scoring scheme.
    pub scheme: ScoringScheme,
    /// Low-complexity filter (BLASTN runs DUST by default).
    pub filter: FilterKind,
    /// Worker threads (`None` = rayon global default).
    pub threads: Option<usize>,
    /// Maximum span of a gapped extension per direction.
    pub max_gapped_span: usize,
    /// Query batching in nucleotides (`None` = one pass with the whole
    /// query bank in the lookup table).
    ///
    /// NCBI `blastall` 2.2.17 — the program the paper measures — builds
    /// its lookup table over a bounded *batch* of query sequences
    /// (roughly 20 kbp of concatenated nucleotide queries) and rescans
    /// the entire database for every batch. That rescan loop is the main
    /// reason BLASTN is slow on many-short-sequence banks yet "performs
    /// well" on a few chromosome-size sequences (one batch ≈ one scan).
    /// [`BlastConfig::blastall_like`] enables this behaviour; batching
    /// changes timing only — reported records are identical (verified by
    /// tests).
    pub batch_nt: Option<usize>,
    /// Subject-side effective search space for e-values (mirrors
    /// [`oris_core::OrisConfig::subject_space`], so a database-wide
    /// `--dbsize` run prices both engines' alignments identically).
    pub subject_space: oris_eval::SubjectSpace,
}

impl Default for BlastConfig {
    fn default() -> Self {
        BlastConfig {
            w: 11,
            xdrop_ungapped: 20,
            xdrop_gapped: 25,
            min_hsp_score: 18,
            evalue_threshold: 1e-3,
            scheme: ScoringScheme::blastn(),
            filter: FilterKind::Dust,
            threads: None,
            max_gapped_span: 1 << 20,
            batch_nt: None,
            subject_space: oris_eval::SubjectSpace::PerSequence,
        }
    }
}

impl BlastConfig {
    /// Small-input configuration for tests and examples.
    pub fn small(w: usize) -> BlastConfig {
        BlastConfig {
            w,
            min_hsp_score: (w as i32) + 4,
            evalue_threshold: 10.0,
            filter: FilterKind::None,
            ..Default::default()
        }
    }

    /// A configuration matched to an ORIS configuration: same scoring,
    /// seed length and thresholds, but each engine keeps its own filter
    /// (the paper's two programs genuinely differ there).
    pub fn matched(oris: &oris_core::OrisConfig) -> BlastConfig {
        BlastConfig {
            w: oris.w,
            xdrop_ungapped: oris.xdrop_ungapped,
            xdrop_gapped: oris.xdrop_gapped,
            min_hsp_score: oris.min_hsp_score,
            evalue_threshold: oris.evalue_threshold,
            scheme: oris.scheme,
            filter: if oris.filter == FilterKind::None {
                FilterKind::None
            } else {
                FilterKind::Dust
            },
            threads: oris.threads,
            max_gapped_span: oris.max_gapped_span,
            batch_nt: None,
            subject_space: oris.subject_space,
        }
    }

    /// The blastall-2.2.17-like configuration the paper's timings are
    /// against: ~20 kbp query batches, full database rescan per batch.
    pub fn blastall_like(oris: &oris_core::OrisConfig) -> BlastConfig {
        BlastConfig {
            batch_nt: Some(20_000),
            ..BlastConfig::matched(oris)
        }
    }

    /// Converts to the core config driving the shared gapped stage.
    pub fn as_oris(&self) -> oris_core::OrisConfig {
        oris_core::OrisConfig {
            w: self.w,
            xdrop_ungapped: self.xdrop_ungapped,
            xdrop_gapped: self.xdrop_gapped,
            min_hsp_score: self.min_hsp_score,
            evalue_threshold: self.evalue_threshold,
            scheme: self.scheme,
            filter: self.filter,
            asymmetric: false,
            both_strands: false,
            threads: self.threads,
            max_gapped_span: self.max_gapped_span,
            subject_space: self.subject_space,
            index_backend: oris_index::IndexBackend::Auto,
        }
    }

    /// Validates invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.as_oris().validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_blastn_conventions() {
        let c = BlastConfig::default();
        assert_eq!(c.w, 11);
        assert_eq!(c.filter, FilterKind::Dust);
        assert_eq!(c.evalue_threshold, 1e-3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn matched_config_shares_thresholds() {
        let oris = oris_core::OrisConfig::default();
        let b = BlastConfig::matched(&oris);
        assert_eq!(b.w, oris.w);
        assert_eq!(b.min_hsp_score, oris.min_hsp_score);
        assert_eq!(b.evalue_threshold, oris.evalue_threshold);
        // but the filters differ, like the real programs
        assert_eq!(b.filter, FilterKind::Dust);
        assert_eq!(oris.filter, FilterKind::Entropy);
    }

    #[test]
    fn matched_respects_no_filter() {
        let oris = oris_core::OrisConfig::small(6);
        let b = BlastConfig::matched(&oris);
        assert_eq!(b.filter, FilterKind::None);
    }
}
