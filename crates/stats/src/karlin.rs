//! Karlin–Altschul parameters for ungapped local alignment scores.
//!
//! For an i.i.d. pairwise score distribution `{(s_i, p_i)}` with at least
//! one positive score and negative expectation, Karlin & Altschul (1990)
//! show the number of ungapped local alignments scoring ≥ S in a search
//! space of size `m·n` is Poisson with mean `K·m·n·e^{−λS}`, where:
//!
//! * `λ` is the unique positive solution of `Σ p_i e^{λ s_i} = 1`;
//! * `H = λ · Σ p_i s_i e^{λ s_i}` is the relative entropy (nats/pair);
//! * `K` is given for lattice score distributions (span `δ`) by
//!
//!   ```text
//!   K = δ·λ·e^{−2σ} / (H·(1 − e^{−λδ})),
//!   σ = Σ_{k≥1} (1/k)·[ P(S_k ≥ 0) + E(e^{λ S_k}; S_k < 0) ]
//!   ```
//!
//!   where `S_k` is the k-step random walk of scores (the series converges
//!   geometrically; we truncate when terms drop below 1e-12).
//!
//! For DNA with uniform background the score distribution is simply
//! `{(match, 1/4), (mismatch, 3/4)}` — see [`ScorePmf::dna_uniform`]. The
//! computed constants are validated against NCBI's published values for
//! the standard blastn reward/penalty pairs in the tests.

/// A probability mass function over integer scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ScorePmf {
    /// `(score, probability)` pairs; probabilities sum to 1.
    entries: Vec<(i32, f64)>,
}

impl ScorePmf {
    /// Builds a pmf from `(score, weight)` pairs (weights are normalized).
    ///
    /// # Panics
    /// Panics if no entry is positive-score, no entry is negative-score,
    /// or the expected score is non-negative (the Karlin–Altschul regime
    /// requires a negative drift with positive excursions).
    pub fn new(pairs: &[(i32, f64)]) -> ScorePmf {
        assert!(!pairs.is_empty(), "empty score distribution");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "weights must be positive");
        let mut entries: Vec<(i32, f64)> = pairs
            .iter()
            .filter(|&&(_, w)| w > 0.0)
            .map(|&(s, w)| (s, w / total))
            .collect();
        entries.sort_by_key(|&(s, _)| s);
        // merge duplicates
        let mut merged: Vec<(i32, f64)> = Vec::with_capacity(entries.len());
        for (s, p) in entries {
            match merged.last_mut() {
                Some((ls, lp)) if *ls == s => *lp += p,
                _ => merged.push((s, p)),
            }
        }
        let pmf = ScorePmf { entries: merged };
        assert!(
            pmf.entries.iter().any(|&(s, _)| s > 0),
            "need a positive score"
        );
        assert!(
            pmf.entries.iter().any(|&(s, _)| s < 0),
            "need a negative score"
        );
        assert!(
            pmf.mean() < 0.0,
            "expected score must be negative (got {})",
            pmf.mean()
        );
        pmf
    }

    /// DNA match/mismatch pmf under a uniform base composition:
    /// match with probability 1/4, mismatch 3/4.
    pub fn dna_uniform(match_score: i32, mismatch_score: i32) -> ScorePmf {
        ScorePmf::new(&[(match_score, 0.25), (mismatch_score, 0.75)])
    }

    /// Expected score per aligned pair.
    pub fn mean(&self) -> f64 {
        self.entries.iter().map(|&(s, p)| s as f64 * p).sum()
    }

    /// Moment generating function value `Σ p_i e^{λ s_i}`.
    fn mgf(&self, lambda: f64) -> f64 {
        self.entries
            .iter()
            .map(|&(s, p)| p * (lambda * s as f64).exp())
            .sum()
    }

    /// Lattice span: gcd of the scores carrying probability.
    fn span(&self) -> i32 {
        let mut g = 0i64;
        for &(s, _) in &self.entries {
            g = gcd(g, (s as i64).abs());
        }
        g.max(1) as i32
    }

    /// Highest / lowest scores.
    fn bounds(&self) -> (i32, i32) {
        (self.entries[0].0, self.entries.last().unwrap().0)
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The triple `(λ, K, H)` of ungapped Karlin–Altschul parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinParams {
    /// Scale of the scoring system (nats per score unit).
    pub lambda: f64,
    /// Search-space proportionality constant.
    pub k: f64,
    /// Relative entropy of the aligned-pair distribution (nats per pair).
    pub h: f64,
}

impl KarlinParams {
    /// Computes the parameters for `pmf`.
    pub fn from_pmf(pmf: &ScorePmf) -> KarlinParams {
        let lambda = solve_lambda(pmf);
        let h = entropy(pmf, lambda);
        let k = compute_k(pmf, lambda, h);
        KarlinParams { lambda, k, h }
    }

    /// Convenience constructor for DNA uniform-background scoring.
    pub fn dna(match_score: i32, mismatch_score: i32) -> KarlinParams {
        KarlinParams::from_pmf(&ScorePmf::dna_uniform(match_score, mismatch_score))
    }
}

/// Solves `Σ p_i e^{λ s_i} = 1` for the unique positive root by bisection.
fn solve_lambda(pmf: &ScorePmf) -> f64 {
    // mgf(0) = 1, mgf'(0) = mean < 0, mgf(λ) → ∞: the positive root is
    // bracketed by growing the upper bound until mgf > 1.
    let mut hi = 1.0f64;
    while pmf.mgf(hi) < 1.0 {
        hi *= 2.0;
        assert!(hi < 1e6, "lambda bracket failed");
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if pmf.mgf(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Relative entropy `H = λ · Σ p_i s_i e^{λ s_i}` (nats per pair).
fn entropy(pmf: &ScorePmf, lambda: f64) -> f64 {
    let s: f64 = pmf
        .entries
        .iter()
        .map(|&(s, p)| p * s as f64 * (lambda * s as f64).exp())
        .sum();
    lambda * s
}

/// The lattice series for K (Karlin & Altschul 1990, eq. for lattice
/// variables; the same series NCBI's `BlastKarlinLHtoK` evaluates).
fn compute_k(pmf: &ScorePmf, lambda: f64, h: f64) -> f64 {
    let (low, high) = pmf.bounds();
    let delta = pmf.span() as f64;

    // Distribution of S_k maintained as a dense vector over
    // [k*low, k*high], convolved with the step pmf each iteration.
    let step_len = (high - low) as usize + 1;
    let mut step = vec![0.0f64; step_len];
    for &(s, p) in &pmf.entries {
        step[(s - low) as usize] = p;
    }

    let mut dist = step.clone(); // distribution of S_1
    let mut sigma = 0.0f64;
    let max_iter = 400usize;
    for k in 1..=max_iter {
        let offset = k as i64 * low as i64; // score of dist[0]
        let mut inner = 0.0f64;
        for (i, &p) in dist.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let s = offset + i as i64;
            if s >= 0 {
                inner += p;
            } else {
                inner += p * (lambda * s as f64).exp();
            }
        }
        let term = inner / k as f64;
        sigma += term;
        if term < 1e-12 {
            break;
        }
        if k < max_iter {
            dist = convolve(&dist, &step);
        }
    }

    delta * lambda * (-2.0 * sigma).exp() / (h * (1.0 - (-lambda * delta).exp()))
}

fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0f64; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0.0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs()
    }

    #[test]
    fn lambda_satisfies_characteristic_equation() {
        for &(m, x) in &[(1, -3), (1, -2), (2, -3), (5, -4)] {
            let pmf = ScorePmf::dna_uniform(m, x);
            let p = KarlinParams::from_pmf(&pmf);
            assert!(
                (pmf.mgf(p.lambda) - 1.0).abs() < 1e-10,
                "mgf({}) = {}",
                p.lambda,
                pmf.mgf(p.lambda)
            );
            assert!(p.lambda > 0.0);
        }
    }

    #[test]
    fn blastn_1_minus3_matches_ncbi() {
        // NCBI ungapped values for reward 1 / penalty -3 (blast_stat.c):
        // lambda = 1.374, K = 0.711, H = 1.31.
        let p = KarlinParams::dna(1, -3);
        assert!(close(p.lambda, 1.374, 0.01), "lambda = {}", p.lambda);
        assert!(close(p.k, 0.711, 0.03), "K = {}", p.k);
        assert!(close(p.h, 1.31, 0.03), "H = {}", p.h);
    }

    #[test]
    fn blastn_1_minus2_closed_form() {
        // For reward 1 / penalty −2 with uniform background the
        // characteristic equation 0.25·e^λ + 0.75·e^{−2λ} = 1 reduces (with
        // y = e^λ) to the cubic y³ − 4y² + 3 = 0, whose relevant root is
        // y ≈ 3.7913 → λ ≈ 1.3327. Check the polynomial independently of
        // the bisection code path.
        let p = KarlinParams::dna(1, -2);
        let y = p.lambda.exp();
        assert!((y.powi(3) - 4.0 * y.powi(2) + 3.0).abs() < 1e-6, "y = {y}");
        assert!(close(p.lambda, 1.3327, 0.001), "lambda = {}", p.lambda);
    }

    #[test]
    fn blastn_2_minus3_closed_form() {
        // Reward 2 / penalty −3: with y = e^λ the characteristic equation
        // becomes y⁵ − 4y³ + 3 = 0; relevant root y ≈ 1.8847 → λ ≈ 0.6337.
        let p = KarlinParams::dna(2, -3);
        let y = p.lambda.exp();
        assert!((y.powi(5) - 4.0 * y.powi(3) + 3.0).abs() < 1e-6, "y = {y}");
        assert!(close(p.lambda, 0.6337, 0.001), "lambda = {}", p.lambda);
        assert!(p.k > 0.0 && p.k < 1.0);
    }

    #[test]
    fn k_is_in_unit_interval() {
        for &(m, x) in &[(1, -3), (1, -2), (2, -3), (1, -1), (3, -2)] {
            let p = KarlinParams::dna(m, x);
            assert!(p.k > 0.0 && p.k < 1.0, "K({m},{x}) = {}", p.k);
        }
    }

    #[test]
    fn entropy_positive() {
        for &(m, x) in &[(1, -3), (1, -2), (2, -3)] {
            let p = KarlinParams::dna(m, x);
            assert!(p.h > 0.0);
        }
    }

    #[test]
    fn stricter_mismatch_raises_lambda() {
        // Heavier mismatch penalties make high scores rarer per unit:
        // lambda increases toward ln(4) (the identity-run limit).
        let l2 = KarlinParams::dna(1, -2).lambda;
        let l3 = KarlinParams::dna(1, -3).lambda;
        let l9 = KarlinParams::dna(1, -9).lambda;
        assert!(l2 < l3 && l3 < l9);
        assert!(l9 < (4.0f64).ln());
    }

    #[test]
    fn pmf_normalizes_weights() {
        let pmf = ScorePmf::new(&[(1, 2.0), (-3, 6.0)]);
        assert_eq!(pmf, ScorePmf::dna_uniform(1, -3));
    }

    #[test]
    fn pmf_merges_duplicates() {
        let pmf = ScorePmf::new(&[(1, 0.125), (1, 0.125), (-3, 0.75)]);
        assert_eq!(pmf, ScorePmf::dna_uniform(1, -3));
    }

    #[test]
    fn span_detection() {
        assert_eq!(ScorePmf::dna_uniform(2, -2).span(), 2);
        assert_eq!(ScorePmf::dna_uniform(1, -3).span(), 1);
        assert_eq!(ScorePmf::dna_uniform(2, -4).span(), 2);
    }

    #[test]
    #[should_panic]
    fn rejects_positive_drift() {
        // match-heavy distribution with positive mean is outside the regime
        let _ = ScorePmf::new(&[(5, 0.9), (-1, 0.1)]);
    }

    #[test]
    #[should_panic]
    fn rejects_all_negative() {
        let _ = ScorePmf::new(&[(-1, 0.5), (-2, 0.5)]);
    }
}
