//! Expected values and bit scores.
//!
//! `E = K · m · n · e^{−λS}` for raw score `S` in a search space `m × n`.
//! SCORIS-N's convention (paper section 3.1) sets `m` to the total size of
//! bank 1 and `n` to the length of the *subject sequence* the alignment
//! was found in — not the whole of bank 2 — which [`SearchSpace::scoris`]
//! encodes. No edge-effect length adjustment is applied; the paper's
//! prototype does not describe one, and the sensitivity analysis in
//! section 3.4 attributes part of the BLASTN/SCORIS-N disagreement to
//! exactly such small differences in e-value computation.

use crate::karlin::KarlinParams;

/// A pairwise search space `m × n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpace {
    /// Effective length of the query side.
    pub m: f64,
    /// Effective length of the subject side.
    pub n: f64,
}

impl SearchSpace {
    /// Raw search space from two lengths.
    pub fn new(m: usize, n: usize) -> SearchSpace {
        SearchSpace {
            m: m as f64,
            n: n as f64,
        }
    }

    /// The SCORIS-N convention: bank-1 total size × subject sequence length.
    pub fn scoris(bank1_residues: usize, subject_len: usize) -> SearchSpace {
        SearchSpace::new(bank1_residues, subject_len)
    }

    /// Product `m·n`.
    pub fn product(&self) -> f64 {
        self.m * self.n
    }
}

/// E-value/bit-score calculator for one scoring system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EValueModel {
    /// The Karlin–Altschul parameters in force.
    pub params: KarlinParams,
}

impl EValueModel {
    /// Builds a model from precomputed parameters.
    pub fn new(params: KarlinParams) -> EValueModel {
        EValueModel { params }
    }

    /// Model for DNA uniform background with the given reward/penalty.
    pub fn dna(match_score: i32, mismatch_score: i32) -> EValueModel {
        EValueModel {
            params: KarlinParams::dna(match_score, mismatch_score),
        }
    }

    /// Expected number of alignments scoring ≥ `score` in `space`.
    pub fn evalue(&self, score: i32, space: SearchSpace) -> f64 {
        self.params.k * space.product() * (-self.params.lambda * score as f64).exp()
    }

    /// Normalized bit score `S' = (λS − ln K) / ln 2`.
    pub fn bit_score(&self, score: i32) -> f64 {
        (self.params.lambda * score as f64 - self.params.k.ln()) / std::f64::consts::LN_2
    }

    /// E-value from a bit score: `E = m·n·2^{−S'}`.
    pub fn evalue_from_bits(&self, bits: f64, space: SearchSpace) -> f64 {
        space.product() * (-bits).exp2()
    }

    /// The minimum raw score whose e-value is ≤ `threshold` in `space`
    /// (the cutoff used to prune alignments, paper's `-e 0.001`).
    pub fn score_cutoff(&self, threshold: f64, space: SearchSpace) -> i32 {
        // E(S) = K m n e^{-λS} ≤ t  ⇔  S ≥ ln(K m n / t) / λ
        let s = ((self.params.k * space.product() / threshold).ln() / self.params.lambda).ceil();
        s.max(1.0) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EValueModel {
        EValueModel::dna(1, -3)
    }

    #[test]
    fn evalue_decreases_with_score() {
        let m = model();
        let sp = SearchSpace::new(1_000_000, 1_000);
        let e1 = m.evalue(20, sp);
        let e2 = m.evalue(30, sp);
        assert!(e2 < e1);
        assert!(e2 > 0.0);
    }

    #[test]
    fn evalue_scales_linearly_with_space() {
        let m = model();
        let e1 = m.evalue(25, SearchSpace::new(1000, 1000));
        let e2 = m.evalue(25, SearchSpace::new(2000, 1000));
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bitscore_roundtrip() {
        let m = model();
        let sp = SearchSpace::new(12_345, 678);
        for score in [15, 25, 40, 80] {
            let direct = m.evalue(score, sp);
            let via_bits = m.evalue_from_bits(m.bit_score(score), sp);
            assert!(
                (direct - via_bits).abs() <= 1e-9 * direct.max(1e-300),
                "score {score}: {direct} vs {via_bits}"
            );
        }
    }

    #[test]
    fn cutoff_is_tight() {
        let m = model();
        let sp = SearchSpace::new(1_000_000, 10_000);
        let t = 1e-3;
        let c = m.score_cutoff(t, sp);
        assert!(m.evalue(c, sp) <= t, "cutoff not sufficient");
        assert!(m.evalue(c - 1, sp) > t, "cutoff not tight");
    }

    #[test]
    fn scoris_convention_uses_subject_length() {
        let sp = SearchSpace::scoris(5_000_000, 800);
        assert_eq!(sp.m, 5_000_000.0);
        assert_eq!(sp.n, 800.0);
    }

    #[test]
    fn bit_scores_increase_with_raw_score() {
        let m = model();
        assert!(m.bit_score(30) > m.bit_score(20));
    }
}
