//! # oris-stats — Karlin–Altschul statistics for the ORIS reproduction
//!
//! SCORIS-N attaches an expected value to every alignment and sorts its
//! output by it (paper sections 2.4 and 3.1): "The SCORIS-N program
//! considers the size of the first bank and the size of the sequence from
//! which the alignment is found in the second bank as parameters to
//! compute the expected value."
//!
//! This crate provides:
//!
//! * [`KarlinParams`]: the ungapped Karlin–Altschul parameters `λ`, `K`
//!   and `H` computed from a match/mismatch score distribution — `λ` by
//!   bisection on the characteristic equation, `K` by the lattice series
//!   of Karlin & Altschul (1990), `H` analytically;
//! * [`EValueModel`]: e-values (`E = K·m·n·e^{−λS}`) and bit scores for a
//!   given search space, with the SCORIS-N convention (bank 1 size ×
//!   subject sequence length) available as a helper.

pub mod evalue;
pub mod karlin;

pub use evalue::{EValueModel, SearchSpace};
pub use karlin::{KarlinParams, ScorePmf};
