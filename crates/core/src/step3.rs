//! Step 3 — gapped extension of HSPs (paper section 2.3).
//!
//! HSPs arrive sorted by diagonal number. Each HSP not already contained
//! in a previously computed gapped alignment is extended from its midpoint
//! in both directions by X-drop dynamic programming (`oris-align::gapped`)
//! and the two halves are merged.
//!
//! The containment test mirrors the paper's: "a gapped extension will be
//! done only if an HSP does not belong to a gapped alignment previously
//! computed… both HSPs and gapped alignments are sorted using the same
//! criteria (diagonal number)… testing this condition does not involve
//! time consuming search… due to the locality of the data". We keep an
//! *active window* of recent alignments ordered by their maximum diagonal;
//! since HSPs arrive in increasing diagonal order, alignments whose
//! diagonal range lies entirely below the current HSP diagonal (minus the
//! band slack) can never contain a future HSP and are retired. An HSP is
//! contained when its midpoint falls inside an alignment's coordinate box
//! and its diagonal within the alignment's [min, max] diagonal range.
//!
//! Parallel mode groups HSPs by `(query record, subject record)` — gapped
//! alignments never cross sentinel boundaries, so groups are independent —
//! and processes groups with rayon, preserving deterministic output by
//! sorting groups and concatenating in order.
//!
//! The streaming pipeline enters through [`gapped_alignments_into`]: each
//! group's alignments are handed to a [`Step3Emit`] receiver as soon as
//! the group is computed (in ascending group-key order, so emission stays
//! deterministic for any thread count), and groups are computed in bounded
//! waves — at most a few groups' alignments are ever live at once instead
//! of the whole query's. [`gapped_alignments`] is the collect-everything
//! wrapper over the same machinery.

use oris_align::{extend_gapped_both, AlignStats, GappedParams};
use oris_seqio::Bank;
use rayon::prelude::*;

use crate::config::OrisConfig;
use crate::hsp::Hsp;

/// A gapped alignment in global bank coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct GappedAlignment {
    /// Start on bank 1 (global, inclusive).
    pub start1: usize,
    /// Start on bank 2 (global, inclusive).
    pub start2: usize,
    /// Characters consumed on bank 1.
    pub len1: usize,
    /// Characters consumed on bank 2.
    pub len2: usize,
    /// Alignment score (affine gaps).
    pub score: i32,
    /// Column statistics (identity, mismatches, gap openings).
    pub stats: AlignStats,
    /// Smallest diagonal touched by the alignment path.
    pub diag_min: i64,
    /// Largest diagonal touched by the alignment path.
    pub diag_max: i64,
}

impl GappedAlignment {
    /// End on bank 1 (exclusive).
    pub fn end1(&self) -> usize {
        self.start1 + self.len1
    }

    /// End on bank 2 (exclusive).
    pub fn end2(&self) -> usize {
        self.start2 + self.len2
    }

    /// Whether the point `(p1, p2, diag)` lies inside this alignment's
    /// coordinate box and diagonal band.
    pub fn contains_point(&self, p1: usize, p2: usize, diag: i64) -> bool {
        p1 >= self.start1
            && p1 < self.end1()
            && p2 >= self.start2
            && p2 < self.end2()
            && diag >= self.diag_min
            && diag <= self.diag_max
    }
}

/// Counters reported by step 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step3Stats {
    /// HSPs skipped because an existing alignment contained them.
    pub skipped_contained: u64,
    /// Gapped extensions performed.
    pub extended: u64,
}

impl Step3Stats {
    /// Sums the counters of two reports (used by group concatenation and
    /// by the pipeline's strand merge).
    pub fn merge(mut self, o: Step3Stats) -> Step3Stats {
        self.skipped_contained += o.skipped_contained;
        self.extended += o.extended;
        self
    }
}

/// Extends one HSP from its midpoint and packages the result.
fn extend_one(bank1: &Bank, bank2: &Bank, hsp: &Hsp, params: &GappedParams) -> GappedAlignment {
    let (m1, m2) = hsp.midpoint();
    let (merged, start1, start2) = extend_gapped_both(bank1.data(), bank2.data(), m1, m2, params);
    let stats = AlignStats::from_ops(&merged.ops);
    // Diagonal range along the path.
    let mut diag = start1 as i64 - start2 as i64;
    let mut dmin = diag;
    let mut dmax = diag;
    for op in &merged.ops {
        match op {
            oris_align::AlignOp::Ins => {
                diag += 1;
                dmax = dmax.max(diag);
            }
            oris_align::AlignOp::Del => {
                diag -= 1;
                dmin = dmin.min(diag);
            }
            _ => {}
        }
    }
    GappedAlignment {
        start1,
        start2,
        len1: merged.len1,
        len2: merged.len2,
        score: merged.score,
        stats,
        diag_min: dmin,
        diag_max: dmax,
    }
}

/// Sequential step 3 over diagonal-sorted HSPs.
fn gapped_serial(
    bank1: &Bank,
    bank2: &Bank,
    hsps: &[Hsp],
    params: &GappedParams,
) -> (Vec<GappedAlignment>, Step3Stats) {
    let mut stats = Step3Stats::default();
    let mut out: Vec<GappedAlignment> = Vec::new();
    // Active window: indexes into `out`, retired once their diag_max falls
    // behind the sweep (with slack for the midpoint offset).
    let mut active: Vec<usize> = Vec::new();

    for hsp in hsps {
        let (m1, m2) = hsp.midpoint();
        let diag = hsp.diag();
        // Retire alignments that end (in diagonal terms) before the sweep.
        active.retain(|&i| out[i].diag_max >= diag);

        let contained = active.iter().any(|&i| out[i].contains_point(m1, m2, diag));
        if contained {
            stats.skipped_contained += 1;
            continue;
        }
        stats.extended += 1;
        let aln = extend_one(bank1, bank2, hsp, params);
        active.push(out.len());
        out.push(aln);
    }
    (out, stats)
}

/// Receiver for step 3's streamed output: one call per
/// `(query record, subject record)` group, in ascending group-key order,
/// made as soon as the group's alignments exist. The streaming pipeline
/// implements this with a closure that runs step 4 on the group and feeds
/// the records straight into a `RecordSink`, so whole-query alignment
/// vectors never materialize.
pub trait Step3Emit {
    /// Delivers one group's gapped alignments (ownership transfers — the
    /// receiver is the buffer's last stop).
    fn group(&mut self, alns: Vec<GappedAlignment>);
}

impl<F: FnMut(Vec<GappedAlignment>)> Step3Emit for F {
    fn group(&mut self, alns: Vec<GappedAlignment>) {
        self(alns)
    }
}

/// Shared step-3 scheduler: groups HSPs by record pair, processes the
/// groups in parallel in waves of `wave` groups, and emits each group in
/// ascending key order as its wave completes. `wave = usize::MAX` is one
/// wave — maximum overlap, no memory bound — for collect-everything
/// callers; a small wave bounds in-flight alignments for streaming
/// callers at the cost of a barrier per wave.
fn gapped_grouped(
    bank1: &Bank,
    bank2: &Bank,
    hsps: &[Hsp],
    cfg: &OrisConfig,
    wave: usize,
    emit: &mut dyn Step3Emit,
) -> Step3Stats {
    let params = GappedParams {
        scheme: cfg.scheme,
        xdrop: cfg.xdrop_gapped,
        max_span: cfg.max_gapped_span,
        max_cells: 1 << 24,
    };

    // Group HSPs by sequence pair. Alignments cannot cross sentinels, so
    // groups are fully independent.
    use std::collections::HashMap;
    // oris-lint: allow(det-hash) — grouping only; group keys are collected and sorted before processing
    let mut groups: HashMap<(usize, usize), Vec<Hsp>> = HashMap::new();
    for h in hsps {
        let r1 = bank1
            .locate(h.start1 as usize)
            .expect("HSP start must lie inside a sequence");
        let r2 = bank2
            .locate(h.start2 as usize)
            .expect("HSP start must lie inside a sequence");
        groups.entry((r1, r2)).or_default().push(*h);
    }
    let mut keys: Vec<(usize, usize)> = groups.keys().copied().collect();
    keys.sort_unstable();

    let mut stats = Step3Stats::default();
    for wave_keys in keys.chunks(wave.max(1)) {
        let results: Vec<(Vec<GappedAlignment>, Step3Stats)> = wave_keys
            .par_iter()
            .map(|k| {
                // Within a group HSPs keep their global diagonal order.
                let group = &groups[k];
                gapped_serial(bank1, bank2, group, &params)
            })
            .collect();
        for (v, s) in results {
            stats = stats.merge(s);
            emit.group(v);
        }
    }
    stats
}

/// Runs step 3, parallelizing over `(record1, record2)` groups and
/// streaming each group's alignments into `emit` the moment the group is
/// done. Groups are computed in waves of `2 × worker-count`, so at most
/// one wave's alignments are live at a time; within and across waves,
/// emission follows ascending group key, which keeps the stream
/// deterministic for any thread count.
pub fn gapped_alignments_into(
    bank1: &Bank,
    bank2: &Bank,
    hsps: &[Hsp],
    cfg: &OrisConfig,
    emit: &mut dyn Step3Emit,
) -> Step3Stats {
    // Wave width: enough groups to occupy every worker with some slack for
    // uneven group sizes, small enough that in-flight alignments stay
    // bounded by the wave, not the query.
    let wave = rayon::current_num_threads().max(1) * 2;
    gapped_grouped(bank1, bank2, hsps, cfg, wave, emit)
}

/// Collect-everything wrapper: the pre-streaming signature, kept for the
/// ablation harness, the brute-force references and any caller that
/// genuinely needs the whole vector. Runs all groups as one wave —
/// callers that hold every alignment anyway should not pay the streaming
/// path's per-wave barriers.
pub fn gapped_alignments(
    bank1: &Bank,
    bank2: &Bank,
    hsps: &[Hsp],
    cfg: &OrisConfig,
) -> (Vec<GappedAlignment>, Step3Stats) {
    let mut out: Vec<GappedAlignment> = Vec::new();
    let mut collect = |mut alns: Vec<GappedAlignment>| out.append(&mut alns);
    let stats = gapped_grouped(bank1, bank2, hsps, cfg, usize::MAX, &mut collect);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_index::{BankIndex, IndexConfig};
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn pipeline_to_step3(
        b1: &Bank,
        b2: &Bank,
        cfg: &OrisConfig,
    ) -> (Vec<GappedAlignment>, Step3Stats) {
        let i1 = BankIndex::build(b1, IndexConfig::full(cfg.w));
        let i2 = BankIndex::build(b2, IndexConfig::full(cfg.w));
        let (hsps, _) = crate::step2::find_hsps(b1, &i1, b2, &i2, cfg);
        gapped_alignments(b1, b2, &hsps, cfg)
    }

    fn cfg(w: usize) -> OrisConfig {
        OrisConfig {
            w,
            min_hsp_score: w as i32 + 2,
            ..OrisConfig::small(w)
        }
    }

    #[test]
    fn identical_sequences_one_alignment() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let (alns, stats) = pipeline_to_step3(&b1, &b2, &cfg(6));
        assert_eq!(alns.len(), 1, "{alns:?}");
        assert_eq!(alns[0].len1, s.len());
        assert_eq!(alns[0].score, s.len() as i32);
        assert_eq!(stats.extended, 1);
    }

    #[test]
    fn gapped_alignment_bridges_indel() {
        // Two HSP-diagonals separated by a 2-nt insertion: step 3 must
        // produce ONE gapped alignment spanning both, and the second HSP
        // must be skipped as contained.
        let left = "ATGGCGTACGTTAGCCTAGG";
        let right = "CTTAACGGATCGATCCGGTA";
        let s1 = format!("{left}{right}");
        let s2 = format!("{left}GG{right}");
        let b1 = bank(&[&s1]);
        let b2 = bank(&[&s2]);
        let (alns, stats) = pipeline_to_step3(&b1, &b2, &cfg(8));
        assert_eq!(alns.len(), 1, "{alns:?}");
        let a = &alns[0];
        assert_eq!(a.len1, s1.len());
        assert_eq!(a.len2, s2.len());
        assert_eq!(a.stats.gap_opens, 1);
        assert_eq!(a.stats.gap_columns, 2);
        assert_eq!(a.diag_max - a.diag_min, 2);
        assert_eq!(stats.skipped_contained, 1);
        assert_eq!(stats.extended, 1);
    }

    #[test]
    fn distinct_homologies_stay_distinct() {
        // The same core aligned at two distant subject locations: two
        // alignments, neither suppressed.
        let core = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("{core}TTTTTTTTTTTTTTTTTTTTTTTTTTTTTT{core}")]);
        let (alns, _) = pipeline_to_step3(&b1, &b2, &cfg(8));
        assert_eq!(alns.len(), 2, "{alns:?}");
    }

    #[test]
    fn parallel_groups_match_serial() {
        let core1 = "ATGGCGTACGTTAGCCTAGGCTTA";
        let core2 = "GGCCATTAGGCCATTAACGGTTAA";
        let b1 = bank(&[core1, core2, &format!("{core1}AC{core2}")]);
        let b2 = bank(&[core2, core1]);
        let c = cfg(7);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let (hsps, _) = crate::step2::find_hsps(&b1, &i1, &b2, &i2, &c);

        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (a1, s1) = pool1.install(|| gapped_alignments(&b1, &b2, &hsps, &c));
        let (a4, s4) = pool4.install(|| gapped_alignments(&b1, &b2, &hsps, &c));
        assert_eq!(a1, a4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn containment_respects_coordinates_not_just_diagonal() {
        // The core appears twice in each bank → 4 distinct cross
        // alignments, two of which share diagonal 0 but sit far apart
        // along it: neither may be suppressed by the other.
        let core = "ATGGCGTACGTTAGCCTAGGCTTA";
        let filler1 = "CCCCCCCCCCCCCCCCCCCCCCCCCCCCCC";
        let filler2 = "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGG";
        let b1 = bank(&[&format!("{core}{filler1}{core}")]);
        let b2 = bank(&[&format!("{core}{filler2}{core}")]);
        let (alns, _) = pipeline_to_step3(&b1, &b2, &cfg(8));
        assert_eq!(alns.len(), 4, "{alns:?}");
        let on_diag0: Vec<_> = alns.iter().filter(|a| a.diag_min == 0).collect();
        assert_eq!(on_diag0.len(), 2);
        assert_ne!(on_diag0[0].start1, on_diag0[1].start1);
    }

    #[test]
    fn stats_sum_to_hsp_count() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let b1 = bank(&[core]);
        let b2 = bank(&[core]);
        let c = cfg(6);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let (hsps, _) = crate::step2::find_hsps(&b1, &i1, &b2, &i2, &c);
        let (_, st) = gapped_alignments(&b1, &b2, &hsps, &c);
        assert_eq!(st.extended + st.skipped_contained, hsps.len() as u64);
    }
}
