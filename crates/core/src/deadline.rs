//! Cooperative per-query deadlines and cancellation.
//!
//! A database search is a long, CPU-bound scan with no natural
//! preemption point: one adversarial repeat-heavy query can sit in the
//! quadratic corner of step 2 (a single hot seed code whose
//! `|X1|·|X2|` pair product dwarfs the rest of the code space) for
//! arbitrarily long. A serving deployment needs *bounded per-query
//! cost*, which a pipeline of pure functions can only provide
//! cooperatively: the hot loops consult a shared token at their natural
//! boundaries and bail out cleanly.
//!
//! [`Deadline`] is that token — a cheap, clonable handle carrying an
//! optional wall-clock expiry and a cancel flag:
//!
//! * [`Deadline::none`] (the [`Default`]) is **disarmed**: every check
//!   compiles down to one branch on an `Option` discriminant, no clock
//!   read, so code that threads a deadline through pays nothing when
//!   the caller didn't ask for one (the no-fault/no-deadline path stays
//!   byte-identical *and* cost-identical).
//! * [`Deadline::after`] / [`Deadline::at`] arm a wall-clock expiry.
//! * [`Deadline::cancellable`] arms a pure cancel token with no expiry;
//!   any clone can revoke the work with [`Deadline::cancel`] (e.g. a
//!   supervisor thread timing out a request).
//!
//! Checks happen at *boundaries* (a volume, a step-2 partition, a batch
//! of extension pairs), never mid-extension, so an expired run stops at
//! a clean point having produced a well-formed error — the pipeline's
//! determinism guarantees are unaffected because a deadline never
//! changes what is computed, only whether the run completes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use oris_obs::monotonic_now;

/// The error a deadline-guarded computation returns when its [`Deadline`]
/// expires or is cancelled. Carries no payload: the caller that armed the
/// deadline knows the budget it set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline exceeded")
    }
}

impl std::error::Error for DeadlineExceeded {}

#[derive(Debug)]
struct Inner {
    /// Expiry as an offset from the `oris-obs` monotonic epoch;
    /// `None` for a pure cancel token.
    expires: Option<Duration>,
    /// Set by [`Deadline::cancel`] from any clone.
    cancelled: AtomicBool,
}

/// A cooperative deadline / cancel token. See the [module docs](self).
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same
/// state: cancelling one clone cancels them all, which is what lets a
/// parallel step-2 run — many partitions checking the same token — stop
/// collectively once any observer sees the expiry.
#[derive(Debug, Clone, Default)]
pub struct Deadline {
    inner: Option<Arc<Inner>>,
}

impl Deadline {
    /// The disarmed deadline: never expires, [`Deadline::check`] is one
    /// branch with no clock read.
    pub const fn none() -> Deadline {
        Deadline { inner: None }
    }

    /// A deadline expiring `budget` from now. A budget beyond the
    /// clock's representable range can never be reached, so it degrades
    /// to a pure cancel token instead of panicking.
    pub fn after(budget: Duration) -> Deadline {
        match monotonic_now().checked_add(budget) {
            Some(t) => Deadline::at(t),
            None => Deadline::cancellable(),
        }
    }

    /// A deadline expiring at `t`, an offset from the
    /// [`oris_obs::monotonic_now`] epoch (the workspace's one clock).
    pub fn at(t: Duration) -> Deadline {
        Deadline {
            inner: Some(Arc::new(Inner {
                expires: Some(t),
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// A pure cancel token: no wall-clock expiry, trips only when some
    /// clone calls [`Deadline::cancel`].
    pub fn cancellable() -> Deadline {
        Deadline {
            inner: Some(Arc::new(Inner {
                expires: None,
                cancelled: AtomicBool::new(false),
            })),
        }
    }

    /// Revokes the work guarded by this token (and every clone of it).
    /// A no-op on a disarmed deadline.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether this token can ever trip (armed with an expiry or as a
    /// cancel token). Hot loops use this to skip per-iteration clock
    /// reads entirely on the disarmed path.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the deadline has passed or the token was cancelled.
    /// Reads the clock only when armed with an expiry.
    #[inline]
    pub fn expired(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Relaxed)
                    || inner.expires.is_some_and(|t| monotonic_now() >= t)
            }
        }
    }

    /// [`Deadline::expired`] as a `Result`, for `?`-style propagation
    /// out of guarded loops.
    #[inline]
    pub fn check(&self) -> Result<(), DeadlineExceeded> {
        if self.expired() {
            Err(DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_armed());
        assert!(!d.expired());
        assert_eq!(d.check(), Ok(()));
        d.cancel(); // no-op
        assert!(!d.expired());
    }

    #[test]
    fn default_is_disarmed() {
        assert!(!Deadline::default().is_armed());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_armed());
        assert!(d.expired());
        assert_eq!(d.check(), Err(DeadlineExceeded));
    }

    #[test]
    fn generous_budget_does_not_expire() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(d.is_armed());
        assert!(!d.expired());
    }

    #[test]
    fn cancel_trips_every_clone() {
        let d = Deadline::cancellable();
        let observer = d.clone();
        assert!(!observer.expired());
        d.cancel();
        assert!(observer.expired());
        assert_eq!(observer.check(), Err(DeadlineExceeded));
    }

    #[test]
    fn past_offset_is_expired() {
        let d = Deadline::at(monotonic_now().saturating_sub(Duration::from_millis(1)));
        assert!(d.expired());
    }

    #[test]
    fn error_displays_cleanly() {
        assert_eq!(DeadlineExceeded.to_string(), "deadline exceeded");
    }
}
