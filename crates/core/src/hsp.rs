//! High Scoring Pairs — ungapped alignments between two banks.

/// One ungapped alignment (HSP) in global bank coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hsp {
    /// Start on bank 1 (global position).
    pub start1: u32,
    /// Start on bank 2 (global position).
    pub start2: u32,
    /// Length on both banks (ungapped).
    pub len: u32,
    /// Ungapped score.
    pub score: i32,
}

impl Hsp {
    /// Diagonal number `start1 − start2` — the sort key of steps 2→3
    /// ("the storage is made by sorting the HSPs by diagonal number to
    /// optimize data access of the next step").
    #[inline]
    pub fn diag(&self) -> i64 {
        self.start1 as i64 - self.start2 as i64
    }

    /// End on bank 1 (exclusive).
    #[inline]
    pub fn end1(&self) -> u32 {
        self.start1 + self.len
    }

    /// End on bank 2 (exclusive).
    #[inline]
    pub fn end2(&self) -> u32 {
        self.start2 + self.len
    }

    /// Midpoint pair, the anchor of the step-3 gapped extension.
    #[inline]
    pub fn midpoint(&self) -> (usize, usize) {
        (
            (self.start1 + self.len / 2) as usize,
            (self.start2 + self.len / 2) as usize,
        )
    }

    /// Canonical ordering: by diagonal, then start, then length.
    pub fn diag_order(a: &Hsp, b: &Hsp) -> std::cmp::Ordering {
        a.diag()
            .cmp(&b.diag())
            .then(a.start1.cmp(&b.start1))
            .then(a.len.cmp(&b.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_and_ends() {
        let h = Hsp {
            start1: 100,
            start2: 40,
            len: 25,
            score: 20,
        };
        assert_eq!(h.diag(), 60);
        assert_eq!(h.end1(), 125);
        assert_eq!(h.end2(), 65);
        assert_eq!(h.midpoint(), (112, 52));
    }

    #[test]
    fn negative_diagonals() {
        let h = Hsp {
            start1: 5,
            start2: 50,
            len: 10,
            score: 10,
        };
        assert_eq!(h.diag(), -45);
    }

    #[test]
    fn sort_by_diag_then_start() {
        let mut v = [
            Hsp {
                start1: 9,
                start2: 0,
                len: 5,
                score: 5,
            },
            Hsp {
                start1: 0,
                start2: 5,
                len: 5,
                score: 5,
            },
            Hsp {
                start1: 5,
                start2: 5,
                len: 5,
                score: 5,
            },
            Hsp {
                start1: 2,
                start2: 2,
                len: 5,
                score: 5,
            },
        ];
        v.sort_by(Hsp::diag_order);
        let diags: Vec<i64> = v.iter().map(|h| h.diag()).collect();
        assert_eq!(diags, vec![-5, 0, 0, 9]);
        assert!(v[1].start1 < v[2].start1);
    }
}
