//! Step 4 — e-values, sorting, `-m 8` records (paper section 2.4).
//!
//! Alignments are mapped from global bank coordinates to 1-based
//! sequence-local coordinates, given an expected value computed with the
//! SCORIS-N convention (bank-1 total size × subject sequence length,
//! paper section 3.1), filtered by the e-value threshold and sorted by
//! increasing e-value ("the alignments are first sorted … according to a
//! chosen criteria, for example the expected value attached to each
//! alignment").

use oris_eval::M8Record;
use oris_seqio::Bank;
use oris_stats::{EValueModel, SearchSpace};

use crate::config::OrisConfig;
use crate::step3::GappedAlignment;

/// Counters reported by step 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step4Stats {
    /// Alignments dropped by the e-value threshold.
    pub dropped_by_evalue: u64,
    /// Records emitted.
    pub emitted: u64,
}

impl Step4Stats {
    /// Sums the counters of two reports (the pipeline's strand merge).
    pub fn merge(mut self, o: Step4Stats) -> Step4Stats {
        self.dropped_by_evalue += o.dropped_by_evalue;
        self.emitted += o.emitted;
        self
    }
}

/// Converts gapped alignments to sorted, filtered `-m 8` records.
pub fn display_records(
    bank1: &Bank,
    bank2: &Bank,
    alignments: &[GappedAlignment],
    cfg: &OrisConfig,
) -> (Vec<M8Record>, Step4Stats) {
    display_records_with_query_space(bank1, bank2, alignments, cfg, bank1.num_residues())
}

/// Like [`display_records`], with an explicit query-side search-space size.
///
/// Needed when `bank1` is a *batch* of a larger bank (the baseline's
/// blastall-style query batching): e-values must use the full bank size so
/// batched and one-pass runs report identical records.
pub fn display_records_with_query_space(
    bank1: &Bank,
    bank2: &Bank,
    alignments: &[GappedAlignment],
    cfg: &OrisConfig,
    query_residues: usize,
) -> (Vec<M8Record>, Step4Stats) {
    display_records_inner(bank1, bank2, alignments, cfg, query_residues, false)
}

/// Minus-strand variant: `rc_bank2` is the reverse complement of the
/// original subject bank, and emitted subject coordinates are mapped back
/// to the original records' plus-strand numbering, BLAST style
/// (`sstart > send`).
///
/// The mapping happens *here*, where each alignment still resolves to a
/// record **index** via [`Bank::locate`] — a hit inside the record of
/// length `L` at local `[s, e]` becomes `[L − s + 1, L − e + 1]`. Mapping
/// later from the final records would have to go through the record
/// *name*, which silently picks the wrong length when the subject bank
/// contains duplicate record names (the pre-fix behaviour).
/// `reverse_complement()` preserves record order and lengths, so the
/// index-resolved `rec2.len` is always the right one.
pub fn display_records_minus_strand(
    bank1: &Bank,
    rc_bank2: &Bank,
    alignments: &[GappedAlignment],
    cfg: &OrisConfig,
) -> (Vec<M8Record>, Step4Stats) {
    display_records_inner(bank1, rc_bank2, alignments, cfg, bank1.num_residues(), true)
}

fn display_records_inner(
    bank1: &Bank,
    bank2: &Bank,
    alignments: &[GappedAlignment],
    cfg: &OrisConfig,
    query_residues: usize,
    flip_subject: bool,
) -> (Vec<M8Record>, Step4Stats) {
    let model = EValueModel::dna(cfg.scheme.matsch, cfg.scheme.mismatch);
    let m = query_residues;
    let mut stats = Step4Stats::default();
    let mut out = Vec::with_capacity(alignments.len());

    for a in alignments {
        if a.len1 == 0 || a.len2 == 0 {
            continue;
        }
        let r1 = bank1
            .locate(a.start1)
            .expect("alignment start must lie inside a query sequence");
        let r2 = bank2
            .locate(a.start2)
            .expect("alignment start must lie inside a subject sequence");
        let rec1 = bank1.record(r1);
        let rec2 = bank2.record(r2);
        let space = SearchSpace::scoris(m, rec2.len);
        let evalue = model.evalue(a.score, space);
        if evalue > cfg.evalue_threshold {
            stats.dropped_by_evalue += 1;
            continue;
        }
        stats.emitted += 1;
        let (sstart, send) = if flip_subject {
            // rc-local `[s, e]` ↦ original plus-strand `[L − s + 1, L − e + 1]`
            // (1-based): reported with sstart > send, BLAST's minus-strand
            // convention.
            (
                rec2.len - rec2.to_local(a.start2),
                rec2.len - (rec2.to_local(a.start2) + a.len2) + 1,
            )
        } else {
            (
                rec2.to_local(a.start2) + 1,
                rec2.to_local(a.start2) + a.len2,
            )
        };
        out.push(M8Record {
            qid: rec1.name.clone(),
            sid: rec2.name.clone(),
            pident: a.stats.identity_pct(),
            length: a.stats.length,
            mismatch: a.stats.mismatches,
            gapopen: a.stats.gap_opens,
            qstart: rec1.to_local(a.start1) + 1,
            qend: rec1.to_local(a.start1) + a.len1,
            sstart,
            send,
            evalue,
            bitscore: model.bit_score(a.score),
        });
    }

    // Sort by e-value (total_cmp: a NaN from a degenerate statistical
    // model must not panic the comparator), tie-broken deterministically
    // by coordinates.
    out.sort_by(|x, y| {
        x.evalue
            .total_cmp(&y.evalue)
            .then_with(|| x.qid.cmp(&y.qid))
            .then_with(|| x.sid.cmp(&y.sid))
            .then_with(|| x.qstart.cmp(&y.qstart))
            .then_with(|| x.sstart.cmp(&y.sstart))
    });
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step3::GappedAlignment;
    use oris_align::AlignStats;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn perfect_alignment(start1: usize, start2: usize, len: usize) -> GappedAlignment {
        let ops = vec![oris_align::AlignOp::Match; len];
        GappedAlignment {
            start1,
            start2,
            len1: len,
            len2: len,
            score: len as i32,
            stats: AlignStats::from_ops(&ops),
            diag_min: start1 as i64 - start2 as i64,
            diag_max: start1 as i64 - start2 as i64,
        }
    }

    fn cfg() -> OrisConfig {
        OrisConfig {
            evalue_threshold: 10.0,
            ..OrisConfig::small(6)
        }
    }

    #[test]
    fn coordinates_are_one_based_local() {
        let b1 = bank(&["AAAA", "ACGTACGTACGTACGTACGTACGTACGTACGT"]);
        let b2 = bank(&["ACGTACGTACGTACGTACGTACGTACGTACGT"]);
        // alignment of b1/s1 positions 0..32 with b2/s0: global start1 is
        // record(1).start
        let g1 = b1.record(1).start;
        let g2 = b2.record(0).start;
        let alns = vec![perfect_alignment(g1, g2, 32)];
        let (recs, st) = display_records(&b1, &b2, &alns, &cfg());
        assert_eq!(st.emitted, 1);
        let r = &recs[0];
        assert_eq!(r.qid, "s1");
        assert_eq!(r.sid, "s0");
        assert_eq!((r.qstart, r.qend), (1, 32));
        assert_eq!((r.sstart, r.send), (1, 32));
        assert!((r.pident - 100.0).abs() < 1e-9);
        assert_eq!(r.mismatch, 0);
        assert_eq!(r.gapopen, 0);
    }

    #[test]
    fn evalue_threshold_filters() {
        let s = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let alns = vec![perfect_alignment(1, 1, 8)]; // short, weak score
        let strict = OrisConfig {
            evalue_threshold: 1e-12,
            ..cfg()
        };
        let (recs, st) = display_records(&b1, &b2, &alns, &strict);
        assert!(recs.is_empty());
        assert_eq!(st.dropped_by_evalue, 1);
    }

    #[test]
    fn sorted_by_evalue() {
        let s = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let alns = vec![
            perfect_alignment(1, 1, 10),
            perfect_alignment(1, 1, 30), // stronger → smaller e-value
        ];
        let (recs, _) = display_records(&b1, &b2, &alns, &cfg());
        assert_eq!(recs.len(), 2);
        assert!(recs[0].evalue <= recs[1].evalue);
        assert_eq!(recs[0].length, 30);
    }

    #[test]
    fn subject_length_enters_search_space() {
        // Same alignment against a short vs a long subject sequence: the
        // long-subject e-value is larger (SCORIS-N convention).
        let q = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[q]);
        let short = bank(&[q]);
        let long = bank(&[&format!("{}{}", q, "T".repeat(2000))]);
        let alns = vec![perfect_alignment(1, 1, 20)];
        let (r_short, _) = display_records(&b1, &short, &alns, &cfg());
        let (r_long, _) = display_records(&b1, &long, &alns, &cfg());
        assert!(r_long[0].evalue > r_short[0].evalue);
    }

    #[test]
    fn empty_alignment_skipped() {
        let b1 = bank(&["ACGTACGT"]);
        let b2 = bank(&["ACGTACGT"]);
        let mut a = perfect_alignment(1, 1, 4);
        a.len1 = 0;
        a.len2 = 0;
        let (recs, st) = display_records(&b1, &b2, &[a], &cfg());
        assert!(recs.is_empty());
        assert_eq!(st.emitted, 0);
    }
}
