//! Step 4 — e-values, sorting, `-m 8` records (paper section 2.4).
//!
//! Alignments are mapped from global bank coordinates to 1-based
//! sequence-local coordinates, given an expected value computed with the
//! SCORIS-N convention (bank-1 total size × subject sequence length,
//! paper section 3.1), filtered by the e-value threshold and sorted by
//! increasing e-value ("the alignments are first sorted … according to a
//! chosen criteria, for example the expected value attached to each
//! alignment").
//!
//! The streaming pipeline enters through [`emit_records`]: it converts one
//! group of alignments into records and pushes them *unsorted* into a
//! callback (the sink plumbing), leaving ordering to the sink at query
//! end. The `display_records*` functions are the collect-then-sort
//! wrappers over the same conversion; all of them sort with the strict
//! total order [`M8Record::total_order`], so collected and streamed
//! output agree byte-for-byte even under tied e-values.

use oris_eval::M8Record;
use oris_seqio::Bank;
use oris_stats::{EValueModel, SearchSpace};

use crate::config::OrisConfig;
use crate::step3::GappedAlignment;

/// Counters reported by step 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step4Stats {
    /// Alignments dropped by the e-value threshold.
    pub dropped_by_evalue: u64,
    /// Records emitted.
    pub emitted: u64,
}

impl Step4Stats {
    /// Sums the counters of two reports (the pipeline's strand merge).
    pub fn merge(mut self, o: Step4Stats) -> Step4Stats {
        self.dropped_by_evalue += o.dropped_by_evalue;
        self.emitted += o.emitted;
        self
    }
}

/// Converts gapped alignments to sorted, filtered `-m 8` records — the
/// plus-strand collect form of [`emit_records`]. (The pipeline streams
/// through `emit_records` directly; minus-strand flipping and explicit
/// query search-space sizes are parameters there.)
pub fn display_records(
    bank1: &Bank,
    bank2: &Bank,
    alignments: &[GappedAlignment],
    cfg: &OrisConfig,
) -> (Vec<M8Record>, Step4Stats) {
    let mut stats = Step4Stats::default();
    let mut out = Vec::with_capacity(alignments.len());
    emit_records(
        bank1,
        bank2,
        alignments,
        cfg,
        bank1.num_residues(),
        false,
        &mut stats,
        &mut |rec| out.push(rec),
    );
    // Strict total order (see `M8Record::total_order`): e-value first,
    // NaN-safe, with enough tie-breaks that the sorted vector is unique —
    // the property that keeps collected output equal to streamed output.
    out.sort_by(|x, y| x.total_order(y));
    (out, stats)
}

/// Streaming conversion: maps one batch of gapped alignments to `-m 8`
/// records and hands each surviving record to `push`, **unsorted** —
/// ordering belongs to the sink, which sorts once per query with
/// [`M8Record::total_order`]. Counters accumulate into `stats` so a query
/// spanning many per-pair groups sums naturally.
///
/// `query_residues` is the query-side e-value search-space size — the
/// *full* bank size when `bank1` is one batch of a larger bank (the
/// baseline's blastall-style batching), so batched and one-pass runs
/// report identical records. With `flip_subject`, `bank2` is the reverse
/// complement of the original subject and emitted subject coordinates
/// are mapped back to plus-strand numbering (`sstart > send`, BLAST
/// style): a hit at rc-local `[s, e]` in a record of length `L` becomes
/// `[L − s + 1, L − e + 1]`. The flip happens here, where the alignment
/// still resolves to a record **index** via [`Bank::locate`] — a
/// name-keyed mapping after the fact would pick the wrong length
/// whenever the subject bank carries duplicate record names.
pub fn emit_records(
    bank1: &Bank,
    bank2: &Bank,
    alignments: &[GappedAlignment],
    cfg: &OrisConfig,
    query_residues: usize,
    flip_subject: bool,
    stats: &mut Step4Stats,
    push: &mut dyn FnMut(M8Record),
) {
    let model = EValueModel::dna(cfg.scheme.matsch, cfg.scheme.mismatch);
    let m = query_residues;

    for a in alignments {
        if a.len1 == 0 || a.len2 == 0 {
            continue;
        }
        let r1 = bank1
            .locate(a.start1)
            .expect("alignment start must lie inside a query sequence");
        let r2 = bank2
            .locate(a.start2)
            .expect("alignment start must lie inside a subject sequence");
        let rec1 = bank1.record(r1);
        let rec2 = bank2.record(r2);
        // Subject-side n under the configured convention: the subject
        // sequence's length (SCORIS-N, the default) or the database-wide
        // residue total (sharded search — shard-invariant by
        // construction, see `oris_eval::SubjectSpace`). Built as f64
        // directly so a >4 Gbp database total survives 32-bit targets.
        let space = SearchSpace {
            m: m as f64,
            n: cfg.subject_space.subject_n(rec2.len) as f64,
        };
        let evalue = model.evalue(a.score, space);
        if evalue > cfg.evalue_threshold {
            stats.dropped_by_evalue += 1;
            continue;
        }
        stats.emitted += 1;
        let (sstart, send) = if flip_subject {
            // rc-local `[s, e]` ↦ original plus-strand `[L − s + 1, L − e + 1]`
            // (1-based): reported with sstart > send, BLAST's minus-strand
            // convention.
            (
                rec2.len - rec2.to_local(a.start2),
                rec2.len - (rec2.to_local(a.start2) + a.len2) + 1,
            )
        } else {
            (
                rec2.to_local(a.start2) + 1,
                rec2.to_local(a.start2) + a.len2,
            )
        };
        push(M8Record {
            qid: rec1.name.clone(),
            sid: rec2.name.clone(),
            pident: a.stats.identity_pct(),
            length: a.stats.length,
            mismatch: a.stats.mismatches,
            gapopen: a.stats.gap_opens,
            qstart: rec1.to_local(a.start1) + 1,
            qend: rec1.to_local(a.start1) + a.len1,
            sstart,
            send,
            evalue,
            bitscore: model.bit_score(a.score),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step3::GappedAlignment;
    use oris_align::AlignStats;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn perfect_alignment(start1: usize, start2: usize, len: usize) -> GappedAlignment {
        let ops = vec![oris_align::AlignOp::Match; len];
        GappedAlignment {
            start1,
            start2,
            len1: len,
            len2: len,
            score: len as i32,
            stats: AlignStats::from_ops(&ops),
            diag_min: start1 as i64 - start2 as i64,
            diag_max: start1 as i64 - start2 as i64,
        }
    }

    fn cfg() -> OrisConfig {
        OrisConfig {
            evalue_threshold: 10.0,
            ..OrisConfig::small(6)
        }
    }

    #[test]
    fn coordinates_are_one_based_local() {
        let b1 = bank(&["AAAA", "ACGTACGTACGTACGTACGTACGTACGTACGT"]);
        let b2 = bank(&["ACGTACGTACGTACGTACGTACGTACGTACGT"]);
        // alignment of b1/s1 positions 0..32 with b2/s0: global start1 is
        // record(1).start
        let g1 = b1.record(1).start;
        let g2 = b2.record(0).start;
        let alns = vec![perfect_alignment(g1, g2, 32)];
        let (recs, st) = display_records(&b1, &b2, &alns, &cfg());
        assert_eq!(st.emitted, 1);
        let r = &recs[0];
        assert_eq!(r.qid, "s1");
        assert_eq!(r.sid, "s0");
        assert_eq!((r.qstart, r.qend), (1, 32));
        assert_eq!((r.sstart, r.send), (1, 32));
        assert!((r.pident - 100.0).abs() < 1e-9);
        assert_eq!(r.mismatch, 0);
        assert_eq!(r.gapopen, 0);
    }

    #[test]
    fn evalue_threshold_filters() {
        let s = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let alns = vec![perfect_alignment(1, 1, 8)]; // short, weak score
        let strict = OrisConfig {
            evalue_threshold: 1e-12,
            ..cfg()
        };
        let (recs, st) = display_records(&b1, &b2, &alns, &strict);
        assert!(recs.is_empty());
        assert_eq!(st.dropped_by_evalue, 1);
    }

    #[test]
    fn sorted_by_evalue() {
        let s = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let alns = vec![
            perfect_alignment(1, 1, 10),
            perfect_alignment(1, 1, 30), // stronger → smaller e-value
        ];
        let (recs, _) = display_records(&b1, &b2, &alns, &cfg());
        assert_eq!(recs.len(), 2);
        assert!(recs[0].evalue <= recs[1].evalue);
        assert_eq!(recs[0].length, 30);
    }

    #[test]
    fn subject_length_enters_search_space() {
        // Same alignment against a short vs a long subject sequence: the
        // long-subject e-value is larger (SCORIS-N convention).
        let q = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[q]);
        let short = bank(&[q]);
        let long = bank(&[&format!("{}{}", q, "T".repeat(2000))]);
        let alns = vec![perfect_alignment(1, 1, 20)];
        let (r_short, _) = display_records(&b1, &short, &alns, &cfg());
        let (r_long, _) = display_records(&b1, &long, &alns, &cfg());
        assert!(r_long[0].evalue > r_short[0].evalue);
    }

    #[test]
    fn database_space_overrides_subject_length() {
        // Under SubjectSpace::Database the e-value no longer depends on
        // which subject sequence (or volume) the alignment lies in — only
        // on the fixed database total. Short and long subjects price the
        // same alignment identically, and the e-value scales with the
        // declared database size exactly as m·n does.
        use oris_eval::SubjectSpace;
        let q = "ACGTACGTACGTACGTACGTACGTACGTACGT";
        let b1 = bank(&[q]);
        let short = bank(&[q]);
        let long = bank(&[&format!("{}{}", q, "T".repeat(2000))]);
        let alns = vec![perfect_alignment(1, 1, 20)];
        let dbcfg = OrisConfig {
            subject_space: SubjectSpace::Database(10_000),
            ..cfg()
        };
        let (r_short, _) = display_records(&b1, &short, &alns, &dbcfg);
        let (r_long, _) = display_records(&b1, &long, &alns, &dbcfg);
        assert_eq!(r_short[0].evalue, r_long[0].evalue);
        let bigger = OrisConfig {
            subject_space: SubjectSpace::Database(20_000),
            ..cfg()
        };
        let (r_big, _) = display_records(&b1, &short, &alns, &bigger);
        assert!((r_big[0].evalue / r_short[0].evalue - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_alignment_skipped() {
        let b1 = bank(&["ACGTACGT"]);
        let b2 = bank(&["ACGTACGT"]);
        let mut a = perfect_alignment(1, 1, 4);
        a.len1 = 0;
        a.len2 = 0;
        let (recs, st) = display_records(&b1, &b2, &[a], &cfg());
        assert!(recs.is_empty());
        assert_eq!(st.emitted, 0);
    }
}
