//! Step 2 — ordered seed enumeration and unique HSP generation.
//!
//! The heart of ORIS (paper section 2.2). For every seed code `s` in
//! `0 .. 4^W`, in increasing order, every occurrence pair
//! `(s1 ∈ index1, s2 ∈ index2)` is extended ungapped under the
//! ordered-seed abort rule (`oris-align::ungapped`). The code-order
//! enumeration has two effects the paper leans on:
//!
//! * **uniqueness** — an HSP is emitted only by the leftmost occurrence of
//!   its smallest contained seed, so no duplicate-suppression structure is
//!   needed;
//! * **locality** — all sequence portions sharing a seed are processed
//!   together ("implicitly and simultaneously moved into the cache
//!   memory"), giving the nested loops near-perfect cache reuse.
//!
//! Because uniqueness is a property of the *rule*, not of the visit
//! order, the outer loop parallelizes embarrassingly (paper section 4);
//! [`find_hsps`] splits the code space into contiguous ranges processed by
//! rayon and concatenates results in range order, so output is identical
//! for any thread count.

use oris_align::{extend_hit, ExtensionOutcome, OrderGuard, UngappedParams};
use oris_index::BankIndex;
use oris_seqio::Bank;
use rayon::prelude::*;

use crate::config::OrisConfig;
use crate::hsp::Hsp;

/// Counters reported by step 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step2Stats {
    /// Occurrence pairs examined (hit extensions attempted).
    pub pairs_examined: u64,
    /// Extensions aborted by the ordered-seed rule.
    pub aborted: u64,
    /// HSPs below the score threshold.
    pub below_threshold: u64,
    /// HSPs kept.
    pub kept: u64,
}

impl Step2Stats {
    fn merge(mut self, o: Step2Stats) -> Step2Stats {
        self.pairs_examined += o.pairs_examined;
        self.aborted += o.aborted;
        self.below_threshold += o.below_threshold;
        self.kept += o.kept;
        self
    }
}

/// Processes one contiguous range of seed codes sequentially.
#[allow(clippy::too_many_arguments)]
fn process_code_range(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    params: &UngappedParams,
    min_score: i32,
    codes: std::ops::Range<u32>,
    guard: OrderGuard<'_>,
) -> (Vec<Hsp>, Step2Stats) {
    let d1 = bank1.data();
    let d2 = bank2.data();
    let coder = idx1.coder();
    let w = params.w as u32;
    let mut out = Vec::new();
    let mut stats = Step2Stats::default();

    for code in codes {
        let Some(first1) = idx1.first(code) else { continue };
        let Some(first2) = idx2.first(code) else { continue };
        // X1 × X2 hit extensions for this seed (paper notation).
        let mut p1 = Some(first1);
        while let Some(a) = p1 {
            let mut p2 = Some(first2);
            while let Some(b) = p2 {
                stats.pairs_examined += 1;
                match extend_hit(d1, d2, a as usize, b as usize, code, coder, params, guard) {
                    ExtensionOutcome::Aborted => stats.aborted += 1,
                    ExtensionOutcome::Hsp { score, left, right } => {
                        if score > min_score {
                            stats.kept += 1;
                            out.push(Hsp {
                                start1: a - left as u32,
                                start2: b - left as u32,
                                len: left as u32 + w + right as u32,
                                score,
                            });
                        } else {
                            stats.below_threshold += 1;
                        }
                    }
                }
                p2 = idx2.next_occurrence(b);
            }
            p1 = idx1.next_occurrence(a);
        }
    }
    (out, stats)
}

/// Enumerates all seeds in code order and returns the unique HSPs,
/// sorted by diagonal (the step-3 input order).
pub fn find_hsps(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
) -> (Vec<Hsp>, Step2Stats) {
    // The indexed guard is required whenever positions may be excluded
    // from an index (low-complexity masking, asymmetric stride): the rule
    // must not defer to a seed the enumeration will never visit.
    find_hsps_with_guard(
        bank1,
        idx1,
        bank2,
        idx2,
        cfg,
        OrderGuard::OrderedIndexed { idx1, idx2 },
    )
}

/// Same enumeration with an explicit guard (the ablation uses
/// [`OrderGuard::None`]).
pub fn find_hsps_with_guard(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
    guard: OrderGuard<'_>,
) -> (Vec<Hsp>, Step2Stats) {
    assert_eq!(
        idx1.w(),
        idx2.w(),
        "both indexes must use the same word length"
    );
    let params = UngappedParams {
        w: idx1.w(),
        xdrop: cfg.xdrop_ungapped,
        scheme: cfg.scheme,
        max_span: usize::MAX / 4,
    };
    let num_codes = idx1.coder().num_seeds() as u32;

    // Contiguous code ranges; enough chunks to load-balance (seed
    // popularity is highly skewed), concatenated in order for
    // thread-count-independent output.
    let chunks = (rayon::current_num_threads() * 16).clamp(16, 1024) as u32;
    let chunk = num_codes.div_ceil(chunks).max(1);
    let ranges: Vec<std::ops::Range<u32>> = (0..num_codes)
        .step_by(chunk as usize)
        .map(|lo| lo..(lo + chunk).min(num_codes))
        .collect();

    let results: Vec<(Vec<Hsp>, Step2Stats)> = ranges
        .into_par_iter()
        .map(|r| process_code_range(bank1, idx1, bank2, idx2, &params, cfg.min_hsp_score, r, guard))
        .collect();

    let mut stats = Step2Stats::default();
    let mut hsps = Vec::with_capacity(results.iter().map(|(v, _)| v.len()).sum());
    for (v, s) in results {
        hsps.extend(v);
        stats = stats.merge(s);
    }
    // "the storage is made by sorting the HSPs by diagonal number to
    // optimize data access of the next step"
    hsps.sort_by(Hsp::diag_order);
    hsps.dedup();
    (hsps, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_index::IndexConfig;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn cfg(w: usize) -> OrisConfig {
        OrisConfig {
            w,
            min_hsp_score: w as i32, // keep anything extending past the seed
            ..OrisConfig::small(w)
        }
    }

    fn run(b1: &Bank, b2: &Bank, c: &OrisConfig) -> Vec<Hsp> {
        let i1 = BankIndex::build(b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(b2, IndexConfig::full(c.w));
        find_hsps(b1, &i1, b2, &i2, c).0
    }

    #[test]
    fn identical_sequences_give_one_hsp() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let hsps = run(&b1, &b2, &cfg(6));
        // One full-length HSP on the main diagonal; off-diagonal repeats
        // of 6-mers are absent in this diverse sequence.
        assert_eq!(hsps.len(), 1, "{hsps:?}");
        assert_eq!(hsps[0].len as usize, s.len());
        assert_eq!(hsps[0].diag(), 0);
        assert_eq!(hsps[0].score, s.len() as i32);
    }

    #[test]
    fn unrelated_sequences_give_nothing() {
        let b1 = bank(&["ATATATGCGCATATGCGCATATAT"]);
        let b2 = bank(&["GGTTCCAAGGTTCCAAGGTTCCAA"]);
        let hsps = run(&b1, &b2, &cfg(8));
        assert!(hsps.is_empty(), "{hsps:?}");
    }

    #[test]
    fn each_hsp_is_unique() {
        // Long shared region: many seeds anchor the same HSP; the ordered
        // rule must emit it once.
        let shared = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTTAACC";
        let b1 = bank(&[&format!("TTTT{shared}GGGG")]);
        let b2 = bank(&[&format!("CCCC{shared}AAAA")]);
        let hsps = run(&b1, &b2, &cfg(6));
        let mut seen = std::collections::HashSet::new();
        for h in &hsps {
            assert!(seen.insert((h.start1, h.start2, h.len)), "duplicate {h:?}");
        }
        // The main shared HSP is found exactly once.
        let main: Vec<&Hsp> = hsps
            .iter()
            .filter(|h| h.len as usize >= shared.len())
            .collect();
        assert_eq!(main.len(), 1, "{hsps:?}");
    }

    #[test]
    fn hsps_are_diag_sorted() {
        let shared = "ATGGCGTACGTTAGCCTAGG";
        let b1 = bank(&[&format!("{shared}TTTTTTTTTT{shared}")]);
        let b2 = bank(&[shared]);
        let hsps = run(&b1, &b2, &cfg(6));
        assert!(hsps.len() >= 2);
        for w in hsps.windows(2) {
            assert!(Hsp::diag_order(&w[0], &w[1]) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn score_threshold_filters() {
        let shared = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[shared]);
        let b2 = bank(&[shared]);
        let mut c = cfg(6);
        c.min_hsp_score = 1000;
        let hsps = run(&b1, &b2, &c);
        assert!(hsps.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        // Same inputs, forced single-chunk vs default parallel: identical
        // HSP vectors (order included).
        let shared = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTTAACC";
        let b1 = bank(&[
            &format!("AAAACC{shared}"),
            "TTGGCCATGGCCAATT",
            &format!("{shared}GGTTAA"),
        ]);
        let b2 = bank(&[&format!("TTTTG{shared}ACGT"), "CCGGTTAACCGGTTAA"]);
        let c = cfg(5);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));

        let pool1 = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let (h1, s1) = pool1.install(|| find_hsps(&b1, &i1, &b2, &i2, &c));
        let (h4, s4) = pool4.install(|| find_hsps(&b1, &i1, &b2, &i2, &c));
        assert_eq!(h1, h4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn stats_account_for_all_pairs() {
        let shared = "ATGGCGTACGTTAGCC";
        let b1 = bank(&[shared, "AAAATTTTGGGGCCCC"]);
        let b2 = bank(&[shared]);
        let c = cfg(4);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let (_, st) = find_hsps(&b1, &i1, &b2, &i2, &c);
        assert_eq!(
            st.pairs_examined,
            st.aborted + st.below_threshold + st.kept
        );
        assert!(st.pairs_examined > 0);
    }

    #[test]
    fn matches_bruteforce_hsp_set() {
        // Reference: enumerate every hit pair, extend unguarded with the
        // same xdrop, dedup the resulting (start1, start2, len) triples.
        // The ordered generator must produce the same set.
        use oris_align::{extend_hit, ExtensionOutcome, OrderGuard, UngappedParams};
        let b1 = bank(&["ATGGCGTACGTTAGCCTAGGACGGATCGAT", "GGCCTTAAGGCCTTAA"]);
        let b2 = bank(&["TTATGGCGTACGTTAGCCTAGGTT", "CGGATCGATACGT"]);
        let c = cfg(5);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let params = UngappedParams {
            w: c.w,
            xdrop: c.xdrop_ungapped,
            scheme: c.scheme,
            max_span: usize::MAX / 4,
        };
        let coder = i1.coder();
        let mut brute = std::collections::HashSet::new();
        for code in 0..coder.num_seeds() as u32 {
            for a in i1.occurrences(code) {
                for b in i2.occurrences(code) {
                    if let ExtensionOutcome::Hsp { score, left, right } = extend_hit(
                        b1.data(),
                        b2.data(),
                        a as usize,
                        b as usize,
                        code,
                        coder,
                        &params,
                        OrderGuard::None,
                    ) {
                        if score > c.min_hsp_score {
                            brute.insert((
                                a - left as u32,
                                b - left as u32,
                                left as u32 + c.w as u32 + right as u32,
                            ));
                        }
                    }
                }
            }
        }
        let ordered: std::collections::HashSet<(u32, u32, u32)> = run(&b1, &b2, &c)
            .into_iter()
            .map(|h| (h.start1, h.start2, h.len))
            .collect();
        assert_eq!(ordered, brute);
    }
}
