//! Step 2 — ordered seed enumeration and unique HSP generation.
//!
//! The heart of ORIS (paper section 2.2). For every seed code `s` in
//! `0 .. 4^W`, in increasing order, every occurrence pair
//! `(s1 ∈ index1, s2 ∈ index2)` is extended ungapped under the
//! ordered-seed abort rule (`oris-align::ungapped`). The code-order
//! enumeration has two effects the paper leans on:
//!
//! * **uniqueness** — an HSP is emitted only by the leftmost occurrence of
//!   its smallest contained seed, so no duplicate-suppression structure is
//!   needed;
//! * **locality** — all sequence portions sharing a seed are processed
//!   together ("implicitly and simultaneously moved into the cache
//!   memory"), giving the nested loops near-perfect cache reuse. With the
//!   CSR index the X1/X2 occurrence lists are contiguous sorted slices, so
//!   the inner loops stream through memory with no pointer chasing at all.
//!
//! **Guard selection.** The ordered-seed abort rule needs to know whether
//! a candidate seed is actually enumerated. [`find_hsps`] picks the
//! cheapest correct answer from the indexes' build-time exclusion
//! provenance ([`select_guard`]): both banks fully indexed → the
//! probe-free `OrderedFull` fast path; any masking or stride exclusion →
//! the rolled `OrderedIndexed` guard, whose bit-set cursors advance with
//! the extension and whose bank-1 state is prepared once per occurrence
//! (shared across the whole X2 slice).
//!
//! Because uniqueness is a property of the *rule*, not of the visit
//! order, the outer loop parallelizes embarrassingly (paper section 4).
//! [`find_hsps`] splits the code space into contiguous ranges processed by
//! rayon and concatenates results in range order, so output is identical
//! for any thread count.
//!
//! **Scheduling.** Seed popularity is highly skewed (the paper's EST banks
//! concentrate work in poly-A/poly-T codes), so equal-*width* code ranges
//! carry wildly unequal work: one range may own the `AAAA…A` code whose
//! `|X1|·|X2|` pair product dwarfs everything else. The default
//! [`PartitionStrategy::WorkBalanced`] instead sizes ranges by the
//! per-code pair product, cutting a range whenever its accumulated work
//! reaches `total/chunks`. Ranges remain contiguous and in code order, so
//! results concatenate in range order and the output stays
//! thread-count-independent.
//!
//! Both the work scan and the enumeration itself drive from the
//! *populated* rows of whichever index holds fewer distinct codes
//! ([`oris_index::BankIndex::populated_in`]) rather than sweeping
//! `0..4^W`: a code absent from either index contributes no pairs and no
//! work, so skipping it changes neither the output nor the cut points —
//! and at W = 11 the sweep would visit 4 M codes to find a few thousand
//! populated ones.

use oris_align::{
    extend_hit_prepared, ExtensionOutcome, OrderGuard, PreparedGuard, UngappedParams,
};
use oris_index::BankIndex;
use oris_seqio::Bank;
use rayon::prelude::*;

use crate::config::OrisConfig;
use crate::deadline::{Deadline, DeadlineExceeded};
use crate::hsp::Hsp;

/// With an armed [`Deadline`], the extension loop consults the clock
/// after at most this many additional occurrence pairs — frequent enough
/// that even a single hot seed code responds within a sliver of the
/// range's work, rare enough that the clock read vanishes against the
/// extensions it paces.
const DEADLINE_CHECK_PAIRS: u64 = 4096;

/// Counters reported by step 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Step2Stats {
    /// Occurrence pairs examined (hit extensions attempted).
    pub pairs_examined: u64,
    /// Extensions aborted by the ordered-seed rule.
    pub aborted: u64,
    /// HSPs below the score threshold.
    pub below_threshold: u64,
    /// HSPs kept.
    pub kept: u64,
}

impl Step2Stats {
    /// Sums the counters of two reports (used by range concatenation and
    /// by the pipeline's strand merge).
    pub fn merge(mut self, o: Step2Stats) -> Step2Stats {
        self.pairs_examined += o.pairs_examined;
        self.aborted += o.aborted;
        self.below_threshold += o.below_threshold;
        self.kept += o.kept;
        self
    }
}

/// How [`find_hsps`] splits the seed-code space across workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Contiguous ranges of equal code *width*, ignoring occurrence
    /// counts — the pre-CSR scheduler, kept as a benchmark baseline.
    EqualWidth,
    /// Contiguous ranges of comparable estimated *work*: the per-range sum
    /// of `|X1(code)|·|X2(code)|` pair products, read from the two CSR
    /// offset arrays.
    #[default]
    WorkBalanced,
}

/// Splits `0..num_codes` into contiguous ranges under `strategy`, aiming
/// for `chunks` ranges. Ranges always cover the whole code space in order;
/// the work-balanced strategy may return fewer ranges than requested
/// (greedy cuts), and never more than `chunks + 1`: each cut closes a
/// range holding at least `⌈total/chunks⌉` work, so at most `chunks` cuts
/// can fire, plus one trailing range for the remainder.
#[allow(clippy::single_range_in_vec_init)] // a Vec<Range> is the schedule, not a typo'd range
pub fn partition_codes(
    idx1: &BankIndex,
    idx2: &BankIndex,
    strategy: PartitionStrategy,
    chunks: u32,
) -> Vec<std::ops::Range<u32>> {
    let num_codes = idx1.coder().num_seeds() as u32;
    let chunks = chunks.max(1);
    match strategy {
        PartitionStrategy::EqualWidth => {
            let chunk = num_codes.div_ceil(chunks).max(1);
            (0..num_codes)
                .step_by(chunk as usize)
                .map(|lo| lo..(lo + chunk).min(num_codes))
                .collect()
        }
        PartitionStrategy::WorkBalanced => {
            if chunks == 1 {
                return vec![0..num_codes];
            }
            // Drive from whichever index holds fewer populated rows and
            // look the partner's count up per code. A code missing from
            // either index carries zero work and zero work can never
            // reach `target`, so skipping unpopulated codes leaves the
            // cut points identical to a dense 0..4^W sweep — while the
            // scan cost drops from 4^W to the populated-row count.
            let (drive, other) = if idx1.distinct_codes() <= idx2.distinct_codes() {
                (idx1, idx2)
            } else {
                (idx2, idx1)
            };
            let work_iter = || {
                drive
                    .populated()
                    .map(|(code, row)| (code, row.len() as u64 * other.count(code) as u64))
            };
            let total: u64 = work_iter().map(|(_, w)| w).sum();
            if total == 0 {
                return vec![0..num_codes];
            }
            let target = total.div_ceil(chunks as u64);
            let mut ranges = Vec::with_capacity(chunks as usize + 1);
            let mut lo = 0u32;
            let mut acc = 0u64;
            for (c, w) in work_iter() {
                acc += w;
                if acc >= target {
                    ranges.push(lo..c + 1);
                    lo = c + 1;
                    acc = 0;
                }
            }
            if lo < num_codes {
                ranges.push(lo..num_codes);
            }
            ranges
        }
    }
}

/// Processes one contiguous range of seed codes sequentially.
///
/// With an armed `deadline` the pair loop re-checks the token every
/// [`DEADLINE_CHECK_PAIRS`] examined pairs (and at the range entry) and
/// returns [`DeadlineExceeded`] instead of its partial output; with the
/// disarmed default the checks are a dead branch and the function cannot
/// fail.
fn process_code_range(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    params: &UngappedParams,
    min_score: i32,
    codes: std::ops::Range<u32>,
    guard: OrderGuard<'_>,
    deadline: &Deadline,
) -> Result<(Vec<Hsp>, Step2Stats), DeadlineExceeded> {
    let d1 = bank1.data();
    let d2 = bank2.data();
    let coder = idx1.coder();
    let w = params.w as u32;
    let mut out = Vec::new();
    let mut stats = Step2Stats::default();
    let armed = deadline.is_armed();
    if armed {
        deadline.check()?;
    }
    let mut next_check = DEADLINE_CHECK_PAIRS;

    // Walk only the populated rows of the smaller-vocabulary index and
    // probe the partner per code. The visited (code, X1, X2) triples —
    // ascending codes, both rows non-empty — are exactly those of a
    // `for code in codes` sweep, so the output is byte-identical; the
    // iteration cost no longer scales with the range width (4^W/chunks).
    let (drive_is_1, drive, other) = if idx1.distinct_codes() <= idx2.distinct_codes() {
        (true, idx1, idx2)
    } else {
        (false, idx2, idx1)
    };
    for (code, drow) in drive.populated_in(codes) {
        let orow = other.occurrences(code);
        if orow.is_empty() {
            continue;
        }
        // X1 × X2 hit extensions for this seed (paper notation): both
        // occurrence lists are contiguous sorted slices in the CSR index.
        let (x1, x2) = if drive_is_1 {
            (drow, orow)
        } else {
            (orow, drow)
        };
        for &a in x1 {
            if armed && stats.pairs_examined >= next_check {
                deadline.check()?;
                next_check = stats.pairs_examined + DEADLINE_CHECK_PAIRS;
            }
            // Resolve the guard once per bank-1 occurrence: `a`'s guard
            // words (and the guard-shape dispatch) are shared across every
            // partner in X2, so the inner loop only builds bank-2 state.
            let prepared = PreparedGuard::prepare(guard, a as usize);
            for &b in x2 {
                stats.pairs_examined += 1;
                match extend_hit_prepared(
                    d1, d2, a as usize, b as usize, code, coder, params, &prepared,
                ) {
                    ExtensionOutcome::Aborted => stats.aborted += 1,
                    ExtensionOutcome::Hsp { score, left, right } => {
                        if score >= min_score {
                            stats.kept += 1;
                            out.push(Hsp {
                                start1: a - left as u32,
                                start2: b - left as u32,
                                len: left as u32 + w + right as u32,
                                score,
                            });
                        } else {
                            stats.below_threshold += 1;
                        }
                    }
                }
            }
        }
    }
    Ok((out, stats))
}

/// Picks the cheapest correct order guard for a pair of indexes, from
/// their build-time exclusion provenance.
///
/// The indexed guard is required whenever positions may be excluded from
/// an index (low-complexity masking, asymmetric stride): the rule must
/// not defer to a seed the enumeration will never visit. But when **both**
/// banks are fully indexed ([`BankIndex::is_fully_indexed`]), every
/// "would the enumeration visit this candidate?" probe answers yes — the
/// candidate's run of `W` matches already proves a valid window — so the
/// probe-free [`OrderGuard::OrderedFull`] is behaviourally identical and
/// strictly cheaper. The guard-equivalence proptests below pin the
/// identity.
pub fn select_guard<'a>(idx1: &'a BankIndex, idx2: &'a BankIndex) -> OrderGuard<'a> {
    if idx1.is_fully_indexed() && idx2.is_fully_indexed() {
        OrderGuard::OrderedFull
    } else {
        OrderGuard::OrderedIndexed { idx1, idx2 }
    }
}

/// Enumerates all seeds in code order and returns the unique HSPs,
/// sorted by diagonal (the step-3 input order). The order guard is
/// auto-selected from the indexes' exclusion provenance ([`select_guard`]).
pub fn find_hsps(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
) -> (Vec<Hsp>, Step2Stats) {
    find_hsps_with_guard(bank1, idx1, bank2, idx2, cfg, select_guard(idx1, idx2))
}

/// Same enumeration with an explicit guard (the ablation uses
/// [`OrderGuard::None`]).
pub fn find_hsps_with_guard(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
    guard: OrderGuard<'_>,
) -> (Vec<Hsp>, Step2Stats) {
    find_hsps_partitioned(
        bank1,
        idx1,
        bank2,
        idx2,
        cfg,
        guard,
        PartitionStrategy::default(),
    )
}

/// Full-control entry point: explicit guard *and* partition strategy (the
/// scheduling benches compare [`PartitionStrategy::EqualWidth`] against
/// the default work-balanced split).
pub fn find_hsps_partitioned(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
    guard: OrderGuard<'_>,
    strategy: PartitionStrategy,
) -> (Vec<Hsp>, Step2Stats) {
    find_hsps_deadline(
        bank1,
        idx1,
        bank2,
        idx2,
        cfg,
        guard,
        strategy,
        &Deadline::none(),
    )
    .expect("a disarmed deadline cannot expire")
}

/// [`find_hsps_partitioned`] under a cooperative [`Deadline`]: the token
/// is consulted at every partition boundary and every
/// `DEADLINE_CHECK_PAIRS` extension pairs within a partition, and an
/// expiry surfaces as a clean [`DeadlineExceeded`] with no partial
/// output. The deadline never changes *what* is computed — a run that
/// completes returns exactly the [`find_hsps_partitioned`] result (the
/// chunk count never affects output; ranges concatenate in code order) —
/// so the no-deadline path and a generously-budgeted run are
/// byte-identical.
pub fn find_hsps_deadline(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
    guard: OrderGuard<'_>,
    strategy: PartitionStrategy,
    deadline: &Deadline,
) -> Result<(Vec<Hsp>, Step2Stats), DeadlineExceeded> {
    assert_eq!(
        idx1.w(),
        idx2.w(),
        "both indexes must use the same word length"
    );
    let params = UngappedParams {
        w: idx1.w(),
        xdrop: cfg.xdrop_ungapped,
        scheme: cfg.scheme,
        max_span: usize::MAX / 4,
    };

    // Enough chunks to keep workers busy even when a few ranges run long;
    // results are concatenated in range order, so the chunk count (and
    // hence the thread count) never changes the output. A single worker
    // needs no partitioning at all — one range skips the work scan. An
    // armed deadline gets no finer split: the pair loop inside each
    // range already polls the token every [`DEADLINE_CHECK_PAIRS`]
    // extensions, so partition granularity adds nothing to cancellation
    // latency — only overhead.
    let threads = rayon::current_num_threads();
    let chunks = if threads <= 1 {
        1
    } else {
        (threads * 16).clamp(16, 1024) as u32
    };
    let ranges = partition_codes(idx1, idx2, strategy, chunks);

    let results: Vec<Result<(Vec<Hsp>, Step2Stats), DeadlineExceeded>> = ranges
        .into_par_iter()
        .map(|r| {
            process_code_range(
                bank1,
                idx1,
                bank2,
                idx2,
                &params,
                cfg.min_hsp_score,
                r,
                guard,
                deadline,
            )
        })
        .collect();

    let mut stats = Step2Stats::default();
    let mut hsps = Vec::new();
    for res in results {
        let (v, s) = res?;
        hsps.extend(v);
        stats = stats.merge(s);
    }
    // "the storage is made by sorting the HSPs by diagonal number to
    // optimize data access of the next step"
    hsps.sort_by(Hsp::diag_order);
    hsps.dedup();
    Ok((hsps, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_index::IndexConfig;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn cfg(w: usize) -> OrisConfig {
        OrisConfig {
            w,
            min_hsp_score: w as i32, // keep anything scoring at least a bare seed
            ..OrisConfig::small(w)
        }
    }

    fn run(b1: &Bank, b2: &Bank, c: &OrisConfig) -> Vec<Hsp> {
        let i1 = BankIndex::build(b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(b2, IndexConfig::full(c.w));
        find_hsps(b1, &i1, b2, &i2, c).0
    }

    #[test]
    fn identical_sequences_give_one_hsp() {
        let s = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let hsps = run(&b1, &b2, &cfg(6));
        // One full-length HSP on the main diagonal; off-diagonal repeats
        // of 6-mers are absent in this diverse sequence.
        assert_eq!(hsps.len(), 1, "{hsps:?}");
        assert_eq!(hsps[0].len as usize, s.len());
        assert_eq!(hsps[0].diag(), 0);
        assert_eq!(hsps[0].score, s.len() as i32);
    }

    #[test]
    fn unrelated_sequences_give_nothing() {
        let b1 = bank(&["ATATATGCGCATATGCGCATATAT"]);
        let b2 = bank(&["GGTTCCAAGGTTCCAAGGTTCCAA"]);
        let hsps = run(&b1, &b2, &cfg(8));
        assert!(hsps.is_empty(), "{hsps:?}");
    }

    #[test]
    fn each_hsp_is_unique() {
        // Long shared region: many seeds anchor the same HSP; the ordered
        // rule must emit it once.
        let shared = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTTAACC";
        let b1 = bank(&[&format!("TTTT{shared}GGGG")]);
        let b2 = bank(&[&format!("CCCC{shared}AAAA")]);
        let hsps = run(&b1, &b2, &cfg(6));
        let mut seen = std::collections::HashSet::new();
        for h in &hsps {
            assert!(seen.insert((h.start1, h.start2, h.len)), "duplicate {h:?}");
        }
        // The main shared HSP is found exactly once.
        let main: Vec<&Hsp> = hsps
            .iter()
            .filter(|h| h.len as usize >= shared.len())
            .collect();
        assert_eq!(main.len(), 1, "{hsps:?}");
    }

    #[test]
    fn hsps_are_diag_sorted() {
        let shared = "ATGGCGTACGTTAGCCTAGG";
        let b1 = bank(&[&format!("{shared}TTTTTTTTTT{shared}")]);
        let b2 = bank(&[shared]);
        let hsps = run(&b1, &b2, &cfg(6));
        assert!(hsps.len() >= 2);
        for w in hsps.windows(2) {
            assert!(Hsp::diag_order(&w[0], &w[1]) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn hsp_scoring_exactly_min_score_is_kept() {
        // min_hsp_score is the *minimum score to keep* (the paper's S1):
        // the boundary case must pass, not be dropped by an off-by-one.
        // A lone 6-mer with no extendable context scores exactly 6.
        let s = "ATGGCG";
        let b1 = bank(&[s]);
        let b2 = bank(&[s]);
        let mut c = cfg(6);
        c.min_hsp_score = 6;
        let hsps = run(&b1, &b2, &c);
        assert_eq!(hsps.len(), 1, "{hsps:?}");
        assert_eq!(hsps[0].score, 6);
        // One above the score: dropped.
        c.min_hsp_score = 7;
        assert!(run(&b1, &b2, &c).is_empty());
    }

    #[test]
    fn score_threshold_filters() {
        let shared = "ATGGCGTACGTTAGCCTAGGCTTA";
        let b1 = bank(&[shared]);
        let b2 = bank(&[shared]);
        let mut c = cfg(6);
        c.min_hsp_score = 1000;
        let hsps = run(&b1, &b2, &c);
        assert!(hsps.is_empty());
    }

    #[test]
    fn parallel_matches_serial() {
        // Same inputs, forced single-chunk vs default parallel: identical
        // HSP vectors (order included).
        let shared = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTTAACC";
        let b1 = bank(&[
            &format!("AAAACC{shared}"),
            "TTGGCCATGGCCAATT",
            &format!("{shared}GGTTAA"),
        ]);
        let b2 = bank(&[&format!("TTTTG{shared}ACGT"), "CCGGTTAACCGGTTAA"]);
        let c = cfg(5);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));

        let pool1 = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let pool4 = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let (h1, s1) = pool1.install(|| find_hsps(&b1, &i1, &b2, &i2, &c));
        let (h4, s4) = pool4.install(|| find_hsps(&b1, &i1, &b2, &i2, &c));
        assert_eq!(h1, h4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn skewed_bank_output_is_thread_count_invariant() {
        // Long homopolymer runs concentrate nearly all pair work in two
        // seed codes (AAAA…, TTTT…) — the distribution that defeats
        // equal-width scheduling. Output and counters must be identical
        // for 1, 2 and 8 threads under the work-balanced partition.
        let polya = "A".repeat(120);
        let polyt = "T".repeat(90);
        let mixed = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[
            &format!("{polya}{mixed}"),
            &format!("{mixed}{polyt}"),
            "GGCCTTAAGGCCTTAA",
        ]);
        let b2 = bank(&[&format!("{polyt}{mixed}{polya}"), "CCGGATCGATCCGG"]);
        let c = cfg(5);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));

        let mut outputs = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            outputs.push(pool.install(|| find_hsps(&b1, &i1, &b2, &i2, &c)));
        }
        let (h1, s1) = &outputs[0];
        assert!(!h1.is_empty());
        for (h, s) in &outputs[1..] {
            assert_eq!(h1, h, "HSPs differ across thread counts");
            assert_eq!(s1, s, "Step2Stats differ across thread counts");
        }
    }

    #[test]
    fn partition_strategies_cover_code_space_and_agree() {
        let polya = "A".repeat(200);
        let b1 = bank(&[&format!("{polya}ATGGCGTACGTTAGCC")]);
        let b2 = bank(&[&format!("GGCCATTA{polya}")]);
        let c = cfg(4);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let num_codes = i1.coder().num_seeds() as u32;

        for strategy in [
            PartitionStrategy::EqualWidth,
            PartitionStrategy::WorkBalanced,
        ] {
            let ranges = partition_codes(&i1, &i2, strategy, 16);
            // Contiguous, in-order, complete cover.
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, num_codes);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
        // Both strategies produce identical results.
        let guard = oris_align::OrderGuard::OrderedIndexed {
            idx1: &i1,
            idx2: &i2,
        };
        let naive =
            find_hsps_partitioned(&b1, &i1, &b2, &i2, &c, guard, PartitionStrategy::EqualWidth);
        let balanced = find_hsps_partitioned(
            &b1,
            &i1,
            &b2,
            &i2,
            &c,
            guard,
            PartitionStrategy::WorkBalanced,
        );
        assert_eq!(naive, balanced);
    }

    #[test]
    fn balanced_partition_splits_skewed_work() {
        // One dominant code (poly-A) and scattered light codes: the
        // balanced partition must isolate the heavy code in a narrow range
        // rather than lumping 1/chunks of the code space around it.
        let polya = "A".repeat(300);
        let b1 = bank(&[&format!("{polya}ATGGCGTACGTTAGCCTAGGCTTA")]);
        let b2 = bank(&[&format!("{polya}GGCCATTAGGCCATTA")]);
        let i1 = BankIndex::build(&b1, IndexConfig::full(4));
        let i2 = BankIndex::build(&b2, IndexConfig::full(4));

        let chunks = 16u32;
        let balanced = partition_codes(&i1, &i2, PartitionStrategy::WorkBalanced, chunks);
        let work_of = |r: &std::ops::Range<u32>| -> u64 {
            (r.start..r.end)
                .map(|c| i1.count(c) as u64 * i2.count(c) as u64)
                .sum()
        };
        let total: u64 = work_of(&(0..i1.coder().num_seeds() as u32));
        let target = total.div_ceil(chunks as u64);
        // Every range except those pinned by a single overweight code
        // carries at most target + max_single_code work; and code 0
        // (poly-A, the heaviest) sits alone in its range.
        let first = &balanced[0];
        assert_eq!(first.start, 0);
        assert_eq!(
            first.end, 1,
            "heavy code 0 should be cut immediately: {balanced:?}"
        );
        assert!(work_of(first) >= target);
    }

    #[test]
    fn partition_is_identical_across_index_backends() {
        // The work-balanced scan drives from populated rows only; since
        // unpopulated codes carry zero work, the cut points must be the
        // same whether the indexes are dense or sparse — in any backend
        // pairing.
        use oris_index::IndexBackend;
        let polya = "A".repeat(300);
        let b1 = bank(&[&format!("{polya}ATGGCGTACGTTAGCCTAGGCTTA")]);
        let b2 = bank(&[&format!("{polya}GGCCATTAGGCCATTA")]);
        let dense = IndexConfig::full(4).with_backend(IndexBackend::Dense);
        let sparse = IndexConfig::full(4).with_backend(IndexBackend::Sparse);
        let (d1, d2) = (BankIndex::build(&b1, dense), BankIndex::build(&b2, dense));
        let (s1, s2) = (BankIndex::build(&b1, sparse), BankIndex::build(&b2, sparse));
        for chunks in [1u32, 3, 16, 64] {
            for strategy in [
                PartitionStrategy::EqualWidth,
                PartitionStrategy::WorkBalanced,
            ] {
                let reference = partition_codes(&d1, &d2, strategy, chunks);
                assert_eq!(reference, partition_codes(&s1, &s2, strategy, chunks));
                assert_eq!(reference, partition_codes(&d1, &s2, strategy, chunks));
                assert_eq!(reference, partition_codes(&s1, &d2, strategy, chunks));
            }
        }
    }

    #[test]
    fn sparse_partition_handles_w11_code_space() {
        // At W = 11 the code space holds 4^11 ≈ 4.2 M codes; the sparse
        // work scan must touch only the populated handful. (Correctness,
        // not speed, is asserted — the old dense sweep would still pass,
        // but only the populated-row walk makes W = 11 partitioning
        // proportionate to bank size.)
        use oris_index::IndexBackend;
        let shared = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTTAACC";
        let b1 = bank(&[&format!("TTTT{shared}GGGG")]);
        let b2 = bank(&[&format!("CCCC{shared}AAAA")]);
        let icfg = IndexConfig::full(11).with_backend(IndexBackend::Sparse);
        let i1 = BankIndex::build(&b1, icfg);
        let i2 = BankIndex::build(&b2, icfg);
        let num_codes = i1.coder().num_seeds() as u32;
        let ranges = partition_codes(&i1, &i2, PartitionStrategy::WorkBalanced, 16);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, num_codes);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // And the full pipeline finds the shared region at W = 11.
        let c = cfg(11);
        let (hsps, _) = find_hsps(&b1, &i1, &b2, &i2, &c);
        assert!(
            hsps.iter().any(|h| h.len as usize >= shared.len()),
            "{hsps:?}"
        );
    }

    #[test]
    fn stats_account_for_all_pairs() {
        let shared = "ATGGCGTACGTTAGCC";
        let b1 = bank(&[shared, "AAAATTTTGGGGCCCC"]);
        let b2 = bank(&[shared]);
        let c = cfg(4);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let (_, st) = find_hsps(&b1, &i1, &b2, &i2, &c);
        assert_eq!(st.pairs_examined, st.aborted + st.below_threshold + st.kept);
        assert!(st.pairs_examined > 0);
    }

    #[test]
    fn matches_bruteforce_hsp_set() {
        // Reference: enumerate every hit pair, extend unguarded with the
        // same xdrop, dedup the resulting (start1, start2, len) triples.
        // The ordered generator must produce the same set.
        use oris_align::{extend_hit, ExtensionOutcome, OrderGuard, UngappedParams};
        let b1 = bank(&["ATGGCGTACGTTAGCCTAGGACGGATCGAT", "GGCCTTAAGGCCTTAA"]);
        let b2 = bank(&["TTATGGCGTACGTTAGCCTAGGTT", "CGGATCGATACGT"]);
        let c = cfg(5);
        let i1 = BankIndex::build(&b1, IndexConfig::full(c.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(c.w));
        let params = UngappedParams {
            w: c.w,
            xdrop: c.xdrop_ungapped,
            scheme: c.scheme,
            max_span: usize::MAX / 4,
        };
        let coder = i1.coder();
        let mut brute = std::collections::HashSet::new();
        for code in 0..coder.num_seeds() as u32 {
            for &a in i1.occurrences(code) {
                for &b in i2.occurrences(code) {
                    if let ExtensionOutcome::Hsp { score, left, right } = extend_hit(
                        b1.data(),
                        b2.data(),
                        a as usize,
                        b as usize,
                        code,
                        coder,
                        &params,
                        OrderGuard::None,
                    ) {
                        // `>=`: min_hsp_score is the minimum score to KEEP
                        // (the paper's S1) — matches process_code_range.
                        if score >= c.min_hsp_score {
                            brute.insert((
                                a - left as u32,
                                b - left as u32,
                                left as u32 + c.w as u32 + right as u32,
                            ));
                        }
                    }
                }
            }
        }
        let ordered: std::collections::HashSet<(u32, u32, u32)> = run(&b1, &b2, &c)
            .into_iter()
            .map(|h| (h.start1, h.start2, h.len))
            .collect();
        assert_eq!(ordered, brute);
    }

    #[test]
    fn guard_auto_selection_follows_provenance() {
        let b = bank(&["ACGTACGTTTGGCCAAACGT"]);
        let full = BankIndex::build(&b, IndexConfig::full(4));
        let masked = BankIndex::build_filtered(&b, IndexConfig::full(4), |p| p == 2);
        let strided = BankIndex::build(&b, IndexConfig::asymmetric(4));
        assert!(matches!(
            select_guard(&full, &full),
            OrderGuard::OrderedFull
        ));
        assert!(matches!(
            select_guard(&full, &masked),
            OrderGuard::OrderedIndexed { .. }
        ));
        assert!(matches!(
            select_guard(&masked, &full),
            OrderGuard::OrderedIndexed { .. }
        ));
        assert!(matches!(
            select_guard(&full, &strided),
            OrderGuard::OrderedIndexed { .. }
        ));
    }

    use oris_align::OrderGuard;
    use proptest::prelude::*;

    fn banks_from(seqs: &[String]) -> Bank {
        let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
        bank(&refs)
    }

    proptest! {
        /// On fully indexed banks the auto-selected probe-free fast path
        /// (`OrderedFull`), the rolled indexed guard and the probe
        /// baseline are byte-identical: same HSP vector (order included)
        /// and same `Step2Stats`.
        #[test]
        fn full_and_indexed_guards_agree_on_fully_indexed_banks(
            seqs1 in proptest::collection::vec("[ACGTN]{5,60}", 1..4),
            seqs2 in proptest::collection::vec("[ACGTN]{5,60}", 1..4),
            w in 3usize..6,
        ) {
            let b1 = banks_from(&seqs1);
            let b2 = banks_from(&seqs2);
            let c = cfg(w);
            let i1 = BankIndex::build(&b1, IndexConfig::full(w));
            let i2 = BankIndex::build(&b2, IndexConfig::full(w));
            prop_assert!(matches!(select_guard(&i1, &i2), OrderGuard::OrderedFull));

            let auto = find_hsps(&b1, &i1, &b2, &i2, &c);
            let indexed = find_hsps_with_guard(
                &b1, &i1, &b2, &i2, &c,
                OrderGuard::OrderedIndexed { idx1: &i1, idx2: &i2 },
            );
            let probe = find_hsps_with_guard(
                &b1, &i1, &b2, &i2, &c,
                OrderGuard::OrderedIndexedProbe { idx1: &i1, idx2: &i2 },
            );
            prop_assert_eq!(&auto, &indexed);
            prop_assert_eq!(&auto, &probe);
        }

        /// Masked / asymmetric builds keep the indexed guard, and the
        /// rolled representation reproduces the seed's random-probe
        /// behaviour exactly (HSPs and stats).
        #[test]
        fn masked_builds_select_indexed_guard_and_match_seed_behavior(
            seqs1 in proptest::collection::vec("[ACGTN]{5,60}", 1..4),
            seqs2 in proptest::collection::vec("[ACGTN]{5,60}", 1..4),
            w in 3usize..6,
            mask_mod in 2usize..7,
            stride in 1usize..3,
        ) {
            let b1 = banks_from(&seqs1);
            let b2 = banks_from(&seqs2);
            let c = cfg(w);
            let i1 = BankIndex::build_filtered(
                &b1, IndexConfig::full(w), |p| p % mask_mod == 0,
            );
            let i2 = BankIndex::build(&b2, IndexConfig { stride, ..IndexConfig::full(w) });
            // The mask predicate fires on any non-trivial bank, so the
            // indexed guard must be selected whenever something was
            // actually excluded.
            if !i1.is_fully_indexed() || !i2.is_fully_indexed() {
                prop_assert!(matches!(
                    select_guard(&i1, &i2),
                    OrderGuard::OrderedIndexed { .. }
                ));
            }
            let auto = find_hsps(&b1, &i1, &b2, &i2, &c);
            let seed_behavior = find_hsps_with_guard(
                &b1, &i1, &b2, &i2, &c,
                OrderGuard::OrderedIndexedProbe { idx1: &i1, idx2: &i2 },
            );
            prop_assert_eq!(&auto, &seed_behavior);
        }

        /// Dense and sparse index backends are interchangeable in step 2:
        /// same HSP vector (order included) and same `Step2Stats`, for
        /// random banks, word lengths, masking and stride — including the
        /// mixed pairing one mmap-attached dense volume against a fresh
        /// sparse query index produces.
        #[test]
        fn step2_output_is_backend_invariant(
            seqs1 in proptest::collection::vec("[ACGTN]{5,60}", 1..4),
            seqs2 in proptest::collection::vec("[ACGTN]{5,60}", 1..4),
            w in 3usize..6,
            mask_mod in 2usize..7,
            stride in 1usize..3,
        ) {
            use oris_index::IndexBackend;
            let b1 = banks_from(&seqs1);
            let b2 = banks_from(&seqs2);
            let c = cfg(w);
            let dense = IndexConfig::full(w).with_backend(IndexBackend::Dense);
            let sparse = IndexConfig::full(w).with_backend(IndexBackend::Sparse);
            let d1 = BankIndex::build_filtered(&b1, dense, |p| p % mask_mod == 0);
            let s1 = BankIndex::build_filtered(&b1, sparse, |p| p % mask_mod == 0);
            let strided = |backend| IndexConfig { stride, ..IndexConfig::full(w) }
                .with_backend(backend);
            let d2 = BankIndex::build(&b2, strided(IndexBackend::Dense));
            let s2 = BankIndex::build(&b2, strided(IndexBackend::Sparse));

            let reference = find_hsps(&b1, &d1, &b2, &d2, &c);
            prop_assert_eq!(&reference, &find_hsps(&b1, &s1, &b2, &s2, &c));
            prop_assert_eq!(&reference, &find_hsps(&b1, &d1, &b2, &s2, &c));
            prop_assert_eq!(&reference, &find_hsps(&b1, &s1, &b2, &d2, &c));
        }

        /// The work-balanced partition returns at most `chunks + 1`
        /// contiguous, in-order ranges covering the whole code space —
        /// the documented greedy-cut bound — for random offset arrays.
        #[test]
        fn partition_bound_holds_for_random_offsets(
            seqs1 in proptest::collection::vec("[ACGT]{0,80}", 1..4),
            seqs2 in proptest::collection::vec("[ACGT]{0,80}", 1..4),
            w in 2usize..5,
            chunks in 1u32..40,
        ) {
            let b1 = banks_from(&seqs1);
            let b2 = banks_from(&seqs2);
            let i1 = BankIndex::build(&b1, IndexConfig::full(w));
            let i2 = BankIndex::build(&b2, IndexConfig::full(w));
            let num_codes = i1.coder().num_seeds() as u32;
            for strategy in [PartitionStrategy::EqualWidth, PartitionStrategy::WorkBalanced] {
                let ranges = partition_codes(&i1, &i2, strategy, chunks);
                prop_assert!(!ranges.is_empty());
                prop_assert_eq!(ranges.first().unwrap().start, 0);
                prop_assert_eq!(ranges.last().unwrap().end, num_codes);
                for pair in ranges.windows(2) {
                    prop_assert_eq!(pair[0].end, pair[1].start);
                }
                if matches!(strategy, PartitionStrategy::WorkBalanced) {
                    prop_assert!(
                        ranges.len() <= chunks as usize + 1,
                        "{} ranges for {} chunks", ranges.len(), chunks
                    );
                }
            }
        }
    }
}
