//! ORIS pipeline configuration.

use oris_align::ScoringScheme;
use oris_eval::SubjectSpace;
use oris_index::IndexBackend;

/// Which low-complexity filter to apply before indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    /// No filtering.
    None,
    /// The windowed-entropy filter (the SCORIS-N-side filter, see
    /// `oris-dust`). This is the ORIS default.
    Entropy,
    /// The DUST-style triplet filter (what BLASTN uses).
    Dust,
}

impl FilterKind {
    /// Stable numeric tag stored in persisted index files
    /// (`oris_index::IndexMeta::filter_code`), so a loader can refuse an
    /// index prepared under a different filter than the run requests.
    pub fn code(self) -> u32 {
        match self {
            FilterKind::None => 0,
            FilterKind::Entropy => 1,
            FilterKind::Dust => 2,
        }
    }

    /// Inverse of [`FilterKind::code`]; `None` for unknown tags (an index
    /// written by a newer filter this build does not know).
    pub fn from_code(code: u32) -> Option<FilterKind> {
        match code {
            0 => Some(FilterKind::None),
            1 => Some(FilterKind::Entropy),
            2 => Some(FilterKind::Dust),
            _ => None,
        }
    }
}

/// Configuration of the ORIS pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrisConfig {
    /// Seed length `W` (the paper uses 11; asymmetric mode uses `W − 1`).
    pub w: usize,
    /// X-drop for the ungapped (step 2) extension.
    pub xdrop_ungapped: i32,
    /// X-drop for the gapped (step 3) extension.
    pub xdrop_gapped: i32,
    /// Minimum HSP score to keep after step 2 (the paper's `S1`).
    pub min_hsp_score: i32,
    /// E-value threshold on final alignments (the paper runs `-e 0.001`).
    pub evalue_threshold: f64,
    /// Scoring scheme (shared by both extension stages).
    pub scheme: ScoringScheme,
    /// Low-complexity filter applied before indexing.
    pub filter: FilterKind,
    /// Asymmetric indexing (paper section 3.4): index `W − 1`-mers, every
    /// position on bank 1 but only every other position on bank 2. All
    /// `W`-mer seed matches are still anchored, plus ~50 % of the
    /// `(W−1)`-mer ones.
    pub asymmetric: bool,
    /// Also search the complementary strand of bank 2 (the paper's
    /// announced next-release feature; BLASTN's `-S 3`). Minus-strand
    /// alignments are reported BLAST-style with `sstart > send`.
    pub both_strands: bool,
    /// Worker threads for steps 1–3. `None` = rayon's global default;
    /// `Some(1)` = fully sequential (reference behaviour).
    pub threads: Option<usize>,
    /// Maximum span of a gapped extension per direction (safety bound).
    pub max_gapped_span: usize,
    /// Subject-side effective search space for e-values
    /// ([`oris_eval::SubjectSpace`]): the SCORIS-N per-sequence
    /// convention by default; `Database(total)` for sharded-database
    /// searches, where `total` comes from the database manifest so every
    /// volume prices alignments over the same database-wide space.
    pub subject_space: SubjectSpace,
    /// Occurrence-index row-lookup backend ([`oris_index::IndexBackend`]):
    /// dense `4^W + 1` offsets, the sparse populated-codes table, or
    /// (default) automatic per-build selection by code-space density.
    /// Purely a space/time trade — results are byte-identical either way —
    /// so sessions and persisted indexes accept any backend.
    pub index_backend: IndexBackend,
}

impl Default for OrisConfig {
    fn default() -> Self {
        OrisConfig {
            w: 11,
            xdrop_ungapped: 20,
            xdrop_gapped: 25,
            min_hsp_score: 18,
            evalue_threshold: 1e-3,
            scheme: ScoringScheme::blastn(),
            filter: FilterKind::Entropy,
            asymmetric: false,
            both_strands: false,
            threads: None,
            max_gapped_span: 1 << 20,
            subject_space: SubjectSpace::PerSequence,
            index_backend: IndexBackend::Auto,
        }
    }
}

impl OrisConfig {
    /// A configuration for small inputs (tests, examples): short seeds and
    /// a permissive e-value so toy banks produce alignments.
    pub fn small(w: usize) -> OrisConfig {
        OrisConfig {
            w,
            min_hsp_score: (w as i32) + 4,
            evalue_threshold: 10.0,
            filter: FilterKind::None,
            ..Default::default()
        }
    }

    /// The effective indexed word length (`W`, or `W − 1` in asymmetric
    /// mode).
    pub fn indexed_w(&self) -> usize {
        if self.asymmetric {
            self.w.saturating_sub(1).max(1)
        } else {
            self.w
        }
    }

    /// Index configuration for the query side (bank 1): always full
    /// stride at the effective word length, under the configured
    /// row-lookup backend.
    pub fn query_index_config(&self) -> oris_index::IndexConfig {
        oris_index::IndexConfig::full(self.indexed_w()).with_backend(self.index_backend)
    }

    /// Index configuration for the subject side (bank 2): stride 2 in
    /// asymmetric mode (section 3.4), full otherwise, under the
    /// configured row-lookup backend. This is the configuration `mkindex`
    /// must use for an index that `scoris-n --index` will accept (the
    /// backend is a free choice — sessions never reject an index over
    /// it).
    pub fn subject_index_config(&self) -> oris_index::IndexConfig {
        let base = if self.asymmetric {
            oris_index::IndexConfig::asymmetric(self.indexed_w())
        } else {
            oris_index::IndexConfig::full(self.indexed_w())
        };
        base.with_backend(self.index_backend)
    }

    /// Validates invariants; returns a human-readable complaint if any.
    pub fn validate(&self) -> Result<(), String> {
        if !(1..=oris_index::MAX_SEED_LEN).contains(&self.indexed_w()) {
            return Err(format!(
                "indexed word length {} outside 1..={}",
                self.indexed_w(),
                oris_index::MAX_SEED_LEN
            ));
        }
        if self.xdrop_ungapped <= 0 || self.xdrop_gapped <= 0 {
            return Err("x-drop thresholds must be positive".into());
        }
        if self.evalue_threshold <= 0.0 {
            return Err("e-value threshold must be positive".into());
        }
        if let Some(t) = self.threads {
            if t == 0 {
                return Err("thread count must be ≥ 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(OrisConfig::default().validate(), Ok(()));
    }

    #[test]
    fn paper_defaults() {
        let c = OrisConfig::default();
        assert_eq!(c.w, 11);
        assert_eq!(c.evalue_threshold, 1e-3);
    }

    #[test]
    fn asymmetric_uses_w_minus_one() {
        let c = OrisConfig {
            asymmetric: true,
            ..Default::default()
        };
        assert_eq!(c.indexed_w(), 10);
        let plain = OrisConfig::default();
        assert_eq!(plain.indexed_w(), 11);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)] // mutating one field per probe is the point
    fn validation_catches_bad_values() {
        let mut c = OrisConfig::default();
        c.w = 99;
        assert!(c.validate().is_err());
        let mut c = OrisConfig::default();
        c.xdrop_ungapped = 0;
        assert!(c.validate().is_err());
        let mut c = OrisConfig::default();
        c.threads = Some(0);
        assert!(c.validate().is_err());
        let mut c = OrisConfig::default();
        c.evalue_threshold = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_config_is_valid() {
        assert_eq!(OrisConfig::small(6).validate(), Ok(()));
    }

    #[test]
    fn index_backend_threads_into_both_index_configs() {
        assert_eq!(OrisConfig::default().index_backend, IndexBackend::Auto);
        let c = OrisConfig {
            index_backend: IndexBackend::Sparse,
            asymmetric: true,
            ..Default::default()
        };
        assert_eq!(c.query_index_config().backend, IndexBackend::Sparse);
        assert_eq!(c.subject_index_config().backend, IndexBackend::Sparse);
        assert_eq!(c.subject_index_config().stride, 2);
    }
}
