//! The full 4-step ORIS pipeline (paper Figure 1), expressed over
//! prepared banks: step 1 lives in [`crate::engine`] (build-once), this
//! module runs steps 2–4 against the prepared artifacts and merges
//! strands. [`compare_banks`] is the single-shot wrapper that glues the
//! two together.
//!
//! Since the streaming refactor, steps 2–4 are **sink-driven**: the
//! per-strand runner (`run_prepared_pipeline_into`) pushes records into a
//! caller-supplied callback as step 3 finishes each `(query, subject)`
//! record-pair group, instead of returning a whole `Vec`. Whole-result
//! materialization is a *sink policy* (`CollectSink`) now, not a pipeline
//! property.

use oris_eval::M8Record;
use oris_obs::{Field, Obs, Stopwatch};
use oris_seqio::Bank;

use crate::config::OrisConfig;
use crate::deadline::{Deadline, DeadlineExceeded};
use crate::engine::{PreparedBank, Session};
use crate::hsp::Hsp;
use crate::step2::{self, Step2Stats};
use crate::step3::{self, GappedAlignment, Step3Stats};
use crate::step4::{self, Step4Stats};

/// Timing and counter report for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Seconds spent in step 1 (masking + indexing) *for this result*.
    /// A session run counts only its query's build here; the subject's
    /// one-time cost is reported by `Session::subject_stats` (and folded
    /// back in by the single-shot [`compare_banks`] wrapper).
    pub index_secs: f64,
    /// Number of mask+index builds attributed to this result. A
    /// `both_strands` [`compare_banks`] performs 3 (query once, subject
    /// twice — one per strand); a session run performs 1 (its query);
    /// `Session::run_prepared` performs 0.
    pub index_builds: u32,
    /// Seconds spent in step 2 (hit extension).
    pub step2_secs: f64,
    /// Seconds spent in step 3 (gapped extension).
    pub step3_secs: f64,
    /// Seconds spent in step 4 (records).
    pub step4_secs: f64,
    /// HSPs surviving step 2.
    pub hsps: usize,
    /// Gapped alignments out of step 3 (pre e-value filter).
    pub raw_alignments: usize,
    /// Step-2 counters.
    pub step2: Step2Stats,
    /// Step-3 counters.
    pub step3: Step3Stats,
    /// Step-4 counters.
    pub step4: Step4Stats,
    /// Fraction of bank-1 positions masked by the filter.
    pub masked_fraction1: f64,
    /// Fraction of bank-2 positions masked by the filter.
    pub masked_fraction2: f64,
    /// Index footprint (both banks), bytes — the paper's ≈5·N model.
    pub index_bytes: usize,
}

impl PipelineStats {
    /// Total wall-clock seconds.
    pub fn total_secs(&self) -> f64 {
        self.index_secs + self.step2_secs + self.step3_secs + self.step4_secs
    }

    /// Merges another run's report into this one: seconds and counters
    /// sum; the footprint fields (masked fractions, index bytes) describe
    /// concurrent-resident state, so the merge takes the worse (max) of
    /// the two runs. Used by the strand merge (plus + minus runs of one
    /// query) and by batch totals (per-query reports of one subject).
    pub fn merge(mut self, s: &PipelineStats) -> PipelineStats {
        self.index_secs += s.index_secs;
        self.index_builds += s.index_builds;
        self.step2_secs += s.step2_secs;
        self.step3_secs += s.step3_secs;
        self.step4_secs += s.step4_secs;
        self.hsps += s.hsps;
        self.raw_alignments += s.raw_alignments;
        self.step2 = self.step2.merge(s.step2);
        self.step3 = self.step3.merge(s.step3);
        self.step4 = self.step4.merge(s.step4);
        self.masked_fraction1 = self.masked_fraction1.max(s.masked_fraction1);
        self.masked_fraction2 = self.masked_fraction2.max(s.masked_fraction2);
        self.index_bytes = self.index_bytes.max(s.index_bytes);
        self
    }
}

/// Result of comparing two banks.
#[derive(Debug, Clone, PartialEq)]
pub struct OrisResult {
    /// Final `-m 8` records, sorted by e-value.
    pub alignments: Vec<M8Record>,
    /// Timing/counter report.
    pub stats: PipelineStats,
}

/// Which subject strand a pipeline run searches. `Minus` means `bank2`
/// is the reverse complement of the original subject bank and step 4 maps
/// subject coordinates back to the original records (`sstart > send`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubjectStrand {
    Plus,
    Minus,
}

/// Report of one fused steps-3+4 streaming stage ([`gapped_stage_into`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GappedStageReport {
    /// Step-3 counters.
    pub step3: Step3Stats,
    /// Step-4 counters.
    pub step4: Step4Stats,
    /// Gapped alignments produced (pre e-value filter).
    pub raw_alignments: usize,
    /// Seconds in step 3 (gapped extension), step 4's share subtracted.
    pub step3_secs: f64,
    /// Seconds in step 4 (record conversion), metered inside the fusion.
    pub step4_secs: f64,
}

/// Fused steps 3+4 over step-2 HSPs: each record-pair group's alignments
/// go straight through step 4 into `push` the moment step 3 finishes the
/// group, and are freed — the whole-run alignment vector of the
/// collect-then-merge pipeline never exists. Step 4 runs inside step 3's
/// emission, so its seconds are metered separately and subtracted from
/// the fused region's wall clock.
///
/// Shared by the ORIS per-strand runner and the BLAST baseline's gapped
/// stage (the engines differ in hit *detection* only — keeping the
/// result path literally the same code is what keeps the baseline
/// comparable). `query_residues` is the e-value search-space size on the
/// query side (the full bank for a batched baseline run); with
/// `flip_subject`, subject coordinates are mapped back to the original
/// records' plus-strand numbering *here*, where each alignment still
/// resolves to a record index — a name-keyed mapping after the fact
/// would corrupt coordinates whenever bank 2 carries duplicate record
/// names.
pub fn gapped_stage_into(
    bank1: &Bank,
    bank2: &Bank,
    hsps: &[Hsp],
    cfg: &OrisConfig,
    query_residues: usize,
    flip_subject: bool,
    push: &mut dyn FnMut(M8Record),
) -> GappedStageReport {
    let t0 = Stopwatch::start();
    let mut report = GappedStageReport::default();
    let mut emit = |alns: Vec<GappedAlignment>| {
        let t4 = Stopwatch::start();
        report.raw_alignments += alns.len();
        step4::emit_records(
            bank1,
            bank2,
            &alns,
            cfg,
            query_residues,
            flip_subject,
            &mut report.step4,
            push,
        );
        report.step4_secs += t4.elapsed_secs();
    };
    report.step3 = step3::gapped_alignments_into(bank1, bank2, hsps, cfg, &mut emit);
    report.step3_secs = (t0.elapsed_secs() - report.step4_secs).max(0.0);
    report
}

/// Steps 2–4 against prepared banks, streaming records into `push` as
/// step 3 finishes each record-pair group (unsorted — ordering is the
/// sink's job at the query boundary). Step 1 does not run here: the
/// report's step-1 fields describe the prepared artifacts (masked
/// fractions, resident index bytes) with zero build time and zero builds.
///
/// `deadline` is the cooperative cancellation token, consulted at step-2
/// partition boundaries (and within hot partitions — see
/// [`step2::find_hsps_deadline`]); an expiry aborts the strand before
/// the gapped stage pushes anything further. Disarmed
/// ([`Deadline::none`]) it costs one dead branch and the run is
/// infallible.
///
/// `obs` emits `step2`/`step3` spans and a `step4` point event (steps
/// 3+4 are fused — step 4 runs inside step 3's group callback, so its
/// time is a derived quantity, not a span of its own). Disarmed, each
/// emission is one branch.
pub(crate) fn run_prepared_pipeline_into(
    query: &PreparedBank<'_>,
    subject: &PreparedBank<'_>,
    cfg: &OrisConfig,
    strand: SubjectStrand,
    push: &mut dyn FnMut(M8Record),
    deadline: &Deadline,
    obs: &Obs,
) -> Result<PipelineStats, DeadlineExceeded> {
    let mut stats = PipelineStats::default();
    let (bank1, idx1) = (query.bank(), query.index());
    let (bank2, idx2) = (subject.bank(), subject.index());
    stats.masked_fraction1 = query.stats().masked_fraction;
    stats.masked_fraction2 = subject.stats().masked_fraction;
    stats.index_bytes = idx1.heap_bytes() + idx2.heap_bytes();

    // ---- Step 2: ordered hit extension ----------------------------------
    let t0 = Stopwatch::start();
    let step2_span = obs.span("step2");
    let (hsps, s2) = step2::find_hsps_deadline(
        bank1,
        idx1,
        bank2,
        idx2,
        cfg,
        step2::select_guard(idx1, idx2),
        step2::PartitionStrategy::default(),
        deadline,
    )?;
    drop(step2_span);
    stats.hsps = hsps.len();
    stats.step2 = s2;
    stats.step2_secs = t0.elapsed_secs();

    // ---- Steps 3+4, fused per group --------------------------------------
    let step3_span = obs.span("step3");
    let r = gapped_stage_into(
        bank1,
        bank2,
        &hsps,
        cfg,
        bank1.num_residues(),
        matches!(strand, SubjectStrand::Minus),
        push,
    );
    drop(step3_span);
    obs.point(
        "step4",
        &[
            Field::F64("secs", r.step4_secs),
            Field::U64("records", r.step4.emitted),
        ],
    );
    stats.raw_alignments = r.raw_alignments;
    stats.step3 = r.step3;
    stats.step4 = r.step4;
    stats.step3_secs = r.step3_secs;
    stats.step4_secs = r.step4_secs;
    Ok(stats)
}

/// Merges plus- and minus-strand runs into one sorted result, under the
/// strict total order [`M8Record::total_order`] (e-value, then score
/// descending, then ids and coordinates), so the merged order is unique
/// even with tied e-values — and NaN e-values (degenerate Karlin–Altschul
/// parameters) sort deterministically last instead of panicking the
/// comparator. Minus-strand records already carry original subject
/// coordinates (`sstart > send`) — see `SubjectStrand::Minus`.
///
/// The streaming engine merges strands implicitly (one sink sort over
/// both strand streams at the query boundary — the same total order, so
/// the same bytes); this function is the collected-results form of that
/// merge for callers holding two [`OrisResult`]s.
pub fn merge_strands(plus: OrisResult, mut minus: OrisResult) -> OrisResult {
    let mut alignments = plus.alignments;
    alignments.append(&mut minus.alignments);
    alignments.sort_by(|x, y| x.total_order(y));
    OrisResult {
        alignments,
        stats: plus.stats.merge(&minus.stats),
    }
}

/// Compares two banks with the ORIS algorithm.
///
/// This is the library's single-shot entry point — the equivalent of
/// running the SCORIS-N prototype on two FASTA banks — implemented as a
/// thin wrapper over a one-query [`Session`]: bank 2 is prepared once
/// (both strands when `cfg.both_strands`, so a dual-strand run no longer
/// rebuilds bank 1's mask+index a second time), bank 1 once, and the
/// subject's preparation cost is folded back into the returned stats so
/// the report covers the whole call. For *many* queries against one
/// subject, hold a [`Session`] instead and pay the subject build once.
///
/// `cfg.threads` selects the worker count (a dedicated rayon pool);
/// `None` uses the global pool. With `cfg.both_strands` the complementary
/// strand of bank 2 is searched too (minus-strand records carry
/// `sstart > send`, BLAST style).
///
/// # Panics
/// Panics if the configuration fails [`OrisConfig::validate`].
pub fn compare_banks(bank1: &Bank, bank2: &Bank, cfg: &OrisConfig) -> OrisResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid ORIS configuration: {e}");
    }
    // Subject strands and query are prepared concurrently (the step-1
    // parallelism the per-call pipeline had), so index_secs sums per-bank
    // build seconds that may overlap in wall-clock.
    let (session, query) = Session::new_with_query(bank2, bank1, cfg)
        .unwrap_or_else(|e| panic!("failed to start comparison session: {e}"));
    let mut r = session.run_prepared(&query);
    let subject = session.subject_stats();
    r.stats.index_secs += query.stats().build_secs + subject.build_secs;
    r.stats.index_builds += query.stats().builds + subject.builds;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FilterKind;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn end_to_end_finds_planted_homology() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
        let b1 = bank(&[&format!("TTACCGGTTAACC{core}GGTTACGCAT")]);
        let b2 = bank(&[&format!("CCGGAACCTT{core}TTGGCCAACGGT")]);
        let r = compare_banks(&b1, &b2, &OrisConfig::small(8));
        assert_eq!(r.alignments.len(), 1, "{:?}", r.alignments);
        let a = &r.alignments[0];
        assert!(a.length >= core.len());
        assert!(a.pident > 90.0);
    }

    #[test]
    fn no_homology_no_output() {
        let b1 = bank(&["ATATATATGCGCGCGCATATATATGCGCGCGC"]);
        let b2 = bank(&["GGTTCCAAGGTTCCAAGGTTCCAAGGTTCCAA"]);
        let r = compare_banks(&b1, &b2, &OrisConfig::small(8));
        assert!(r.alignments.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let b1 = bank(&[core]);
        let b2 = bank(&[core]);
        let r = compare_banks(&b1, &b2, &OrisConfig::small(6));
        assert!(r.stats.hsps > 0);
        assert!(r.stats.raw_alignments > 0);
        assert!(r.stats.index_bytes > 0);
        assert!(r.stats.total_secs() > 0.0);
        assert_eq!(r.stats.step4.emitted as usize, r.alignments.len());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let core1 = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let core2 = "GGCCATTAGGCCATTAACGGTTAACCGGATCCAT";
        let b1 = bank(&[core1, core2, &format!("{core1}TT{core2}")]);
        let b2 = bank(&[core2, core1]);
        let mut cfg = OrisConfig::small(7);
        cfg.threads = Some(1);
        let r1 = compare_banks(&b1, &b2, &cfg);
        cfg.threads = Some(4);
        let r4 = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r1.alignments, r4.alignments);
    }

    #[test]
    fn filter_suppresses_low_complexity_matches() {
        // Two banks sharing only a poly-A run: with the entropy filter the
        // match disappears; without it, it is reported.
        let polya = "A".repeat(120);
        let b1 = bank(&[&format!("ATGGCGTACGTTAGCC{polya}")]);
        let b2 = bank(&[&format!("GGCCATTAGGCCTTAA{polya}")]);
        let mut cfg = OrisConfig::small(8);
        cfg.filter = FilterKind::None;
        let unfiltered = compare_banks(&b1, &b2, &cfg);
        assert!(!unfiltered.alignments.is_empty());
        cfg.filter = FilterKind::Entropy;
        let filtered = compare_banks(&b1, &b2, &cfg);
        assert!(filtered.alignments.len() < unfiltered.alignments.len());
        assert!(filtered.stats.masked_fraction1 > 0.0);
    }

    #[test]
    fn asymmetric_mode_still_finds_homology() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
        let b1 = bank(&[&format!("TTACCGGTTAACC{core}GGTTACGCAT")]);
        let b2 = bank(&[&format!("CCGGAACCTT{core}TTGGCCAACGGT")]);
        let mut cfg = OrisConfig::small(8);
        cfg.asymmetric = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert!(!r.alignments.is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let b = bank(&["ACGT"]);
        let mut cfg = OrisConfig::small(6);
        cfg.xdrop_ungapped = -1;
        let _ = compare_banks(&b, &b, &cfg);
    }

    #[test]
    fn empty_banks_are_handled() {
        let empty = Bank::empty();
        let b = bank(&["ACGTACGTACGTACGT"]);
        let r = compare_banks(&empty, &b, &OrisConfig::small(6));
        assert!(r.alignments.is_empty());
        let r = compare_banks(&b, &empty, &OrisConfig::small(6));
        assert!(r.alignments.is_empty());
    }
}

#[cfg(test)]
mod strand_tests {
    use super::*;
    use crate::config::FilterKind;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn revcomp(s: &str) -> String {
        s.chars()
            .rev()
            .map(|c| match c {
                'A' => 'T',
                'T' => 'A',
                'C' => 'G',
                'G' => 'C',
                other => other,
            })
            .collect()
    }

    #[test]
    fn minus_strand_homology_needs_both_strands() {
        // A/C-only core: its reverse complement is G/T-only, so no plus-
        // strand seed can exist between the banks (and no accidental
        // reverse-complement palindrome inside the core, unlike mixed
        // sequence).
        let core = "ACCACAACCCACAACACCAACCCAACACACCACAACCAAC";
        let b1 = bank(&[&format!("TTACC{core}GGTTA")]);
        // subject carries only the reverse complement of the core
        let b2 = bank(&[&format!("CCGGA{}TTGGC", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);
        let single = compare_banks(&b1, &b2, &cfg);
        assert!(single.alignments.is_empty(), "{:?}", single.alignments);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);
        assert_eq!(both.alignments.len(), 1, "{:?}", both.alignments);
        let a = &both.alignments[0];
        assert!(a.sstart > a.send, "minus strand must report sstart > send");
        assert!(a.length >= core.len());
    }

    #[test]
    fn minus_strand_coordinates_map_back() {
        // The reported subject range, read on the minus strand, must
        // reverse-complement to the query range.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("GGTTCCAA{}AACCGGTT", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r.alignments.len(), 1);
        let a = &r.alignments[0];
        // subject slice on the plus strand is [send, sstart] (1-based)
        let subj = b2.sequence_string(0);
        let plus_slice = &subj[a.send - 1..a.sstart];
        let q = b1.sequence_string(0);
        let q_slice = &q[a.qstart - 1..a.qend];
        assert_eq!(revcomp(plus_slice), q_slice);
    }

    #[test]
    fn plus_strand_hits_unchanged_by_both_strands() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("TT{core}AA")]);
        let mut cfg = OrisConfig::small(8);
        let single = compare_banks(&b1, &b2, &cfg);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);
        // the plus-strand alignment is present in both runs
        assert!(!single.alignments.is_empty());
        for a in &single.alignments {
            assert!(
                both.alignments.iter().any(|b| b == a),
                "plus-strand record lost: {a}"
            );
        }
    }

    #[test]
    fn merged_stats_account_for_both_strand_runs() {
        // Homology on both strands: the merged report must include the
        // minus-strand run's step counters (they were silently dropped
        // before), and the footprint fields must survive the merge.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("TT{core}AA{}GG", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);

        let single = compare_banks(&b1, &b2, &cfg);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);

        // The minus-strand run sees the reverse-complemented core too, so
        // every step-2/3/4 counter at least doubles relative to one run.
        assert!(both.stats.step2.pairs_examined >= 2 * single.stats.step2.pairs_examined);
        assert!(both.stats.step2.kept >= 2 * single.stats.step2.kept);
        assert!(both.stats.step3.extended >= 2 * single.stats.step3.extended);
        assert!(both.stats.step4.emitted >= 2 * single.stats.step4.emitted);
        assert_eq!(
            both.stats.step4.emitted as usize,
            both.alignments.len(),
            "emitted must match the merged record count"
        );
        // Counter-accounting invariant holds after the merge.
        assert_eq!(
            both.stats.step2.pairs_examined,
            both.stats.step2.aborted + both.stats.step2.below_threshold + both.stats.step2.kept
        );
        // Footprint fields: max across runs, not zero and not doubled.
        assert_eq!(both.stats.index_bytes, single.stats.index_bytes);
        assert!(both.stats.index_bytes > 0);
    }

    #[test]
    fn merged_stats_keep_masked_fractions() {
        // A poly-A run is low-complexity on both strands (poly-T on the
        // reverse complement); the merged masked fractions must be > 0,
        // not the minus-run-dropped 0.0 of the old merge.
        let polya = "A".repeat(120);
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[&format!("{core}{polya}")]);
        let b2 = bank(&[&format!("{polya}{core}")]);
        let mut cfg = OrisConfig::small(8);
        cfg.filter = FilterKind::Entropy;
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert!(r.stats.masked_fraction1 > 0.0);
        assert!(r.stats.masked_fraction2 > 0.0);
    }

    #[test]
    fn duplicate_subject_names_flip_with_the_right_length() {
        // Two subject records share the name "dup" but have different
        // lengths; the minus-strand homology sits in the FIRST one. The
        // old name-keyed length map silently took the last length,
        // corrupting the flipped coordinates. Resolving by record index
        // must produce coordinates that reverse-complement back to the
        // query.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let mut bb = BankBuilder::new();
        bb.push_str("dup", &format!("GGTTCCAA{}AACCGGTT", revcomp(core)))
            .unwrap();
        // Same name, much longer record, no homology.
        bb.push_str("dup", &"GATTACAA".repeat(40)).unwrap();
        let b2 = bb.finish();
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r.alignments.len(), 1, "{:?}", r.alignments);
        let a = &r.alignments[0];
        assert!(a.sstart > a.send, "minus strand flips to sstart > send");
        // The subject slice read on the plus strand of record 0 must
        // reverse-complement to the query slice — only true if the flip
        // used record 0's length, not its namesake's.
        let subj = b2.sequence_string(0);
        let plus_slice = &subj[a.send - 1..a.sstart];
        let q = b1.sequence_string(0);
        let q_slice = &q[a.qstart - 1..a.qend];
        assert_eq!(revcomp(plus_slice), q_slice);
    }

    #[test]
    fn both_strands_builds_query_index_exactly_once() {
        // The prepared-bank engine's accounting: a single-strand compare
        // builds two indexes (query + subject); a both-strands compare
        // builds three (query ONCE, subject once per strand) — not the
        // four the per-strand pipeline used to pay.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("TT{core}AA{}GG", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);
        let single = compare_banks(&b1, &b2, &cfg);
        assert_eq!(single.stats.index_builds, 2);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);
        assert_eq!(both.stats.index_builds, 3);
    }

    #[test]
    fn merge_survives_nan_evalues() {
        // partial_cmp().unwrap() panicked when an e-value was NaN (e.g.
        // degenerate Karlin–Altschul parameters); total_cmp must sort
        // deterministically instead.
        use oris_eval::M8Record;
        let rec = |sid: &str, evalue: f64| M8Record {
            qid: "q".into(),
            sid: sid.into(),
            pident: 100.0,
            length: 10,
            mismatch: 0,
            gapopen: 0,
            qstart: 1,
            qend: 10,
            sstart: 1,
            send: 10,
            evalue,
            bitscore: 20.0,
        };
        let plus = OrisResult {
            alignments: vec![rec("a", f64::NAN), rec("b", 1e-5)],
            stats: PipelineStats::default(),
        };
        let minus = OrisResult {
            alignments: vec![rec("c", 1e-9), rec("d", f64::NAN)],
            stats: PipelineStats::default(),
        };
        let merged = super::merge_strands(plus, minus);
        assert_eq!(merged.alignments.len(), 4);
        // Finite e-values sort ahead of NaN (total_cmp places NaN last),
        // and the call above not panicking is the regression being pinned.
        assert_eq!(merged.alignments[0].sid, "c");
        assert_eq!(merged.alignments[1].sid, "b");
        assert!(merged.alignments[2].evalue.is_nan());
        assert!(merged.alignments[3].evalue.is_nan());
    }

    #[test]
    fn palindromic_subject_reports_both_strands() {
        // A reverse-complement palindrome aligns on both strands.
        let half = "ATGGCGTACGTTAGCC";
        let palindrome = format!("{half}{}", {
            let rc: String = half
                .chars()
                .rev()
                .map(|c| match c {
                    'A' => 'T',
                    'T' => 'A',
                    'C' => 'G',
                    'G' => 'C',
                    o => o,
                })
                .collect();
            rc
        });
        let b1 = bank(&[&palindrome]);
        let b2 = bank(&[&palindrome]);
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        let plus = r.alignments.iter().filter(|a| a.sstart <= a.send).count();
        let minus = r.alignments.iter().filter(|a| a.sstart > a.send).count();
        assert!(plus >= 1, "{:?}", r.alignments);
        assert!(minus >= 1, "{:?}", r.alignments);
    }
}
