//! The full 4-step ORIS pipeline (paper Figure 1).

use oris_dust::{DustMasker, EntropyMasker, Masker};
use oris_eval::M8Record;
use oris_index::{BankIndex, IndexConfig};
use oris_seqio::Bank;

use crate::config::{FilterKind, OrisConfig};
use crate::step2::{self, Step2Stats};
use crate::step3::{self, Step3Stats};
use crate::step4::{self, Step4Stats};

/// Timing and counter report for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Seconds spent in step 1 (masking + indexing).
    pub index_secs: f64,
    /// Seconds spent in step 2 (hit extension).
    pub step2_secs: f64,
    /// Seconds spent in step 3 (gapped extension).
    pub step3_secs: f64,
    /// Seconds spent in step 4 (records).
    pub step4_secs: f64,
    /// HSPs surviving step 2.
    pub hsps: usize,
    /// Gapped alignments out of step 3 (pre e-value filter).
    pub raw_alignments: usize,
    /// Step-2 counters.
    pub step2: Step2Stats,
    /// Step-3 counters.
    pub step3: Step3Stats,
    /// Step-4 counters.
    pub step4: Step4Stats,
    /// Fraction of bank-1 positions masked by the filter.
    pub masked_fraction1: f64,
    /// Fraction of bank-2 positions masked by the filter.
    pub masked_fraction2: f64,
    /// Index footprint (both banks), bytes — the paper's ≈5·N model.
    pub index_bytes: usize,
}

impl PipelineStats {
    /// Total wall-clock seconds.
    pub fn total_secs(&self) -> f64 {
        self.index_secs + self.step2_secs + self.step3_secs + self.step4_secs
    }
}

/// Result of comparing two banks.
#[derive(Debug, Clone, PartialEq)]
pub struct OrisResult {
    /// Final `-m 8` records, sorted by e-value.
    pub alignments: Vec<M8Record>,
    /// Timing/counter report.
    pub stats: PipelineStats,
}

fn mask_for(filter: FilterKind, bank: &Bank) -> Option<oris_dust::MaskSet> {
    match filter {
        FilterKind::None => None,
        FilterKind::Entropy => Some(EntropyMasker::default().mask_bank(bank)),
        FilterKind::Dust => Some(DustMasker::default().mask_bank(bank)),
    }
}

fn build_index(bank: &Bank, cfg: IndexConfig, mask: &Option<oris_dust::MaskSet>) -> BankIndex {
    match mask {
        Some(m) => {
            // BLAST masking semantics: discard a word when it *overlaps*
            // a masked region (not only when it starts inside one).
            let dilated = m.dilated_left(cfg.w);
            BankIndex::build_filtered(bank, cfg, |p| dilated.contains(p))
        }
        None => BankIndex::build(bank, cfg),
    }
}

/// Which subject strand a pipeline run searches. `Minus` means `bank2`
/// is the reverse complement of the original subject bank and step 4 maps
/// subject coordinates back to the original records (`sstart > send`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SubjectStrand {
    Plus,
    Minus,
}

fn run_pipeline(bank1: &Bank, bank2: &Bank, cfg: &OrisConfig, strand: SubjectStrand) -> OrisResult {
    let mut stats = PipelineStats::default();

    // ---- Step 1: masking + indexing ------------------------------------
    let t0 = std::time::Instant::now();
    let w = cfg.indexed_w();
    let icfg1 = IndexConfig::full(w);
    let icfg2 = if cfg.asymmetric {
        IndexConfig::asymmetric(w)
    } else {
        IndexConfig::full(w)
    };
    let ((mask1, idx1), (mask2, idx2)) = rayon::join(
        || {
            let m = mask_for(cfg.filter, bank1);
            let i = build_index(bank1, icfg1, &m);
            (m, i)
        },
        || {
            let m = mask_for(cfg.filter, bank2);
            let i = build_index(bank2, icfg2, &m);
            (m, i)
        },
    );
    stats.masked_fraction1 = mask1.as_ref().map_or(0.0, |m| m.masked_fraction());
    stats.masked_fraction2 = mask2.as_ref().map_or(0.0, |m| m.masked_fraction());
    stats.index_bytes = idx1.heap_bytes() + idx2.heap_bytes();
    stats.index_secs = t0.elapsed().as_secs_f64();

    // ---- Step 2: ordered hit extension ----------------------------------
    let t0 = std::time::Instant::now();
    let (hsps, s2) = step2::find_hsps(bank1, &idx1, bank2, &idx2, cfg);
    stats.hsps = hsps.len();
    stats.step2 = s2;
    stats.step2_secs = t0.elapsed().as_secs_f64();

    // ---- Step 3: gapped extension ---------------------------------------
    let t0 = std::time::Instant::now();
    let (alns, s3) = step3::gapped_alignments(bank1, bank2, &hsps, cfg);
    stats.raw_alignments = alns.len();
    stats.step3 = s3;
    stats.step3_secs = t0.elapsed().as_secs_f64();

    // ---- Step 4: records -------------------------------------------------
    let t0 = std::time::Instant::now();
    let (records, s4) = match strand {
        SubjectStrand::Plus => step4::display_records(bank1, bank2, &alns, cfg),
        // Subject coordinates are mapped back to the original records
        // *here*, where each alignment resolves to a record index — a
        // name-keyed mapping after the fact would corrupt coordinates
        // whenever bank 2 carries duplicate record names.
        SubjectStrand::Minus => step4::display_records_minus_strand(bank1, bank2, &alns, cfg),
    };
    stats.step4 = s4;
    stats.step4_secs = t0.elapsed().as_secs_f64();

    OrisResult {
        alignments: records,
        stats,
    }
}

/// Merges plus- and minus-strand runs into one e-value-sorted result.
/// Minus-strand records already carry original subject coordinates
/// (`sstart > send`) — see `SubjectStrand::Minus`.
fn merge_strands(mut plus: OrisResult, mut minus: OrisResult) -> OrisResult {
    let mut alignments = plus.alignments;
    alignments.append(&mut minus.alignments);
    // total_cmp, not partial_cmp().unwrap(): a NaN e-value (degenerate
    // Karlin–Altschul parameters) must sort deterministically instead of
    // panicking mid-merge.
    alignments.sort_by(|x, y| {
        x.evalue
            .total_cmp(&y.evalue)
            .then_with(|| x.qid.cmp(&y.qid))
            .then_with(|| x.sid.cmp(&y.sid))
            .then_with(|| x.qstart.cmp(&y.qstart))
            .then_with(|| x.sstart.cmp(&y.sstart))
    });
    let s = &minus.stats;
    plus.stats.index_secs += s.index_secs;
    plus.stats.step2_secs += s.step2_secs;
    plus.stats.step3_secs += s.step3_secs;
    plus.stats.step4_secs += s.step4_secs;
    plus.stats.hsps += s.hsps;
    plus.stats.raw_alignments += s.raw_alignments;
    // Per-step counters sum across the two runs; the footprint fields
    // describe concurrent-resident state, so the merged report takes the
    // worse (max) of the two runs. Bank 2 and its reverse complement have
    // the same masked fraction up to filter asymmetries, and the plus- and
    // minus-strand indexes are the same size up to masking differences —
    // max is the honest summary for both.
    plus.stats.step2 = plus.stats.step2.merge(s.step2);
    plus.stats.step3 = plus.stats.step3.merge(s.step3);
    plus.stats.step4 = plus.stats.step4.merge(s.step4);
    plus.stats.masked_fraction1 = plus.stats.masked_fraction1.max(s.masked_fraction1);
    plus.stats.masked_fraction2 = plus.stats.masked_fraction2.max(s.masked_fraction2);
    plus.stats.index_bytes = plus.stats.index_bytes.max(s.index_bytes);
    OrisResult {
        alignments,
        stats: plus.stats,
    }
}

/// Compares two banks with the ORIS algorithm.
///
/// This is the library's main entry point — the equivalent of running the
/// SCORIS-N prototype on two FASTA banks. `cfg.threads` selects the worker
/// count (a dedicated rayon pool); `None` uses the global pool. With
/// `cfg.both_strands` the complementary strand of bank 2 is searched too
/// (minus-strand records carry `sstart > send`, BLAST style).
///
/// # Panics
/// Panics if the configuration fails [`OrisConfig::validate`].
pub fn compare_banks(bank1: &Bank, bank2: &Bank, cfg: &OrisConfig) -> OrisResult {
    if let Err(e) = cfg.validate() {
        panic!("invalid ORIS configuration: {e}");
    }
    let run = |b2: &Bank, strand: SubjectStrand| match cfg.threads {
        None => run_pipeline(bank1, b2, cfg, strand),
        Some(n) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("failed to build thread pool");
            pool.install(|| run_pipeline(bank1, b2, cfg, strand))
        }
    };
    let plus = run(bank2, SubjectStrand::Plus);
    if !cfg.both_strands {
        return plus;
    }
    let rc = bank2.reverse_complement();
    let minus = run(&rc, SubjectStrand::Minus);
    merge_strands(plus, minus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn end_to_end_finds_planted_homology() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
        let b1 = bank(&[&format!("TTACCGGTTAACC{core}GGTTACGCAT")]);
        let b2 = bank(&[&format!("CCGGAACCTT{core}TTGGCCAACGGT")]);
        let r = compare_banks(&b1, &b2, &OrisConfig::small(8));
        assert_eq!(r.alignments.len(), 1, "{:?}", r.alignments);
        let a = &r.alignments[0];
        assert!(a.length >= core.len());
        assert!(a.pident > 90.0);
    }

    #[test]
    fn no_homology_no_output() {
        let b1 = bank(&["ATATATATGCGCGCGCATATATATGCGCGCGC"]);
        let b2 = bank(&["GGTTCCAAGGTTCCAAGGTTCCAAGGTTCCAA"]);
        let r = compare_banks(&b1, &b2, &OrisConfig::small(8));
        assert!(r.alignments.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let b1 = bank(&[core]);
        let b2 = bank(&[core]);
        let r = compare_banks(&b1, &b2, &OrisConfig::small(6));
        assert!(r.stats.hsps > 0);
        assert!(r.stats.raw_alignments > 0);
        assert!(r.stats.index_bytes > 0);
        assert!(r.stats.total_secs() > 0.0);
        assert_eq!(r.stats.step4.emitted as usize, r.alignments.len());
    }

    #[test]
    fn thread_count_does_not_change_output() {
        let core1 = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGAT";
        let core2 = "GGCCATTAGGCCATTAACGGTTAACCGGATCCAT";
        let b1 = bank(&[core1, core2, &format!("{core1}TT{core2}")]);
        let b2 = bank(&[core2, core1]);
        let mut cfg = OrisConfig::small(7);
        cfg.threads = Some(1);
        let r1 = compare_banks(&b1, &b2, &cfg);
        cfg.threads = Some(4);
        let r4 = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r1.alignments, r4.alignments);
    }

    #[test]
    fn filter_suppresses_low_complexity_matches() {
        // Two banks sharing only a poly-A run: with the entropy filter the
        // match disappears; without it, it is reported.
        let polya = "A".repeat(120);
        let b1 = bank(&[&format!("ATGGCGTACGTTAGCC{polya}")]);
        let b2 = bank(&[&format!("GGCCATTAGGCCTTAA{polya}")]);
        let mut cfg = OrisConfig::small(8);
        cfg.filter = FilterKind::None;
        let unfiltered = compare_banks(&b1, &b2, &cfg);
        assert!(!unfiltered.alignments.is_empty());
        cfg.filter = FilterKind::Entropy;
        let filtered = compare_banks(&b1, &b2, &cfg);
        assert!(filtered.alignments.len() < unfiltered.alignments.len());
        assert!(filtered.stats.masked_fraction1 > 0.0);
    }

    #[test]
    fn asymmetric_mode_still_finds_homology() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";
        let b1 = bank(&[&format!("TTACCGGTTAACC{core}GGTTACGCAT")]);
        let b2 = bank(&[&format!("CCGGAACCTT{core}TTGGCCAACGGT")]);
        let mut cfg = OrisConfig::small(8);
        cfg.asymmetric = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert!(!r.alignments.is_empty());
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let b = bank(&["ACGT"]);
        let mut cfg = OrisConfig::small(6);
        cfg.xdrop_ungapped = -1;
        let _ = compare_banks(&b, &b, &cfg);
    }

    #[test]
    fn empty_banks_are_handled() {
        let empty = Bank::empty();
        let b = bank(&["ACGTACGTACGTACGT"]);
        let r = compare_banks(&empty, &b, &OrisConfig::small(6));
        assert!(r.alignments.is_empty());
        let r = compare_banks(&b, &empty, &OrisConfig::small(6));
        assert!(r.alignments.is_empty());
    }
}

#[cfg(test)]
mod strand_tests {
    use super::*;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn revcomp(s: &str) -> String {
        s.chars()
            .rev()
            .map(|c| match c {
                'A' => 'T',
                'T' => 'A',
                'C' => 'G',
                'G' => 'C',
                other => other,
            })
            .collect()
    }

    #[test]
    fn minus_strand_homology_needs_both_strands() {
        // A/C-only core: its reverse complement is G/T-only, so no plus-
        // strand seed can exist between the banks (and no accidental
        // reverse-complement palindrome inside the core, unlike mixed
        // sequence).
        let core = "ACCACAACCCACAACACCAACCCAACACACCACAACCAAC";
        let b1 = bank(&[&format!("TTACC{core}GGTTA")]);
        // subject carries only the reverse complement of the core
        let b2 = bank(&[&format!("CCGGA{}TTGGC", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);
        let single = compare_banks(&b1, &b2, &cfg);
        assert!(single.alignments.is_empty(), "{:?}", single.alignments);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);
        assert_eq!(both.alignments.len(), 1, "{:?}", both.alignments);
        let a = &both.alignments[0];
        assert!(a.sstart > a.send, "minus strand must report sstart > send");
        assert!(a.length >= core.len());
    }

    #[test]
    fn minus_strand_coordinates_map_back() {
        // The reported subject range, read on the minus strand, must
        // reverse-complement to the query range.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("GGTTCCAA{}AACCGGTT", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r.alignments.len(), 1);
        let a = &r.alignments[0];
        // subject slice on the plus strand is [send, sstart] (1-based)
        let subj = b2.sequence_string(0);
        let plus_slice = &subj[a.send - 1..a.sstart];
        let q = b1.sequence_string(0);
        let q_slice = &q[a.qstart - 1..a.qend];
        assert_eq!(revcomp(plus_slice), q_slice);
    }

    #[test]
    fn plus_strand_hits_unchanged_by_both_strands() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("TT{core}AA")]);
        let mut cfg = OrisConfig::small(8);
        let single = compare_banks(&b1, &b2, &cfg);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);
        // the plus-strand alignment is present in both runs
        assert!(!single.alignments.is_empty());
        for a in &single.alignments {
            assert!(
                both.alignments.iter().any(|b| b == a),
                "plus-strand record lost: {a}"
            );
        }
    }

    #[test]
    fn merged_stats_account_for_both_strand_runs() {
        // Homology on both strands: the merged report must include the
        // minus-strand run's step counters (they were silently dropped
        // before), and the footprint fields must survive the merge.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let b2 = bank(&[&format!("TT{core}AA{}GG", revcomp(core))]);
        let mut cfg = OrisConfig::small(8);

        let single = compare_banks(&b1, &b2, &cfg);
        cfg.both_strands = true;
        let both = compare_banks(&b1, &b2, &cfg);

        // The minus-strand run sees the reverse-complemented core too, so
        // every step-2/3/4 counter at least doubles relative to one run.
        assert!(both.stats.step2.pairs_examined >= 2 * single.stats.step2.pairs_examined);
        assert!(both.stats.step2.kept >= 2 * single.stats.step2.kept);
        assert!(both.stats.step3.extended >= 2 * single.stats.step3.extended);
        assert!(both.stats.step4.emitted >= 2 * single.stats.step4.emitted);
        assert_eq!(
            both.stats.step4.emitted as usize,
            both.alignments.len(),
            "emitted must match the merged record count"
        );
        // Counter-accounting invariant holds after the merge.
        assert_eq!(
            both.stats.step2.pairs_examined,
            both.stats.step2.aborted + both.stats.step2.below_threshold + both.stats.step2.kept
        );
        // Footprint fields: max across runs, not zero and not doubled.
        assert_eq!(both.stats.index_bytes, single.stats.index_bytes);
        assert!(both.stats.index_bytes > 0);
    }

    #[test]
    fn merged_stats_keep_masked_fractions() {
        // A poly-A run is low-complexity on both strands (poly-T on the
        // reverse complement); the merged masked fractions must be > 0,
        // not the minus-run-dropped 0.0 of the old merge.
        let polya = "A".repeat(120);
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[&format!("{core}{polya}")]);
        let b2 = bank(&[&format!("{polya}{core}")]);
        let mut cfg = OrisConfig::small(8);
        cfg.filter = FilterKind::Entropy;
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert!(r.stats.masked_fraction1 > 0.0);
        assert!(r.stats.masked_fraction2 > 0.0);
    }

    #[test]
    fn duplicate_subject_names_flip_with_the_right_length() {
        // Two subject records share the name "dup" but have different
        // lengths; the minus-strand homology sits in the FIRST one. The
        // old name-keyed length map silently took the last length,
        // corrupting the flipped coordinates. Resolving by record index
        // must produce coordinates that reverse-complement back to the
        // query.
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCG";
        let b1 = bank(&[core]);
        let mut bb = BankBuilder::new();
        bb.push_str("dup", &format!("GGTTCCAA{}AACCGGTT", revcomp(core)))
            .unwrap();
        // Same name, much longer record, no homology.
        bb.push_str("dup", &"GATTACAA".repeat(40)).unwrap();
        let b2 = bb.finish();
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        assert_eq!(r.alignments.len(), 1, "{:?}", r.alignments);
        let a = &r.alignments[0];
        assert!(a.sstart > a.send, "minus strand flips to sstart > send");
        // The subject slice read on the plus strand of record 0 must
        // reverse-complement to the query slice — only true if the flip
        // used record 0's length, not its namesake's.
        let subj = b2.sequence_string(0);
        let plus_slice = &subj[a.send - 1..a.sstart];
        let q = b1.sequence_string(0);
        let q_slice = &q[a.qstart - 1..a.qend];
        assert_eq!(revcomp(plus_slice), q_slice);
    }

    #[test]
    fn merge_survives_nan_evalues() {
        // partial_cmp().unwrap() panicked when an e-value was NaN (e.g.
        // degenerate Karlin–Altschul parameters); total_cmp must sort
        // deterministically instead.
        use oris_eval::M8Record;
        let rec = |sid: &str, evalue: f64| M8Record {
            qid: "q".into(),
            sid: sid.into(),
            pident: 100.0,
            length: 10,
            mismatch: 0,
            gapopen: 0,
            qstart: 1,
            qend: 10,
            sstart: 1,
            send: 10,
            evalue,
            bitscore: 20.0,
        };
        let plus = OrisResult {
            alignments: vec![rec("a", f64::NAN), rec("b", 1e-5)],
            stats: PipelineStats::default(),
        };
        let minus = OrisResult {
            alignments: vec![rec("c", 1e-9), rec("d", f64::NAN)],
            stats: PipelineStats::default(),
        };
        let merged = super::merge_strands(plus, minus);
        assert_eq!(merged.alignments.len(), 4);
        // Finite e-values sort ahead of NaN (total_cmp places NaN last),
        // and the call above not panicking is the regression being pinned.
        assert_eq!(merged.alignments[0].sid, "c");
        assert_eq!(merged.alignments[1].sid, "b");
        assert!(merged.alignments[2].evalue.is_nan());
        assert!(merged.alignments[3].evalue.is_nan());
    }

    #[test]
    fn palindromic_subject_reports_both_strands() {
        // A reverse-complement palindrome aligns on both strands.
        let half = "ATGGCGTACGTTAGCC";
        let palindrome = format!("{half}{}", {
            let rc: String = half
                .chars()
                .rev()
                .map(|c| match c {
                    'A' => 'T',
                    'T' => 'A',
                    'C' => 'G',
                    'G' => 'C',
                    o => o,
                })
                .collect();
            rc
        });
        let b1 = bank(&[&palindrome]);
        let b2 = bank(&[&palindrome]);
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let r = compare_banks(&b1, &b2, &cfg);
        let plus = r.alignments.iter().filter(|a| a.sstart <= a.send).count();
        let minus = r.alignments.iter().filter(|a| a.sstart > a.send).count();
        assert!(plus >= 1, "{:?}", r.alignments);
        assert!(minus >= 1, "{:?}", r.alignments);
    }
}
