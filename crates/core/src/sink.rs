//! Result sinks — where streamed records go.
//!
//! Steps 2–4 no longer return whole `Vec`s through the pipeline: step 3
//! hands each `(query record, subject record)` group to step 4 as soon as
//! it is computed, and step 4 pushes the surviving records into a
//! [`RecordSink`]. The sink owns ordering and retention policy:
//!
//! * [`CollectSink`] — keeps everything, sorting each query's records with
//!   the strict total order [`M8Record::total_order`] at the query
//!   boundary. Reproduces the pre-streaming `OrisResult` exactly (it *is*
//!   how `Session::run` builds one).
//! * [`TopKSink`] — serving-workload retention: at most `k` records per
//!   query sequence, held in a bounded heap so memory never grows with hit
//!   count. With `k` at least the per-sequence hit count it degenerates to
//!   [`CollectSink`] (pinned by proptests).
//! * [`StreamWriter`] — incremental `-m 8` emission through
//!   [`oris_eval::M8Writer`]: buffers one query, sorts it at the boundary,
//!   writes, frees. Peak memory tracks the largest single query, not the
//!   run.
//!
//! Records arrive in a deterministic but *unsorted* order (per-strand
//! group streams); [`RecordSink::end_query`] marks the query boundary,
//! which is where ordering sinks sort. Because every sink sorts with the
//! same strict total order, collected and streamed output are
//! byte-identical regardless of thread count or batch order.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Write};

use oris_eval::{M8Record, M8Writer};

/// Receives the record stream of one or more query runs.
///
/// Contract: any number of [`accept`](RecordSink::accept) calls, then one
/// [`end_query`](RecordSink::end_query) per query, repeated per query for
/// batch runs. Within one query the arrival order is deterministic (group
/// streams in key order, plus strand before minus) but **not** sorted;
/// sinks that promise ordered output sort at the boundary.
pub trait RecordSink {
    /// One record of the current query's stream.
    fn accept(&mut self, rec: M8Record);

    /// The current query's stream is complete. IO-backed sinks sort and
    /// flush the query's records here; the error channel exists for them
    /// (in-memory sinks never fail).
    fn end_query(&mut self) -> io::Result<()>;
}

/// Collects every record, sorting each query's segment with
/// [`M8Record::total_order`] at its `end_query`. A batch run therefore
/// yields per-query sorted segments concatenated in batch order — the same
/// bytes a [`StreamWriter`] emits.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    records: Vec<M8Record>,
    /// Start of the current (unsorted) query segment.
    segment_start: usize,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// All records accepted so far (completed queries sorted).
    pub fn records(&self) -> &[M8Record] {
        &self.records
    }

    /// Consumes the sink, returning the records.
    pub fn into_records(self) -> Vec<M8Record> {
        self.records
    }
}

impl RecordSink for CollectSink {
    fn accept(&mut self, rec: M8Record) {
        self.records.push(rec);
    }

    fn end_query(&mut self) -> io::Result<()> {
        self.records[self.segment_start..].sort_by(|x, y| x.total_order(y));
        self.segment_start = self.records.len();
        Ok(())
    }
}

/// Max-heap entry ordered by [`M8Record::total_order`], so the heap's top
/// is the *worst* retained record — the one a better arrival evicts.
struct Worst(M8Record);

impl PartialEq for Worst {
    fn eq(&self, other: &Worst) -> bool {
        self.0.total_order(&other.0) == Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Worst) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Worst) -> Ordering {
        self.0.total_order(&other.0)
    }
}

/// Best-`k` retention per query sequence *id* (`qid`), for serving
/// workloads where only the strongest hits matter and memory must not
/// grow with hit count: each id holds a bounded max-heap of its `k` best
/// records (best under [`M8Record::total_order`], i.e. smallest e-value
/// first), evicting the worst on overflow in O(log k).
///
/// The budget is keyed by the record's `qid` string — all a finished
/// record carries — so two distinct query sequences sharing one FASTA
/// name share one `k` budget. Banks with duplicate record names should
/// be deduplicated upstream if per-sequence retention matters.
///
/// At each query boundary the retained records are frozen into the output
/// in the same strict total order [`CollectSink`] uses, so with `k` ≥ the
/// per-sequence hit count the two sinks produce identical output.
#[derive(Default)]
pub struct TopKSink {
    k: usize,
    /// Current query's retention, keyed by query sequence id.
    // oris-lint: allow(det-hash) — per-query retention only; drained and sorted before anything is emitted
    current: HashMap<String, BinaryHeap<Worst>>,
    /// Records dropped by the bound so far (across all queries).
    dropped: u64,
    /// Completed queries' output, per-query sorted segments in batch order.
    records: Vec<M8Record>,
}

impl TopKSink {
    /// A sink retaining at most `k` records per query sequence.
    ///
    /// # Panics
    /// Panics if `k` is zero (a sink that retains nothing is a
    /// misconfiguration, not a policy).
    pub fn new(k: usize) -> TopKSink {
        assert!(k > 0, "TopKSink requires k >= 1");
        TopKSink {
            k,
            ..TopKSink::default()
        }
    }

    /// Records dropped by the `k` bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained records of all completed queries.
    pub fn records(&self) -> &[M8Record] {
        &self.records
    }

    /// Consumes the sink, returning the retained records.
    pub fn into_records(self) -> Vec<M8Record> {
        self.records
    }
}

impl RecordSink for TopKSink {
    fn accept(&mut self, rec: M8Record) {
        // Probe by reference first: the overwhelmingly common case is a
        // sequence already in the map, which must not pay a qid clone
        // per record on this hot path.
        match self.current.get_mut(&rec.qid) {
            None => {
                let mut heap = BinaryHeap::with_capacity(self.k + 1);
                let qid = rec.qid.clone();
                heap.push(Worst(rec));
                self.current.insert(qid, heap);
            }
            Some(heap) => {
                if heap.len() < self.k {
                    heap.push(Worst(rec));
                } else if rec.total_order(&heap.peek().expect("non-empty heap").0) == Ordering::Less
                {
                    heap.push(Worst(rec));
                    heap.pop();
                    self.dropped += 1;
                } else {
                    self.dropped += 1;
                }
            }
        }
    }

    fn end_query(&mut self) -> io::Result<()> {
        let start = self.records.len();
        for (_, heap) in self.current.drain() {
            self.records.extend(heap.into_iter().map(|w| w.0));
        }
        self.records[start..].sort_by(|x, y| x.total_order(y));
        Ok(())
    }
}

/// Streams records to a writer: buffers one query, sorts it with the
/// strict total order at `end_query`, emits it through
/// [`oris_eval::M8Writer`], frees the buffer, flushes. The memory
/// high-water mark is the largest single query's record set — the
/// bounded-memory batch front-end rests on this sink.
pub struct StreamWriter<W: Write> {
    writer: M8Writer<W>,
    pending: Vec<M8Record>,
}

impl<W: Write> StreamWriter<W> {
    /// Wraps a writer (hand in something buffered for syscall hygiene —
    /// the per-query flush goes through to it).
    pub fn new(inner: W) -> StreamWriter<W> {
        StreamWriter {
            writer: M8Writer::new(inner),
            pending: Vec::new(),
        }
    }

    /// Records written across all completed queries.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }

    /// Unwraps the underlying writer (completed queries are already
    /// flushed to it; records of an unfinished query are discarded).
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }
}

impl<W: Write> RecordSink for StreamWriter<W> {
    fn accept(&mut self, rec: M8Record) {
        self.pending.push(rec);
    }

    fn end_query(&mut self) -> io::Result<()> {
        self.pending.sort_by(|x, y| x.total_order(y));
        for rec in self.pending.drain(..) {
            self.writer.write_record(&rec)?;
        }
        // Free the buffer, don't just empty it: a huge query must not pin
        // its high-water allocation for the rest of the batch.
        self.pending = Vec::new();
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(qid: &str, sid: &str, evalue: f64, bitscore: f64) -> M8Record {
        M8Record {
            qid: qid.into(),
            sid: sid.into(),
            pident: 100.0,
            length: 20,
            mismatch: 0,
            gapopen: 0,
            qstart: 1,
            qend: 20,
            sstart: 1,
            send: 20,
            evalue,
            bitscore,
        }
    }

    #[test]
    fn collect_sorts_per_query_segment() {
        let mut sink = CollectSink::new();
        sink.accept(rec("q1", "s2", 1e-3, 30.0));
        sink.accept(rec("q1", "s1", 1e-9, 60.0));
        sink.end_query().unwrap();
        // Second query's records stay in their own (sorted) segment after
        // the first — batch output is per-query concatenation, not a
        // global re-sort.
        sink.accept(rec("q2", "s1", 1e-6, 45.0));
        sink.accept(rec("q2", "s0", 1e-20, 99.0));
        sink.end_query().unwrap();
        let sids: Vec<&str> = sink.records().iter().map(|r| r.sid.as_str()).collect();
        assert_eq!(sids, vec!["s1", "s2", "s0", "s1"]);
    }

    #[test]
    fn topk_keeps_the_k_best_per_sequence() {
        let mut sink = TopKSink::new(2);
        for (sid, e) in [("a", 1e-2), ("b", 1e-8), ("c", 1e-5), ("d", 1e-1)] {
            sink.accept(rec("q", sid, e, 40.0));
        }
        // A second sequence must have its own budget.
        sink.accept(rec("r", "z", 1.0, 10.0));
        sink.end_query().unwrap();
        let kept: Vec<(&str, &str)> = sink
            .records()
            .iter()
            .map(|r| (r.qid.as_str(), r.sid.as_str()))
            .collect();
        assert_eq!(kept, vec![("q", "b"), ("q", "c"), ("r", "z")]);
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn topk_with_large_k_matches_collect() {
        let arrivals = [
            rec("q1", "s2", 1e-3, 30.0),
            rec("q2", "s1", 1e-6, 45.0),
            rec("q1", "s1", 1e-9, 60.0),
        ];
        let mut collect = CollectSink::new();
        let mut topk = TopKSink::new(100);
        for r in &arrivals {
            collect.accept(r.clone());
            topk.accept(r.clone());
        }
        collect.end_query().unwrap();
        topk.end_query().unwrap();
        assert_eq!(collect.into_records(), topk.into_records());
    }

    #[test]
    #[should_panic]
    fn topk_rejects_zero_k() {
        let _ = TopKSink::new(0);
    }

    /// Reference retention: CollectSink's sorted output truncated to the
    /// first `k` records per qid — the behaviour TopKSink must reproduce
    /// at the boundary.
    fn collect_truncated(arrivals: &[M8Record], k: usize) -> Vec<M8Record> {
        let mut collect = CollectSink::new();
        for r in arrivals {
            collect.accept(r.clone());
        }
        collect.end_query().unwrap();
        let mut kept_per_qid: HashMap<String, usize> = HashMap::new();
        let mut out = Vec::new();
        for r in collect.into_records() {
            let kept = kept_per_qid.entry(r.qid.clone()).or_insert(0);
            if *kept < k {
                *kept += 1;
                out.push(r);
            }
        }
        // Re-sort the survivors into one per-query segment order (the
        // truncation above preserves order, so this is a no-op — kept for
        // clarity that both sides are compared under total_order).
        out.sort_by(|x, y| x.total_order(y));
        out
    }

    #[test]
    fn topk_with_k_exactly_equal_to_hit_count_keeps_everything() {
        // The retention boundary from above: k == per-sequence hit count
        // must behave exactly like CollectSink — nothing dropped, same
        // bytes. (k = hits − 1 then drops exactly one, the worst.)
        let arrivals: Vec<M8Record> = [
            ("s3", 1e-3, 30.0),
            ("s1", 1e-9, 60.0),
            ("s2", 1e-6, 45.0),
            ("s4", 1e-1, 20.0),
        ]
        .iter()
        .map(|(sid, e, b)| rec("q", sid, *e, *b))
        .collect();

        let mut exact = TopKSink::new(arrivals.len());
        for r in &arrivals {
            exact.accept(r.clone());
        }
        exact.end_query().unwrap();
        assert_eq!(exact.dropped(), 0, "k == hits must drop nothing");
        assert_eq!(exact.into_records(), collect_truncated(&arrivals, 4));

        let mut one_less = TopKSink::new(arrivals.len() - 1);
        for r in &arrivals {
            one_less.accept(r.clone());
        }
        one_less.end_query().unwrap();
        assert_eq!(one_less.dropped(), 1, "k == hits − 1 drops exactly one");
        let kept = one_less.into_records();
        assert_eq!(kept, collect_truncated(&arrivals, 3));
        assert!(
            kept.iter().all(|r| r.sid != "s4"),
            "the dropped record must be the worst under total_order"
        );
    }

    #[test]
    fn topk_ties_straddling_the_cutoff_match_collect_truncation() {
        // Three records tied on (evalue, bitscore) straddle a k = 2
        // cutoff; only the sid tiebreak of total_order decides which two
        // survive. TopKSink's heap (which evicts only on strict Less)
        // must agree with CollectSink's sort-then-truncate — regardless
        // of arrival order.
        let tied: Vec<M8Record> = ["sB", "sC", "sA"]
            .iter()
            .map(|sid| rec("q", sid, 1e-5, 40.0))
            .collect();
        let better = rec("q", "sZ", 1e-9, 80.0); // safely above the cutoff

        // Every arrival permutation of the tied group must converge on
        // the same retained set: {sZ, sA} (sA wins the sid tiebreak).
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for perm in perms {
            let mut arrivals = vec![better.clone()];
            arrivals.extend(perm.iter().map(|&i| tied[i].clone()));
            let mut topk = TopKSink::new(2);
            for r in &arrivals {
                topk.accept(r.clone());
            }
            topk.end_query().unwrap();
            let kept = topk.into_records();
            assert_eq!(kept, collect_truncated(&arrivals, 2), "perm {perm:?}");
            let sids: Vec<&str> = kept.iter().map(|r| r.sid.as_str()).collect();
            assert_eq!(sids, vec!["sZ", "sA"], "perm {perm:?}");
        }
    }

    #[test]
    fn stream_writer_emits_sorted_lines_per_query() {
        let mut sink = StreamWriter::new(Vec::new());
        let (a, b) = (rec("q1", "s2", 1e-3, 30.0), rec("q1", "s1", 1e-9, 60.0));
        sink.accept(a.clone());
        sink.accept(b.clone());
        sink.end_query().unwrap();
        assert_eq!(sink.records_written(), 2);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text, format!("{b}\n{a}\n"));
    }

    #[test]
    fn stream_writer_matches_collect_bytes() {
        let arrivals = [
            rec("q1", "s2", 1e-3, 30.0),
            rec("q1", "s1", 1e-3, 30.0), // tied e-value AND score: id tiebreak
            rec("q2", "s9", 1e-7, 50.0),
        ];
        let mut collect = CollectSink::new();
        let mut stream = StreamWriter::new(Vec::new());
        for r in &arrivals {
            collect.accept(r.clone());
            stream.accept(r.clone());
        }
        collect.end_query().unwrap();
        stream.end_query().unwrap();
        let mut collected = Vec::new();
        let mut w = M8Writer::new(&mut collected);
        for r in collect.records() {
            w.write_record(r).unwrap();
        }
        assert_eq!(stream.into_inner(), collected);
    }
}
