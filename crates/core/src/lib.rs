//! # oris-core — the Ordered Index Seed (ORIS) pipeline
//!
//! The paper's primary contribution, restructured around its *intensive
//! comparison* premise: index construction is separated from query
//! execution so one build amortizes over many comparisons.
//!
//! * [`engine::PreparedBank`] — a bank with its low-complexity mask
//!   statistics and occurrence index, built **once** (or attached from an
//!   index file written by `oris_index::persist`, skipping the build
//!   entirely).
//! * [`engine::Session`] — one prepared subject (both strands if
//!   configured) plus the worker pool; any number of query banks run
//!   against it without the subject ever being re-indexed.
//! * [`compare_banks`] — the single-shot wrapper (one throwaway session,
//!   one query) that keeps the original two-bank API; a `both_strands`
//!   call now prepares each bank exactly once instead of rebuilding the
//!   query per strand.
//!
//! ```no_run
//! # let subject = oris_seqio::parse_fasta(">s\nACGT\n").unwrap();
//! # let queries: Vec<oris_seqio::Bank> = vec![];
//! use oris_core::{OrisConfig, Session};
//!
//! let cfg = OrisConfig::default();
//! let session = Session::new(&subject, &cfg).unwrap(); // step 1, once
//! for query in &queries {
//!     let result = session.run(query); // steps 2–4 (+ query's step 1)
//!     println!("{} alignments", result.alignments.len());
//! }
//! ```
//!
//! The pipeline itself is structured exactly as the paper's Figure 1:
//!
//! 1. **Step 1 — indexing** ([`engine`]): both banks are indexed with
//!    the Figure-2 structure (`oris-index`), optionally after discarding
//!    low-complexity words (`oris-dust`).
//! 2. **Step 2 — hit extension** ([`step2`]): all `4^W` seeds are
//!    enumerated in increasing code order; each occurrence pair is
//!    extended ungapped with the ordered-seed abort rule, producing
//!    **unique HSPs** with no duplicate-suppression structure.
//! 3. **Step 3 — gapped extension** ([`step3`]): HSPs sorted by diagonal
//!    are grown into gapped alignments from their midpoints, skipping
//!    HSPs contained in an already-computed alignment.
//! 4. **Step 4 — display** ([`step4`]): e-values, sorting, BLAST `-m 8`
//!    records.
//!
//! The "perspectives" section of the paper observes that "the outer loop
//! of step 2 which considers all the possible 4^W seeds can be run in
//! parallel since seed order prevents identical HSPs to be generated".
//! [`step2::find_hsps`] implements exactly that with rayon, partitioning
//! the seed-code space by estimated work (the per-code `|X1|·|X2|` pair
//! product read from the CSR index offsets — see
//! [`step2::PartitionStrategy`]); [`step3`] parallelizes over
//! sequence-pair groups.
//! Both are bit-for-bit deterministic regardless of thread count (verified
//! by tests).
//!
//! [`ablation`] contains the unordered variant (hash-set duplicate
//! suppression) that the paper's design argument rules out — benchmarked
//! against the ordered rule in experiment A1.

pub mod ablation;
pub mod config;
pub mod engine;
pub mod hsp;
pub mod pipeline;
pub mod step2;
pub mod step3;
pub mod step4;

pub use config::{FilterKind, OrisConfig};
pub use engine::{PrepareStats, PreparedBank, Session};
pub use hsp::Hsp;
pub use pipeline::{compare_banks, OrisResult, PipelineStats};

/// The output record type (BLAST `-m 8` row), re-exported from
/// `oris-eval` so both engines share one definition.
pub type AlignmentRecord = oris_eval::M8Record;
