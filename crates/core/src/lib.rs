//! # oris-core — the Ordered Index Seed (ORIS) pipeline
//!
//! The paper's primary contribution, restructured around its *intensive
//! comparison* premise twice over: index construction is separated from
//! query execution so one build amortizes over many comparisons, and
//! result production is **sink-driven** so peak memory tracks output
//! *rate* (one query's working set) instead of output *volume* (every
//! record a run produces).
//!
//! **Prepare once** ([`engine`]):
//!
//! * [`engine::PreparedBank`] — a bank with its low-complexity mask
//!   statistics and occurrence index, built **once** (or attached from an
//!   index file written by `oris_index::persist`, skipping the build
//!   entirely).
//! * [`engine::Session`] — one prepared subject (both strands if
//!   configured) plus the worker pool; any number of query banks run
//!   against it without the subject ever being re-indexed.
//!
//! **Stream results** ([`sink`]): steps 2–4 hand off per-record-pair
//! results as they are produced — step 3 emits each `(query, subject)`
//! record-pair group the moment it is computed, step 4 converts it and
//! pushes records into a [`sink::RecordSink`]. The sink owns retention
//! and ordering policy:
//!
//! * [`sink::CollectSink`] keeps everything (this *is* how
//!   [`OrisResult`] is built — the collected path is the streamed path);
//! * [`sink::TopKSink`] retains the best `k` per query sequence in a
//!   bounded heap (serving workloads);
//! * [`sink::StreamWriter`] emits `-m 8` lines incrementally through
//!   [`oris_eval::M8Writer`], holding at most one query's records.
//!
//! Every sink orders records with the strict total order
//! [`oris_eval::M8Record::total_order`], so streamed and collected output
//! are byte-identical regardless of thread count or batch order — even
//! under tied e-values.
//!
//! **Batch front-end**: [`engine::Session::run_batch`] runs N query banks
//! against the prepared subject, streaming each query's records out (one
//! `end_query` boundary per bank) and freeing its working set before the
//! next query starts. [`engine::BatchStats`] reports the subject's
//! one-time cost exactly once plus a per-query report each.
//!
//! * [`compare_banks`] — the single-shot wrapper (one throwaway session,
//!   one query) that keeps the original two-bank API; a `both_strands`
//!   call prepares each bank exactly once instead of rebuilding the
//!   query per strand.
//!
//! **Scale out** (the `oris-db` crate builds on these hooks): a sharded
//! subject database runs one query against many volumes, each volume an
//! [`engine::PreparedBank`] attached from disk
//! ([`engine::PreparedBank::from_index_owned`], mmap-backed via
//! `oris_index::mmap`). Per volume the search goes through
//! [`engine::Session::run_prepared_streaming`] — record pushes without
//! the query boundary — and the database session fires the sink's single
//! `end_query` after the last volume, so one boundary sort merges all
//! volumes and multi-volume output stays byte-identical to a
//! concatenated single-bank run. E-values price the subject side under
//! [`config::OrisConfig::subject_space`]: the SCORIS-N per-sequence
//! convention by default, or a database-wide residue total
//! (`oris_eval::SubjectSpace::Database`) so significance cannot depend
//! on the sharding.
//!
//! ```no_run
//! # let subject = oris_seqio::parse_fasta(">s\nACGT\n").unwrap();
//! # let queries: Vec<oris_seqio::Bank> = vec![];
//! use oris_core::{OrisConfig, Session, StreamWriter};
//!
//! let cfg = OrisConfig::default();
//! let session = Session::new(&subject, &cfg).unwrap(); // step 1, once
//!
//! // Collected: one OrisResult per query.
//! for query in &queries {
//!     let result = session.run(query); // steps 2–4 (+ query's step 1)
//!     println!("{} alignments", result.alignments.len());
//! }
//!
//! // Streamed: records leave as each query finishes; memory stays at one
//! // query's working set no matter how many queries the batch holds.
//! let mut sink = StreamWriter::new(std::io::stdout().lock());
//! let batch = session.run_batch(&queries, &mut sink).unwrap();
//! eprintln!(
//!     "{} records from {} queries, subject built {} time(s)",
//!     batch.total_records(),
//!     batch.queries(),
//!     batch.subject.builds,
//! );
//! ```
//!
//! The pipeline itself is structured exactly as the paper's Figure 1:
//!
//! 1. **Step 1 — indexing** ([`engine`]): both banks are indexed with
//!    the Figure-2 structure (`oris-index`), optionally after discarding
//!    low-complexity words (`oris-dust`).
//! 2. **Step 2 — hit extension** ([`step2`]): all `4^W` seeds are
//!    enumerated in increasing code order; each occurrence pair is
//!    extended ungapped with the ordered-seed abort rule, producing
//!    **unique HSPs** with no duplicate-suppression structure.
//! 3. **Step 3 — gapped extension** ([`step3`]): HSPs sorted by diagonal
//!    are grown into gapped alignments from their midpoints, skipping
//!    HSPs contained in an already-computed alignment.
//! 4. **Step 4 — display** ([`step4`]): e-values, sorting, BLAST `-m 8`
//!    records.
//!
//! The "perspectives" section of the paper observes that "the outer loop
//! of step 2 which considers all the possible 4^W seeds can be run in
//! parallel since seed order prevents identical HSPs to be generated".
//! [`step2::find_hsps`] implements exactly that with rayon, partitioning
//! the seed-code space by estimated work (the per-code `|X1|·|X2|` pair
//! product read from the CSR index offsets — see
//! [`step2::PartitionStrategy`]); [`step3`] parallelizes over
//! sequence-pair groups.
//! Both are bit-for-bit deterministic regardless of thread count (verified
//! by tests).
//!
//! [`ablation`] contains the unordered variant (hash-set duplicate
//! suppression) that the paper's design argument rules out — benchmarked
//! against the ordered rule in experiment A1.

pub mod ablation;
pub mod config;
pub mod deadline;
pub mod engine;
pub mod hsp;
pub mod pipeline;
pub mod sink;
pub mod step2;
pub mod step3;
pub mod step4;

pub use config::{FilterKind, OrisConfig};
pub use deadline::{Deadline, DeadlineExceeded};
pub use engine::{BatchStats, PrepareStats, PreparedBank, Session};
pub use hsp::Hsp;
pub use pipeline::{compare_banks, merge_strands, OrisResult, PipelineStats};
pub use sink::{CollectSink, RecordSink, StreamWriter, TopKSink};

/// The output record type (BLAST `-m 8` row), re-exported from
/// `oris-eval` so both engines share one definition.
pub type AlignmentRecord = oris_eval::M8Record;
