//! # oris-core — the Ordered Index Seed (ORIS) pipeline
//!
//! The paper's primary contribution, structured exactly as its Figure 1:
//!
//! 1. **Step 1 — indexing** ([`pipeline`]): both banks are indexed with
//!    the Figure-2 structure (`oris-index`), optionally after discarding
//!    low-complexity words (`oris-dust`).
//! 2. **Step 2 — hit extension** ([`step2`]): all `4^W` seeds are
//!    enumerated in increasing code order; each occurrence pair is
//!    extended ungapped with the ordered-seed abort rule, producing
//!    **unique HSPs** with no duplicate-suppression structure.
//! 3. **Step 3 — gapped extension** ([`step3`]): HSPs sorted by diagonal
//!    are grown into gapped alignments from their midpoints, skipping
//!    HSPs contained in an already-computed alignment.
//! 4. **Step 4 — display** ([`step4`]): e-values, sorting, BLAST `-m 8`
//!    records.
//!
//! The "perspectives" section of the paper observes that "the outer loop
//! of step 2 which considers all the possible 4^W seeds can be run in
//! parallel since seed order prevents identical HSPs to be generated".
//! [`step2::find_hsps`] implements exactly that with rayon, partitioning
//! the seed-code space by estimated work (the per-code `|X1|·|X2|` pair
//! product read from the CSR index offsets — see
//! [`step2::PartitionStrategy`]); [`step3`] parallelizes over
//! sequence-pair groups.
//! Both are bit-for-bit deterministic regardless of thread count (verified
//! by tests).
//!
//! [`ablation`] contains the unordered variant (hash-set duplicate
//! suppression) that the paper's design argument rules out — benchmarked
//! against the ordered rule in experiment A1.

pub mod ablation;
pub mod config;
pub mod hsp;
pub mod pipeline;
pub mod step2;
pub mod step3;
pub mod step4;

pub use config::{FilterKind, OrisConfig};
pub use hsp::Hsp;
pub use pipeline::{compare_banks, OrisResult, PipelineStats};

/// The output record type (BLAST `-m 8` row), re-exported from
/// `oris-eval` so both engines share one definition.
pub type AlignmentRecord = oris_eval::M8Record;
