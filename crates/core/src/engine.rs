//! The prepared-bank engine: build indexes once, run many comparisons.
//!
//! The paper's scenario is *intensive* comparison — a bank is indexed once
//! and the cost amortized over a large stream of comparisons. This module
//! is that separation made explicit:
//!
//! * [`PreparedBank`] — a bank together with its low-complexity mask
//!   statistics and its [`BankIndex`], built once (or loaded from a file
//!   written by `oris_index::persist`, in which case nothing is built at
//!   all).
//! * [`Session`] — one prepared subject (both strands when the
//!   configuration asks for them) plus the worker pool, against which any
//!   number of query banks can be run. Step 1 runs once per bank per
//!   session, not once per comparison: a `both_strands` run prepares the
//!   query exactly once, and a stream of N queries prepares the subject
//!   exactly once.
//!
//! [`crate::compare_banks`] is a thin wrapper — one throwaway session, one
//! query — so single-shot callers keep their API while paying the same
//! costs as before. Every result carries `PipelineStats::index_builds`, a
//! counter of mask+index constructions attributed to it, which is how the
//! tests pin the amortization down (a session run reports only its query's
//! build; the subject's one-time build is reported by
//! [`Session::subject_stats`]).

use std::borrow::Cow;

use oris_dust::{DustMasker, EntropyMasker, Masker};
use oris_index::{BankIndex, IndexConfig};
use oris_obs::{Obs, Stopwatch};
use oris_seqio::Bank;

use crate::config::{FilterKind, OrisConfig};
use crate::deadline::{Deadline, DeadlineExceeded};
use crate::pipeline::{run_prepared_pipeline_into, OrisResult, PipelineStats, SubjectStrand};
use crate::sink::{CollectSink, RecordSink};

/// Cost and footprint of preparing one bank (mask + index).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrepareStats {
    /// Seconds spent masking + building (0 for an index loaded from disk).
    pub build_secs: f64,
    /// Fraction of bank positions masked by the low-complexity filter.
    pub masked_fraction: f64,
    /// Heap bytes of the index arrays.
    pub index_bytes: usize,
    /// Number of mask+index builds performed (1 for a fresh build, 0 for
    /// an index loaded from disk).
    pub builds: u32,
}

fn mask_for(filter: FilterKind, bank: &Bank) -> Option<oris_dust::MaskSet> {
    match filter {
        FilterKind::None => None,
        FilterKind::Entropy => Some(EntropyMasker::default().mask_bank(bank)),
        FilterKind::Dust => Some(DustMasker::default().mask_bank(bank)),
    }
}

fn build_index(bank: &Bank, cfg: IndexConfig, mask: &Option<oris_dust::MaskSet>) -> BankIndex {
    match mask {
        Some(m) => {
            // BLAST masking semantics: discard a word when it *overlaps*
            // a masked region (not only when it starts inside one).
            let dilated = m.dilated_left(cfg.w);
            BankIndex::build_filtered(bank, cfg, |p| dilated.contains(p))
        }
        None => BankIndex::build(bank, cfg),
    }
}

/// A bank with its step-1 artifacts: low-complexity mask statistics and
/// the occurrence index, built exactly once.
#[derive(Debug, Clone)]
pub struct PreparedBank<'a> {
    bank: Cow<'a, Bank>,
    index: BankIndex,
    stats: PrepareStats,
    /// The low-complexity filter this bank was prepared under — recorded
    /// so a session can refuse a bank prepared under a different filter
    /// than its configuration (two strands of one subject searching
    /// different effective sequences is silent wrong output, not an
    /// error, downstream).
    filter: FilterKind,
}

impl<'a> PreparedBank<'a> {
    /// Runs step 1 (masking + indexing) on a borrowed bank.
    pub fn prepare(bank: &'a Bank, filter: FilterKind, icfg: IndexConfig) -> PreparedBank<'a> {
        Self::prepare_cow(Cow::Borrowed(bank), filter, icfg)
    }

    /// Runs step 1 on an owned bank (e.g. a reverse complement that has
    /// no other owner).
    pub fn prepare_owned(
        bank: Bank,
        filter: FilterKind,
        icfg: IndexConfig,
    ) -> PreparedBank<'static> {
        PreparedBank::<'static>::prepare_cow(Cow::Owned(bank), filter, icfg)
    }

    fn prepare_cow(bank: Cow<'a, Bank>, filter: FilterKind, icfg: IndexConfig) -> PreparedBank<'a> {
        let t0 = Stopwatch::start();
        let mask = mask_for(filter, &bank);
        let index = build_index(&bank, icfg, &mask);
        let stats = PrepareStats {
            build_secs: t0.elapsed_secs(),
            masked_fraction: mask.as_ref().map_or(0.0, |m| m.masked_fraction()),
            index_bytes: index.heap_bytes(),
            builds: 1,
        };
        PreparedBank {
            bank,
            index,
            stats,
            filter,
        }
    }

    /// Attaches a pre-built index (typically loaded from an
    /// `oris_index::persist` file) to its bank, skipping step 1 entirely.
    ///
    /// `meta` is the preparation provenance recorded next to the index;
    /// the mask itself is not needed — steps 2–4 only consult the index.
    ///
    /// Three identity checks protect the attach, because a wrong pairing
    /// produces wrong alignments, not an error, downstream:
    ///
    /// * the index must cover a bank of exactly this length;
    /// * when the file recorded a bank content hash
    ///   (`IndexMeta::bank_hash != 0`), it must match this bank — same
    ///   length is not same content (the stale-index trap: a bank edited
    ///   after `mkindex` ran);
    /// * an `is_fully_indexed` claim is re-verified against the bank (the
    ///   valid-window count must equal the posting count), since a false
    ///   claim would switch step 2 onto the probe-free guard and change
    ///   output. The claim-false direction needs no check — the indexed
    ///   guard consults the (already validated) bit-set and stays correct;
    /// * `meta.filter_code` must name a filter this build knows
    ///   ([`FilterKind::from_code`]) — it becomes the prepared bank's
    ///   recorded filter, which [`Session`] checks against its
    ///   configuration so a subject indexed under one filter is never
    ///   paired with strands or queries masked under another.
    pub fn from_index(
        bank: &'a Bank,
        index: BankIndex,
        meta: &oris_index::IndexMeta,
    ) -> Result<PreparedBank<'a>, String> {
        Self::from_index_cow(Cow::Borrowed(bank), index, meta)
    }

    /// Owned-bank form of [`PreparedBank::from_index`], with the same
    /// identity checks: attaches a loaded index to a bank the prepared
    /// bank takes ownership of. This is the sharded-database attach path
    /// — each volume's FASTA is read into an owned [`Bank`] and paired
    /// with its mmap-loaded index, yielding a `PreparedBank<'static>`
    /// that can outlive the loading scope.
    pub fn from_index_owned(
        bank: Bank,
        index: BankIndex,
        meta: &oris_index::IndexMeta,
    ) -> Result<PreparedBank<'static>, String> {
        PreparedBank::<'static>::from_index_cow(Cow::Owned(bank), index, meta)
    }

    fn from_index_cow(
        bank: Cow<'a, Bank>,
        index: BankIndex,
        meta: &oris_index::IndexMeta,
    ) -> Result<PreparedBank<'a>, String> {
        let filter = FilterKind::from_code(meta.filter_code).ok_or_else(|| {
            format!(
                "index was prepared with an unknown filter (code {})",
                meta.filter_code
            )
        })?;
        if index.bank_len() != bank.data().len() {
            return Err(format!(
                "index was built over a bank of {} positions, this bank has {}",
                index.bank_len(),
                bank.data().len()
            ));
        }
        if meta.bank_hash != 0 {
            let actual = oris_index::persist::fnv1a(bank.data());
            if actual != meta.bank_hash {
                return Err(format!(
                    "index was built over different bank content \
                     (recorded hash {:#018x}, this bank hashes to {actual:#018x})",
                    meta.bank_hash
                ));
            }
        }
        if index.is_fully_indexed() {
            let valid_windows = oris_index::RollingCoder::new(index.coder(), bank.data()).count();
            if valid_windows != index.indexed_positions() {
                return Err(format!(
                    "index claims to be fully indexed but holds {} postings \
                     for {valid_windows} valid windows",
                    index.indexed_positions()
                ));
            }
        }
        let stats = PrepareStats {
            build_secs: 0.0,
            masked_fraction: meta.masked_fraction,
            index_bytes: index.heap_bytes(),
            builds: 0,
        };
        Ok(PreparedBank {
            bank,
            index,
            stats,
            filter,
        })
    }

    /// The low-complexity filter this bank was prepared under.
    #[inline]
    pub fn filter(&self) -> FilterKind {
        self.filter
    }

    /// The underlying bank.
    #[inline]
    pub fn bank(&self) -> &Bank {
        &self.bank
    }

    /// The occurrence index.
    #[inline]
    pub fn index(&self) -> &BankIndex {
        &self.index
    }

    /// Preparation cost and footprint.
    #[inline]
    pub fn stats(&self) -> &PrepareStats {
        &self.stats
    }
}

/// A many-query comparison session against one prepared subject.
///
/// Construction runs step 1 on the subject — both strands when
/// `cfg.both_strands` — and builds the worker pool; [`Session::run`] then
/// executes steps 2–4 (plus the query's own step 1) per query. The
/// subject is never re-indexed, and the returned per-run statistics count
/// only the work done for that run ([`PipelineStats::index_builds`] is 1
/// per `run`, 0 per [`Session::run_prepared`]); the subject's one-time
/// cost is reported by [`Session::subject_stats`].
///
/// [`PipelineStats::index_builds`]: crate::PipelineStats::index_builds
pub struct Session<'a> {
    cfg: OrisConfig,
    plus: PreparedBank<'a>,
    minus: Option<PreparedBank<'static>>,
    pool: Option<rayon::ThreadPool>,
    obs: Obs,
}

impl<'a> Session<'a> {
    /// Prepares `subject` (and its reverse complement when
    /// `cfg.both_strands`) under `cfg` and builds the worker pool. The
    /// two strands are prepared concurrently (`rayon::join`).
    pub fn new(subject: &'a Bank, cfg: &OrisConfig) -> Result<Session<'a>, String> {
        cfg.validate()?;
        let pool = Self::pool_for(cfg)?;
        let (plus, minus) = match &pool {
            Some(p) => p.install(|| Self::prepare_strands(subject, cfg)),
            None => Self::prepare_strands(subject, cfg),
        };
        Ok(Session {
            cfg: *cfg,
            plus,
            minus,
            pool,
            obs: Obs::disarmed(),
        })
    }

    /// One-shot constructor for [`crate::compare_banks`]: prepares the
    /// subject (both strands) and the query concurrently in the session's
    /// pool, preserving the step-1 parallelism the per-call pipeline had.
    pub(crate) fn new_with_query<'q>(
        subject: &'a Bank,
        query: &'q Bank,
        cfg: &OrisConfig,
    ) -> Result<(Session<'a>, PreparedBank<'q>), String> {
        cfg.validate()?;
        let pool = Self::pool_for(cfg)?;
        let qcfg = cfg.query_index_config();
        let work = || {
            rayon::join(
                || Self::prepare_strands(subject, cfg),
                || PreparedBank::prepare(query, cfg.filter, qcfg),
            )
        };
        let ((plus, minus), prepared_query) = match &pool {
            Some(p) => p.install(work),
            None => work(),
        };
        Ok((
            Session {
                cfg: *cfg,
                plus,
                minus,
                pool,
                obs: Obs::disarmed(),
            },
            prepared_query,
        ))
    }

    /// Builds a session around an already prepared subject — typically
    /// one whose index was loaded from disk via
    /// [`PreparedBank::from_index`].
    ///
    /// The prepared index must match the configuration (same effective
    /// word length and stride); with `cfg.both_strands` the minus-strand
    /// index is built here (an index file stores one strand).
    pub fn with_subject(
        subject: PreparedBank<'a>,
        cfg: &OrisConfig,
    ) -> Result<Session<'a>, String> {
        cfg.validate()?;
        let icfg = cfg.subject_index_config();
        if subject.index().w() != icfg.w {
            return Err(format!(
                "subject index uses word length {}, configuration needs {}",
                subject.index().w(),
                icfg.w
            ));
        }
        if subject.index().stride() != icfg.stride {
            return Err(format!(
                "subject index uses stride {}, configuration needs {}",
                subject.index().stride(),
                icfg.stride
            ));
        }
        if subject.filter() != cfg.filter {
            // Accepting this would let the two strands of one subject (or
            // the subject and its queries) search different effective
            // sequences — strand-asymmetric output with no error.
            return Err(format!(
                "subject was prepared with filter {:?}, configuration needs {:?}",
                subject.filter(),
                cfg.filter
            ));
        }
        let pool = Self::pool_for(cfg)?;
        let minus = if cfg.both_strands {
            let prepare = || Self::prepare_minus(subject.bank(), cfg);
            Some(match &pool {
                Some(p) => p.install(prepare),
                None => prepare(),
            })
        } else {
            None
        };
        Ok(Session {
            cfg: *cfg,
            plus: subject,
            minus,
            pool,
            obs: Obs::disarmed(),
        })
    }

    /// Installs an observability handle: subsequent runs emit
    /// step-2/3/4 spans and metrics through it. Instrumentation is off
    /// the result path — records and stats are identical armed or
    /// disarmed (pinned by the `db_equivalence` proptests).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Step 1 for a subject bank: the plus strand, and — concurrently —
    /// the minus strand when the configuration searches both.
    fn prepare_strands<'s>(
        subject: &'s Bank,
        cfg: &OrisConfig,
    ) -> (PreparedBank<'s>, Option<PreparedBank<'static>>) {
        let icfg = cfg.subject_index_config();
        if cfg.both_strands {
            let (plus, minus) = rayon::join(
                || PreparedBank::prepare(subject, cfg.filter, icfg),
                || Self::prepare_minus(subject, cfg),
            );
            (plus, Some(minus))
        } else {
            (PreparedBank::prepare(subject, cfg.filter, icfg), None)
        }
    }

    /// Step 1 for the minus strand: index the reverse complement under
    /// the subject configuration.
    fn prepare_minus(subject: &Bank, cfg: &OrisConfig) -> PreparedBank<'static> {
        PreparedBank::prepare_owned(
            subject.reverse_complement(),
            cfg.filter,
            cfg.subject_index_config(),
        )
    }

    fn pool_for(cfg: &OrisConfig) -> Result<Option<rayon::ThreadPool>, String> {
        match cfg.threads {
            None => Ok(None),
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map(Some)
                .map_err(|e| format!("failed to build thread pool: {e}")),
        }
    }

    fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        match &self.pool {
            Some(p) => p.install(f),
            None => f(),
        }
    }

    /// The session configuration.
    #[inline]
    pub fn config(&self) -> &OrisConfig {
        &self.cfg
    }

    /// The prepared plus-strand subject.
    #[inline]
    pub fn subject(&self) -> &PreparedBank<'a> {
        &self.plus
    }

    /// Total one-time subject preparation cost: both strands summed
    /// (build seconds and build count), and the bytes of all indexes the
    /// session holds resident.
    pub fn subject_stats(&self) -> PrepareStats {
        let mut s = self.plus.stats;
        if let Some(minus) = &self.minus {
            s.build_secs += minus.stats.build_secs;
            s.index_bytes += minus.stats.index_bytes;
            s.builds += minus.stats.builds;
            s.masked_fraction = s.masked_fraction.max(minus.stats.masked_fraction);
        }
        s
    }

    /// Prepares `query` (step 1, counted in the returned stats) and runs
    /// it against the prepared subject.
    pub fn run(&self, query: &Bank) -> OrisResult {
        let prep = self.install(|| {
            PreparedBank::prepare(query, self.cfg.filter, self.cfg.query_index_config())
        });
        let mut r = self.run_prepared(&prep);
        r.stats.index_secs += prep.stats.build_secs;
        r.stats.index_builds += prep.stats.builds;
        r
    }

    /// Runs an already prepared query against the prepared subject —
    /// steps 2–4 only, no index construction at all
    /// (`stats.index_builds == 0`). A [`CollectSink`] over
    /// [`Session::run_prepared_into`]: the streamed and collected paths
    /// are the same code, which is what keeps them byte-identical.
    ///
    /// # Panics
    /// Panics if the query was not prepared under this session's
    /// configuration — same word length, stride 1
    /// ([`OrisConfig::query_index_config`]), same filter. (The asymmetric
    /// stride belongs to the *subject* side only; a strided query index
    /// would silently drop half the query's seed occurrences, and a
    /// differently filtered query would search a different effective
    /// sequence — both are refused loudly.)
    pub fn run_prepared(&self, query: &PreparedBank<'_>) -> OrisResult {
        let mut sink = CollectSink::new();
        let stats = self
            .run_prepared_into(query, &mut sink)
            .expect("CollectSink does no IO and cannot fail");
        OrisResult {
            alignments: sink.into_records(),
            stats,
        }
    }

    /// Streaming form of [`Session::run_prepared`]: steps 2–4 push each
    /// record into `sink` as its record-pair group is computed (both
    /// strands when configured — the sink's single boundary sort merges
    /// them), then the query boundary is marked with
    /// [`RecordSink::end_query`]. Returns the per-run report
    /// (`index_builds == 0`; the caller that prepared the query adds its
    /// build).
    ///
    /// # Panics
    /// Same configuration checks as [`Session::run_prepared`].
    pub fn run_prepared_into(
        &self,
        query: &PreparedBank<'_>,
        sink: &mut dyn RecordSink,
    ) -> std::io::Result<PipelineStats> {
        let stats = self.run_prepared_streaming(query, sink);
        sink.end_query()?;
        Ok(stats)
    }

    /// Like [`Session::run_prepared_into`], but **without** marking the
    /// query boundary: records are pushed into `sink` and the caller owns
    /// the [`RecordSink::end_query`] call. This is the cross-volume merge
    /// hook for sharded-database search — one query runs against each
    /// volume's session in turn through this method, and the *database*
    /// session fires `end_query` once after the last volume, so the
    /// sink's single boundary sort merges all volumes' records under
    /// [`oris_eval::M8Record::total_order`]. That one sort is what makes
    /// multi-volume output byte-identical to a single-bank run over the
    /// concatenated input.
    ///
    /// # Panics
    /// Same configuration checks as [`Session::run_prepared`].
    pub fn run_prepared_streaming(
        &self,
        query: &PreparedBank<'_>,
        sink: &mut dyn RecordSink,
    ) -> PipelineStats {
        self.run_prepared_streaming_deadline(query, sink, &Deadline::none())
            .expect("a disarmed deadline cannot expire")
    }

    /// [`Session::run_prepared_streaming`] under a cooperative
    /// [`Deadline`]: the token is consulted at step-2 partition
    /// boundaries (and within hot partitions) and between strands, so a
    /// pathological query — one hot seed code whose `|X1|·|X2|` pair
    /// product is quadratic — stops within a bounded sliver of work and
    /// returns [`DeadlineExceeded`]. On `Err` the sink may already hold
    /// records pushed before the expiry (this method never fires
    /// `end_query`); the caller owns discarding or buffering them — the
    /// database layer buffers deadline-guarded queries precisely so its
    /// callers' sinks stay untouched. A completed run is byte-identical
    /// to the deadline-free path: the token never changes what is
    /// computed, only whether the run finishes.
    ///
    /// # Panics
    /// Same configuration checks as [`Session::run_prepared`].
    pub fn run_prepared_streaming_deadline(
        &self,
        query: &PreparedBank<'_>,
        sink: &mut dyn RecordSink,
        deadline: &Deadline,
    ) -> Result<PipelineStats, DeadlineExceeded> {
        let qcfg = self.cfg.query_index_config();
        assert_eq!(
            query.index().w(),
            qcfg.w,
            "query index word length does not match the session configuration"
        );
        assert_eq!(
            query.index().stride(),
            qcfg.stride,
            "query index stride does not match the session configuration \
             (asymmetric sampling applies to the subject bank only)"
        );
        assert_eq!(
            query.filter(),
            self.cfg.filter,
            "query was prepared under a different filter than the session"
        );
        self.install(|| {
            let mut push = |rec| sink.accept(rec);
            let plus = run_prepared_pipeline_into(
                query,
                &self.plus,
                &self.cfg,
                SubjectStrand::Plus,
                &mut push,
                deadline,
                &self.obs,
            )?;
            match &self.minus {
                None => Ok(plus),
                Some(minus) => {
                    deadline.check()?;
                    Ok(plus.merge(&run_prepared_pipeline_into(
                        query,
                        minus,
                        &self.cfg,
                        SubjectStrand::Minus,
                        &mut push,
                        deadline,
                        &self.obs,
                    )?))
                }
            }
        })
    }

    /// Runs a batch of query banks against the prepared subject, streaming
    /// records into `sink` (one [`RecordSink::end_query`] boundary per
    /// bank, in batch order). Each query's working set — index, HSPs,
    /// alignments, records — is built, streamed out and freed before the
    /// next query starts; nothing accumulates across the batch unless the
    /// sink chooses to keep it.
    ///
    /// `queries` is any iterable of banks (`&[Bank]`, a `Vec<Bank>`
    /// reference, or a *lazy* iterator of owned banks). With a lazy
    /// iterator the bound is complete: not even the query banks themselves
    /// are resident beyond the one being run — which is how the
    /// `scoris-n --batch` directory mode holds exactly one query file at
    /// a time.
    ///
    /// Accounting: each per-query report counts exactly its own
    /// preparation (1 build); the subject's one-time cost appears **once**,
    /// in [`BatchStats::subject`], never multiplied across queries.
    pub fn run_batch<I>(&self, queries: I, sink: &mut dyn RecordSink) -> std::io::Result<BatchStats>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Bank>,
    {
        use std::borrow::Borrow;
        let mut per_query = Vec::new();
        for q in queries {
            let q = q.borrow();
            let prep = self.install(|| {
                PreparedBank::prepare(q, self.cfg.filter, self.cfg.query_index_config())
            });
            let mut stats = self.run_prepared_into(&prep, sink)?;
            stats.index_secs += prep.stats().build_secs;
            stats.index_builds += prep.stats().builds;
            per_query.push(stats);
        }
        Ok(BatchStats {
            subject: self.subject_stats(),
            per_query,
        })
    }
}

/// Report of one [`Session::run_batch`]: the subject's one-time
/// preparation cost (attributed **once**, regardless of how many queries
/// amortize it) plus each query's own pipeline report in batch order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// One-time subject preparation (both strands when configured) — the
    /// cost `index_builds` would double-count if it were folded into every
    /// per-query report.
    pub subject: PrepareStats,
    /// Per-query reports, in batch order. Each counts exactly 1
    /// `index_builds` (its own query's preparation) and zero subject work.
    pub per_query: Vec<PipelineStats>,
}

impl BatchStats {
    /// Number of queries in the batch.
    pub fn queries(&self) -> usize {
        self.per_query.len()
    }

    /// Sum of the per-query reports (the subject's one-time cost is *not*
    /// folded in — it lives in [`BatchStats::subject`]).
    pub fn query_totals(&self) -> PipelineStats {
        self.per_query
            .iter()
            .fold(PipelineStats::default(), |acc, s| acc.merge(s))
    }

    /// Total index builds for the whole batch: the subject's once, plus
    /// one per query.
    pub fn total_index_builds(&self) -> u32 {
        self.subject.builds + self.per_query.iter().map(|s| s.index_builds).sum::<u32>()
    }

    /// Total records emitted across the batch.
    pub fn total_records(&self) -> u64 {
        self.per_query.iter().map(|s| s.step4.emitted).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compare_banks;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    const CORE: &str = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCT";

    #[test]
    fn session_matches_compare_banks() {
        let subject = bank(&[&format!("CCGGAACCTT{CORE}TTGGCCAACGGT")]);
        let queries = [
            bank(&[&format!("TTACCGGTTAACC{CORE}GGTTACGCAT")]),
            bank(&[CORE]),
            bank(&["ATATATATGCGCGCGCATATATAT"]),
            bank(&[&format!("{CORE}{CORE}")]),
        ];
        let cfg = OrisConfig::small(8);
        let session = Session::new(&subject, &cfg).unwrap();
        assert_eq!(session.subject_stats().builds, 1);
        for q in &queries {
            let via_session = session.run(q);
            let via_compare = compare_banks(q, &subject, &cfg);
            assert_eq!(via_session.alignments, via_compare.alignments);
            // Amortized accounting: the run built only the query index.
            assert_eq!(via_session.stats.index_builds, 1);
        }
    }

    #[test]
    fn run_prepared_builds_nothing() {
        let subject = bank(&[&format!("AA{CORE}TT")]);
        let query = bank(&[CORE]);
        let cfg = OrisConfig::small(8);
        let session = Session::new(&subject, &cfg).unwrap();
        let prep = PreparedBank::prepare(&query, cfg.filter, cfg.query_index_config());
        let r = session.run_prepared(&prep);
        assert_eq!(r.stats.index_builds, 0);
        assert_eq!(r.alignments, session.run(&query).alignments);
    }

    #[test]
    fn both_strands_session_builds_subject_twice_query_once() {
        let subject = bank(&[&format!("AA{CORE}TT")]);
        let query = bank(&[CORE]);
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let session = Session::new(&subject, &cfg).unwrap();
        // Plus and minus subject strands.
        assert_eq!(session.subject_stats().builds, 2);
        let r = session.run(&query);
        // The query was prepared exactly once despite two strand runs.
        assert_eq!(r.stats.index_builds, 1);
        assert_eq!(
            r.alignments,
            compare_banks(&query, &subject, &cfg).alignments
        );
    }

    #[test]
    fn batch_attributes_subject_build_exactly_once() {
        // The double-count trap: a batch of N queries must not multiply
        // the subject's one-time index cost into every per-query report.
        // With both strands the subject costs 2 builds — they appear once
        // in BatchStats::subject, while each per-query report counts
        // exactly its own query's single build.
        let subject = bank(&[&format!("AA{CORE}TT")]);
        let queries = vec![
            bank(&[CORE]),
            bank(&["ATATATATGCGCGCGCATATATAT"]),
            bank(&[&format!("GG{CORE}CC")]),
        ];
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let session = Session::new(&subject, &cfg).unwrap();
        let mut sink = crate::sink::CollectSink::new();
        let batch = session.run_batch(&queries, &mut sink).unwrap();

        assert_eq!(batch.queries(), 3);
        assert_eq!(batch.subject.builds, 2, "one build per subject strand");
        for s in &batch.per_query {
            assert_eq!(s.index_builds, 1, "each query pays only its own build");
        }
        // Totals: query builds sum WITHOUT the subject...
        assert_eq!(batch.query_totals().index_builds, 3);
        // ...and the whole-batch figure adds the subject exactly once:
        // 2 strand builds + 3 query builds — not the 3·(2+1) = 9 a
        // per-query fold of compare_banks-style accounting would claim.
        assert_eq!(batch.total_index_builds(), 5);

        // The per-query reports equal what individual session runs say.
        for (q, s) in queries.iter().zip(&batch.per_query) {
            let single = session.run(q);
            assert_eq!(single.stats.index_builds, s.index_builds);
            assert_eq!(single.stats.step4.emitted, s.step4.emitted);
            assert_eq!(single.stats.hsps, s.hsps);
        }
        // And the batch record count matches the sink's contents.
        assert_eq!(batch.total_records() as usize, sink.records().len());
    }

    #[test]
    fn run_batch_with_zero_queries_attributes_subject_once() {
        // The degenerate batch: no query banks at all. The subject's
        // one-time cost must still be attributed (exactly once) in
        // BatchStats::subject, the per-query list must be empty, and the
        // sink must see NO end_query boundary — an empty batch is zero
        // queries, not one empty query.
        struct CountingSink {
            accepted: usize,
            boundaries: usize,
        }
        impl crate::sink::RecordSink for CountingSink {
            fn accept(&mut self, _rec: oris_eval::M8Record) {
                self.accepted += 1;
            }
            fn end_query(&mut self) -> std::io::Result<()> {
                self.boundaries += 1;
                Ok(())
            }
        }

        let subject = bank(&[&format!("AA{CORE}TT")]);
        let mut cfg = OrisConfig::small(8);
        cfg.both_strands = true;
        let session = Session::new(&subject, &cfg).unwrap();
        let mut sink = CountingSink {
            accepted: 0,
            boundaries: 0,
        };
        let queries: Vec<Bank> = Vec::new();
        let batch = session.run_batch(&queries, &mut sink).unwrap();

        assert_eq!(batch.queries(), 0);
        assert!(batch.per_query.is_empty());
        assert_eq!(batch.subject.builds, 2, "both strands, attributed once");
        assert_eq!(batch.total_index_builds(), 2, "no query builds to add");
        assert_eq!(batch.query_totals(), PipelineStats::default());
        assert_eq!(batch.total_records(), 0);
        assert_eq!(sink.accepted, 0);
        assert_eq!(sink.boundaries, 0, "no queries → no query boundaries");
    }

    #[test]
    fn run_batch_streams_each_query_in_order() {
        let subject = bank(&[&format!("CCGGAACCTT{CORE}TTGGCCAACGGT")]);
        let queries = vec![
            bank(&[&format!("TT{CORE}GG")]),
            bank(&[CORE, "GGTTCCAAGGTTCCAAGGTTCCAA"]),
        ];
        let cfg = OrisConfig::small(8);
        let session = Session::new(&subject, &cfg).unwrap();

        let mut sink = crate::sink::CollectSink::new();
        let batch = session.run_batch(&queries, &mut sink).unwrap();
        let expected: Vec<oris_eval::M8Record> = queries
            .iter()
            .flat_map(|q| session.run(q).alignments)
            .collect();
        assert!(!expected.is_empty());
        assert_eq!(sink.into_records(), expected);
        assert_eq!(batch.queries(), 2);
    }

    #[test]
    fn from_index_rejects_wrong_bank() {
        let b1 = bank(&[CORE]);
        let b2 = bank(&[&format!("{CORE}EXTRA_LENGTH_PADDING")]);
        let idx = BankIndex::build(&b1, IndexConfig::full(8));
        assert!(PreparedBank::from_index(&b2, idx, &oris_index::IndexMeta::default()).is_err());
    }

    #[test]
    fn from_index_rejects_same_length_different_content() {
        // The stale-index trap: the bank is edited after mkindex ran but
        // keeps its length. The recorded content hash must catch it.
        let original = bank(&[CORE]);
        let mut edited_seq = CORE.to_string();
        // One substitution, same length.
        edited_seq.replace_range(5..6, "C");
        let edited = bank(&[&edited_seq]);
        assert_eq!(original.data().len(), edited.data().len());
        let idx = BankIndex::build(&original, IndexConfig::full(8));
        let meta = oris_index::IndexMeta {
            bank_hash: oris_index::persist::fnv1a(original.data()),
            ..Default::default()
        };
        assert!(PreparedBank::from_index(&original, idx.clone(), &meta).is_ok());
        let err = PreparedBank::from_index(&edited, idx, &meta).unwrap_err();
        assert!(err.contains("different bank content"), "{err}");
    }

    #[test]
    fn from_index_rejects_false_fully_indexed_claim() {
        // A crafted file could carry a masked index with the
        // fully_indexed flag forced on (and a recomputed checksum); the
        // attach must re-verify the claim against the bank, because a
        // false claim silently switches step 2 onto the probe-free guard.
        let subject = bank(&[CORE]);
        let masked = BankIndex::build_filtered(&subject, IndexConfig::full(8), |p| p == 3);
        let mut bytes = Vec::new();
        oris_index::persist::write_index(&mut bytes, &masked, &oris_index::IndexMeta::default())
            .unwrap();
        // Forge: set flags bit 0 (offset 20) and restamp the trailing
        // whole-stream checksum so the file parses.
        bytes[20] |= 1;
        let body = bytes.len() - 8;
        let h = oris_index::persist::fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&h.to_le_bytes());
        let (forged, meta) = oris_index::persist::read_index(&mut bytes.as_slice()).unwrap();
        assert!(forged.is_fully_indexed(), "forgery must have taken");
        let err = PreparedBank::from_index(&subject, forged, &meta).unwrap_err();
        assert!(err.contains("claims to be fully indexed"), "{err}");
    }

    #[test]
    fn with_subject_rejects_mismatched_config() {
        let subject = bank(&[CORE]);
        let cfg = OrisConfig::small(8);
        // Wrong word length.
        let idx = BankIndex::build(&subject, IndexConfig::full(7));
        let prep =
            PreparedBank::from_index(&subject, idx, &oris_index::IndexMeta::default()).unwrap();
        assert!(Session::with_subject(prep, &cfg).is_err());
        // Wrong stride.
        let idx = BankIndex::build(&subject, IndexConfig::asymmetric(8));
        let prep =
            PreparedBank::from_index(&subject, idx, &oris_index::IndexMeta::default()).unwrap();
        assert!(Session::with_subject(prep, &cfg).is_err());
        // Wrong filter: the index was prepared under Dust, the session
        // wants None (OrisConfig::small) — accepting it would let the two
        // strands search differently masked sequences.
        let idx = BankIndex::build(&subject, IndexConfig::full(8));
        let meta = oris_index::IndexMeta {
            filter_code: FilterKind::Dust.code(),
            ..Default::default()
        };
        let prep = PreparedBank::from_index(&subject, idx, &meta).unwrap();
        let err = match Session::with_subject(prep, &cfg) {
            Err(e) => e,
            Ok(_) => panic!("filter mismatch must be rejected"),
        };
        assert!(err.contains("filter"), "{err}");
        // Unknown filter code: refused at attach.
        let idx = BankIndex::build(&subject, IndexConfig::full(8));
        let meta = oris_index::IndexMeta {
            filter_code: 99,
            ..Default::default()
        };
        assert!(PreparedBank::from_index(&subject, idx, &meta).is_err());
    }

    #[test]
    fn loaded_subject_session_matches_fresh_session() {
        let subject = bank(&[&format!("CCGGAACCTT{CORE}TTGGCCAACGGT")]);
        let query = bank(&[&format!("TT{CORE}GG")]);
        let cfg = OrisConfig::small(8);

        // "Load": serialize the subject index and read it back.
        let fresh = PreparedBank::prepare(&subject, cfg.filter, cfg.subject_index_config());
        let mut bytes = Vec::new();
        oris_index::persist::write_index(
            &mut bytes,
            fresh.index(),
            &oris_index::IndexMeta {
                masked_fraction: fresh.stats().masked_fraction,
                filter_code: cfg.filter.code(),
                bank_hash: oris_index::persist::fnv1a(subject.data()),
            },
        )
        .unwrap();
        let (loaded, meta) = oris_index::persist::read_index(&mut bytes.as_slice()).unwrap();
        let prep = PreparedBank::from_index(&subject, loaded, &meta).unwrap();
        assert_eq!(prep.stats().builds, 0);

        let loaded_session = Session::with_subject(prep, &cfg).unwrap();
        let fresh_session = Session::new(&subject, &cfg).unwrap();
        let a = loaded_session.run(&query);
        let b = fresh_session.run(&query);
        assert_eq!(a.alignments, b.alignments);
        assert!(!a.alignments.is_empty());
        assert_eq!(loaded_session.subject_stats().builds, 0);
    }
}
