//! Ablation A1 — the counterfactual the paper argues against.
//!
//! "Without such a condition the same HSP would be produced in multiple
//! copies, leading to add a costly procedure to suppress all the
//! duplicates." This module *is* that costly procedure: the same seed
//! enumeration with the order guard disabled, followed by hash-set
//! duplicate suppression. `oris-bench`'s `ablation_dedup` binary measures
//! the difference; the tests here verify both variants agree on the final
//! HSP set.

use std::collections::HashSet;

use oris_align::OrderGuard;
use oris_index::BankIndex;
use oris_seqio::Bank;

use crate::config::OrisConfig;
use crate::hsp::Hsp;
use crate::step2::{find_hsps_with_guard, Step2Stats};

/// Counters for the unordered + dedup variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// HSPs produced by extensions before suppression.
    pub raw_hsps: u64,
    /// Duplicates removed by the hash set.
    pub duplicates_removed: u64,
    /// Step-2 counters of the underlying enumeration.
    pub step2: Step2Stats,
}

/// Step 2 without the ordered-seed rule: every hit extends fully, then
/// duplicates are suppressed with a hash set keyed on the HSP extent.
pub fn find_hsps_unordered_dedup(
    bank1: &Bank,
    idx1: &BankIndex,
    bank2: &Bank,
    idx2: &BankIndex,
    cfg: &OrisConfig,
) -> (Vec<Hsp>, DedupStats) {
    let (raw, s2) = find_hsps_with_guard(bank1, idx1, bank2, idx2, cfg, OrderGuard::None);
    // find_hsps_with_guard dedups *exact* duplicates already via sort +
    // dedup; to measure the true duplicate volume we re-run the counting
    // from the kept statistic.
    // oris-lint: allow(det-hash) — membership probe only; output order comes from the input slice
    let mut seen: HashSet<(u32, u32, u32)> = HashSet::with_capacity(raw.len());
    let mut out = Vec::with_capacity(raw.len());
    for h in &raw {
        if seen.insert((h.start1, h.start2, h.len)) {
            out.push(*h);
        }
    }
    let stats = DedupStats {
        raw_hsps: s2.kept,
        duplicates_removed: s2.kept - out.len() as u64,
        step2: s2,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_index::IndexConfig;
    use oris_seqio::BankBuilder;

    fn bank(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn ordered_and_dedup_agree_on_hsp_set() {
        let core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGG";
        let b1 = bank(&[&format!("TTAACC{core}GGTTAA"), "GGCCAATTGGCCAATT"]);
        let b2 = bank(&[&format!("CCGG{core}AATT")]);
        let cfg = OrisConfig {
            w: 6,
            min_hsp_score: 8,
            ..OrisConfig::small(6)
        };
        let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));

        let (ordered, _) = crate::step2::find_hsps(&b1, &i1, &b2, &i2, &cfg);
        let (dedup, stats) = find_hsps_unordered_dedup(&b1, &i1, &b2, &i2, &cfg);

        let set_a: HashSet<(u32, u32, u32)> = ordered
            .iter()
            .map(|h| (h.start1, h.start2, h.len))
            .collect();
        let set_b: HashSet<(u32, u32, u32)> =
            dedup.iter().map(|h| (h.start1, h.start2, h.len)).collect();
        assert_eq!(set_a, set_b);
        // The long shared core is anchored by many seeds: the unordered
        // variant must have produced real duplicates.
        assert!(stats.duplicates_removed > 0, "{stats:?}");
    }

    #[test]
    fn duplicate_volume_grows_with_homology_length() {
        let short_core = "ATGGCGTACGTTAGCC";
        let long_core = "ATGGCGTACGTTAGCCTAGGCTTAACGGATCGATCCGGTAAGCTTGCA";
        let cfg = OrisConfig {
            w: 6,
            min_hsp_score: 8,
            ..OrisConfig::small(6)
        };
        let run = |core: &str| {
            let b1 = bank(&[core]);
            let b2 = bank(&[core]);
            let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
            let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));
            find_hsps_unordered_dedup(&b1, &i1, &b2, &i2, &cfg).1
        };
        let s_short = run(short_core);
        let s_long = run(long_core);
        assert!(s_long.duplicates_removed > s_short.duplicates_removed);
    }
}
