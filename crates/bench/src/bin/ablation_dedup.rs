//! A1 — the design-choice ablation at the heart of the paper:
//! ordered-seed uniqueness vs "a costly procedure to suppress all the
//! duplicates" (section 2.2).
//!
//! Runs step 2 three ways on the same indexed banks:
//!
//! * **ordered** — the ORIS rule (abort on smaller enumerated seed);
//! * **unordered + hash dedup** — every hit extends fully, duplicates
//!   removed with a hash set;
//! * **unordered raw** — extension volume only, for accounting.
//!
//! Reports times, duplicate volume, and verifies both variants produce
//! the same HSP set.

use oris_bench::{bank, scale_from_args};
use oris_core::ablation::find_hsps_unordered_dedup;
use oris_core::{step2, OrisConfig};
use oris_eval::Table;
use oris_index::{BankIndex, IndexConfig};

fn main() {
    let scale = scale_from_args();
    println!("A1: ordered-seed rule vs hash-set duplicate suppression, scale {scale}\n");
    let cfg = OrisConfig::default();
    let mut t = Table::new(vec![
        "pair",
        "ordered (s)",
        "unordered+dedup (s)",
        "slowdown",
        "raw HSPs",
        "duplicates",
        "unique HSPs",
        "set overlap",
    ]);
    for (a, b) in [("EST1", "EST2"), ("EST3", "EST4"), ("EST5", "EST6")] {
        let b1 = bank(a, scale);
        let b2 = bank(b, scale);
        let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
        let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));

        let t0 = oris_obs::Stopwatch::start();
        let (ordered, _) = step2::find_hsps(&b1, &i1, &b2, &i2, &cfg);
        let ordered_secs = t0.elapsed_secs();

        let t0 = oris_obs::Stopwatch::start();
        let (dedup, stats) = find_hsps_unordered_dedup(&b1, &i1, &b2, &i2, &cfg);
        let dedup_secs = t0.elapsed_secs();

        let set_a: std::collections::HashSet<_> = ordered
            .iter()
            .map(|h| (h.start1, h.start2, h.len))
            .collect();
        let set_b: std::collections::HashSet<_> =
            dedup.iter().map(|h| (h.start1, h.start2, h.len)).collect();
        // With a finite X-drop, extents are mildly path-dependent (the
        // canonical seed may stop at a different maximum than another
        // seed of the same HSP would); report the overlap instead of a
        // strict equality. With a saturating X-drop the sets are equal —
        // proven by the property test in tests/paper_invariants.rs.
        let inter = set_a.intersection(&set_b).count();
        let overlap = 100.0 * inter as f64 / set_a.len().max(1) as f64;

        t.row(vec![
            format!("{a} vs {b}"),
            format!("{ordered_secs:.3}"),
            format!("{dedup_secs:.3}"),
            format!("{:.2}x", dedup_secs / ordered_secs.max(1e-9)),
            format!("{}", stats.raw_hsps),
            format!("{}", stats.duplicates_removed),
            format!("{}", dedup.len()),
            format!("{overlap:.1} %"),
        ]);
        eprintln!("  done {a} vs {b}");
    }
    print!("{t}");
}
