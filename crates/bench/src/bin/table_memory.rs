//! E7 — the section-3.1 memory model: "The index structure required for
//! storing a bank of size N … is approximately equal to 5×N bytes."
//!
//! Measures the actual footprint (SEQ array + dictionary + successor
//! chains + occurrence bit-set) across the bank grid and reports the
//! bytes-per-residue ratio. The paper's 5·N holds for N ≫ 4^W; the
//! dictionary adds a constant 16 MiB at W = 11.

use oris_bench::{bank, scale_from_args};
use oris_core::OrisConfig;
use oris_eval::Table;
use oris_index::{BankIndex, IndexConfig};

fn main() {
    let scale = scale_from_args();
    let cfg = OrisConfig::default();
    println!(
        "E7: index memory footprint (paper section 3.1), W = {}, scale {scale}\n",
        cfg.w
    );
    let mut t = Table::new(vec![
        "bank",
        "residues",
        "SEQ bytes",
        "index bytes",
        "total bytes",
        "bytes / residue",
    ]);
    for name in ["EST1", "EST3", "EST5", "EST7", "VRL", "BCT", "H19", "H10"] {
        let b = bank(name, scale);
        let idx = BankIndex::build(&b, IndexConfig::full(cfg.w));
        let stats = idx.stats();
        let n = b.num_residues();
        t.row(vec![
            name.to_string(),
            format!("{n}"),
            format!("{}", b.data().len()),
            format!("{}", stats.index_bytes),
            format!("{}", stats.total_bytes),
            format!("{:.2}", stats.total_bytes as f64 / n as f64),
        ]);
        eprintln!("  done {name}");
    }
    print!("{t}");
    println!(
        "\npaper model: ~5 bytes/residue (1 SEQ + 4 INDEX) plus the 4^W dictionary ({} MiB at W={})",
        (4usize.pow(11) * 4) >> 20,
        11
    );
}
