//! E8 — the section-4 perspective: "the outer loop of step 2 … can be run
//! in parallel since seed order prevents identical HSPs to be generated".
//!
//! Runs the ORIS engine on a fixed EST pair with 1, 2, 4, … worker
//! threads and reports per-step times, total speed-up and parallel
//! efficiency. Output is verified identical across thread counts.

use oris_bench::{bank, scale_from_args};
use oris_core::OrisConfig;
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("E8: multicore scaling of the ORIS pipeline (paper section 4), scale {scale}\n");
    let b1 = bank("EST5", scale);
    let b2 = bank("EST7", scale);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }

    let mut t = Table::new(vec![
        "threads",
        "step1 (s)",
        "step2 (s)",
        "step3 (s)",
        "total (s)",
        "speed up",
        "efficiency",
    ]);
    let mut base_total = 0.0f64;
    let mut reference: Option<Vec<String>> = None;
    for &n in &threads {
        let cfg = OrisConfig {
            threads: Some(n),
            ..OrisConfig::default()
        };
        let r = oris_core::compare_banks(&b1, &b2, &cfg);
        let s = r.stats;
        let total = s.total_secs();
        if n == 1 {
            base_total = total;
        }
        let speedup = base_total / total;
        t.row(vec![
            format!("{n}"),
            format!("{:.3}", s.index_secs),
            format!("{:.3}", s.step2_secs),
            format!("{:.3}", s.step3_secs),
            format!("{total:.3}"),
            format!("{speedup:.2}"),
            format!("{:.0} %", 100.0 * speedup / n as f64),
        ]);
        // Verify thread-count independence of the output.
        let digest: Vec<String> = r.alignments.iter().map(|a| a.to_string()).collect();
        match &reference {
            None => reference = Some(digest),
            Some(expect) => assert_eq!(
                expect, &digest,
                "output differs between thread counts — determinism broken"
            ),
        }
        eprintln!("  done {n} thread(s): {total:.3}s");
    }
    print!("{t}");
    println!("\noutput verified identical across all thread counts");
}
