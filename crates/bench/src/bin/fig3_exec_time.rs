//! E2 — Figure 3: execution time of SCORIS-N and BLASTN over the EST
//! search-space axis.
//!
//! Prints the two series (seconds vs Mbp² search space) that the paper
//! plots, one row per EST bank pair, sorted by search space. The shape to
//! reproduce: both curves grow with the search space, the baseline's much
//! faster, and the gap widens with size.

use oris_bench::{run_pair, scale_from_args, EST_PAIRS};
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("E2: Figure 3 — execution time vs search space (EST banks), scale {scale}\n");
    let mut rows: Vec<(f64, String, f64, f64)> = Vec::new();
    for (a, b) in EST_PAIRS {
        let out = run_pair(a, b, scale);
        rows.push((
            out.row.search_space,
            out.row.banks.clone(),
            out.row.scoris_secs,
            out.row.blast_secs,
        ));
        eprintln!(
            "  done {} ({:.2} Mbp^2)",
            out.row.banks, out.row.search_space
        );
    }
    rows.sort_by(|x, y| x.0.total_cmp(&y.0));

    let mut t = Table::new(vec![
        "banks",
        "search space (Mbp^2)",
        "SCORIS-N (s)",
        "BLASTN-like (s)",
    ]);
    for (space, name, s, bl) in &rows {
        t.row(vec![
            name.clone(),
            format!("{space:.2}"),
            format!("{s:.3}"),
            format!("{bl:.3}"),
        ]);
    }
    print!("{t}");
    println!("\nseries (x = Mbp^2):");
    let xs: Vec<String> = rows.iter().map(|r| format!("{:.1}", r.0)).collect();
    let ys: Vec<String> = rows.iter().map(|r| format!("{:.3}", r.2)).collect();
    let yb: Vec<String> = rows.iter().map(|r| format!("{:.3}", r.3)).collect();
    println!("  x        = [{}]", xs.join(", "));
    println!("  scoris_n = [{}]", ys.join(", "));
    println!("  blastn   = [{}]", yb.join(", "));
}
