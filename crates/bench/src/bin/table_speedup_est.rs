//! E3 — the section-3.3 EST speed-up table.
//!
//! Same eight rows as the paper: bank pair, search space, both execution
//! times, speed-up — plus the paper's reported speed-up for side-by-side
//! comparison in EXPERIMENTS.md.

use oris_bench::{run_pair, scale_from_args, EST_PAIRS, PAPER_EST_SPEEDUPS};
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("E3: EST speed-up table (paper section 3.3), scale {scale}\n");
    let mut t = Table::new(vec![
        "banks",
        "search space (Mbp^2)",
        "SCORIS-N (s)",
        "BLASTN-like (s)",
        "speed up",
        "paper speed up",
    ]);
    for ((a, b), paper) in EST_PAIRS.iter().zip(PAPER_EST_SPEEDUPS) {
        let out = run_pair(a, b, scale);
        t.row(vec![
            out.row.banks.clone(),
            format!("{:.2}", out.row.search_space),
            format!("{:.3}", out.row.scoris_secs),
            format!("{:.3}", out.row.blast_secs),
            format!("{:.1}", out.row.speedup()),
            format!("{paper:.1}"),
        ]);
        eprintln!("  done {}", out.row.banks);
    }
    print!("{t}");
}
