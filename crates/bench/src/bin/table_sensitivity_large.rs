//! E6 — the section-3.4 large-bank sensitivity tables.
//!
//! Paper shape: miss rates far below the EST ones (≤ 1.4 %, several rows
//! at or near 0 %), with one pair (H10 vs BCT) reporting no alignments at
//! all in the paper.

use oris_bench::{pct, run_pair, scale_from_args, LARGE_PAIRS};
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("E6: large-bank sensitivity tables (paper section 3.4), scale {scale}\n");
    let mut t1 = Table::new(vec!["banks", "BLtotal", "SCmiss", "SCORISmiss"]);
    let mut t2 = Table::new(vec!["banks", "SCtotal", "BLmiss", "BLASTmiss"]);
    for (a, b) in LARGE_PAIRS {
        let out = run_pair(a, b, scale);
        let m = out.miss;
        t1.row(vec![
            out.row.banks.clone(),
            format!("{}", m.b_total),
            format!("{}", m.a_miss),
            pct(m.a_miss_pct()),
        ]);
        t2.row(vec![
            out.row.banks.clone(),
            format!("{}", m.a_total),
            format!("{}", m.b_miss),
            pct(m.b_miss_pct()),
        ]);
        eprintln!("  done {}", out.row.banks);
    }
    println!("SCORIS-N misses relative to BLASTN-like:\n{t1}");
    println!("BLASTN-like misses relative to SCORIS-N:\n{t2}");
}
