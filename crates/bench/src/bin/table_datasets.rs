//! E1 — regenerates the paper's section-3.2 data-set table.
//!
//! Prints, for every bank analogue at the chosen scale: name, number of
//! sequences and residue count, next to the paper's original values.

use oris_bench::scale_from_args;
use oris_eval::Table;
use oris_simulate::banks::{build, paper_bank_specs, SimConfig};

fn main() {
    let scale = scale_from_args();
    println!("E1: data set table (paper section 3.2), scale {scale}\n");
    let mut t = Table::new(vec![
        "Bank",
        "paper nb.seq",
        "paper Mbp",
        "ours nb.seq",
        "ours Mbp",
    ]);
    for spec in paper_bank_specs() {
        let nb = build(&spec, SimConfig { scale });
        t.row(vec![
            spec.name.to_string(),
            format!("{}", spec.paper_seqs),
            format!("{:.2}", spec.paper_mbp),
            format!("{}", nb.bank.num_sequences()),
            format!("{:.2}", nb.bank.mbp()),
        ]);
    }
    print!("{t}");
}
