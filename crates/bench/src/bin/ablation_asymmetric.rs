//! A2 — asymmetric indexing (paper section 3.4): "an asymmetric indexing
//! is done on 10-nt words … All 11-nt seeds are detected together with an
//! average of 50 % of the 10-nt seed anchoring."
//!
//! Compares plain W = 11 indexing against asymmetric W = 10 (half-sampled
//! on bank 2) on an EST pair with extra divergence: alignment counts,
//! index sizes, times. Shape to reproduce: asymmetric finds at least the
//! 11-nt-anchored alignments plus some divergent ones, at roughly half
//! the bank-2 index size.

use oris_bench::{bank, scale_from_args};
use oris_core::OrisConfig;
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("A2: asymmetric 10-nt indexing vs plain 11-nt (paper section 3.4), scale {scale}\n");
    let b1 = bank("EST3", scale);
    let b2 = bank("EST4", scale);

    let mut t = Table::new(vec![
        "mode",
        "indexed w",
        "time (s)",
        "HSPs",
        "alignments",
        "index bytes",
    ]);
    let mut counts = Vec::new();
    for (label, asymmetric) in [("plain W=11", false), ("asymmetric W=10", true)] {
        let cfg = OrisConfig {
            asymmetric,
            ..OrisConfig::default()
        };
        let t0 = oris_obs::Stopwatch::start();
        let r = oris_core::compare_banks(&b1, &b2, &cfg);
        let secs = t0.elapsed_secs();
        counts.push(r.alignments.len());
        t.row(vec![
            label.to_string(),
            format!("{}", cfg.indexed_w()),
            format!("{secs:.3}"),
            format!("{}", r.stats.hsps),
            format!("{}", r.alignments.len()),
            format!("{}", r.stats.index_bytes),
        ]);
        eprintln!("  done {label}");
    }
    print!("{t}");
    println!(
        "\nasymmetric / plain alignment ratio: {:.2}",
        counts[1] as f64 / counts[0].max(1) as f64
    );
}
