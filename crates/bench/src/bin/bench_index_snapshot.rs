//! Perf snapshot for the occurrence-index layout, step-2 scheduling and
//! the order-guard representations.
//!
//! Measures the "before vs after" of the CSR flattening PR and of the
//! guard-specialization PR:
//!
//! * **before** — the linked (Figure-2 literal) layout: chain-walking
//!   step 2, `4·len(SEQ)`-byte `next` array, equal-width scheduling, and
//!   the always-probing `OrderedIndexed` guard (two random-access bit-set
//!   loads per candidate seed);
//! * **after** — the CSR layout: slice-streaming step 2,
//!   `4·indexed_positions`-byte postings, work-balanced scheduling, and
//!   guard specialization (probe-free `OrderedFull` fast path on fully
//!   indexed banks, rolled word-cursor guard under masking).
//!
//! Seven sections: index build time + heap bytes (EST bank, full and
//! asymmetric), the CSR build-strategy comparison (full-sweep counting
//! sort vs the radix-partitioned build, on a large and a small bank),
//! step 2 on the skewed-seed benchmark (linked chains vs CSR slices,
//! identical extensions and guard), scheduling (equal-width vs
//! work-balanced) per thread count, the guard comparison (probe baseline
//! vs rolled vs fast path, fully indexed and half-masked), the
//! prepared-reuse benchmark (N query banks against one prepared subject:
//! per-query subject rebuild vs one session build, outputs asserted
//! identical), and the streaming-batch benchmark (collect-everything vs
//! the sink-driven `Session::run_batch` path: peak live allocation read
//! from a counting global allocator, outputs asserted byte-identical).
//!
//! Writes `BENCH_index.json` (repo root by default; `--out PATH` to
//! override, `--scale F` for the EST bank size) so future PRs have a perf
//! trajectory to compare against. `--test` shrinks every workload and
//! runs one repetition — the CI mode, keeping all the output-equality
//! assertions hot without paying measurement time.

use oris_obs::Stopwatch;
use std::fmt::Write as _;

use oris_align::OrderGuard;
use oris_bench::{find_hsps_linked_reference, half_masked_index, skewed_pair, CountingAlloc};
use oris_core::step2::{
    find_hsps, find_hsps_partitioned, find_hsps_with_guard, select_guard, PartitionStrategy,
};
use oris_core::{compare_banks, OrisConfig, OrisResult, Session, StreamWriter};
use oris_eval::M8Writer;
use oris_index::{BankIndex, BuildStrategy, IndexBackend, IndexConfig, LinkedBankIndex};

/// Every allocation in this binary flows through the counting allocator,
/// so the `streaming_batch` section can report peak *live* bytes per
/// result-path architecture instead of guessing from RSS.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Paired comparison: alternates `a` and `b` per repetition so slow clock
/// drift (VM throttling, noisy neighbours) hits both sides equally, then
/// returns the two medians.
fn time2<RA, RB>(reps: usize, mut a: impl FnMut() -> RA, mut b: impl FnMut() -> RB) -> (f64, f64) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let t0 = Stopwatch::start();
        std::hint::black_box(a());
        sa.push(t0.elapsed_secs());
        let t0 = Stopwatch::start();
        std::hint::black_box(b());
        sb.push(t0.elapsed_secs());
    }
    (
        oris_eval::timing::median_of(sa),
        oris_eval::timing::median_of(sb),
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.15f64;
    let mut out_path = "BENCH_index.json".to_string();
    let mut test_mode = false;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().expect("--scale F").parse().expect("bad --scale"),
            "--out" => out_path = it.next().expect("--out PATH").clone(),
            "--test" => test_mode = true,
            other => panic!("unknown argument {other}"),
        }
    }
    if test_mode {
        scale = scale.min(0.02);
    }

    let est = oris_simulate::paper_bank("EST1", scale).bank;
    let w = 11usize;
    let reps = if test_mode { 1 } else { 5 };
    // The skewed benchmark's size is independent of --scale (it exists to
    // stress one overweight seed code); --test shrinks it too.
    let (skew_q, skew_s, skew_len) = if test_mode {
        (8usize, 2_000usize, 100usize)
    } else {
        (50, 40_000, 250)
    };

    // ---- layout: build time and footprint (EST bank) --------------------
    let (t_linked_build, t_csr_build) = time2(
        reps,
        || LinkedBankIndex::build(&est, IndexConfig::full(w)),
        || BankIndex::build(&est, IndexConfig::full(w)),
    );
    let linked = LinkedBankIndex::build(&est, IndexConfig::full(w));
    let csr = BankIndex::build(&est, IndexConfig::full(w));
    // The linked layout's next[] is sized by the bank, so its asymmetric
    // footprint equals its full footprint; the CSR postings halve.
    let csr_asym = BankIndex::build(&est, IndexConfig::asymmetric(w));

    // ---- build strategies: full-sweep vs radix-partitioned --------------
    // Large bank: postings work dominates, the strategies should be close.
    // Small bank: the full sweep's serial 4^W prefix-sum dominates — the
    // regime the radix partitioning exists for.
    let build_with = |bank: &oris_seqio::Bank, strategy: BuildStrategy| {
        BankIndex::build_filtered_with(bank, IndexConfig::full(w), |_| false, strategy)
    };
    let (t_sweep_est, t_radix_est) = time2(
        reps,
        || build_with(&est, BuildStrategy::FullSweep),
        || build_with(&est, BuildStrategy::RadixPartitioned),
    );
    let small = oris_simulate::random_bank(11, 20, 500, 0.5);
    let (t_sweep_small, t_radix_small) = time2(
        reps.max(20),
        || build_with(&small, BuildStrategy::FullSweep),
        || build_with(&small, BuildStrategy::RadixPartitioned),
    );

    // Single-worker pool shared by every serial-timed section.
    let serial = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();

    // ---- index backend: dense offsets vs the sparse codes table ---------
    // A dense offsets array costs 4·(4^W + 1) bytes no matter how small
    // the bank — 16.8 MB at W = 11 — while the sparse populated-codes
    // table scales with distinct seeds. Small bank: the regime the
    // sparse backend exists for (and the memory-ratio contract below).
    // Planted bank: large enough that dense stays competitive. Outputs
    // are asserted identical per combination; build time, index bytes
    // and serial step-2 time go into the snapshot.
    let planted = if test_mode {
        oris_bench::planted_bank(707, 24, 80)
    } else {
        oris_bench::planted_bank(707, 256, 400)
    };
    let mut backend_rows = String::new();
    let backend_cases: [(&str, &oris_seqio::Bank); 2] = [("small", &small), ("planted", &planted)];
    for (wi, bw) in [9usize, 11].into_iter().enumerate() {
        for (bi, (bank_name, bank)) in backend_cases.iter().enumerate() {
            let dense_cfg = IndexConfig::full(bw).with_backend(IndexBackend::Dense);
            let sparse_cfg = IndexConfig::full(bw).with_backend(IndexBackend::Sparse);
            let (t_bdense, t_bsparse) = time2(
                reps,
                || BankIndex::build(bank, dense_cfg),
                || BankIndex::build(bank, sparse_cfg),
            );
            let idense = BankIndex::build(bank, dense_cfg);
            let isparse = BankIndex::build(bank, sparse_cfg);
            let auto = BankIndex::build(bank, IndexConfig::full(bw));
            let (bytes_dense, bytes_sparse) =
                (idense.stats().index_bytes, isparse.stats().index_bytes);
            let bcfg = OrisConfig {
                w: bw,
                ..OrisConfig::default()
            };
            let (t_s2_dense, t_s2_sparse) = time2(
                reps,
                || serial.install(|| find_hsps(bank, &idense, bank, &idense, &bcfg)),
                || serial.install(|| find_hsps(bank, &isparse, bank, &isparse, &bcfg)),
            );
            let out_dense = find_hsps(bank, &idense, bank, &idense, &bcfg);
            let out_sparse = find_hsps(bank, &isparse, bank, &isparse, &bcfg);
            let out_auto = find_hsps(bank, &auto, bank, &auto, &bcfg);
            assert_eq!(
                out_dense, out_sparse,
                "step-2 output must be backend-invariant ({bank_name}, w={bw})"
            );
            assert_eq!(out_dense, out_auto);
            if *bank_name == "small" && bw == 11 {
                // The PR contract: at W = 11 a small bank's sparse index
                // is at most a tenth of the dense footprint, and Auto
                // picks sparse there.
                assert!(
                    bytes_sparse * 10 <= bytes_dense,
                    "sparse index must be ≤ 1/10 of dense at w=11 on a small bank \
                     ({bytes_sparse} vs {bytes_dense} bytes)"
                );
                assert_eq!(auto.backend(), IndexBackend::Sparse);
                if !test_mode {
                    assert!(
                        t_s2_sparse <= t_s2_dense * 1.1,
                        "sparse step-2 must stay within 1.1x of dense \
                         ({t_s2_sparse:.6}s vs {t_s2_dense:.6}s)"
                    );
                }
            }
            let comma = if wi == 1 && bi + 1 == backend_cases.len() {
                ""
            } else {
                ","
            };
            writeln!(
                backend_rows,
                "    {{\"w\": {bw}, \"bank\": \"{bank_name}\", \"residues\": {}, \
                 \"dense_build_secs\": {t_bdense:.6}, \"sparse_build_secs\": {t_bsparse:.6}, \
                 \"dense_index_bytes\": {bytes_dense}, \"sparse_index_bytes\": {bytes_sparse}, \
                 \"bytes_ratio\": {:.3}, \"dense_step2_secs\": {t_s2_dense:.6}, \
                 \"sparse_step2_secs\": {t_s2_sparse:.6}, \"step2_ratio\": {:.3}, \
                 \"auto_backend\": \"{:?}\", \"outputs_identical\": true}}{comma}",
                bank.num_residues(),
                bytes_dense as f64 / (bytes_sparse.max(1)) as f64,
                t_s2_sparse / t_s2_dense.max(1e-9),
                auto.backend(),
            )
            .unwrap();
        }
    }

    // ---- step 2 on the skewed-seed benchmark ----------------------------
    let (b1, b2) = skewed_pair(skew_q, skew_s, skew_len);
    let cfg = OrisConfig::default();
    let icfg = IndexConfig::full(cfg.w);
    let l1 = LinkedBankIndex::build(&b1, icfg);
    let l2 = LinkedBankIndex::build(&b2, icfg);
    let i1 = BankIndex::build(&b1, icfg);
    let i2 = BankIndex::build(&b2, icfg);
    // Both sides run the rolled OrderedIndexed guard (not find_hsps'
    // auto-selection, which would pick the probe-free fast path here), so
    // this comparison isolates the *layout* difference; the guard
    // representations get their own section below.
    let guard_rolled = OrderGuard::OrderedIndexed {
        idx1: &i1,
        idx2: &i2,
    };
    let (t_step2_linked, t_step2_csr) = time2(
        reps,
        || find_hsps_linked_reference(&b1, &l1, &b2, &l2, &i1, &i2, &cfg),
        || serial.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, guard_rolled)),
    );

    // ---- guard representations on the skewed benchmark ------------------
    // Fully indexed: the seed's always-probing behaviour vs the rolled
    // register vs the auto-selected probe-free fast path. The probe
    // baseline is measured once per paired comparison (time2 cancels
    // clock drift within a pair, not across pairs), and both probe
    // timings are published so every emitted speedup is reproducible
    // from the snapshot's own numbers: fast_path_speedup =
    // probe_baseline_secs / full_fast_path_secs, rolled_speedup =
    // probe_baseline_rerun_secs / rolled_indexed_secs.
    let guard_probe = OrderGuard::OrderedIndexedProbe {
        idx1: &i1,
        idx2: &i2,
    };
    assert!(
        matches!(select_guard(&i1, &i2), OrderGuard::OrderedFull),
        "fully indexed banks must auto-select OrderedFull"
    );
    let (t_guard_probe, t_guard_full) = time2(
        reps,
        || serial.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, guard_probe)),
        || serial.install(|| find_hsps(&b1, &i1, &b2, &i2, &cfg)),
    );
    let (t_guard_probe2, t_guard_rolled) = time2(
        reps,
        || serial.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, guard_probe)),
        || serial.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, guard_rolled)),
    );
    // Half-masked banks: the fast path is illegal; probe vs rolled.
    let m1 = half_masked_index(&b1, cfg.w);
    let m2 = half_masked_index(&b2, cfg.w);
    assert!(
        matches!(select_guard(&m1, &m2), OrderGuard::OrderedIndexed { .. }),
        "masked banks must keep the indexed guard"
    );
    let masked_probe = OrderGuard::OrderedIndexedProbe {
        idx1: &m1,
        idx2: &m2,
    };
    let (t_masked_probe, t_masked_rolled) = time2(
        reps,
        || serial.install(|| find_hsps_with_guard(&b1, &m1, &b2, &m2, &cfg, masked_probe)),
        || serial.install(|| find_hsps(&b1, &m1, &b2, &m2, &cfg)),
    );

    // ---- scheduling: equal-width vs work-balanced per thread count ------
    let guard = guard_rolled;
    let mut sched_rows = String::new();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut threads_list: Vec<usize> = [1usize, 2, 4, 8].into_iter().filter(|&t| t <= hw).collect();
    if threads_list.is_empty() {
        threads_list.push(1);
    }
    for (i, &threads) in threads_list.iter().enumerate() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (t_naive, t_balanced) = time2(
            reps,
            || {
                pool.install(|| {
                    find_hsps_partitioned(
                        &b1,
                        &i1,
                        &b2,
                        &i2,
                        &cfg,
                        guard,
                        PartitionStrategy::EqualWidth,
                    )
                })
            },
            || {
                pool.install(|| {
                    find_hsps_partitioned(
                        &b1,
                        &i1,
                        &b2,
                        &i2,
                        &cfg,
                        guard,
                        PartitionStrategy::WorkBalanced,
                    )
                })
            },
        );
        let comma = if i + 1 < threads_list.len() { "," } else { "" };
        writeln!(
            sched_rows,
            "    {{\"threads\": {threads}, \"equal_width_secs\": {t_naive:.6}, \
             \"work_balanced_secs\": {t_balanced:.6}, \"speedup\": {:.3}}}{comma}",
            t_naive / t_balanced
        )
        .unwrap();
    }

    // ---- prepared reuse: N query banks vs one prepared subject ----------
    // The intensive-comparison scenario the engine exists for: a stream
    // of small query banks against one large subject. The naive path
    // rebuilds the subject mask+index inside every compare_banks call;
    // the session path builds it once (inside the timed region) and
    // amortizes it. Timed with the same rep-paired `time2` as every other
    // section, so VM clock drift cancels; outputs are asserted identical
    // pairwise on a separate untimed run.
    let pipeline_cfg = OrisConfig::default();
    let subject = &est;
    let num_queries = 6usize;
    let query_banks: Vec<oris_seqio::Bank> = (0..num_queries)
        .map(|i| oris_simulate::random_bank(300 + i as u64, 60, 400, 0.5))
        .collect();
    let run_naive = || -> Vec<oris_core::OrisResult> {
        query_banks
            .iter()
            .map(|q| compare_banks(q, subject, &pipeline_cfg))
            .collect()
    };
    let run_session = || -> Vec<oris_core::OrisResult> {
        let session = Session::new(subject, &pipeline_cfg).expect("valid config");
        query_banks.iter().map(|q| session.run(q)).collect()
    };
    let (t_reuse_naive, t_reuse_session) = time2(reps, run_naive, run_session);
    let naive_results = run_naive();
    let session = Session::new(subject, &pipeline_cfg).expect("valid config");
    assert_eq!(session.subject_stats().builds, 1);
    for (n, q) in naive_results.iter().zip(&query_banks) {
        let s = session.run(q);
        assert_eq!(n.alignments, s.alignments, "prepared reuse changed output");
        assert_eq!(s.stats.index_builds, 1);
        assert_eq!(n.stats.index_builds, 2);
    }

    // ---- streaming batch: bounded-memory result path --------------------
    // A repeat-family screening batch (`screening_batch`): many query
    // banks against one prepared subject, every (query sequence, subject
    // sequence) pair aligning across a shared dispersed repeat — the
    // output-heavy regime where the result-path architecture matters.
    // The collect path is the pre-streaming architecture: every query's
    // result set resident before the first byte is written. The streamed
    // path is `Session::run_batch` through a `StreamWriter`: records
    // leave as each query finishes, so peak live allocation tracks the
    // largest single query, not the run. Outputs are asserted
    // byte-identical; peaks come from the counting global allocator.
    //
    // W = 11 (the paper's seed length) under the default Auto backend:
    // small query banks get the sparse populated-codes index, so the
    // per-query transient is ∝ distinct seeds instead of the 16.8 MB
    // dense 4^W offsets array that used to force this section down to
    // W = 9.
    let batch_cfg = OrisConfig::default();
    let (batch_subject, batch_queries) = if test_mode {
        oris_bench::screening_batch(4, 8, 24, 80)
    } else {
        oris_bench::screening_batch(12, 32, 192, 120)
    };
    let batch_session = Session::new(&batch_subject, &batch_cfg).expect("valid config");
    let run_collect = |out: &mut dyn std::io::Write| {
        let results: Vec<OrisResult> = batch_queries.iter().map(|q| batch_session.run(q)).collect();
        let mut m8 = M8Writer::new(out);
        for r in &results {
            for rec in &r.alignments {
                m8.write_record(rec).expect("write record");
            }
        }
        m8.flush().expect("flush");
    };
    let run_stream = |out: &mut dyn std::io::Write| -> u64 {
        let mut sink = StreamWriter::new(out);
        batch_session
            .run_batch(&batch_queries, &mut sink)
            .expect("sink IO cannot fail on a memory writer");
        sink.records_written()
    };
    // Byte-identity first (untracked buffers, outside the measured runs).
    let mut collect_bytes = Vec::new();
    run_collect(&mut collect_bytes);
    let mut stream_bytes = Vec::new();
    let batch_records = run_stream(&mut stream_bytes);
    assert_eq!(
        collect_bytes, stream_bytes,
        "streamed batch output must equal the collected path byte-for-byte"
    );
    assert!(batch_records > 0, "batch workload must produce records");
    // Peak live allocation per architecture (output to the null writer so
    // neither side's peak counts the output bytes themselves).
    let base = ALLOC.reset_peak();
    run_collect(&mut std::io::sink());
    let collect_peak = ALLOC.peak().saturating_sub(base);
    let base = ALLOC.reset_peak();
    run_stream(&mut std::io::sink());
    let stream_peak = ALLOC.peak().saturating_sub(base);
    // Amortized throughput, rep-paired like every other section.
    let (t_batch_collect, t_batch_stream) = time2(
        reps,
        || run_collect(&mut std::io::sink()),
        || run_stream(&mut std::io::sink()),
    );

    // ---- db_scale: sharded database vs one concatenated bank ------------
    // The sharded-database architecture on one box: the same subject
    // collection as (a) one in-memory bank and (b) a makedb database of
    // V mmap-attached volumes searched through a 1-volume window.
    // Measured: attach latency per mode (mmap's zero-copy attach vs the
    // heap-copy loader), peak live heap for a query batch (the counting
    // allocator — mapped sections live in the page cache, so the
    // bounded-window database search must peak strictly below the
    // resident single-bank index), and cold-vs-warm query wall-clock
    // (first query pays the attaches; a warm window does not).
    // W = 11 under Auto, like streaming_batch: the sparse backend keeps
    // the query-side index transient proportional to the query, so the
    // paper's seed length no longer drowns the subject-side difference
    // this section measures.
    let db_cfg = OrisConfig::default();
    let (db_subject, db_queries) = if test_mode {
        (oris_bench::planted_bank(505, 24, 80), {
            let (_, q) = oris_bench::screening_batch(2, 4, 1, 80);
            q
        })
    } else {
        (oris_bench::planted_bank(505, 512, 400), {
            let (_, q) = oris_bench::screening_batch(4, 24, 1, 400);
            q
        })
    };
    let db_dir = std::env::temp_dir().join(format!("oris_bench_db_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&db_dir);
    let num_volumes = 4usize;
    let per_volume = (db_subject.num_residues() / num_volumes).max(1);
    let manifest = oris_db::make_db(
        [db_subject.clone()],
        &db_dir,
        &oris_db::MakeDbOptions::new(&db_cfg, per_volume),
    )
    .expect("makedb");
    let db = oris_db::Database::open(&db_dir).expect("open database");
    let db_volumes = db.num_volumes();
    assert!(db_volumes >= 2, "bench database must actually shard");

    // Attach latency per mode, all volumes, rep-paired.
    let attach_all = |mode: oris_index::AttachMode| {
        for v in 0..db_volumes {
            std::hint::black_box(db.attach_volume(v, mode).expect("attach"));
        }
    };
    let (t_attach_copy, t_attach_mmap) = time2(
        reps.max(3),
        || attach_all(oris_index::AttachMode::HeapCopy),
        || attach_all(oris_index::AttachMode::Mmap),
    );

    // Byte identity: bounded-window database search ≡ concatenated bank
    // under the database-wide e-value space.
    let concat_cfg = OrisConfig {
        subject_space: oris_eval::SubjectSpace::Database(db.total_residues()),
        ..db_cfg
    };
    let run_concat = |out: &mut dyn std::io::Write| {
        let session = Session::new(&db_subject, &concat_cfg).expect("valid config");
        let mut sink = StreamWriter::new(out);
        session
            .run_batch(&db_queries, &mut sink)
            .expect("memory sink cannot fail");
    };
    let run_db = |out: &mut dyn std::io::Write| -> u64 {
        let mut session = oris_db::DbSession::new(
            &db,
            &db_cfg,
            oris_db::DbOptions {
                attach: oris_index::AttachMode::Mmap,
                window: 1,
                ..oris_db::DbOptions::default()
            },
        )
        .expect("valid db config");
        let mut sink = StreamWriter::new(out);
        session
            .run_batch(&db_queries, &mut sink)
            .expect("db search");
        sink.records_written()
    };
    let mut concat_bytes = Vec::new();
    run_concat(&mut concat_bytes);
    let mut db_bytes = Vec::new();
    let db_records = run_db(&mut db_bytes);
    assert_eq!(
        concat_bytes, db_bytes,
        "sharded database output must equal the concatenated single-bank run byte-for-byte"
    );
    assert!(db_records > 0, "db workload must produce records");

    // Peak live heap per architecture (null writer: neither side's peak
    // counts the output bytes). The database side includes its attach
    // work; the concatenated side includes its subject build — both are
    // each architecture's true steady-state query-serving footprint.
    let base = ALLOC.reset_peak();
    run_concat(&mut std::io::sink());
    let concat_peak = ALLOC.peak().saturating_sub(base);
    let base = ALLOC.reset_peak();
    run_db(&mut std::io::sink());
    let db_peak = ALLOC.peak().saturating_sub(base);
    assert!(
        db_peak < concat_peak,
        "V-volume windowed search must peak below the concatenated bank \
         ({db_peak} vs {concat_peak} bytes)"
    );

    // Cold vs warm: the first query against a window-0 session pays every
    // volume attach; the second pays none.
    let cold_query = &db_queries[0];
    let mut warm_session = oris_db::DbSession::new(&db, &db_cfg, oris_db::DbOptions::default())
        .expect("valid db config");
    let t0 = Stopwatch::start();
    let cold = warm_session.run_query(cold_query).expect("cold query");
    let t_db_cold = t0.elapsed_secs();
    let t0 = Stopwatch::start();
    let warm = warm_session.run_query(cold_query).expect("warm query");
    let t_db_warm = t0.elapsed_secs();
    assert_eq!(cold.alignments, warm.alignments);
    let db_attaches: u32 = warm_session.volume_costs().iter().map(|c| c.attaches).sum();
    assert_eq!(
        db_attaches as usize, db_volumes,
        "warm run must not re-attach"
    );

    // Deadline overhead: the same warm query with the cooperative clock
    // disarmed vs armed with a generous budget, rep-paired on two fully
    // warmed sessions so neither side pays an attach. The armed side
    // stages records in an internal buffer and polls the clock at volume
    // and partition boundaries; the contract is ≤1% wall-clock.
    let mut armed_session = oris_db::DbSession::new(&db, &db_cfg, oris_db::DbOptions::default())
        .expect("valid db config");
    let _ = armed_session.run_query(cold_query).expect("warm-up query");
    let generous = oris_core::Deadline::after(std::time::Duration::from_secs(3600));
    let run_with = |session: &mut oris_db::DbSession, deadline: &oris_core::Deadline| {
        let mut sink = oris_core::CollectSink::new();
        session
            .run_query_deadline(cold_query, &mut sink, deadline)
            .expect("deadline query");
        sink.into_records().len()
    };
    let (t_deadline_off, t_deadline_on) = time2(
        reps.max(20),
        || run_with(&mut warm_session, &oris_core::Deadline::none()),
        || run_with(&mut armed_session, &generous),
    );
    let deadline_overhead = t_deadline_on / t_deadline_off.max(1e-9);
    if !test_mode {
        assert!(
            deadline_overhead <= 1.01,
            "armed deadline must cost ≤1% wall-clock on a warm query \
             ({t_deadline_on:.6}s vs {t_deadline_off:.6}s, ratio {deadline_overhead:.4})"
        );
    }
    // ---- db_serve: concurrent serving (parallel fan-out + result cache)
    // Volume searches fanned across a scoped worker pool vs the
    // sequential walk, rep-paired on two fully warmed sessions (the
    // speedup is recorded, not asserted — this may be a 1-vCPU host,
    // where the fan-out shows ~1× by construction); then the result
    // cache: a cold first query (attaches + searches + inserts) vs the
    // cached repeat, which must be ≥5× faster (a hit replays staged
    // records instead of searching any volume). Byte-identity of every
    // variant against the sequential walk is asserted unconditionally.
    let serve_workers = 4usize;
    let mut seq_serve = oris_db::DbSession::new(&db, &db_cfg, oris_db::DbOptions::default())
        .expect("valid db config");
    let mut par_serve = oris_db::DbSession::new(
        &db,
        &db_cfg,
        oris_db::DbOptions {
            volume_workers: serve_workers,
            ..oris_db::DbOptions::default()
        },
    )
    .expect("valid db config");
    // Warm both attach caches so the pairing measures search alone.
    let seq_first = seq_serve.run_query(cold_query).expect("seq warm-up");
    let par_first = par_serve.run_query(cold_query).expect("par warm-up");
    assert_eq!(
        seq_first.alignments, par_first.alignments,
        "parallel fan-out must be byte-identical to the sequential walk"
    );
    let run_serve = |session: &mut oris_db::DbSession| {
        let mut sink = oris_core::CollectSink::new();
        session
            .run_batch(&db_queries, &mut sink)
            .expect("serve batch");
        sink.into_records().len()
    };
    let (t_serve_seq, t_serve_par) = time2(
        reps.max(3),
        || std::hint::black_box(run_serve(&mut seq_serve)),
        || std::hint::black_box(run_serve(&mut par_serve)),
    );
    let parallel_speedup = t_serve_seq / t_serve_par.max(1e-9);

    // Result cache: fresh session, cold first query, cached repeats.
    let mut cached_serve = oris_db::DbSession::new(
        &db,
        &db_cfg,
        oris_db::DbOptions {
            result_cache_bytes: 64 << 20,
            ..oris_db::DbOptions::default()
        },
    )
    .expect("valid db config");
    let t0 = Stopwatch::start();
    let cache_cold = cached_serve.run_query(cold_query).expect("cold query");
    let t_cache_cold = t0.elapsed_secs();
    let cache_reps = reps.max(5);
    let t0 = Stopwatch::start();
    let mut cache_warm = None;
    for _ in 0..cache_reps {
        cache_warm = Some(cached_serve.run_query(cold_query).expect("cached repeat"));
    }
    let t_cache_warm = t0.elapsed_secs() / cache_reps as f64;
    assert_eq!(
        cache_cold.alignments,
        cache_warm.expect("ran at least once").alignments,
        "a cache hit must replay byte-identical records"
    );
    assert_eq!(
        cache_cold.alignments, seq_first.alignments,
        "the cached path must match the cacheless sequential walk"
    );
    let serve_counters = cached_serve.result_cache_counters();
    assert!(
        serve_counters.hits as usize >= cache_reps * db_volumes,
        "every repeat must hit on every volume ({serve_counters:?})"
    );
    let cached_speedup = t_cache_cold / t_cache_warm.max(1e-9);
    if !test_mode {
        assert!(
            cached_speedup >= 5.0,
            "cached repeat must be ≥5× over cold \
             ({t_cache_warm:.6}s vs {t_cache_cold:.6}s, ratio {cached_speedup:.2})"
        );
    }
    let serve_cache_hits = serve_counters.hits;
    let serve_cache_misses = serve_counters.misses;

    // Observability overhead: the same warm query with the default
    // disarmed Obs handle vs a fully armed registry (counters, gauges,
    // histograms; no trace sink — that is I/O-bound by design),
    // rep-paired on two warmed sessions. Armed instrumentation must be
    // byte-invisible in the output and cost ≤1% wall-clock.
    let mut obs_off_session = oris_db::DbSession::new(&db, &db_cfg, oris_db::DbOptions::default())
        .expect("valid db config");
    let mut obs_on_session = oris_db::DbSession::new(&db, &db_cfg, oris_db::DbOptions::default())
        .expect("valid db config");
    obs_on_session.set_obs(oris_obs::Obs::armed());
    let obs_off_first = obs_off_session.run_query(cold_query).expect("obs warm-up");
    let obs_on_first = obs_on_session.run_query(cold_query).expect("obs warm-up");
    assert_eq!(
        obs_off_first.alignments, obs_on_first.alignments,
        "armed metrics must not change a single output byte"
    );
    let run_plain = |session: &mut oris_db::DbSession| {
        session
            .run_query(cold_query)
            .expect("obs query")
            .alignments
            .len()
    };
    let (t_obs_off, t_obs_on) = time2(
        reps.max(20),
        || std::hint::black_box(run_plain(&mut obs_off_session)),
        || std::hint::black_box(run_plain(&mut obs_on_session)),
    );
    let obs_overhead = t_obs_on / t_obs_off.max(1e-9);
    if !test_mode {
        assert!(
            obs_overhead <= 1.01,
            "armed metrics must cost ≤1% wall-clock on a warm query \
             ({t_obs_on:.6}s vs {t_obs_off:.6}s, ratio {obs_overhead:.4})"
        );
    }

    let _ = std::fs::remove_dir_all(&db_dir);
    // Locals for the JSON block (all idents, so the giant format string
    // stays positional-argument-free for this section).
    let db_residues = manifest.total_residues;
    let db_query_count = db_queries.len();
    let attach_speedup = t_attach_copy / t_attach_mmap;
    let db_peak_reduction = concat_peak as f64 / (db_peak.max(1)) as f64;
    let cold_over_warm = t_db_cold / t_db_warm.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"index_layout_and_step2_scheduling\",\n  \
         \"est_scale\": {scale},\n  \"est_residues\": {},\n  \
         \"w\": {w},\n  \"est_indexed_positions\": {},\n  \
         \"build_est\": {{\n    \"linked_secs\": {t_linked_build:.6},\n    \
         \"csr_secs\": {t_csr_build:.6}\n  }},\n  \
         \"csr_build_strategy\": {{\n    \
         \"est\": {{\n      \"full_sweep_secs\": {t_sweep_est:.6},\n      \
         \"radix_secs\": {t_radix_est:.6},\n      \"radix_speedup\": {:.3}\n    }},\n    \
         \"small_bank\": {{\n      \"residues\": {},\n      \
         \"full_sweep_secs\": {t_sweep_small:.6},\n      \
         \"radix_secs\": {t_radix_small:.6},\n      \"radix_speedup\": {:.3}\n    }}\n  }},\n  \
         \"index_backend\": [\n{backend_rows}  ],\n  \
         \"prepared_reuse\": {{\n    \"queries\": {num_queries},\n    \
         \"subject_residues\": {},\n    \
         \"rebuild_per_query_secs\": {t_reuse_naive:.6},\n    \
         \"session_secs\": {t_reuse_session:.6},\n    \
         \"amortized_speedup\": {:.3}\n  }},\n  \
         \"streaming_batch\": {{\n    \"queries\": {},\n    \
         \"subject_residues\": {},\n    \"query_residues_total\": {},\n    \
         \"records\": {batch_records},\n    \
         \"collect_peak_live_bytes\": {collect_peak},\n    \
         \"stream_peak_live_bytes\": {stream_peak},\n    \
         \"peak_reduction\": {:.3},\n    \
         \"collect_secs\": {t_batch_collect:.6},\n    \
         \"stream_secs\": {t_batch_stream:.6},\n    \
         \"stream_queries_per_sec\": {:.3},\n    \
         \"outputs_identical\": true\n  }},\n  \
         \"db_scale\": {{\n    \"volumes\": {db_volumes},\n    \
         \"db_residues\": {db_residues},\n    \
         \"queries\": {db_query_count},\n    \
         \"records\": {db_records},\n    \
         \"attach_heapcopy_secs\": {t_attach_copy:.6},\n    \
         \"attach_mmap_secs\": {t_attach_mmap:.6},\n    \
         \"attach_speedup\": {attach_speedup:.3},\n    \
         \"concat_peak_live_bytes\": {concat_peak},\n    \
         \"db_window1_peak_live_bytes\": {db_peak},\n    \
         \"peak_reduction\": {db_peak_reduction:.3},\n    \
         \"cold_query_secs\": {t_db_cold:.6},\n    \
         \"warm_query_secs\": {t_db_warm:.6},\n    \
         \"cold_over_warm\": {cold_over_warm:.3},\n    \
         \"deadline_off_secs\": {t_deadline_off:.6},\n    \
         \"deadline_on_secs\": {t_deadline_on:.6},\n    \
         \"deadline_overhead\": {deadline_overhead:.4},\n    \
         \"outputs_identical\": true\n  }},\n  \
         \"db_serve\": {{\n    \"volumes\": {db_volumes},\n    \
         \"workers\": {serve_workers},\n    \
         \"sequential_batch_secs\": {t_serve_seq:.6},\n    \
         \"parallel_batch_secs\": {t_serve_par:.6},\n    \
         \"parallel_speedup\": {parallel_speedup:.3},\n    \
         \"cold_query_secs\": {t_cache_cold:.6},\n    \
         \"cached_query_secs\": {t_cache_warm:.6},\n    \
         \"cached_speedup\": {cached_speedup:.3},\n    \
         \"cache_hits\": {serve_cache_hits},\n    \
         \"cache_misses\": {serve_cache_misses},\n    \
         \"obs_off_secs\": {t_obs_off:.6},\n    \
         \"obs_on_secs\": {t_obs_on:.6},\n    \
         \"obs_overhead\": {obs_overhead:.4},\n    \
         \"outputs_identical\": true\n  }},\n  \
         \"heap_bytes_est\": {{\n    \"linked_full\": {},\n    \
         \"csr_full\": {},\n    \"csr_asymmetric\": {}\n  }},\n  \
         \"step2_skewed\": {{\n    \"query_residues\": {},\n    \
         \"subject_residues\": {},\n    \
         \"linked_chain_secs\": {t_step2_linked:.6},\n    \
         \"csr_slice_secs\": {t_step2_csr:.6},\n    \"speedup\": {:.3}\n  }},\n  \
         \"step2_guard_skewed\": {{\n    \
         \"fully_indexed\": {{\n      \
         \"probe_baseline_secs\": {t_guard_probe:.6},\n      \
         \"full_fast_path_secs\": {t_guard_full:.6},\n      \
         \"fast_path_speedup\": {:.3},\n      \
         \"probe_baseline_rerun_secs\": {t_guard_probe2:.6},\n      \
         \"rolled_indexed_secs\": {t_guard_rolled:.6},\n      \
         \"rolled_speedup\": {:.3}\n    }},\n    \
         \"masked_half\": {{\n      \
         \"probe_baseline_secs\": {t_masked_probe:.6},\n      \
         \"rolled_indexed_secs\": {t_masked_rolled:.6},\n      \
         \"rolled_speedup\": {:.3}\n    }}\n  }},\n  \
         \"step2_scheduling_skewed\": [\n{sched_rows}  ]\n}}\n",
        est.num_residues(),
        csr.indexed_positions(),
        t_sweep_est / t_radix_est,
        small.num_residues(),
        t_sweep_small / t_radix_small,
        est.num_residues(),
        t_reuse_naive / t_reuse_session,
        batch_queries.len(),
        batch_subject.num_residues(),
        batch_queries
            .iter()
            .map(|b| b.num_residues())
            .sum::<usize>(),
        collect_peak as f64 / (stream_peak.max(1)) as f64,
        batch_queries.len() as f64 / t_batch_stream,
        linked.heap_bytes(),
        csr.heap_bytes(),
        csr_asym.heap_bytes(),
        b1.num_residues(),
        b2.num_residues(),
        t_step2_linked / t_step2_csr,
        t_guard_probe / t_guard_full,
        t_guard_probe2 / t_guard_rolled,
        t_masked_probe / t_masked_rolled,
    );
    std::fs::write(&out_path, &json).expect("failed to write snapshot");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
