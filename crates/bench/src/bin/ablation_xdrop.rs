//! A4 — X-drop sweep: the extension-termination knob both stages share.
//!
//! Runs the ORIS engine with ungapped X-drop 5 … 40 on a fixed EST pair.
//! Shape: small X-drop truncates extensions (more, shorter HSPs; some
//! alignments fragment or drop below threshold); large X-drop costs time
//! exploring mismatch deserts without changing the reported set much.

use oris_bench::{bank, scale_from_args};
use oris_core::OrisConfig;
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("A4: ungapped X-drop sweep (ORIS engine), scale {scale}\n");
    let b1 = bank("EST1", scale);
    let b2 = bank("EST2", scale);

    let mut t = Table::new(vec![
        "xdrop",
        "time (s)",
        "HSPs",
        "alignments",
        "mean align len",
    ]);
    for xdrop in [5, 10, 15, 20, 30, 40] {
        let cfg = OrisConfig {
            xdrop_ungapped: xdrop,
            ..OrisConfig::default()
        };
        let t0 = oris_obs::Stopwatch::start();
        let r = oris_core::compare_banks(&b1, &b2, &cfg);
        let secs = t0.elapsed_secs();
        let mean_len = if r.alignments.is_empty() {
            0.0
        } else {
            r.alignments.iter().map(|a| a.length).sum::<usize>() as f64 / r.alignments.len() as f64
        };
        t.row(vec![
            format!("{xdrop}"),
            format!("{secs:.3}"),
            format!("{}", r.stats.hsps),
            format!("{}", r.alignments.len()),
            format!("{mean_len:.0}"),
        ]);
        eprintln!("  done xdrop={xdrop}");
    }
    print!("{t}");
}
