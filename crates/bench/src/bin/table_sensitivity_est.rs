//! E5 — the section-3.4 EST sensitivity tables (SCORISmiss and BLASTmiss).
//!
//! For each EST pair, both engines run and their `-m 8` outputs are
//! compared with the 80 %-overlap equivalence. Paper shape: a few percent
//! missed in each direction, borderline low-score alignments dominating
//! the misses.

use oris_bench::{pct, run_pair, scale_from_args, EST_PAIRS};
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("E5: EST sensitivity tables (paper section 3.4), scale {scale}\n");
    let mut t1 = Table::new(vec!["banks", "BLtotal", "SCmiss", "SCORISmiss"]);
    let mut t2 = Table::new(vec!["banks", "SCtotal", "BLmiss", "BLASTmiss"]);
    for (a, b) in EST_PAIRS {
        let out = run_pair(a, b, scale);
        let m = out.miss;
        t1.row(vec![
            out.row.banks.clone(),
            format!("{}", m.b_total),
            format!("{}", m.a_miss),
            pct(m.a_miss_pct()),
        ]);
        t2.row(vec![
            out.row.banks.clone(),
            format!("{}", m.a_total),
            format!("{}", m.b_miss),
            pct(m.b_miss_pct()),
        ]);
        eprintln!("  done {}", out.row.banks);
    }
    println!("SCORIS-N misses relative to BLASTN-like:\n{t1}");
    println!("BLASTN-like misses relative to SCORIS-N:\n{t2}");
}
