//! E4 — the section-3.3 large-bank speed-up table.
//!
//! Six rows of genome-scale pairs. Paper shape: speed-ups smaller than on
//! the EST grid (5–9× vs 10–29×) "mostly because in that situation
//! BLASTN performs well".

use oris_bench::{run_pair, scale_from_args, LARGE_PAIRS, PAPER_LARGE_SPEEDUPS};
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("E4: large-bank speed-up table (paper section 3.3), scale {scale}\n");
    let mut t = Table::new(vec![
        "banks",
        "search space (Mbp^2)",
        "SCORIS-N (s)",
        "BLASTN-like (s)",
        "speed up",
        "paper speed up",
    ]);
    for ((a, b), paper) in LARGE_PAIRS.iter().zip(PAPER_LARGE_SPEEDUPS) {
        let out = run_pair(a, b, scale);
        t.row(vec![
            out.row.banks.clone(),
            format!("{:.0}", out.row.search_space),
            format!("{:.3}", out.row.scoris_secs),
            format!("{:.3}", out.row.blast_secs),
            format!("{:.1}", out.row.speedup()),
            format!("{paper:.1}"),
        ]);
        eprintln!("  done {}", out.row.banks);
    }
    print!("{t}");
}
