//! A3 — seed-length sweep: the sensitivity/speed trade-off the paper's
//! introduction frames ("the heuristic can be tuned by modifying the
//! length of the seed according to a specified sensitivity").
//!
//! Runs the ORIS engine at W = 8 … 13 on a fixed EST pair: time, HSPs,
//! alignments. Shape: smaller W → more (noisier) hits and more time;
//! larger W → faster, fewer divergent alignments found.

use oris_bench::{bank, scale_from_args};
use oris_core::OrisConfig;
use oris_eval::Table;

fn main() {
    let scale = scale_from_args();
    println!("A3: seed length sweep (ORIS engine), scale {scale}\n");
    let b1 = bank("EST1", scale);
    let b2 = bank("EST2", scale);

    let mut t = Table::new(vec![
        "W",
        "time (s)",
        "pairs examined",
        "HSPs",
        "alignments",
    ]);
    for w in 8..=13 {
        let cfg = OrisConfig {
            w,
            ..OrisConfig::default()
        };
        let t0 = oris_obs::Stopwatch::start();
        let r = oris_core::compare_banks(&b1, &b2, &cfg);
        let secs = t0.elapsed_secs();
        t.row(vec![
            format!("{w}"),
            format!("{secs:.3}"),
            format!("{}", r.stats.step2.pairs_examined),
            format!("{}", r.stats.hsps),
            format!("{}", r.alignments.len()),
        ]);
        eprintln!("  done W={w}");
    }
    print!("{t}");
}
