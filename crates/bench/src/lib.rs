//! # oris-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured numbers):
//!
//! | binary | paper item |
//! |---|---|
//! | `table_datasets` | §3.2 data-set table (E1) |
//! | `fig3_exec_time` | Figure 3, time vs search space (E2) |
//! | `table_speedup_est` | §3.3 EST speed-up table (E3) |
//! | `table_speedup_large` | §3.3 large-bank speed-up table (E4) |
//! | `table_sensitivity_est` | §3.4 EST miss tables (E5) |
//! | `table_sensitivity_large` | §3.4 large-bank miss tables (E6) |
//! | `table_memory` | §3.1 index ≈5·N bytes (E7) |
//! | `fig_parallel_scaling` | §4 multicore perspective (E8) |
//! | `ablation_dedup` | ordered rule vs hash dedup (A1) |
//! | `ablation_asymmetric` | asymmetric indexing (A2) |
//! | `ablation_seed_len` | seed-length sweep (A3) |
//! | `ablation_xdrop` | X-drop sweep (A4) |
//!
//! Every binary takes `--scale F` (default 0.25) multiplying the reduced
//! bank grid of DESIGN.md §6, so quick runs and full runs use the same
//! code path. Banks are deterministic; engine outputs are deterministic
//! for any thread count — the only nondeterminism in these experiments is
//! the wall clock.
//!
//! This library holds the shared harness: bank construction, matched
//! engine configurations, timing, and the paper's table row formats.

pub mod memtrack;

pub use memtrack::CountingAlloc;

use oris_align::{extend_hit, ExtensionOutcome, OrderGuard, UngappedParams};
use oris_blast::{BlastConfig, BlastResult};
use oris_core::{Hsp, OrisConfig, OrisResult};
use oris_eval::{MissReport, SpeedupRow};
use oris_index::{BankIndex, IndexConfig, LinkedBankIndex};
use oris_seqio::Bank;
use oris_simulate::paper_bank;

/// The eight EST bank pairs of the section-3.3/3.4 tables, in paper order.
pub const EST_PAIRS: [(&str, &str); 8] = [
    ("EST1", "EST2"),
    ("EST1", "EST3"),
    ("EST1", "EST5"),
    ("EST3", "EST4"),
    ("EST1", "EST7"),
    ("EST4", "EST5"),
    ("EST5", "EST6"),
    ("EST5", "EST7"),
];

/// The six large-bank pairs of the section-3.3/3.4 tables, in paper order.
pub const LARGE_PAIRS: [(&str, &str); 6] = [
    ("H19", "VRL"),
    ("BCT", "EST7"),
    ("H19", "BCT"),
    ("BCT", "VRL"),
    ("H10", "VRL"),
    ("H10", "BCT"),
];

/// Paper-reported speed-ups for the EST pairs (same order as
/// [`EST_PAIRS`]), used by EXPERIMENTS.md comparisons.
pub const PAPER_EST_SPEEDUPS: [f64; 8] = [10.0, 16.2, 17.1, 18.5, 16.0, 24.0, 28.4, 28.8];

/// Paper-reported speed-ups for the large pairs (same order as
/// [`LARGE_PAIRS`]).
pub const PAPER_LARGE_SPEEDUPS: [f64; 6] = [6.2, 8.6, 5.5, 9.2, 8.6, 6.6];

/// Reads `--scale F` from the command line (default 0.25).
pub fn scale_from_args() -> f64 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            if let Some(v) = it.next() {
                return v.parse().expect("--scale takes a number");
            }
        }
    }
    0.25
}

/// Builds one paper bank at the given scale (cached per process run is
/// unnecessary — generation is a small fraction of comparison time).
pub fn bank(name: &str, scale: f64) -> Bank {
    paper_bank(name, scale).bank
}

/// The standard matched configurations both engines run with: paper
/// parameters (`W = 11`, `e ≤ 1e-3`), each engine's own filter, and the
/// baseline in blastall-2.2.17 mode (lookup per ~20 kbp query batch, full
/// database rescan per batch — the cost structure of the program the
/// paper actually measured). Batching changes timing only; records are
/// identical to the one-pass baseline.
pub fn standard_configs() -> (OrisConfig, BlastConfig) {
    let oris = OrisConfig::default();
    let blast = BlastConfig::blastall_like(&oris);
    (oris, blast)
}

/// Outcome of running both engines on one bank pair.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Speed-up row in the paper's format.
    pub row: SpeedupRow,
    /// Sensitivity comparison (A = ORIS engine, B = baseline).
    pub miss: MissReport,
    /// ORIS engine full result.
    pub oris: OrisResult,
    /// Baseline full result.
    pub blast: BlastResult,
}

/// Runs both engines on a named bank pair and packages the paper rows.
pub fn run_pair(name1: &str, name2: &str, scale: f64) -> PairOutcome {
    let b1 = bank(name1, scale);
    let b2 = bank(name2, scale);
    run_pair_banks(&format!("{name1} vs {name2}"), &b1, &b2)
}

/// Runs both engines on explicit banks.
pub fn run_pair_banks(label: &str, b1: &Bank, b2: &Bank) -> PairOutcome {
    let (oris_cfg, blast_cfg) = standard_configs();

    let t0 = oris_obs::Stopwatch::start();
    let oris = oris_core::compare_banks(b1, b2, &oris_cfg);
    let scoris_secs = t0.elapsed_secs();

    let t0 = oris_obs::Stopwatch::start();
    let blast = oris_blast::compare_banks(b1, b2, &blast_cfg);
    let blast_secs = t0.elapsed_secs();

    let miss = oris_eval::compare_outputs(&oris.alignments, &blast.alignments, 0.8);
    PairOutcome {
        row: SpeedupRow {
            banks: label.to_string(),
            search_space: b1.mbp() * b2.mbp(),
            scoris_secs,
            blast_secs,
        },
        miss,
        oris,
        blast,
    }
}

/// The 32-nt repeat element planted by [`skewed_pair`] (an ALU-like
/// dispersed repeat; an arbitrary fixed sequence, diverse enough that its
/// windows are distinct codes).
pub const SKEW_MOTIF: &str = "GTCCGGATTACGCTAGGTCAACGGTTAGCCAT";

/// A deliberately skew-heavy bank pair for the scheduling and layout
/// benches: an ALU-style dispersed repeat, asymmetric between the banks.
/// Every sequence of both banks carries one copy of [`SKEW_MOTIF`] at a
/// per-sequence position, so each motif W-mer becomes a seed code with
/// `query_seqs` occurrences in bank 1 and `subject_seqs` occurrences
/// *scattered across the whole of bank 2*. The interesting regime is
/// `subject_seqs` in the tens of thousands over a multi-megabyte bank:
///
/// * nearly all of step 2's `|X1|·|X2|` pair work concentrates in the few
///   motif codes — the skewed seed-frequency distribution the
///   work-balanced scheduler exists for — and
/// * the subject occurrence list of each motif code touches one cache
///   line per occurrence spread over the `4·len(SEQ)`-byte `next` array,
///   a working set far beyond L2, so the linked layout's inner loop pays
///   a dependent long-latency load per pair while the CSR slice streams.
pub fn skewed_pair(query_seqs: usize, subject_seqs: usize, seq_len: usize) -> (Bank, Bank) {
    (
        planted_bank(101, query_seqs, seq_len),
        planted_bank(202, subject_seqs, seq_len),
    )
}

/// A random bank whose every sequence carries one copy of [`SKEW_MOTIF`]
/// at a deterministic per-sequence offset (spreading the copies across
/// record positions and hence across the global bank space).
pub fn planted_bank(seed: u64, num_seqs: usize, seq_len: usize) -> Bank {
    use oris_seqio::BankBuilder;
    assert!(
        seq_len >= 2 * SKEW_MOTIF.len(),
        "sequences too short for motif planting"
    );
    let random = oris_simulate::random_bank(seed, num_seqs, seq_len, 0.5);
    let mut b = BankBuilder::new();
    for i in 0..random.num_sequences() {
        let mut s = random.sequence_string(i);
        let span = s.len() - SKEW_MOTIF.len();
        let at = (i * 131) % (span + 1);
        s.replace_range(at..at + SKEW_MOTIF.len(), SKEW_MOTIF);
        b.push_str(&format!("sk{seed}_{i}"), &s).unwrap();
    }
    b.finish()
}

/// A repeat-family screening batch for the streaming-result benches: one
/// subject bank plus `num_queries` query banks, every sequence of every
/// bank carrying one [`SKEW_MOTIF`] copy in random flanks. Each
/// (query sequence, subject sequence) pair aligns across the shared
/// repeat, so one query bank emits `query_seqs × subject_seqs` records —
/// a workload whose *output volume* dwarfs its per-query working set,
/// which is exactly the regime the collect-everything and streamed result
/// paths diverge in.
pub fn screening_batch(
    num_queries: usize,
    query_seqs: usize,
    subject_seqs: usize,
    seq_len: usize,
) -> (Bank, Vec<Bank>) {
    let subject = planted_bank(404, subject_seqs, seq_len);
    let queries = (0..num_queries)
        .map(|i| planted_bank(600 + i as u64, query_seqs, seq_len))
        .collect();
    (subject, queries)
}

/// An index over `bank` with roughly half of its positions masked away in
/// alternating 256-position blocks — the masked regime of the guard
/// benches (`bench_guard`, `bench_index_snapshot`).
///
/// Blocky masking mirrors what a real low-complexity filter produces
/// (runs, not salt-and-pepper): the rolled guard crosses a masked/unmasked
/// boundary only every few words, while the probe baseline still pays two
/// random-access loads per candidate. The build is *not* fully indexed, so
/// `oris_core::step2::select_guard` keeps the indexed guard.
pub fn half_masked_index(bank: &Bank, w: usize) -> BankIndex {
    BankIndex::build_filtered(bank, IndexConfig::full(w), |p| (p / 256) % 2 == 0)
}

/// Step 2 against the linked (Figure-2 literal) occurrence index — the
/// pre-CSR baseline, kept callable so the layout benches and the
/// `bench_index_snapshot` tool can measure what the flattening bought.
///
/// Identical enumeration, extension and thresholds to
/// `oris_core::step2::find_hsps` run serially; the *only* difference is
/// that X1/X2 iteration chases `next` chains instead of streaming CSR
/// slices. The order guard consults the CSR indexes in both variants, so
/// guard cost cancels out of the comparison.
pub fn find_hsps_linked_reference(
    bank1: &Bank,
    linked1: &LinkedBankIndex,
    bank2: &Bank,
    linked2: &LinkedBankIndex,
    csr1: &BankIndex,
    csr2: &BankIndex,
    cfg: &OrisConfig,
) -> (Vec<Hsp>, u64) {
    let params = UngappedParams {
        w: csr1.w(),
        xdrop: cfg.xdrop_ungapped,
        scheme: cfg.scheme,
        max_span: usize::MAX / 4,
    };
    let guard = OrderGuard::OrderedIndexed {
        idx1: csr1,
        idx2: csr2,
    };
    let d1 = bank1.data();
    let d2 = bank2.data();
    let coder = csr1.coder();
    let w = params.w as u32;
    let mut out = Vec::new();
    let mut pairs = 0u64;
    for code in 0..coder.num_seeds() as u32 {
        let Some(first1) = linked1.first(code) else {
            continue;
        };
        let Some(first2) = linked2.first(code) else {
            continue;
        };
        let mut p1 = Some(first1);
        while let Some(a) = p1 {
            let mut p2 = Some(first2);
            while let Some(b) = p2 {
                pairs += 1;
                if let ExtensionOutcome::Hsp { score, left, right } =
                    extend_hit(d1, d2, a as usize, b as usize, code, coder, &params, guard)
                {
                    // `>=` — min_hsp_score is the minimum score to keep,
                    // matching oris_core::step2::process_code_range.
                    if score >= cfg.min_hsp_score {
                        out.push(Hsp {
                            start1: a - left as u32,
                            start2: b - left as u32,
                            len: left as u32 + w + right as u32,
                            score,
                        });
                    }
                }
                p2 = linked2.next_occurrence(b);
            }
            p1 = linked1.next_occurrence(a);
        }
    }
    out.sort_by(Hsp::diag_order);
    out.dedup();
    (out, pairs)
}

/// Formats an optional percentage the way the paper prints it (`-` when
/// undefined).
pub fn pct(p: Option<f64>) -> String {
    match p {
        Some(v) => format!("{v:.2} %"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_tables_match_paper_layout() {
        assert_eq!(EST_PAIRS.len(), PAPER_EST_SPEEDUPS.len());
        assert_eq!(LARGE_PAIRS.len(), PAPER_LARGE_SPEEDUPS.len());
    }

    #[test]
    fn tiny_pair_runs_end_to_end() {
        let out = run_pair("EST1", "EST2", 0.03);
        assert!(out.row.search_space > 0.0);
        assert!(out.row.scoris_secs > 0.0);
        assert!(out.row.blast_secs > 0.0);
        // Both engines report something comparable.
        assert!(out.miss.a_total > 0 || out.miss.b_total > 0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(Some(3.31)), "3.31 %");
        assert_eq!(pct(None), "-");
    }

    #[test]
    fn linked_reference_matches_csr_step2() {
        // The layout benches compare like for like: the linked-chain
        // baseline must produce exactly the HSPs of the production CSR
        // path on a skewed pair.
        let (b1, b2) = skewed_pair(6, 60, 200);
        let cfg = OrisConfig {
            w: 8,
            min_hsp_score: 8,
            ..OrisConfig::small(8)
        };
        let icfg = oris_index::IndexConfig::full(cfg.w);
        let l1 = LinkedBankIndex::build(&b1, icfg);
        let l2 = LinkedBankIndex::build(&b2, icfg);
        let i1 = BankIndex::build(&b1, icfg);
        let i2 = BankIndex::build(&b2, icfg);
        let (linked_hsps, pairs) = find_hsps_linked_reference(&b1, &l1, &b2, &l2, &i1, &i2, &cfg);
        let (csr_hsps, stats) = oris_core::step2::find_hsps(&b1, &i1, &b2, &i2, &cfg);
        assert_eq!(linked_hsps, csr_hsps);
        assert_eq!(pairs, stats.pairs_examined);
        assert!(!csr_hsps.is_empty());
    }

    #[test]
    fn skewed_pair_concentrates_work() {
        let (_, b2) = skewed_pair(4, 40, 200);
        let idx = BankIndex::build(&b2, oris_index::IndexConfig::full(8));
        // One motif copy per subject sequence; a random 8-mer occurs
        // ≈ 40·200/4^8 ≈ 0 times, so the motif code dominates its row.
        let motif_code = idx.coder().string_to_code(&SKEW_MOTIF[..8]).unwrap();
        assert!(idx.count(motif_code) >= 40, "{}", idx.count(motif_code));
    }
}
