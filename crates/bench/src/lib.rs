//! # oris-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured numbers):
//!
//! | binary | paper item |
//! |---|---|
//! | `table_datasets` | §3.2 data-set table (E1) |
//! | `fig3_exec_time` | Figure 3, time vs search space (E2) |
//! | `table_speedup_est` | §3.3 EST speed-up table (E3) |
//! | `table_speedup_large` | §3.3 large-bank speed-up table (E4) |
//! | `table_sensitivity_est` | §3.4 EST miss tables (E5) |
//! | `table_sensitivity_large` | §3.4 large-bank miss tables (E6) |
//! | `table_memory` | §3.1 index ≈5·N bytes (E7) |
//! | `fig_parallel_scaling` | §4 multicore perspective (E8) |
//! | `ablation_dedup` | ordered rule vs hash dedup (A1) |
//! | `ablation_asymmetric` | asymmetric indexing (A2) |
//! | `ablation_seed_len` | seed-length sweep (A3) |
//! | `ablation_xdrop` | X-drop sweep (A4) |
//!
//! Every binary takes `--scale F` (default 0.25) multiplying the reduced
//! bank grid of DESIGN.md §6, so quick runs and full runs use the same
//! code path. Banks are deterministic; engine outputs are deterministic
//! for any thread count — the only nondeterminism in these experiments is
//! the wall clock.
//!
//! This library holds the shared harness: bank construction, matched
//! engine configurations, timing, and the paper's table row formats.

use oris_blast::{BlastConfig, BlastResult};
use oris_core::{OrisConfig, OrisResult};
use oris_eval::{MissReport, SpeedupRow};
use oris_seqio::Bank;
use oris_simulate::paper_bank;

/// The eight EST bank pairs of the section-3.3/3.4 tables, in paper order.
pub const EST_PAIRS: [(&str, &str); 8] = [
    ("EST1", "EST2"),
    ("EST1", "EST3"),
    ("EST1", "EST5"),
    ("EST3", "EST4"),
    ("EST1", "EST7"),
    ("EST4", "EST5"),
    ("EST5", "EST6"),
    ("EST5", "EST7"),
];

/// The six large-bank pairs of the section-3.3/3.4 tables, in paper order.
pub const LARGE_PAIRS: [(&str, &str); 6] = [
    ("H19", "VRL"),
    ("BCT", "EST7"),
    ("H19", "BCT"),
    ("BCT", "VRL"),
    ("H10", "VRL"),
    ("H10", "BCT"),
];

/// Paper-reported speed-ups for the EST pairs (same order as
/// [`EST_PAIRS`]), used by EXPERIMENTS.md comparisons.
pub const PAPER_EST_SPEEDUPS: [f64; 8] = [10.0, 16.2, 17.1, 18.5, 16.0, 24.0, 28.4, 28.8];

/// Paper-reported speed-ups for the large pairs (same order as
/// [`LARGE_PAIRS`]).
pub const PAPER_LARGE_SPEEDUPS: [f64; 6] = [6.2, 8.6, 5.5, 9.2, 8.6, 6.6];

/// Reads `--scale F` from the command line (default 0.25).
pub fn scale_from_args() -> f64 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            if let Some(v) = it.next() {
                return v.parse().expect("--scale takes a number");
            }
        }
    }
    0.25
}

/// Builds one paper bank at the given scale (cached per process run is
/// unnecessary — generation is a small fraction of comparison time).
pub fn bank(name: &str, scale: f64) -> Bank {
    paper_bank(name, scale).bank
}

/// The standard matched configurations both engines run with: paper
/// parameters (`W = 11`, `e ≤ 1e-3`), each engine's own filter, and the
/// baseline in blastall-2.2.17 mode (lookup per ~20 kbp query batch, full
/// database rescan per batch — the cost structure of the program the
/// paper actually measured). Batching changes timing only; records are
/// identical to the one-pass baseline.
pub fn standard_configs() -> (OrisConfig, BlastConfig) {
    let oris = OrisConfig::default();
    let blast = BlastConfig::blastall_like(&oris);
    (oris, blast)
}

/// Outcome of running both engines on one bank pair.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Speed-up row in the paper's format.
    pub row: SpeedupRow,
    /// Sensitivity comparison (A = ORIS engine, B = baseline).
    pub miss: MissReport,
    /// ORIS engine full result.
    pub oris: OrisResult,
    /// Baseline full result.
    pub blast: BlastResult,
}

/// Runs both engines on a named bank pair and packages the paper rows.
pub fn run_pair(name1: &str, name2: &str, scale: f64) -> PairOutcome {
    let b1 = bank(name1, scale);
    let b2 = bank(name2, scale);
    run_pair_banks(&format!("{name1} vs {name2}"), &b1, &b2)
}

/// Runs both engines on explicit banks.
pub fn run_pair_banks(label: &str, b1: &Bank, b2: &Bank) -> PairOutcome {
    let (oris_cfg, blast_cfg) = standard_configs();

    let t0 = std::time::Instant::now();
    let oris = oris_core::compare_banks(b1, b2, &oris_cfg);
    let scoris_secs = t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    let blast = oris_blast::compare_banks(b1, b2, &blast_cfg);
    let blast_secs = t0.elapsed().as_secs_f64();

    let miss = oris_eval::compare_outputs(&oris.alignments, &blast.alignments, 0.8);
    PairOutcome {
        row: SpeedupRow {
            banks: label.to_string(),
            search_space: b1.mbp() * b2.mbp(),
            scoris_secs,
            blast_secs,
        },
        miss,
        oris,
        blast,
    }
}

/// Formats an optional percentage the way the paper prints it (`-` when
/// undefined).
pub fn pct(p: Option<f64>) -> String {
    match p {
        Some(v) => format!("{v:.2} %"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_tables_match_paper_layout() {
        assert_eq!(EST_PAIRS.len(), PAPER_EST_SPEEDUPS.len());
        assert_eq!(LARGE_PAIRS.len(), PAPER_LARGE_SPEEDUPS.len());
    }

    #[test]
    fn tiny_pair_runs_end_to_end() {
        let out = run_pair("EST1", "EST2", 0.03);
        assert!(out.row.search_space > 0.0);
        assert!(out.row.scoris_secs > 0.0);
        assert!(out.row.blast_secs > 0.0);
        // Both engines report something comparable.
        assert!(out.miss.a_total > 0 || out.miss.b_total > 0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(Some(3.31)), "3.31 %");
        assert_eq!(pct(None), "-");
    }
}
