//! Live-allocation tracking for the memory benchmarks.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps two atomic
//! gauges: bytes currently live, and the peak live bytes since the last
//! [`CountingAlloc::reset_peak`]. A bench binary installs it as the
//! `#[global_allocator]` and brackets each measured region with
//! `reset_peak` / [`CountingAlloc::peak`], which is how
//! `bench_index_snapshot`'s `streaming_batch` section shows the streamed
//! batch path peaking at one query's working set while the
//! collect-everything path peaks at the whole run's.
//!
//! Overhead is two relaxed atomic RMWs per allocation — noise for the
//! pipeline workloads measured here, and identical for both sides of
//! every comparison.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A counting wrapper over the system allocator. `const`-constructible so
/// it can be a `#[global_allocator]` static.
pub struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A fresh counter (all gauges zero).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Bytes currently allocated and not yet freed.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Peak live bytes since the last [`CountingAlloc::reset_peak`].
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts peak tracking from the current live level, returning that
    /// level — the baseline to subtract from the next [`peak`] reading so
    /// a measurement reports only the region's own growth.
    ///
    /// [`peak`]: CountingAlloc::peak
    pub fn reset_peak(&self) -> usize {
        let now = self.live();
        self.peak.store(now, Ordering::Relaxed);
        now
    }

    fn add(&self, n: usize) {
        let now = self.live.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn sub(&self, n: usize) {
        self.live.fetch_sub(n, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the gauges are
// plain atomics and never influence what the allocator returns.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            self.add(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not the global allocator in tests — exercised directly.
    #[test]
    fn gauges_track_alloc_free_cycle() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(4096, 8).unwrap();
        // SAFETY: the layout is valid and non-zero, every alloc is
        // paired with exactly one dealloc of the same layout, and the
        // pointers are never used after free.
        unsafe {
            let base = a.reset_peak();
            assert_eq!(base, 0);
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.live(), 4096);
            assert_eq!(a.peak(), 4096);
            let q = a.alloc(layout);
            assert_eq!(a.peak(), 8192);
            a.dealloc(p, layout);
            assert_eq!(a.live(), 4096);
            // Peak survives the free...
            assert_eq!(a.peak(), 8192);
            // ...until reset, which restarts from the live level.
            assert_eq!(a.reset_peak(), 4096);
            assert_eq!(a.peak(), 4096);
            a.dealloc(q, layout);
            assert_eq!(a.live(), 0);
        }
    }

    #[test]
    fn realloc_tracks_deltas() {
        let a = CountingAlloc::new();
        let small = Layout::from_size_align(100, 8).unwrap();
        // SAFETY: layouts are valid and non-zero, realloc receives the
        // pointer's current layout each time, and the final pointer is
        // freed once with its last layout.
        unsafe {
            let p = a.alloc(small);
            let p = a.realloc(p, small, 300);
            assert_eq!(a.live(), 300);
            let big = Layout::from_size_align(300, 8).unwrap();
            let p = a.realloc(p, big, 50);
            assert_eq!(a.live(), 50);
            a.dealloc(p, Layout::from_size_align(50, 8).unwrap());
            assert_eq!(a.live(), 0);
        }
    }
}
