//! Criterion benchmarks for the full pipelines — the engine-level numbers
//! behind the speed-up tables (E2/E3/E4) on a small fixed pair.
//!
//! Three configurations: the ORIS engine, the one-pass lean baseline and
//! the blastall-like batched baseline; plus the step-2 ordered
//! enumeration vs the A1 hash-dedup ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use oris_align::OrderGuard;
use oris_blast::BlastConfig;
use oris_core::step2::PartitionStrategy;
use oris_core::OrisConfig;
use oris_index::{BankIndex, IndexConfig};

fn banks() -> (oris_seqio::Bank, oris_seqio::Bank) {
    (
        oris_simulate::paper_bank("EST1", 0.15).bank,
        oris_simulate::paper_bank("EST2", 0.15).bank,
    )
}

fn bench_engines(c: &mut Criterion) {
    let (b1, b2) = banks();
    let oris_cfg = OrisConfig::default();
    let lean = BlastConfig::matched(&oris_cfg);
    let batched = BlastConfig::blastall_like(&oris_cfg);

    let mut g = c.benchmark_group("engine_pipeline");
    g.sample_size(10);
    g.bench_function("oris", |b| {
        b.iter(|| oris_core::compare_banks(&b1, &b2, &oris_cfg))
    });
    g.bench_function("blast_one_pass", |b| {
        b.iter(|| oris_blast::compare_banks(&b1, &b2, &lean))
    });
    g.bench_function("blast_blastall_like", |b| {
        b.iter(|| oris_blast::compare_banks(&b1, &b2, &batched))
    });
    g.finish();
}

fn bench_step2_variants(c: &mut Criterion) {
    let (b1, b2) = banks();
    let cfg = OrisConfig::default();
    let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
    let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));

    let mut g = c.benchmark_group("step2");
    g.sample_size(10);
    g.bench_function("ordered", |b| {
        b.iter(|| oris_core::step2::find_hsps(&b1, &i1, &b2, &i2, &cfg))
    });
    g.bench_function("unordered_hash_dedup", |b| {
        b.iter(|| oris_core::ablation::find_hsps_unordered_dedup(&b1, &i1, &b2, &i2, &cfg))
    });
    g.finish();
}

/// Scheduling comparison on the paper's worst case: EST banks carry long
/// poly-A runs, so nearly all pair work sits in a handful of seed codes.
/// Equal-width code ranges strand that work on one rayon chunk; the
/// work-balanced partition spreads it.
fn bench_step2_scheduling(c: &mut Criterion) {
    let (b1, b2) = banks();
    let cfg = OrisConfig::default();
    let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
    let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));
    let guard = OrderGuard::OrderedIndexed {
        idx1: &i1,
        idx2: &i2,
    };

    let mut g = c.benchmark_group("step2_scheduling");
    g.sample_size(10);
    g.bench_function("equal_width", |b| {
        b.iter(|| {
            oris_core::step2::find_hsps_partitioned(
                &b1,
                &i1,
                &b2,
                &i2,
                &cfg,
                guard,
                PartitionStrategy::EqualWidth,
            )
        })
    });
    g.bench_function("work_balanced", |b| {
        b.iter(|| {
            oris_core::step2::find_hsps_partitioned(
                &b1,
                &i1,
                &b2,
                &i2,
                &cfg,
                guard,
                PartitionStrategy::WorkBalanced,
            )
        })
    });
    g.finish();
}

/// Layout comparison on the skewed-seed benchmark: the same step-2
/// enumeration walking linked `next` chains (the Figure-2 literal layout
/// this PR replaced) vs streaming CSR slices.
fn bench_step2_layout(c: &mut Criterion) {
    let (b1, b2) = oris_bench::skewed_pair(50, 40_000, 250);
    let cfg = OrisConfig::default();
    let l1 = oris_index::LinkedBankIndex::build(&b1, IndexConfig::full(cfg.w));
    let l2 = oris_index::LinkedBankIndex::build(&b2, IndexConfig::full(cfg.w));
    let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
    let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();

    let mut g = c.benchmark_group("step2_layout_skewed");
    g.sample_size(10);
    g.bench_function("linked_chains", |b| {
        b.iter(|| oris_bench::find_hsps_linked_reference(&b1, &l1, &b2, &l2, &i1, &i2, &cfg))
    });
    // Explicit OrderedIndexed (not find_hsps' auto-selection, which picks
    // the probe-free fast path on these fully indexed banks): the linked
    // reference runs the same guard, so this group isolates the *layout*
    // difference. The guard representations have their own bench (guard.rs).
    let guard = OrderGuard::OrderedIndexed {
        idx1: &i1,
        idx2: &i2,
    };
    g.bench_function("csr_slices", |b| {
        b.iter(|| {
            pool.install(|| oris_core::step2::find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, guard))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_step2_variants,
    bench_step2_scheduling,
    bench_step2_layout
);
criterion_main!(benches);
