//! Criterion benchmarks for the full pipelines — the engine-level numbers
//! behind the speed-up tables (E2/E3/E4) on a small fixed pair.
//!
//! Three configurations: the ORIS engine, the one-pass lean baseline and
//! the blastall-like batched baseline; plus the step-2 ordered
//! enumeration vs the A1 hash-dedup ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use oris_blast::BlastConfig;
use oris_core::OrisConfig;
use oris_index::{BankIndex, IndexConfig};

fn banks() -> (oris_seqio::Bank, oris_seqio::Bank) {
    (
        oris_simulate::paper_bank("EST1", 0.15).bank,
        oris_simulate::paper_bank("EST2", 0.15).bank,
    )
}

fn bench_engines(c: &mut Criterion) {
    let (b1, b2) = banks();
    let oris_cfg = OrisConfig::default();
    let lean = BlastConfig::matched(&oris_cfg);
    let batched = BlastConfig::blastall_like(&oris_cfg);

    let mut g = c.benchmark_group("engine_pipeline");
    g.sample_size(10);
    g.bench_function("oris", |b| {
        b.iter(|| oris_core::compare_banks(&b1, &b2, &oris_cfg))
    });
    g.bench_function("blast_one_pass", |b| {
        b.iter(|| oris_blast::compare_banks(&b1, &b2, &lean))
    });
    g.bench_function("blast_blastall_like", |b| {
        b.iter(|| oris_blast::compare_banks(&b1, &b2, &batched))
    });
    g.finish();
}

fn bench_step2_variants(c: &mut Criterion) {
    let (b1, b2) = banks();
    let cfg = OrisConfig::default();
    let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
    let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));

    let mut g = c.benchmark_group("step2");
    g.sample_size(10);
    g.bench_function("ordered", |b| {
        b.iter(|| oris_core::step2::find_hsps(&b1, &i1, &b2, &i2, &cfg))
    });
    g.bench_function("unordered_hash_dedup", |b| {
        b.iter(|| oris_core::ablation::find_hsps_unordered_dedup(&b1, &i1, &b2, &i2, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench_engines, bench_step2_variants);
criterion_main!(benches);
