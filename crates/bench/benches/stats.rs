//! Criterion benchmarks for the statistics layer (paper §2.4/§3.1).
//!
//! Karlin–Altschul parameter computation is done once per run; e-value
//! evaluation runs once per candidate alignment — both are measured.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oris_stats::{EValueModel, KarlinParams, SearchSpace};

fn bench_karlin(c: &mut Criterion) {
    let mut g = c.benchmark_group("karlin_params");
    g.sample_size(20);
    g.bench_function("dna_1_m3", |b| b.iter(|| KarlinParams::dna(1, -3)));
    g.bench_function("dna_2_m3", |b| b.iter(|| KarlinParams::dna(2, -3)));
    g.finish();
}

fn bench_evalue(c: &mut Criterion) {
    let model = EValueModel::dna(1, -3);
    let space = SearchSpace::scoris(25_000_000, 600);
    let mut g = c.benchmark_group("evalue");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("evalue_1000_scores", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for s in 18..1018 {
                acc += model.evalue(s, space);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_karlin, bench_evalue);
criterion_main!(benches);
