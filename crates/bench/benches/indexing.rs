//! Criterion micro-benchmarks for step 1: bank indexing (paper §2.1).
//!
//! Covers the kernels behind experiments E1/E7: rolling seed coding, index
//! construction at several bank sizes, full vs asymmetric stride, masked
//! construction — plus the **layout comparison** motivating the CSR
//! flattening: linked-chain (Figure 2 literal) vs CSR build cost, and the
//! occurrence-walk cost of chasing `next` pointers vs streaming a
//! contiguous slice.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oris_dust::Masker;
use oris_index::{BankIndex, IndexConfig, LinkedBankIndex, RollingCoder, SeedCoder};

fn bench_rolling_coder(c: &mut Criterion) {
    let bank = oris_simulate::paper_bank("EST1", 0.2).bank;
    let coder = SeedCoder::new(11);
    let mut g = c.benchmark_group("rolling_coder");
    g.throughput(Throughput::Bytes(bank.data().len() as u64));
    g.bench_function("w11", |b| {
        b.iter(|| {
            RollingCoder::new(coder, bank.data())
                .map(|(_, c)| c as u64)
                .sum::<u64>()
        })
    });
    g.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    for scale in [0.1, 0.3] {
        let bank = oris_simulate::paper_bank("EST3", scale).bank;
        g.throughput(Throughput::Bytes(bank.data().len() as u64));
        g.bench_with_input(
            BenchmarkId::new("full_w11", format!("{}kb", bank.num_residues() / 1000)),
            &bank,
            |b, bank| b.iter(|| BankIndex::build(bank, IndexConfig::full(11))),
        );
        g.bench_with_input(
            BenchmarkId::new(
                "asymmetric_w10",
                format!("{}kb", bank.num_residues() / 1000),
            ),
            &bank,
            |b, bank| b.iter(|| BankIndex::build(bank, IndexConfig::asymmetric(10))),
        );
    }
    g.finish();
}

/// Linked (Figure-2 literal) vs CSR: build cost at the same bank/word.
fn bench_layout_build(c: &mut Criterion) {
    let bank = oris_simulate::paper_bank("EST1", 0.2).bank;
    let mut g = c.benchmark_group("layout_build");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bank.data().len() as u64));
    g.bench_function("linked_w11", |b| {
        b.iter(|| LinkedBankIndex::build(&bank, IndexConfig::full(11)))
    });
    g.bench_function("csr_w11", |b| {
        b.iter(|| BankIndex::build(&bank, IndexConfig::full(11)))
    });
    g.finish();
}

/// Linked vs CSR: walking every occurrence list — the step-2 access
/// pattern. The linked walk does one dependent load per occurrence into a
/// 4·N-byte array; the CSR walk streams contiguous slices.
fn bench_layout_walk(c: &mut Criterion) {
    let bank = oris_simulate::paper_bank("EST1", 0.2).bank;
    let w = 11usize;
    let linked = LinkedBankIndex::build(&bank, IndexConfig::full(w));
    let csr = BankIndex::build(&bank, IndexConfig::full(w));
    let num_codes = csr.coder().num_seeds() as u32;
    let total = csr.indexed_positions() as u64;

    let mut g = c.benchmark_group("layout_walk");
    g.sample_size(10);
    g.throughput(Throughput::Elements(total));
    g.bench_function("linked_chains", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for code in 0..num_codes {
                for pos in linked.occurrences(code) {
                    acc = acc.wrapping_add(pos as u64);
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("csr_slices", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for code in 0..num_codes {
                for &pos in csr.occurrences(code) {
                    acc = acc.wrapping_add(pos as u64);
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_index_build_masked(c: &mut Criterion) {
    let bank = oris_simulate::paper_bank("EST1", 0.2).bank;
    let mask = oris_dust::EntropyMasker::default()
        .mask_bank(&bank)
        .dilated_left(11);
    let mut g = c.benchmark_group("index_build_masked");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bank.data().len() as u64));
    g.bench_function("entropy_masked_w11", |b| {
        b.iter(|| BankIndex::build_filtered(&bank, IndexConfig::full(11), |p| mask.contains(p)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rolling_coder,
    bench_index_build,
    bench_layout_build,
    bench_layout_walk,
    bench_index_build_masked
);
criterion_main!(benches);
