//! Criterion benchmarks for the order-guard representations — the
//! guard-specialization comparison behind `BENCH_index.json`'s
//! `step2_guard_skewed` section.
//!
//! Three ways to answer "would the enumeration visit this candidate
//! seed?" during step-2 extension, measured on the skewed dispersed-repeat
//! benchmark at a single thread:
//!
//! * `probe_baseline` — [`OrderGuard::OrderedIndexedProbe`], the seed
//!   behaviour: two random-access bit-set probes per candidate;
//! * `rolled_indexed` — [`OrderGuard::OrderedIndexed`], word cursors that
//!   advance with the walk (one shift per step, bank-1 state hoisted out
//!   of the X2 loop);
//! * `full_fast_path` — what `find_hsps` auto-selects on fully indexed
//!   banks ([`OrderGuard::OrderedFull`]): no bit-set access at all.
//!
//! Two regimes: fully indexed banks (where the fast path is legal) and
//! ~50 %-masked banks (where only the indexed guards are correct).
//! All variants produce identical HSPs — asserted here so the comparison
//! can never drift apart silently.

use criterion::{criterion_group, criterion_main, Criterion};
use oris_align::OrderGuard;
use oris_core::step2::{find_hsps, find_hsps_with_guard, select_guard};
use oris_core::OrisConfig;
use oris_index::{BankIndex, IndexConfig};

fn skewed_banks() -> (oris_seqio::Bank, oris_seqio::Bank) {
    oris_bench::skewed_pair(20, 10_000, 250)
}

fn serial_pool() -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
}

fn bench_guard_fully_indexed(c: &mut Criterion) {
    let (b1, b2) = skewed_banks();
    let cfg = OrisConfig::default();
    let i1 = BankIndex::build(&b1, IndexConfig::full(cfg.w));
    let i2 = BankIndex::build(&b2, IndexConfig::full(cfg.w));
    assert!(
        matches!(select_guard(&i1, &i2), OrderGuard::OrderedFull),
        "fully indexed banks must auto-select the fast path"
    );
    let probe = OrderGuard::OrderedIndexedProbe {
        idx1: &i1,
        idx2: &i2,
    };
    let rolled = OrderGuard::OrderedIndexed {
        idx1: &i1,
        idx2: &i2,
    };
    // All three representations agree — the speedup is free, not lossy.
    let reference = find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, probe);
    assert_eq!(
        reference,
        find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, rolled)
    );
    assert_eq!(reference, find_hsps(&b1, &i1, &b2, &i2, &cfg));

    let pool = serial_pool();
    let mut g = c.benchmark_group("guard_step2_fully_indexed");
    g.sample_size(10);
    g.bench_function("probe_baseline", |b| {
        b.iter(|| pool.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, probe)))
    });
    g.bench_function("rolled_indexed", |b| {
        b.iter(|| pool.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, rolled)))
    });
    g.bench_function("full_fast_path", |b| {
        b.iter(|| pool.install(|| find_hsps(&b1, &i1, &b2, &i2, &cfg)))
    });
    g.finish();
}

fn bench_guard_masked(c: &mut Criterion) {
    let (b1, b2) = skewed_banks();
    let cfg = OrisConfig::default();
    let i1 = oris_bench::half_masked_index(&b1, cfg.w);
    let i2 = oris_bench::half_masked_index(&b2, cfg.w);
    assert!(
        matches!(select_guard(&i1, &i2), OrderGuard::OrderedIndexed { .. }),
        "masked banks must keep the indexed guard"
    );
    let probe = OrderGuard::OrderedIndexedProbe {
        idx1: &i1,
        idx2: &i2,
    };
    // The auto-selected rolled guard must reproduce the probe baseline.
    let reference = find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, probe);
    assert_eq!(reference, find_hsps(&b1, &i1, &b2, &i2, &cfg));

    let pool = serial_pool();
    let mut g = c.benchmark_group("guard_step2_masked_half");
    g.sample_size(10);
    g.bench_function("probe_baseline", |b| {
        b.iter(|| pool.install(|| find_hsps_with_guard(&b1, &i1, &b2, &i2, &cfg, probe)))
    });
    g.bench_function("rolled_indexed", |b| {
        b.iter(|| pool.install(|| find_hsps(&b1, &i1, &b2, &i2, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_guard_fully_indexed, bench_guard_masked);
criterion_main!(benches);
