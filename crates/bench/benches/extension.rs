//! Criterion micro-benchmarks for the extension kernels (paper §2.2/§2.3).
//!
//! Measures the two hot loops every experiment depends on: ungapped
//! X-drop extension (with and without the order guard) and gapped X-drop
//! extension with traceback, plus the exact Gotoh oracle for context.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oris_align::{
    extend_gapped_both, extend_hit, gotoh_local, GappedParams, OrderGuard, ScoringScheme,
    UngappedParams,
};
use oris_index::SeedCoder;
use oris_simulate::{mutate, MutationModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A pair of ~2 kb homologous sequences (3 % divergence), sentinel-framed.
fn homologous_pair() -> (Vec<u8>, Vec<u8>, usize) {
    let mut rng = StdRng::seed_from_u64(42);
    let base = oris_simulate::random_codes(&mut rng, 2000, 0.5);
    let variant = mutate(&mut rng, &base, &MutationModel::substitutions_only(0.03));
    let frame = |v: &[u8]| {
        let mut out = vec![oris_seqio::SENTINEL];
        out.extend_from_slice(v);
        out.push(oris_seqio::SENTINEL);
        out
    };
    // find a shared 11-mer near the middle
    let w = 11;
    let mid = base.len() / 2;
    let seed_pos = (mid..base.len() - w)
        .find(|&p| base[p..p + w] == variant[p..p + w])
        .expect("no common seed in homologous pair");
    (frame(&base), frame(&variant), seed_pos + 1)
}

fn bench_ungapped(c: &mut Criterion) {
    let (d1, d2, pos) = homologous_pair();
    let coder = SeedCoder::new(11);
    let code = coder.encode(&d1[pos..pos + 11]).unwrap();
    let params = UngappedParams::new(11);
    let mut g = c.benchmark_group("ungapped_extension");
    g.throughput(Throughput::Elements(1));
    g.bench_function("unguarded", |b| {
        b.iter(|| extend_hit(&d1, &d2, pos, pos, code, coder, &params, OrderGuard::None))
    });
    g.bench_function("order_guarded", |b| {
        b.iter(|| {
            extend_hit(
                &d1,
                &d2,
                pos,
                pos,
                code,
                coder,
                &params,
                OrderGuard::OrderedFull,
            )
        })
    });
    g.finish();
}

fn bench_gapped(c: &mut Criterion) {
    let (d1, d2, pos) = homologous_pair();
    let params = GappedParams::default();
    let mut g = c.benchmark_group("gapped_extension");
    g.throughput(Throughput::Elements(1));
    g.bench_function("xdrop25_2kb", |b| {
        b.iter(|| extend_gapped_both(&d1, &d2, pos, pos, &params))
    });
    g.finish();
}

fn bench_gotoh_oracle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a = oris_simulate::random_codes(&mut rng, 300, 0.5);
    let b2 = mutate(&mut rng, &a, &MutationModel::est_default());
    let scheme = ScoringScheme::blastn();
    let mut g = c.benchmark_group("exact_oracle");
    g.sample_size(20);
    g.bench_function("gotoh_300x300", |b| {
        b.iter(|| gotoh_local(&a, &b2, &scheme))
    });
    g.finish();
}

criterion_group!(benches, bench_ungapped, bench_gapped, bench_gotoh_oracle);
criterion_main!(benches);
