//! Criterion benchmarks for the low-complexity filters (paper §2.1/§3.4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oris_dust::{DustMasker, EntropyMasker, Masker};

fn bench_maskers(c: &mut Criterion) {
    let bank = oris_simulate::paper_bank("EST3", 0.2).bank;
    let mut g = c.benchmark_group("low_complexity_filters");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(bank.data().len() as u64));
    g.bench_function("dust_w64_t20", |b| {
        b.iter(|| DustMasker::default().mask_bank(&bank))
    });
    g.bench_function("entropy_w20", |b| {
        b.iter(|| EntropyMasker::default().mask_bank(&bank))
    });
    g.finish();
}

fn bench_dilation(c: &mut Criterion) {
    let bank = oris_simulate::paper_bank("EST3", 0.2).bank;
    let mask = DustMasker::default().mask_bank(&bank);
    let mut g = c.benchmark_group("mask_ops");
    g.bench_function("dilate_left_w11", |b| b.iter(|| mask.dilated_left(11)));
    g.finish();
}

criterion_group!(benches, bench_maskers, bench_dilation);
criterion_main!(benches);
