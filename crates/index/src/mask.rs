//! Bit-set of masked global bank positions.

/// A set of masked positions over a bank's global coordinate space.
///
/// Backed by a plain `u64` bit vector: one bit per bank position
/// (including sentinels, which are simply never queried).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskSet {
    bits: Vec<u64>,
    len: usize,
    masked: usize,
}

impl MaskSet {
    /// An all-clear mask over `len` positions.
    pub fn new(len: usize) -> MaskSet {
        MaskSet {
            bits: vec![0u64; len.div_ceil(64)],
            len,
            masked: 0,
        }
    }

    /// Rebuilds a mask from its raw bit words (the persistence path).
    ///
    /// Validates the [`MaskSet::words`] invariants: exactly
    /// `len.div_ceil(64)` words, with every bit at or beyond `len` clear.
    /// The masked count is recomputed from the words. Returns `None` on
    /// violation instead of constructing a set whose word-cursor guard
    /// walks would read garbage.
    pub(crate) fn from_raw_words(bits: Vec<u64>, len: usize) -> Option<MaskSet> {
        if bits.len() != len.div_ceil(64) {
            return None;
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = bits.last() {
                if last >> (len % 64) != 0 {
                    return None;
                }
            }
        }
        let masked = bits.iter().map(|w| w.count_ones() as usize).sum();
        Some(MaskSet { bits, len, masked })
    }

    /// Number of addressable positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no positions are addressable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of masked positions.
    pub fn masked_count(&self) -> usize {
        self.masked
    }

    /// Fraction of positions masked.
    pub fn masked_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.masked as f64 / self.len as f64
        }
    }

    /// Marks position `pos`.
    #[inline]
    pub fn set(&mut self, pos: usize) {
        debug_assert!(pos < self.len);
        let word = &mut self.bits[pos / 64];
        let bit = 1u64 << (pos % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.masked += 1;
        }
    }

    /// Marks every position in `[start, end)`.
    pub fn set_range(&mut self, start: usize, end: usize) {
        for p in start..end.min(self.len) {
            self.set(p);
        }
    }

    /// Whether `pos` is masked.
    #[inline]
    pub fn contains(&self, pos: usize) -> bool {
        if pos >= self.len {
            return false;
        }
        self.bits[pos / 64] & (1u64 << (pos % 64)) != 0
    }

    /// Union with another mask of the same length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn union(&mut self, other: &MaskSet) {
        assert_eq!(self.len, other.len, "mask length mismatch");
        let mut masked = 0usize;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
            masked += a.count_ones() as usize;
        }
        self.masked = masked;
    }

    /// Returns a mask over *word start* positions: position `p` is set
    /// when any of the `w` positions `p .. p+w` is set in `self`.
    ///
    /// This is the masking semantics BLAST applies when building its
    /// lookup table — a W-mer is discarded if it *overlaps* a masked
    /// region, not merely if it starts inside one. Computed by dilating
    /// every masked interval `w − 1` positions to the left.
    pub fn dilated_left(&self, w: usize) -> MaskSet {
        assert!(w >= 1);
        let mut out = MaskSet::new(self.len);
        for (a, b) in self.intervals() {
            out.set_range(a.saturating_sub(w - 1), b);
        }
        out
    }

    /// The backing bit words: position `p` is bit `p % 64` of word
    /// `p / 64` (set = masked). The slice covers `len().div_ceil(64)`
    /// words; bits at or beyond `len()` are always clear.
    ///
    /// This is the word-level accessor the rolled order guard builds on:
    /// an extension walk moves by one position per step, so a cursor over
    /// these words answers one membership query per step with a shift,
    /// touching a new word only every 64 steps — instead of re-deriving
    /// `word/bit` from scratch per random-access [`MaskSet::contains`]
    /// probe.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Heap bytes used by the bit vector.
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Returns the maximal masked intervals as `(start, end)` pairs.
    pub fn intervals(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for p in 0..self.len {
            if self.contains(p) {
                if start.is_none() {
                    start = Some(p);
                }
            } else if let Some(s) = start.take() {
                out.push((s, p));
            }
        }
        if let Some(s) = start {
            out.push((s, self.len));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_contains() {
        let mut m = MaskSet::new(100);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(99);
        assert!(m.contains(0) && m.contains(63) && m.contains(64) && m.contains(99));
        assert!(!m.contains(1) && !m.contains(65));
        assert_eq!(m.masked_count(), 4);
    }

    #[test]
    fn double_set_counts_once() {
        let mut m = MaskSet::new(10);
        m.set(3);
        m.set(3);
        assert_eq!(m.masked_count(), 1);
    }

    #[test]
    fn set_range_clips_to_len() {
        let mut m = MaskSet::new(10);
        m.set_range(8, 20);
        assert_eq!(m.masked_count(), 2);
        assert!(m.contains(9));
        assert!(!m.contains(10));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let m = MaskSet::new(5);
        assert!(!m.contains(5));
        assert!(!m.contains(1000));
    }

    #[test]
    fn intervals_reconstruct_runs() {
        let mut m = MaskSet::new(20);
        m.set_range(2, 5);
        m.set_range(5, 8); // adjacent → merged implicitly
        m.set_range(15, 20);
        assert_eq!(m.intervals(), vec![(2, 8), (15, 20)]);
    }

    #[test]
    fn union_combines() {
        let mut a = MaskSet::new(10);
        a.set_range(0, 3);
        let mut b = MaskSet::new(10);
        b.set_range(2, 6);
        a.union(&b);
        assert_eq!(a.intervals(), vec![(0, 6)]);
        assert_eq!(a.masked_count(), 6);
    }

    #[test]
    fn dilated_left_covers_overlapping_words() {
        let mut m = MaskSet::new(30);
        m.set_range(10, 15);
        let d = m.dilated_left(4);
        assert_eq!(d.intervals(), vec![(7, 15)]);
        // word starting at 7 covers 7..11, overlapping the mask at 10
        assert!(d.contains(7));
        assert!(!d.contains(6));
    }

    #[test]
    fn dilated_left_clips_at_zero() {
        let mut m = MaskSet::new(10);
        m.set_range(1, 3);
        let d = m.dilated_left(5);
        assert_eq!(d.intervals(), vec![(0, 3)]);
    }

    #[test]
    fn dilation_by_one_is_identity() {
        let mut m = MaskSet::new(20);
        m.set_range(3, 7);
        m.set(12);
        assert_eq!(m.dilated_left(1), m);
    }

    #[test]
    fn words_agree_with_contains() {
        let mut m = MaskSet::new(200);
        for p in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            m.set(p);
        }
        let words = m.words();
        assert_eq!(words.len(), 200usize.div_ceil(64));
        for p in 0..200 {
            let bit = words[p / 64] & (1u64 << (p % 64)) != 0;
            assert_eq!(bit, m.contains(p), "position {p}");
        }
        // bits beyond len are clear
        for w in &words[199 / 64 + 1..] {
            assert_eq!(*w, 0);
        }
    }

    #[test]
    fn fraction() {
        let mut m = MaskSet::new(10);
        m.set_range(0, 5);
        assert!((m.masked_fraction() - 0.5).abs() < 1e-12);
    }
}
