//! Backing storage for the CSR index arrays: owned heap vectors, or
//! zero-copy views into a memory-mapped index file.
//!
//! The sharded-database workload attaches many volumes per process; the
//! postings and offsets sections dominate an index's footprint (≈ `4·4^W`
//! and `4·indexed_positions` bytes), so copying them into heap arrays on
//! every attach multiplies resident memory by the volume count. A
//! [`Section`] lets [`crate::BankIndex`] hold either representation
//! behind one `&[T]` view: the owned form for fresh builds and the
//! heap-copy loader, the mapped form for `mmap`-backed attaches, where
//! the bytes stay in the (shared, evictable) page cache and the heap
//! holds only the `Arc` and a fat pointer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::mmap::Mapping;

/// One index array section: an owned `Vec<T>` or a typed view into a
/// shared read-only [`Mapping`].
pub(crate) enum Section<T: 'static> {
    Owned(Vec<T>),
    /// A view into `map`. The pointer/length pair is derived from the
    /// mapping's bytes (alignment and bounds validated by the loader);
    /// holding the `Arc` keeps the mapping alive for as long as any
    /// section references it.
    Mapped {
        map: Arc<Mapping>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: the mapped form is a read-only view into a private, read-only
// file mapping that lives as long as the `Arc<Mapping>`; no `&mut`
// access to the underlying bytes exists anywhere, so sharing across
// threads is sound (same reasoning as `Arc<Vec<T>>`).
unsafe impl<T: Send + Sync> Send for Section<T> {}
// SAFETY: same rationale as `Send` above — the view is immutable for its
// whole lifetime, so `&Section<T>` can cross threads freely.
unsafe impl<T: Send + Sync> Sync for Section<T> {}

impl<T> Section<T> {
    /// A zero-copy section over `map[byte_off .. byte_off + len*size_of::<T>()]`.
    ///
    /// Returns `None` when the range is out of bounds or misaligned for
    /// `T` — the caller falls back to a heap copy instead of faulting.
    pub(crate) fn mapped(map: &Arc<Mapping>, byte_off: usize, len: usize) -> Option<Section<T>> {
        let bytes = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_off.checked_add(bytes)?;
        if end > map.len() {
            return None;
        }
        let ptr = map[byte_off..].as_ptr();
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        Some(Section::Mapped {
            map: Arc::clone(map),
            ptr: ptr.cast(),
            len,
        })
    }

    /// Heap bytes this section owns: the vector's payload for the owned
    /// form, zero for a mapped view (the bytes belong to the page cache,
    /// not this process's heap).
    pub(crate) fn heap_bytes(&self) -> usize {
        match self {
            Section::Owned(v) => v.len() * std::mem::size_of::<T>(),
            Section::Mapped { .. } => 0,
        }
    }

    /// Whether this section is a view into a mapped file.
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, Section::Mapped { .. })
    }
}

impl<T> Deref for Section<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Section::Owned(v) => v,
            // SAFETY: constructed only by `Section::mapped`, which bounds-
            // and alignment-checked the range against the mapping the
            // section still holds alive.
            Section::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T> From<Vec<T>> for Section<T> {
    fn from(v: Vec<T>) -> Section<T> {
        Section::Owned(v)
    }
}

impl<T: Clone> Clone for Section<T> {
    fn clone(&self) -> Section<T> {
        match self {
            Section::Owned(v) => Section::Owned(v.clone()),
            Section::Mapped { map, ptr, len } => Section::Mapped {
                map: Arc::clone(map),
                ptr: *ptr,
                len: *len,
            },
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Section<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_mapped() { "Mapped" } else { "Owned" };
        write!(f, "Section::{tag}({} items)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_section_derefs_and_counts_heap() {
        let s: Section<u32> = vec![1u32, 2, 3].into();
        assert_eq!(&*s, &[1, 2, 3]);
        assert!(s.heap_bytes() >= 12);
        assert!(!s.is_mapped());
    }
}
