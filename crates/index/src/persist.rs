//! Versioned on-disk format for the CSR bank index.
//!
//! The paper's premise is *intensive* comparison: one bank is indexed once
//! and amortized over a large stream of comparisons. This module makes the
//! amortization cross *processes*, not just calls — `mkindex` writes the
//! index of a subject bank to a file, `scoris-n --index` (or any embedder
//! via [`read_index_file`]) loads it back in one sequential read and skips
//! step 1 entirely. A loaded index is behaviourally identical to a fresh
//! build: same `occurrences()` slices, same `stats()`, and the same
//! [`BankIndex::is_fully_indexed`] provenance, so step 2's guard
//! auto-selection makes the same choice it would have made in memory.
//!
//! ## Format (version 2, all integers little-endian)
//!
//! ```text
//! magic             8 B   "ORISIDX\0"
//! version           u32   2
//! w                 u32   seed length
//! stride            u32   sampling stride (1 = full, 2 = asymmetric)
//! flags             u32   bit 0 = fully_indexed; bit 1 = sparse backend;
//!                         other bits reserved (must be 0)
//! bank_len          u64   global coordinate space of the bank
//! masked_fraction   f64   fraction of bank positions the filter masked
//! filter_code       u32   caller-defined filter tag (see [`IndexMeta`])
//! bank_hash         u64   FNV-1a of the bank data (0 = not recorded)
//! num_offsets       u64   dense: must equal 4^w + 1;
//!                         sparse: k = number of populated codes
//! num_positions     u64   number of postings
//! num_bitset_words  u64   must equal bank_len.div_ceil(64)
//! -- then, dense (flags bit 1 clear):
//!    offsets        num_offsets × u32
//!    positions      num_positions × u32
//! -- or, sparse (flags bit 1 set):
//!    codes          k × u32          ascending populated codes
//!    row_offsets    (k + 1) × u32    row boundaries over positions
//!    slots          S × u32          open-addressed code→row table,
//!                                    S = sparse_slot_count(k) (derived, not stored)
//!    positions      num_positions × u32
//! -- finally, either way:
//!    bitset         num_bitset_words × u64
//!    checksum       u64   FNV-1a of every preceding byte of the stream
//! ```
//!
//! Every array section is preceded by zero padding to the next 8-byte
//! file offset.
//!
//! Version 2 differs from version 1 only in the zero padding that starts
//! every array section on an 8-byte file offset. That alignment is what
//! lets the sharded-database attach path (`oris_index::mmap`) reference
//! the offsets and postings sections **zero-copy from the mapped file**
//! — a `&[u32]` view requires its byte offset to be aligned, and an
//! unaligned section would force the copy the mapping exists to avoid.
//! Version-1 files are refused with a typed error (rebuild with
//! `mkindex`); the format carries no compatibility shims.
//!
//! The sparse backend (flags bit 1) reuses version 2: a dense index file
//! is **bit-for-bit identical** to what this module wrote before the
//! sparse backend existed, and older readers reject a sparse file with
//! their reserved-flag-bits check rather than misparsing it. The sparse
//! slot table is stored (so attach needs no rebuild pass over the code
//! list) but *validated* by exact reconstruction from the codes section
//! on every load — a corrupt or crafted table can therefore never cause
//! an unterminated probe chain or out-of-range row id, in either attach
//! mode.
//!
//! `masked_fraction` and `filter_code` describe how the index was
//! *prepared* (the mask itself is not persisted — steps 2–4 never consult
//! it), so a loader can refuse an index built under a different filter and
//! still report faithful masking statistics. `bank_hash` identifies the
//! *sequence data* the index was built over — `oris-core` refuses to
//! attach a loaded index to a bank whose content hash differs, catching
//! the stale-index trap (bank edited after `mkindex`, same length).
//!
//! ## Robustness
//!
//! [`read_index`] must never panic on hostile input: every header field is
//! validated before it sizes an allocation, sections are read through
//! bounded `take` readers (a truncated file errors out instead of
//! over-allocating), and the reassembled arrays go through the same
//! structural validation (`offsets` monotonicity, row ordering, bit-set
//! agreement) that protects step 2 from a corrupt index. The trailing
//! whole-stream checksum catches the corruptions structural validation
//! cannot — a flipped provenance flag, a perturbed position that still
//! happens to satisfy every invariant — so no random corruption can
//! silently change step 2's behaviour. Wrong magic, unknown version,
//! reserved flags, truncation, checksum mismatch and trailing bytes are
//! all distinct, typed errors. (A deliberately *crafted* file with a
//! recomputed checksum is outside this threat model; the one crafted lie
//! that could change output — a false `fully_indexed` claim — is
//! re-verified against the bank when the index is attached, see
//! `oris_core::PreparedBank::from_index`.)
//!
//! The mmap attach path ([`crate::mmap::map_index_file`]) runs the same
//! checksum and structural validation over the mapped bytes, so both
//! loaders reject exactly the same files (equivalence-tested).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::mask::MaskSet;
use crate::mmap::Mapping;
use crate::section::Section;
use crate::seedcode::MAX_SEED_LEN;
use crate::structure::{sparse_slot_count, BankIndex, RowIndex};

/// File magic, first 8 bytes of every index file.
pub const MAGIC: [u8; 8] = *b"ORISIDX\0";

/// Current format version (2: version 1 plus 8-byte section alignment,
/// see the module docs).
pub const FORMAT_VERSION: u32 = 2;

/// Bytes of the fixed header (everything before the first padding run).
const HEADER_BYTES: u64 = 76;

/// Header flag bit 0: the index is fully indexed (exclusion provenance).
const FLAG_FULLY_INDEXED: u32 = 1;

/// Header flag bit 1: the row lookup is the sparse populated-codes
/// backend (codes/row_offsets/slots sections instead of a dense offsets
/// array). Readers predating the sparse backend reject this bit as
/// reserved instead of misparsing the sections.
const FLAG_SPARSE: u32 = 2;

/// File-offset alignment of every array section.
const SECTION_ALIGN: u64 = 8;

/// Preparation provenance stored alongside the index arrays.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IndexMeta {
    /// Fraction of bank positions the low-complexity filter masked when
    /// the index was built (0.0 when unfiltered).
    pub masked_fraction: f64,
    /// Caller-defined tag for the filter that produced the mask. The
    /// format does not interpret it; `oris-core` stores its `FilterKind`
    /// here so a loader can refuse an index prepared under a different
    /// filter than the run requests.
    pub filter_code: u32,
    /// [`fnv1a`] hash of the bank data the index was built over, or 0
    /// when not recorded. A loader that holds the bank should refuse the
    /// index when the hashes differ — same length is not same content.
    pub bank_hash: u64,
}

/// FNV-1a 64-bit hash — the content fingerprint used for
/// [`IndexMeta::bank_hash`] and the file checksum. Not cryptographic;
/// it detects accidents, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(FNV_OFFSET_BASIS, bytes)
}

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a folding step over a byte run — the single definition the
/// plain hash and both streaming wrappers share.
fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Forwards writes while folding every byte into an FNV-1a state and
/// counting bytes, so the trailing checksum covers the exact stream
/// written and padding can be sized from the running file offset.
struct HashingWriter<'w, W: Write> {
    inner: &'w mut W,
    hash: u64,
    written: u64,
}

impl<W: Write> Write for HashingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv1a_fold(self.hash, &buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Forwards reads while folding every byte into an FNV-1a state and
/// counting bytes, so the checksum can be verified (and padding located)
/// without buffering the whole file.
struct HashingReader<'r, R: Read> {
    inner: &'r mut R,
    hash: u64,
    consumed: u64,
}

impl<R: Read> Read for HashingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash = fnv1a_fold(self.hash, &buf[..n]);
        self.consumed += n as u64;
        Ok(n)
    }
}

/// Why an index file could not be loaded.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u32),
    /// The file is structurally invalid (truncated, inconsistent counts,
    /// or arrays violating an index invariant).
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not an ORIS index file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported index format version {v} (expected {FORMAT_VERSION})"
                )
            }
            PersistError::Corrupt(msg) => write!(f, "corrupt index file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // Preserve the I/O cause so callers (the database layer's retry
        // policy, `verifydb`) can distinguish a device error from
        // structural corruption without parsing display text.
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::BadMagic
            | PersistError::UnsupportedVersion(_)
            | PersistError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        // A short read mid-structure means the file is cut off, not that
        // the device failed — classify it as corruption.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PersistError::Corrupt("truncated file".into())
        } else {
            PersistError::Io(e)
        }
    }
}

/// Zero bytes needed to advance file offset `at` to [`SECTION_ALIGN`].
fn padding_for(at: u64) -> u64 {
    (SECTION_ALIGN - at % SECTION_ALIGN) % SECTION_ALIGN
}

/// Serializes `idx` (with its preparation provenance) to `out`, ending
/// with the whole-stream checksum. Every array section starts on an
/// 8-byte file offset (zero padded) so a mapped file can hand out
/// aligned slices.
pub fn write_index(out: &mut impl Write, idx: &BankIndex, meta: &IndexMeta) -> io::Result<()> {
    let mut out = HashingWriter {
        inner: out,
        hash: FNV_OFFSET_BASIS,
        written: 0,
    };
    out.write_all(&MAGIC)?;
    out.write_all(&FORMAT_VERSION.to_le_bytes())?;
    out.write_all(
        &u32::try_from(idx.w())
            .expect("seed width fits u32")
            .to_le_bytes(),
    )?;
    out.write_all(
        &u32::try_from(idx.stride())
            .expect("stride fits u32")
            .to_le_bytes(),
    )?;
    let rows = idx.rows();
    let flags = u32::from(idx.is_fully_indexed())
        | match rows {
            RowIndex::Dense { .. } => 0,
            RowIndex::Sparse { .. } => FLAG_SPARSE,
        };
    out.write_all(&flags.to_le_bytes())?;
    out.write_all(&(idx.bank_len() as u64).to_le_bytes())?;
    out.write_all(&meta.masked_fraction.to_le_bytes())?;
    out.write_all(&meta.filter_code.to_le_bytes())?;
    out.write_all(&meta.bank_hash.to_le_bytes())?;
    // `num_offsets` counts the first u32 section: the dense offsets array
    // (4^w + 1 slots) or the sparse populated-codes list (k entries).
    let first_section = match rows {
        RowIndex::Dense { offsets } => offsets.len(),
        RowIndex::Sparse { codes, .. } => codes.len(),
    };
    out.write_all(&(first_section as u64).to_le_bytes())?;
    out.write_all(&(idx.positions().len() as u64).to_le_bytes())?;
    let words = idx.indexed_words();
    out.write_all(&(words.len() as u64).to_le_bytes())?;
    debug_assert_eq!(out.written, HEADER_BYTES);
    match rows {
        RowIndex::Dense { offsets } => {
            write_padding(&mut out)?;
            write_u32_section(&mut out, offsets)?;
        }
        RowIndex::Sparse {
            codes,
            row_offsets,
            slots,
        } => {
            write_padding(&mut out)?;
            write_u32_section(&mut out, codes)?;
            write_padding(&mut out)?;
            write_u32_section(&mut out, row_offsets)?;
            write_padding(&mut out)?;
            write_u32_section(&mut out, slots)?;
        }
    }
    write_padding(&mut out)?;
    write_u32_section(&mut out, idx.positions())?;
    write_padding(&mut out)?;
    write_u64_section(&mut out, words)?;
    // The checksum itself is written to the inner stream, outside its own
    // coverage.
    let checksum = out.hash;
    out.inner.write_all(&checksum.to_le_bytes())
}

fn write_padding<W: Write>(out: &mut HashingWriter<'_, W>) -> io::Result<()> {
    let pad = padding_for(out.written) as usize;
    out.write_all(&[0u8; SECTION_ALIGN as usize][..pad])
}

/// Scalars encoded per chunk of section output — one `write_all` per
/// ~64 KiB instead of one per scalar (the offsets section alone is
/// `4^W + 1` entries).
const SECTION_CHUNK: usize = 16 * 1024;

fn write_u32_section(out: &mut impl Write, values: &[u32]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(SECTION_CHUNK.min(values.len()) * 4);
    for chunk in values.chunks(SECTION_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        out.write_all(&buf)?;
    }
    Ok(())
}

fn write_u64_section(out: &mut impl Write, values: &[u64]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(SECTION_CHUNK.min(values.len()) * 8);
    for chunk in values.chunks(SECTION_CHUNK) {
        buf.clear();
        for &v in chunk {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        out.write_all(&buf)?;
    }
    Ok(())
}

fn read_array<const B: usize>(r: &mut impl Read) -> Result<[u8; B], PersistError> {
    let mut buf = [0u8; B];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u32(r: &mut impl Read) -> Result<u32, PersistError> {
    Ok(u32::from_le_bytes(read_array::<4>(r)?))
}

fn read_u64(r: &mut impl Read) -> Result<u64, PersistError> {
    Ok(u64::from_le_bytes(read_array::<8>(r)?))
}

fn read_f64(r: &mut impl Read) -> Result<f64, PersistError> {
    Ok(f64::from_le_bytes(read_array::<8>(r)?))
}

/// Reads exactly `count` little-endian scalars of `S` bytes through a
/// bounded reader: allocation grows with the bytes actually present, so a
/// header lying about a section size cannot force a huge up-front
/// allocation — a short section is reported as truncation.
fn read_section<const S: usize, T>(
    r: &mut impl Read,
    count: usize,
    decode: impl Fn([u8; S]) -> T,
) -> Result<Vec<T>, PersistError> {
    let bytes = (count as u64) * (S as u64);
    let mut raw = Vec::new();
    r.take(bytes)
        .read_to_end(&mut raw)
        .map_err(PersistError::from)?;
    if (raw.len() as u64) < bytes {
        return Err(PersistError::Corrupt("truncated file".into()));
    }
    Ok(raw
        .chunks_exact(S)
        .map(|c| decode(c.try_into().expect("chunk size")))
        .collect())
}

/// The validated fixed header of an index file — the part both loaders
/// (streamed heap copy and mmap) parse identically before touching the
/// array sections.
struct Header {
    w: usize,
    stride: usize,
    fully_indexed: bool,
    sparse: bool,
    bank_len: usize,
    meta: IndexMeta,
    num_offsets: u64,
    num_positions: u64,
    num_words: u64,
}

impl Header {
    /// Element counts of the consecutive u32 sections, in file order:
    /// dense `[offsets, positions]`, sparse
    /// `[codes, row_offsets, slots, positions]` (the slot count is
    /// derived from `k`, never trusted from the file).
    fn u32_counts(&self) -> Vec<u64> {
        if self.sparse {
            let k = self.num_offsets;
            vec![
                k,
                k + 1,
                sparse_slot_count(k as usize) as u64,
                self.num_positions,
            ]
        } else {
            vec![self.num_offsets, self.num_positions]
        }
    }

    /// `(file offset, element count)` of every u32 section, each aligned
    /// to [`SECTION_ALIGN`] with zero padding before it.
    fn u32_sections(&self) -> Vec<(u64, u64)> {
        let mut at = HEADER_BYTES;
        let mut out = Vec::new();
        for count in self.u32_counts() {
            at += padding_for(at);
            out.push((at, count));
            at += 4 * count;
        }
        out
    }

    /// File offset of the bit-set section.
    fn bitset_at(&self) -> u64 {
        let (at, count) = *self.u32_sections().last().expect("at least one section");
        let end = at + 4 * count;
        end + padding_for(end)
    }

    /// Total file size including the trailing checksum.
    fn file_size(&self) -> u64 {
        self.bitset_at() + 8 * self.num_words + 8
    }
}

/// Parses and validates the fixed header: magic, version, and every
/// field-level invariant (sections are not touched here).
fn read_header(r: &mut impl Read) -> Result<Header, PersistError> {
    let magic = read_array::<8>(r)?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = read_u32(r)?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let w = read_u32(r)? as usize;
    if !(1..=MAX_SEED_LEN).contains(&w) {
        return Err(PersistError::Corrupt(format!(
            "seed length {w} outside 1..={MAX_SEED_LEN}"
        )));
    }
    let stride = read_u32(r)? as usize;
    if stride == 0 {
        return Err(PersistError::Corrupt("stride must be at least 1".into()));
    }
    let flags = read_u32(r)?;
    if flags & !(FLAG_FULLY_INDEXED | FLAG_SPARSE) != 0 {
        return Err(PersistError::Corrupt(format!(
            "reserved flag bits set ({flags:#x})"
        )));
    }
    let fully_indexed = flags & FLAG_FULLY_INDEXED != 0;
    let sparse = flags & FLAG_SPARSE != 0;
    let bank_len = read_u64(r)?;
    if bank_len >= u32::MAX as u64 {
        return Err(PersistError::Corrupt(format!(
            "bank length {bank_len} exceeds u32 position space"
        )));
    }
    let bank_len = bank_len as usize;
    let masked_fraction = read_f64(r)?;
    if !(0.0..=1.0).contains(&masked_fraction) {
        return Err(PersistError::Corrupt(format!(
            "masked fraction {masked_fraction} outside [0, 1]"
        )));
    }
    let filter_code = read_u32(r)?;
    let bank_hash = read_u64(r)?;

    let num_offsets = read_u64(r)?;
    let num_positions = read_u64(r)?;
    if num_positions > bank_len as u64 {
        return Err(PersistError::Corrupt(format!(
            "{num_positions} postings for a bank of {bank_len} positions"
        )));
    }
    if sparse {
        // `num_offsets` is k, the populated-code count: every listed code
        // owns at least one posting, and codes are distinct. Both bounds
        // are header-level so a lying count can never size a huge
        // allocation (k ≤ postings ≤ bank_len < u32::MAX).
        if num_offsets > num_positions {
            return Err(PersistError::Corrupt(format!(
                "{num_offsets} populated codes for {num_positions} postings"
            )));
        }
        if num_offsets > 1u64 << (2 * w) {
            return Err(PersistError::Corrupt(format!(
                "{num_offsets} populated codes exceed the 4^{w} code space"
            )));
        }
    } else {
        let expected_offsets = (1u64 << (2 * w)) + 1;
        if num_offsets != expected_offsets {
            return Err(PersistError::Corrupt(format!(
                "offsets section has {num_offsets} slots, expected 4^{w} + 1 = {expected_offsets}"
            )));
        }
    }
    let num_words = read_u64(r)?;
    if num_words != bank_len.div_ceil(64) as u64 {
        return Err(PersistError::Corrupt(format!(
            "bit-set section has {num_words} words, expected {}",
            bank_len.div_ceil(64)
        )));
    }
    Ok(Header {
        w,
        stride,
        fully_indexed,
        sparse,
        bank_len,
        meta: IndexMeta {
            masked_fraction,
            filter_code,
            bank_hash,
        },
        num_offsets,
        num_positions,
        num_words,
    })
}

/// Consumes (and requires zero) the padding run before the next section.
fn read_padding<R: Read>(r: &mut HashingReader<'_, R>) -> Result<(), PersistError> {
    let pad = padding_for(r.consumed) as usize;
    let mut buf = [0u8; SECTION_ALIGN as usize];
    r.read_exact(&mut buf[..pad])?;
    if buf[..pad].iter().any(|&b| b != 0) {
        return Err(PersistError::Corrupt("non-zero section padding".into()));
    }
    Ok(())
}

/// Deserializes an index written by [`write_index`], validating every
/// structural invariant and the trailing checksum. Never panics on
/// malformed input.
pub fn read_index(r: &mut impl Read) -> Result<(BankIndex, IndexMeta), PersistError> {
    let mut hashing = HashingReader {
        inner: r,
        hash: FNV_OFFSET_BASIS,
        consumed: 0,
    };
    let r = &mut hashing;
    let h = read_header(r)?;

    let (rows, positions) = if h.sparse {
        let k = h.num_offsets as usize;
        read_padding(r)?;
        let codes = read_section::<4, u32>(r, k, u32::from_le_bytes)?;
        read_padding(r)?;
        let row_offsets = read_section::<4, u32>(r, k + 1, u32::from_le_bytes)?;
        read_padding(r)?;
        let slots = read_section::<4, u32>(r, sparse_slot_count(k), u32::from_le_bytes)?;
        read_padding(r)?;
        let positions = read_section::<4, u32>(r, h.num_positions as usize, u32::from_le_bytes)?;
        (
            RowIndex::Sparse {
                codes: codes.into(),
                row_offsets: row_offsets.into(),
                slots: slots.into(),
            },
            positions,
        )
    } else {
        read_padding(r)?;
        let offsets = read_section::<4, u32>(r, h.num_offsets as usize, u32::from_le_bytes)?;
        read_padding(r)?;
        let positions = read_section::<4, u32>(r, h.num_positions as usize, u32::from_le_bytes)?;
        (
            RowIndex::Dense {
                offsets: offsets.into(),
            },
            positions,
        )
    };
    read_padding(r)?;
    let words = read_section::<8, u64>(r, h.num_words as usize, u64::from_le_bytes)?;
    let indexed = MaskSet::from_raw_words(words, h.bank_len)
        .ok_or_else(|| PersistError::Corrupt("bit-set has bits beyond the bank length".into()))?;

    // Verify the whole-stream checksum before trusting the arrays: a
    // flipped bit that survived every structural check (a provenance
    // flag, a position that is still sorted and in-bank) is caught here.
    let running = hashing.hash;
    let stored = u64::from_le_bytes(read_array::<8>(hashing.inner)?);
    if stored != running {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {running:#018x})"
        )));
    }

    let index = BankIndex::from_raw_parts(
        h.w,
        h.stride,
        rows,
        positions.into(),
        indexed,
        h.fully_indexed,
        h.bank_len,
    )
    .map_err(PersistError::Corrupt)?;
    Ok((index, h.meta))
}

/// Builds an index from a whole-file [`Mapping`], referencing the offsets
/// and postings sections zero-copy (the bit-set, an order of magnitude
/// smaller, is copied to the heap). Runs the same checksum and
/// structural validation as [`read_index`], so both loaders accept and
/// reject exactly the same files. On a big-endian target, or when a
/// section is misaligned inside the mapping, the affected sections are
/// decoded into heap arrays instead — the result is always behaviourally
/// identical.
pub(crate) fn index_from_mapping(
    map: &Arc<Mapping>,
) -> Result<(BankIndex, IndexMeta), PersistError> {
    let bytes: &[u8] = map;
    let h = read_header(&mut { bytes })?;
    let size = h.file_size();
    if (bytes.len() as u64) < size {
        return Err(PersistError::Corrupt("truncated file".into()));
    }
    if bytes.len() as u64 > size {
        return Err(PersistError::Corrupt(
            "trailing bytes after the index".into(),
        ));
    }
    // Whole-stream checksum over everything but the trailing 8 bytes —
    // identical coverage to the streaming reader (padding included).
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    // Padding runs must be zero — identical to the streaming reader's
    // `read_padding` checks. Walk every gap between consecutive sections
    // (and before the bit-set).
    let sections = h.u32_sections();
    let mut prev_end = HEADER_BYTES;
    for &(at, count) in &sections {
        if bytes[prev_end as usize..at as usize]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(PersistError::Corrupt("non-zero section padding".into()));
        }
        prev_end = at + 4 * count;
    }
    if bytes[prev_end as usize..h.bitset_at() as usize]
        .iter()
        .any(|&b| b != 0)
    {
        return Err(PersistError::Corrupt("non-zero section padding".into()));
    }

    let mapped = |i: usize| {
        let (at, count) = sections[i];
        mapped_u32_section(map, at as usize, count as usize)
    };
    let (rows, positions) = if h.sparse {
        (
            RowIndex::Sparse {
                codes: mapped(0),
                row_offsets: mapped(1),
                slots: mapped(2),
            },
            mapped(3),
        )
    } else {
        (RowIndex::Dense { offsets: mapped(0) }, mapped(1))
    };
    let word_bytes = &bytes[h.bitset_at() as usize..(h.bitset_at() + 8 * h.num_words) as usize];
    let words: Vec<u64> = word_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let indexed = MaskSet::from_raw_words(words, h.bank_len)
        .ok_or_else(|| PersistError::Corrupt("bit-set has bits beyond the bank length".into()))?;

    let index = BankIndex::from_raw_parts(
        h.w,
        h.stride,
        rows,
        positions,
        indexed,
        h.fully_indexed,
        h.bank_len,
    )
    .map_err(PersistError::Corrupt)?;
    Ok((index, h.meta))
}

/// A zero-copy `u32` section over the mapping when the byte order and
/// alignment allow it, a decoded heap copy otherwise.
fn mapped_u32_section(map: &Arc<Mapping>, byte_off: usize, len: usize) -> Section<u32> {
    if cfg!(target_endian = "little") {
        if let Some(s) = Section::mapped(map, byte_off, len) {
            return s;
        }
    }
    let bytes = &map[byte_off..byte_off + 4 * len];
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect::<Vec<u32>>()
        .into()
}

/// Writes `idx` to a new file at `path` (buffered).
pub fn write_index_file(
    path: impl AsRef<Path>,
    idx: &BankIndex,
    meta: &IndexMeta,
) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    write_index(&mut out, idx, meta)?;
    out.flush()
}

/// Loads an index file written by [`write_index_file`] into fresh heap
/// arrays. Trailing bytes after the last section are rejected — an index
/// file contains exactly one index. (For the zero-copy alternative see
/// [`crate::mmap::map_index_file`].)
pub fn read_index_file(path: impl AsRef<Path>) -> Result<(BankIndex, IndexMeta), PersistError> {
    let mut r = BufReader::new(File::open(path).map_err(PersistError::Io)?);
    let result = read_index(&mut r)?;
    let mut probe = [0u8; 1];
    match r.read(&mut probe) {
        Ok(0) => Ok(result),
        Ok(_) => Err(PersistError::Corrupt(
            "trailing bytes after the index".into(),
        )),
        Err(e) => Err(PersistError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{BuildStrategy, IndexBackend, IndexConfig};
    use oris_seqio::{Bank, BankBuilder};
    use proptest::prelude::*;

    fn bank_of(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    fn to_bytes(idx: &BankIndex, meta: &IndexMeta) -> Vec<u8> {
        let mut buf = Vec::new();
        write_index(&mut buf, idx, meta).unwrap();
        buf
    }

    /// Recomputes the trailing whole-stream checksum after a deliberate
    /// corruption, so tests can reach the validation layers behind it.
    fn restamp_checksum(bytes: &mut [u8]) {
        let body = bytes.len() - 8;
        let h = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&h.to_le_bytes());
    }

    fn assert_same_index(a: &BankIndex, b: &BankIndex) {
        assert_eq!(a.w(), b.w());
        assert_eq!(a.stride(), b.stride());
        assert_eq!(a.backend(), b.backend());
        assert_eq!(a.dense_offsets(), b.dense_offsets());
        assert_eq!(a.positions(), b.positions());
        assert_eq!(a.indexed_words(), b.indexed_words());
        assert_eq!(a.is_fully_indexed(), b.is_fully_indexed());
        assert_eq!(a.bank_len(), b.bank_len());
        assert_eq!(a.stats(), b.stats());
        for code in 0..a.coder().num_seeds() as u32 {
            assert_eq!(a.occurrences(code), b.occurrences(code));
        }
    }

    #[test]
    fn roundtrip_full_build() {
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGTNACGT", "TTGGCCAA"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let meta = IndexMeta {
            masked_fraction: 0.0,
            filter_code: 1,
            bank_hash: fnv1a(bank.data()),
        };
        let bytes = to_bytes(&idx, &meta);
        let (loaded, lmeta) = read_index(&mut bytes.as_slice()).unwrap();
        assert_same_index(&idx, &loaded);
        assert_eq!(meta, lmeta);
        assert!(loaded.is_fully_indexed());
    }

    #[test]
    fn sections_are_eight_byte_aligned() {
        // The property the mmap attach rests on: each array section must
        // start on an 8-byte file offset regardless of W or bank size.
        for (w, seqs) in [(3usize, vec!["ACGTACG"]), (4, vec!["ACGTACGTTTGG", "CC"])] {
            let refs: Vec<&str> = seqs.to_vec();
            let bank = bank_of(&refs);
            let idx = BankIndex::build(
                &bank,
                IndexConfig::full(w).with_backend(IndexBackend::Dense),
            );
            let bytes = to_bytes(&idx, &IndexMeta::default());
            let num_offsets = (1u64 << (2 * w)) + 1;
            let offsets_at = 80u64; // header 76 + 4 padding
            let pos_at = {
                let end = offsets_at + 4 * num_offsets;
                end + (8 - end % 8) % 8
            };
            assert_eq!(offsets_at % 8, 0);
            assert_eq!(pos_at % 8, 0);
            // The first offsets slot is 0 (row 0 starts at postings 0).
            assert_eq!(
                &bytes[offsets_at as usize..offsets_at as usize + 4],
                &[0, 0, 0, 0]
            );
        }
    }

    #[test]
    fn roundtrip_masked_and_strided() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(50)]);
        for (idx, frac) in [
            (
                BankIndex::build_filtered(&bank, IndexConfig::full(5), |p| p % 7 == 0),
                0.25,
            ),
            (BankIndex::build(&bank, IndexConfig::asymmetric(5)), 0.0),
        ] {
            let meta = IndexMeta {
                masked_fraction: frac,
                filter_code: 2,
                bank_hash: fnv1a(bank.data()),
            };
            let bytes = to_bytes(&idx, &meta);
            let (loaded, lmeta) = read_index(&mut bytes.as_slice()).unwrap();
            assert_same_index(&idx, &loaded);
            assert_eq!(meta, lmeta);
            assert!(!loaded.is_fully_indexed());
        }
    }

    #[test]
    fn roundtrip_empty_bank() {
        let bank = Bank::empty();
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let bytes = to_bytes(&idx, &IndexMeta::default());
        let (loaded, _) = read_index(&mut bytes.as_slice()).unwrap();
        assert_same_index(&idx, &loaded);
    }

    #[test]
    fn every_truncation_errors() {
        let bank = bank_of(&["ACGTACGTACGTTTGG"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let bytes = to_bytes(&idx, &IndexMeta::default());
        for cut in 0..bytes.len() {
            let err = read_index(&mut &bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn wrong_magic_errors() {
        let bank = bank_of(&["ACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let mut bytes = to_bytes(&idx, &IndexMeta::default());
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_index(&mut bytes.as_slice()),
            Err(PersistError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_errors() {
        let bank = bank_of(&["ACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let mut bytes = to_bytes(&idx, &IndexMeta::default());
        bytes[8] = 99; // version field
        assert!(matches!(
            read_index(&mut bytes.as_slice()),
            Err(PersistError::UnsupportedVersion(99))
        ));
        // Version-1 files (no section alignment) are refused too — there
        // is no compatibility shim, rebuild with mkindex.
        let mut v1 = to_bytes(&idx, &IndexMeta::default());
        v1[8] = 1;
        assert!(matches!(
            read_index(&mut v1.as_slice()),
            Err(PersistError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn reserved_flags_error() {
        let bank = bank_of(&["ACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let mut bytes = to_bytes(&idx, &IndexMeta::default());
        bytes[20] |= 0x80; // flags field (magic 8 + version 4 + w 4 + stride 4), a reserved bit
        assert!(matches!(
            read_index(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_offsets_error() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let bytes = to_bytes(&idx, &IndexMeta::default());
        // Header is 76 bytes, padded to 80; offsets follow. Overwrite the
        // first offset slot with a huge value AND recompute the trailing
        // checksum, so it is the structural validation (offsets[0] == 0)
        // that must trip, not the checksum.
        let mut corrupt = bytes.clone();
        corrupt[80..84].copy_from_slice(&u32::MAX.to_le_bytes());
        restamp_checksum(&mut corrupt);
        assert!(matches!(
            read_index(&mut corrupt.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn nonzero_padding_errors() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let mut bytes = to_bytes(&idx, &IndexMeta::default());
        // The 4 padding bytes between header (76) and offsets (80) must
        // be zero; a non-zero byte with a restamped checksum is caught by
        // the padding check itself.
        bytes[77] = 0xAB;
        restamp_checksum(&mut bytes);
        assert!(matches!(
            read_index(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn flipped_provenance_flag_is_caught() {
        // The dangerous single-bit corruption: flipping the fully_indexed
        // flag passes every structural check (the arrays are untouched)
        // but would silently switch step 2 onto the probe-free guard —
        // the whole-stream checksum must catch it.
        let bank = bank_of(&["ACGTACGTACGTTTGG"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(3), |p| p == 2);
        assert!(!idx.is_fully_indexed());
        let mut bytes = to_bytes(&idx, &IndexMeta::default());
        bytes[20] ^= 1; // flags bit 0
        assert!(matches!(
            read_index(&mut bytes.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn payload_bit_flip_is_caught_by_checksum() {
        // A position perturbed inside the postings can satisfy every
        // structural invariant; the checksum still rejects the file.
        let bank = bank_of(&["ACGTACGTACGTTTGGCCAA"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let clean = to_bytes(&idx, &IndexMeta::default());
        let mut tainted = clean.clone();
        let mid = clean.len() - 16; // inside the bitset section
        tainted[mid] ^= 0x10;
        assert!(read_index(&mut tainted.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip_and_trailing_bytes() {
        let bank = bank_of(&["ACGTACGTTTGGCCAA"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let dir = std::env::temp_dir().join("oris_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.oidx");
        write_index_file(&path, &idx, &IndexMeta::default()).unwrap();
        let (loaded, _) = read_index_file(&path).unwrap();
        assert_same_index(&idx, &loaded);

        // The same file with junk appended must be rejected.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        let tainted = dir.join("trailing.oidx");
        std::fs::write(&tainted, &bytes).unwrap();
        assert!(matches!(
            read_index_file(&tainted),
            Err(PersistError::Corrupt(_))
        ));
    }

    fn sparse_idx(bank: &Bank, w: usize) -> BankIndex {
        BankIndex::build(
            bank,
            IndexConfig::full(w).with_backend(IndexBackend::Sparse),
        )
    }

    /// Header field offsets (see the module docs): num_offsets lives at
    /// bytes 52..60 and holds `k` for a sparse file.
    fn stored_k(bytes: &[u8]) -> usize {
        u64::from_le_bytes(bytes[52..60].try_into().unwrap()) as usize
    }

    /// File offsets of the sparse u32 sections
    /// (codes, row_offsets, slots, positions).
    fn sparse_section_offsets(k: usize) -> (usize, usize, usize, usize) {
        let align = |at: usize| at + (8 - at % 8) % 8;
        let codes_at = align(76);
        let row_at = align(codes_at + 4 * k);
        let slots_at = align(row_at + 4 * (k + 1));
        let pos_at = align(slots_at + 4 * sparse_slot_count(k));
        (codes_at, row_at, slots_at, pos_at)
    }

    #[test]
    fn sparse_roundtrip_and_header_shape() {
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGTNACGT", "TTGGCCAA"]);
        let idx = sparse_idx(&bank, 4);
        let meta = IndexMeta {
            masked_fraction: 0.0,
            filter_code: 1,
            bank_hash: fnv1a(bank.data()),
        };
        let bytes = to_bytes(&idx, &meta);
        // flags carries the sparse bit, num_offsets carries k.
        let flags = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        assert_ne!(flags & 2, 0, "sparse flag must be set");
        assert_eq!(stored_k(&bytes), idx.distinct_codes());
        let (loaded, lmeta) = read_index(&mut bytes.as_slice()).unwrap();
        assert_same_index(&idx, &loaded);
        assert_eq!(loaded.backend(), IndexBackend::Sparse);
        assert_eq!(meta, lmeta);
    }

    #[test]
    fn dense_bytes_are_unchanged_by_the_backend_flag() {
        // A dense file must be bit-for-bit what the pre-sparse format
        // wrote: flags bit 1 clear, num_offsets = 4^w + 1, sections in
        // the original order — old files keep loading, new dense files
        // keep being readable by the old layout's expectations.
        let bank = bank_of(&["ACGTACGTTTGGCCAA"]);
        let idx = BankIndex::build(
            &bank,
            IndexConfig::full(3).with_backend(IndexBackend::Dense),
        );
        let bytes = to_bytes(&idx, &IndexMeta::default());
        let flags = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        assert_eq!(flags & !1, 0, "dense files use no new flag bits");
        assert_eq!(stored_k(&bytes), (1 << 6) + 1);
    }

    #[test]
    fn sparse_every_truncation_errors() {
        let bank = bank_of(&["ACGTACGTACGTTTGG"]);
        let idx = sparse_idx(&bank, 3);
        let bytes = to_bytes(&idx, &IndexMeta::default());
        for cut in 0..bytes.len() {
            let err = read_index(&mut &bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not parse");
        }
    }

    #[test]
    fn sparse_payload_bit_flip_is_caught_by_checksum() {
        let bank = bank_of(&["ACGTACGTACGTTTGGCCAA"]);
        let idx = sparse_idx(&bank, 4);
        let clean = to_bytes(&idx, &IndexMeta::default());
        // Flip one bit at every offset: the checksum (or a structural /
        // header check) must reject each mutant outright.
        for at in 0..clean.len() - 8 {
            let mut tainted = clean.clone();
            tainted[at] ^= 0x10;
            assert!(
                read_index(&mut tainted.as_slice()).is_err(),
                "bit flip at {at} must not parse"
            );
        }
    }

    #[test]
    fn sparse_slot_table_corruption_is_structural() {
        // Corrupt the slot table and RESTAMP the checksum: the
        // rebuild-and-compare validation must still reject the file —
        // this is what guarantees probe termination on hostile input.
        let bank = bank_of(&["ACGTACGTACGTTTGGCCAA"]);
        let idx = sparse_idx(&bank, 4);
        let bytes = to_bytes(&idx, &IndexMeta::default());
        let k = stored_k(&bytes);
        assert!(k >= 2, "test bank must populate at least two codes");
        let (_, _, slots_at, _) = sparse_section_offsets(k);
        // Point every slot at row 0: lookups would mis-resolve (or loop,
        // were the table not validated).
        let mut tainted = bytes.clone();
        for s in (slots_at..slots_at + 4 * sparse_slot_count(k)).step_by(4) {
            tainted[s..s + 4].copy_from_slice(&0u32.to_le_bytes());
        }
        restamp_checksum(&mut tainted);
        assert!(matches!(
            read_index(&mut tainted.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
        // Descending codes with a restamped checksum are structural too.
        let mut swapped = bytes.clone();
        let (codes_at, ..) = sparse_section_offsets(k);
        let (a, b) = (codes_at, codes_at + 4);
        let first: [u8; 4] = swapped[a..a + 4].try_into().unwrap();
        let second: [u8; 4] = swapped[b..b + 4].try_into().unwrap();
        swapped[a..a + 4].copy_from_slice(&second);
        swapped[b..b + 4].copy_from_slice(&first);
        restamp_checksum(&mut swapped);
        assert!(matches!(
            read_index(&mut swapped.as_slice()),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn sparse_sections_are_eight_byte_aligned() {
        let bank = bank_of(&["ACGTACGTTTGG", "CC"]);
        let idx = sparse_idx(&bank, 4);
        let bytes = to_bytes(&idx, &IndexMeta::default());
        let k = stored_k(&bytes);
        let (codes_at, row_at, slots_at, pos_at) = sparse_section_offsets(k);
        for at in [codes_at, row_at, slots_at, pos_at] {
            assert_eq!(at % 8, 0);
        }
        // row_offsets[0] is 0 (row 0 starts at postings 0).
        assert_eq!(&bytes[row_at..row_at + 4], &[0, 0, 0, 0]);
        // File size agrees with the layout walk.
        let bit_at = {
            let end = pos_at + 4 * idx.indexed_positions();
            end + (8 - end % 8) % 8
        };
        let words = bank.data().len().div_ceil(64);
        assert_eq!(bytes.len(), bit_at + 8 * words + 8);
    }

    proptest! {
        /// Serialize → deserialize round-trips to an identical index for
        /// random banks, seed lengths, strides, masks and backends —
        /// `occurrences()` slices, `stats()` and `is_fully_indexed` all
        /// agree — and (dense) both build strategies persist identically.
        #[test]
        fn roundtrip_preserves_everything(
            seqs in proptest::collection::vec("[ACGTN]{0,60}", 1..4),
            w in 2usize..7,
            stride in 1usize..3,
            mask_mod in 1usize..9,
            sparse_sel in 0usize..2,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let sparse = sparse_sel == 1;
            let backend = if sparse { IndexBackend::Sparse } else { IndexBackend::Dense };
            let cfg = IndexConfig { stride, ..IndexConfig::full(w) }.with_backend(backend);
            // mask_mod == 1 masks nothing (p % 1 == 0 would mask all);
            // use it as the unmasked case.
            let masked = |p: usize| mask_mod > 1 && p.is_multiple_of(mask_mod);
            let idx = BankIndex::build_filtered(&bank, cfg, masked);
            let meta = IndexMeta { masked_fraction: 0.5, filter_code: 3, bank_hash: 7 };

            let bytes = to_bytes(&idx, &meta);
            if !sparse {
                let sweep = BankIndex::build_filtered_with(
                    &bank, cfg, masked, BuildStrategy::FullSweep,
                );
                prop_assert_eq!(&bytes, &to_bytes(&sweep, &meta));
            }
            let (loaded, lmeta) = read_index(&mut bytes.as_slice()).unwrap();
            prop_assert_eq!(loaded.backend(), backend);
            prop_assert_eq!(lmeta, meta);
            prop_assert_eq!(loaded.is_fully_indexed(), idx.is_fully_indexed());
            prop_assert_eq!(loaded.stats(), idx.stats());
            for code in 0..idx.coder().num_seeds() as u32 {
                prop_assert_eq!(loaded.occurrences(code), idx.occurrences(code));
            }
            for p in 0..bank.data().len() {
                prop_assert_eq!(loaded.is_indexed(p), idx.is_indexed(p));
            }
        }
    }
}
