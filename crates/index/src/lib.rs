//! # oris-index — seed coding and the ordered bank index
//!
//! This crate implements section 2.1 of the paper:
//!
//! * [`SeedCoder`]: the `codeSEED` function mapping a W-nucleotide word to an
//!   integer in `0..4^W`, with O(1) rolling updates in both directions. The
//!   code order is the total order that makes the ORIS uniqueness argument
//!   work (a seed `SA` precedes `SB` iff `code(SA) < code(SB)`).
//! * [`BankIndex`]: the Figure-2 structure — a dictionary of `4^W` entries
//!   holding the first occurrence of each seed, plus an `INDEX` array
//!   chaining every occurrence to the next one, stored over the bank's
//!   `SEQ` code array.
//! * Asymmetric indexing (section 3.4): index only every other W-mer of one
//!   bank, the paper's remedy for sensitivity loss with shorter seeds.
//! * Seed-occupancy statistics used by tests and the memory experiment (E7:
//!   the index is ≈5·N bytes, 1 byte of `SEQ` + 4 bytes of `INDEX` per
//!   position).

pub mod mask;
pub mod seedcode;
pub mod structure;

pub use mask::MaskSet;
pub use seedcode::{RollingCoder, SeedCoder, MAX_SEED_LEN};
pub use structure::{BankIndex, IndexConfig, IndexStats, SeedOccurrences};
