//! # oris-index — seed coding and the ordered bank index
//!
//! This crate implements section 2.1 of the paper:
//!
//! * [`SeedCoder`]: the `codeSEED` function mapping a W-nucleotide word to an
//!   integer in `0..4^W`, with O(1) rolling updates in both directions. The
//!   code order is the total order that makes the ORIS uniqueness argument
//!   work (a seed `SA` precedes `SB` iff `code(SA) < code(SB)`).
//! * [`BankIndex`]: the Figure-2 occurrence index, stored as a **CSR
//!   inverted index** — `offsets[4^W + 1]` row boundaries over a contiguous
//!   `positions` array — so `occurrences(code)` is a sorted `&[u32]` slice,
//!   `count` is O(1), and step 2 streams postings instead of chasing the
//!   paper's `int *INDEX` chains (see `structure` module docs for the
//!   memory model).
//! * [`LinkedBankIndex`]: the literal linked layout of Figure 2, retained
//!   as a benchmark baseline for the layout comparison.
//! * Asymmetric indexing (section 3.4): index only every other W-mer of one
//!   bank, the paper's remedy for sensitivity loss with shorter seeds. In
//!   the CSR layout this halves the postings bytes too, not just the
//!   sampled windows.
//! * Seed-occupancy statistics used by tests and the memory experiment (E7:
//!   ≈5·N bytes for a fully indexed bank — 1 byte of `SEQ` + 4 bytes of
//!   postings per position).

pub mod linked;
pub mod mask;
pub mod seedcode;
pub mod structure;

pub use linked::LinkedBankIndex;
pub use mask::MaskSet;
pub use seedcode::{RollingCoder, SeedCoder, MAX_SEED_LEN};
pub use structure::{BankIndex, IndexConfig, IndexStats};
