//! # oris-index — seed coding and the ordered bank index
//!
//! This crate implements section 2.1 of the paper, built around the
//! *build-once* premise of intensive comparison: a [`BankIndex`] is
//! constructed once per bank and then amortized over many step-2 runs —
//! within a process (see `oris-core`'s `Session`) or across processes via
//! the versioned on-disk format in [`persist`].
//!
//! * [`SeedCoder`]: the `codeSEED` function mapping a W-nucleotide word to an
//!   integer in `0..4^W`, with O(1) rolling updates in both directions. The
//!   code order is the total order that makes the ORIS uniqueness argument
//!   work (a seed `SA` precedes `SB` iff `code(SA) < code(SB)`).
//! * [`BankIndex`]: the Figure-2 occurrence index, stored as a **CSR
//!   inverted index** — row boundaries over a contiguous `positions`
//!   array — so `occurrences(code)` is a sorted `&[u32]` slice, `count`
//!   is O(1), and step 2 streams postings instead of chasing the paper's
//!   `int *INDEX` chains. Two row-lookup backends sit behind the same
//!   API ([`IndexBackend`]): a **dense** `offsets[4^W + 1]` array
//!   (`≈ 4·(4^W + 1)` bytes — the large-bank fast path) and a **sparse**
//!   populated-codes table (ascending code list + open-addressed hash,
//!   memory `∝ distinct codes` — what lets a small query bank run at
//!   W = 11 without a 16.8 MB offsets array). `IndexBackend::Auto` (the
//!   default) picks per build by density; results are byte-identical
//!   either way (see `structure` module docs for the memory model).
//!   Dense construction is a radix-partitioned counting sort by default
//!   ([`BuildStrategy`]): codes are partitioned by high bits and each
//!   partition prefix-sums its own offsets stretch; sparse construction
//!   is one stable sort of the postings by code, independent of `4^W`.
//! * [`persist`]: the on-disk index format (magic + version + config +
//!   little-endian array sections, each starting on an 8-byte file
//!   offset). Both backends serialize — a header flag selects the
//!   section layout, dense files are bit-for-bit unchanged from before
//!   the sparse backend existed, and sparse slot tables are validated
//!   structurally on load (exact rebuild-and-compare). A loaded index is
//!   behaviourally identical to a fresh build, including the
//!   `is_fully_indexed` provenance that drives step 2's guard
//!   auto-selection.
//! * [`mmap`]: the zero-copy attach path for the sharded-database
//!   workload — [`map_index_file`] maps an index file and hands the
//!   [`BankIndex`] direct views of its offsets and postings sections, so
//!   attaching a volume costs no postings copy and its big arrays live
//!   in the shared, evictable page cache instead of the heap.
//!   [`AttachMode`] selects between the mapped and heap-copy loaders;
//!   both verify the same checksum and structural invariants and are
//!   equivalence-tested.
//! * [`LinkedBankIndex`]: the literal linked layout of Figure 2, retained
//!   as a benchmark baseline for the layout comparison.
//! * Asymmetric indexing (section 3.4): index only every other W-mer of one
//!   bank, the paper's remedy for sensitivity loss with shorter seeds. In
//!   the CSR layout this halves the postings bytes too, not just the
//!   sampled windows.
//! * Seed-occupancy statistics used by tests and the memory experiment (E7:
//!   ≈5·N bytes for a fully indexed bank — 1 byte of `SEQ` + 4 bytes of
//!   postings per position).

pub mod linked;
pub mod mask;
pub mod mmap;
pub mod persist;
pub(crate) mod section;
pub mod seedcode;
pub mod structure;

pub use linked::LinkedBankIndex;
pub use mask::MaskSet;
pub use mmap::{attach_index_file, map_index_file, AttachMode, Mapping};
pub use persist::{read_index_file, write_index_file, IndexMeta, PersistError};
pub use seedcode::{RollingCoder, SeedCoder, MAX_SEED_LEN};
pub use structure::{
    BankIndex, BuildStrategy, IndexBackend, IndexConfig, IndexStats, PopulatedRows,
};
