//! The bank index of the paper's Figure 2.
//!
//! Two arrays sit on top of the bank's `SEQ` code array:
//!
//! * `dict[4^W]` — global position of the **first** occurrence of each seed
//!   (or `EMPTY`), the "seed dictionary" of Figure 2;
//! * `next[len(SEQ)]` — for a position holding a seed occurrence, the
//!   position of the **next** occurrence of the same seed (or `EMPTY`); the
//!   paper's `int *INDEX` linking structure.
//!
//! Chains are kept in *increasing position order* by building them with a
//! single reverse scan: visiting positions from right to left and pushing
//! each onto the front of its seed's chain leaves every chain sorted
//! ascending. Iterating a chain therefore touches `SEQ` left to right,
//! which is what gives step 2 of ORIS its cache-friendly access pattern
//! (all sequence portions sharing a seed are visited together).
//!
//! Memory cost: `4·len(next) + 4·4^W` bytes on top of the 1-byte-per-residue
//! `SEQ` array — the paper's "approximately 5·N bytes" for `N ≫ 4^W`.

use oris_seqio::Bank;

use crate::mask::MaskSet;
use crate::seedcode::{RollingCoder, SeedCoder};

/// Sentinel marking an empty dictionary slot / end of an occurrence chain.
const EMPTY: u32 = u32::MAX;

/// Options controlling index construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Seed length `W`.
    pub w: usize,
    /// Index only every `stride`-th valid window (1 = every window).
    ///
    /// `stride = 2` is the paper's *asymmetric indexing*: with 10-nt words
    /// sampled on one bank only, all 11-nt seed matches are still anchored
    /// while the index halves in size (section 3.4).
    pub stride: usize,
}

impl IndexConfig {
    /// Full indexing with seed length `w` (the common case).
    pub fn full(w: usize) -> IndexConfig {
        IndexConfig { w, stride: 1 }
    }

    /// Asymmetric (half-sampled) indexing with seed length `w`.
    pub fn asymmetric(w: usize) -> IndexConfig {
        IndexConfig { w, stride: 2 }
    }
}

/// Occupancy and footprint statistics for a built index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of distinct seeds present.
    pub distinct_seeds: usize,
    /// Total indexed positions (chain nodes).
    pub indexed_positions: usize,
    /// Length of the longest occurrence chain.
    pub max_chain_len: usize,
    /// Heap bytes used by `dict` + `next` (excludes the bank's own array).
    pub index_bytes: usize,
    /// Heap bytes including the underlying `SEQ` array, i.e. the paper's
    /// ≈5·N figure.
    pub total_bytes: usize,
}

/// The Figure-2 index over one bank.
#[derive(Debug, Clone)]
pub struct BankIndex {
    coder: SeedCoder,
    stride: usize,
    dict: Vec<u32>,
    next: Vec<u32>,
    /// One bit per bank position: is a seed occurrence anchored here?
    ///
    /// This answers the question the ORIS order guard must ask during
    /// extension: *would the global enumeration visit a seed at this
    /// position?* A smaller-code window that was excluded (masked as
    /// low-complexity, skipped by the asymmetric stride, or invalid) can
    /// never own an HSP, so it must not trigger an abort.
    indexed: MaskSet,
    indexed_positions: usize,
    bank_bytes: usize,
}

impl BankIndex {
    /// Builds the index for `bank` under `cfg`, optionally excluding
    /// positions for which `masked(position)` returns true (used by the
    /// low-complexity pre-filter of section 2.1: "W character words
    /// belonging to low-complexity regions are discarded from the index").
    pub fn build_filtered(
        bank: &Bank,
        cfg: IndexConfig,
        masked: impl Fn(usize) -> bool,
    ) -> BankIndex {
        assert!(cfg.stride >= 1, "stride must be at least 1");
        let coder = SeedCoder::new(cfg.w);
        let data = bank.data();
        assert!(
            data.len() < EMPTY as usize,
            "bank too large for u32 positions"
        );

        // Collect (position, code) pairs once; a second pass in reverse
        // builds sorted chains. The forward collection itself is O(N).
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(data.len());
        for (pos, code) in RollingCoder::new(coder, data) {
            if pos % cfg.stride != 0 || masked(pos) {
                continue;
            }
            pairs.push((pos as u32, code));
        }

        let mut dict = vec![EMPTY; coder.num_seeds()];
        let mut next = vec![EMPTY; data.len()];
        let mut indexed = MaskSet::new(data.len());
        for &(pos, code) in pairs.iter().rev() {
            next[pos as usize] = dict[code as usize];
            dict[code as usize] = pos;
            indexed.set(pos as usize);
        }

        BankIndex {
            coder,
            stride: cfg.stride,
            dict,
            next,
            indexed,
            indexed_positions: pairs.len(),
            bank_bytes: data.len(),
        }
    }

    /// Builds the index with no masking.
    pub fn build(bank: &Bank, cfg: IndexConfig) -> BankIndex {
        Self::build_filtered(bank, cfg, |_| false)
    }

    /// The seed coder used by this index.
    #[inline]
    pub fn coder(&self) -> SeedCoder {
        self.coder
    }

    /// Seed length `W`.
    #[inline]
    pub fn w(&self) -> usize {
        self.coder.w()
    }

    /// Sampling stride (1 = full, 2 = asymmetric).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// First occurrence of `code`, or `None` if the seed is absent.
    #[inline]
    pub fn first(&self, code: u32) -> Option<u32> {
        let p = self.dict[code as usize];
        (p != EMPTY).then_some(p)
    }

    /// Occurrence of the same seed following position `pos`, if any.
    #[inline]
    pub fn next_occurrence(&self, pos: u32) -> Option<u32> {
        let p = self.next[pos as usize];
        (p != EMPTY).then_some(p)
    }

    /// Iterator over all occurrences of `code`, in increasing position
    /// order.
    #[inline]
    pub fn occurrences(&self, code: u32) -> SeedOccurrences<'_> {
        SeedOccurrences {
            index: self,
            cursor: self.dict[code as usize],
        }
    }

    /// Number of occurrences of `code` (walks the chain).
    pub fn count(&self, code: u32) -> usize {
        self.occurrences(code).count()
    }

    /// Total indexed positions.
    #[inline]
    pub fn indexed_positions(&self) -> usize {
        self.indexed_positions
    }

    /// Whether a seed occurrence is anchored at global position `pos`
    /// (i.e. the window there is valid, unmasked and stride-aligned).
    #[inline]
    pub fn is_indexed(&self, pos: usize) -> bool {
        self.indexed.contains(pos)
    }

    /// Computes occupancy/footprint statistics.
    pub fn stats(&self) -> IndexStats {
        let mut distinct = 0usize;
        let mut max_chain = 0usize;
        for code in 0..self.dict.len() {
            if self.dict[code] != EMPTY {
                distinct += 1;
                let len = self.occurrences(code as u32).count();
                max_chain = max_chain.max(len);
            }
        }
        let index_bytes =
            self.dict.len() * 4 + self.next.len() * 4 + self.indexed.heap_bytes();
        IndexStats {
            distinct_seeds: distinct,
            indexed_positions: self.indexed_positions,
            max_chain_len: max_chain,
            index_bytes,
            total_bytes: index_bytes + self.bank_bytes,
        }
    }

    /// Heap bytes used by the index arrays (dictionary, successor chains
    /// and the indexed-position bit vector).
    pub fn heap_bytes(&self) -> usize {
        self.dict.len() * 4 + self.next.len() * 4 + self.indexed.heap_bytes()
    }
}

/// Iterator over the occurrence chain of one seed.
#[derive(Debug, Clone)]
pub struct SeedOccurrences<'a> {
    index: &'a BankIndex,
    cursor: u32,
}

impl<'a> Iterator for SeedOccurrences<'a> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cursor == EMPTY {
            return None;
        }
        let pos = self.cursor;
        self.cursor = self.index.next[pos as usize];
        Some(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;
    use proptest::prelude::*;

    fn bank_of(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    /// Brute-force reference: all (pos, code) with optional stride.
    fn reference_occurrences(bank: &Bank, w: usize, stride: usize) -> Vec<(u32, u32)> {
        let coder = SeedCoder::new(w);
        let data = bank.data();
        let mut out = Vec::new();
        for pos in 0..data.len().saturating_sub(w - 1) {
            if pos % stride != 0 {
                continue;
            }
            if let Some(code) = coder.encode(&data[pos..pos + w]) {
                out.push((pos as u32, code));
            }
        }
        out
    }

    #[test]
    fn finds_all_occurrences_sorted() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let coder = idx.coder();
        let code = coder.string_to_code("ACGT").unwrap();
        let occ: Vec<u32> = idx.occurrences(code).collect();
        // positions are global (bank data starts with a sentinel at 0)
        assert_eq!(occ, vec![1, 5, 9]);
    }

    #[test]
    fn chains_do_not_cross_sequence_boundaries() {
        // "ACGT" at the end of s0 and start of s1 — the window spanning the
        // sentinel must not be indexed.
        let bank = bank_of(&["TTACGT", "ACGTTT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let code = idx.coder().string_to_code("ACGT").unwrap();
        let occ: Vec<u32> = idx.occurrences(code).collect();
        assert_eq!(occ.len(), 2);
        // Every occurrence is fully inside one record.
        for p in occ {
            let rec = bank.locate(p as usize).unwrap();
            assert!(p as usize + 4 <= bank.record(rec).end());
        }
    }

    #[test]
    fn ambiguous_windows_excluded() {
        let bank = bank_of(&["ACGNACG"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let code = idx.coder().string_to_code("ACG").unwrap();
        assert_eq!(idx.count(code), 2);
        let cgn = idx.coder().string_to_code("CGN");
        assert!(cgn.is_none());
    }

    #[test]
    fn absent_seed_has_no_occurrences() {
        let bank = bank_of(&["AAAA"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let code = idx.coder().string_to_code("GGG").unwrap();
        assert_eq!(idx.first(code), None);
        assert_eq!(idx.count(code), 0);
    }

    #[test]
    fn asymmetric_stride_halves_positions() {
        let bank = bank_of(&[&"ACGT".repeat(100)]);
        let full = BankIndex::build(&bank, IndexConfig::full(8));
        let half = BankIndex::build(&bank, IndexConfig::asymmetric(8));
        assert!(half.indexed_positions() * 2 <= full.indexed_positions() + 2);
        assert!(half.indexed_positions() > 0);
    }

    #[test]
    fn masked_positions_excluded() {
        let bank = bank_of(&["ACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p < 3);
        let code = idx.coder().string_to_code("ACGT").unwrap();
        let occ: Vec<u32> = idx.occurrences(code).collect();
        assert_eq!(occ, vec![5]);
    }

    #[test]
    fn stats_match_paper_footprint_model() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]); // 16 kb
        let idx = BankIndex::build(&bank, IndexConfig::full(8));
        let stats = idx.stats();
        let n = bank.data().len();
        // 4 bytes per position + 4 bytes per dictionary slot + 1 bit per
        // position for the indexed-occurrence set
        assert_eq!(stats.index_bytes, 4 * n + 4 * (1 << 16) + n.div_ceil(64) * 8);
        assert_eq!(stats.total_bytes, stats.index_bytes + n);
        assert!(stats.indexed_positions > 0);
        assert!(stats.distinct_seeds > 0);
        assert!(stats.max_chain_len >= 1);
    }

    #[test]
    fn empty_bank_builds() {
        let bank = Bank::empty();
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        assert_eq!(idx.indexed_positions(), 0);
        assert_eq!(idx.stats().distinct_seeds, 0);
    }

    proptest! {
        /// The chained index reproduces the brute-force occurrence list for
        /// every seed, in sorted order.
        #[test]
        fn index_equals_bruteforce(
            seqs in proptest::collection::vec("[ACGTN]{0,40}", 1..4),
            w in 2usize..6,
            stride in 1usize..3,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let cfg = IndexConfig { w, stride };
            let idx = BankIndex::build(&bank, cfg);
            let mut expected = reference_occurrences(&bank, w, stride);
            expected.sort_by_key(|&(_, code)| code);

            let mut got: Vec<(u32, u32)> = Vec::new();
            for code in 0..idx.coder().num_seeds() as u32 {
                let occ: Vec<u32> = idx.occurrences(code).collect();
                // chains are sorted ascending
                prop_assert!(occ.windows(2).all(|p| p[0] < p[1]));
                got.extend(occ.into_iter().map(|p| (p, code)));
            }
            let mut expected_sorted = expected.clone();
            expected_sorted.sort();
            got.sort();
            prop_assert_eq!(got, expected_sorted);
        }

        /// indexed_positions equals the number of valid windows.
        #[test]
        fn position_count_matches(seq in "[ACGT]{0,200}", w in 2usize..6) {
            let bank = bank_of(&[seq.as_str()]);
            let idx = BankIndex::build(&bank, IndexConfig::full(w));
            let expected = seq.len().saturating_sub(w - 1);
            prop_assert_eq!(idx.indexed_positions(), expected);
        }
    }
}
