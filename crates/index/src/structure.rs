//! The bank index — Figure 2 of the paper, flattened to a CSR layout,
//! with a sparse hashed backend for banks that populate few seed codes.
//!
//! The paper draws the occurrence index as a linked structure: a seed
//! dictionary `dict[4^W]` pointing at the first occurrence of each seed,
//! and a successor array `next[len(SEQ)]` chaining every occurrence to the
//! next one (`int *INDEX` in the paper). That shape is faithful to the
//! figure but hostile to step 2's inner loops: every `next` hop is a
//! dependent, unpredictable load across a `4·len(SEQ)`-byte array.
//!
//! This module stores the same information as a **compressed sparse row**
//! (CSR) inverted index. The postings array is common to both backends:
//!
//! * `positions[indexed_positions]` — every occurrence, grouped by seed
//!   code in ascending code order and in **ascending position order**
//!   within each group.
//!
//! What differs is how a seed code finds its row (the crate-private
//! `RowIndex`):
//!
//! * **Dense** — `offsets[4^W + 1]` row boundaries: the occurrences of
//!   seed `code` are `positions[offsets[code] .. offsets[code + 1]]`.
//!   O(1) lookup, but the offsets array costs `4·(4^W + 1)` bytes no
//!   matter how small the bank is — 16.8 MB at W = 11.
//! * **Sparse** — only the *populated* codes are materialized: an
//!   ascending `codes[k]` array, `row_offsets[k + 1]` row boundaries, and
//!   an open-addressed `slots[≈2k]` hash table mapping a code to its row
//!   by Fibonacci hashing with linear probing. Lookup is O(1) expected,
//!   and memory is `∝ distinct codes`, independent of `4^W`.
//!
//! [`IndexBackend::Auto`] (the default) picks per build: dense when the
//! code space is comparably sized to the postings (`4^W ≤ 4·postings`,
//! i.e. at least ~¼ of the offsets slots could be populated), sparse
//! otherwise. Both backends order the postings identically, so every
//! downstream consumer — step 2's ordered enumeration, the guards, the
//! sinks — sees byte-identical occurrence slices; backend choice is a
//! memory/speed trade, never a results change (pinned by proptests here
//! and at the engine and db layers).
//!
//! The build is a counting sort: one rolling scan collects the
//! `(position, code)` pairs, then either a count/prefix-sum/scatter pass
//! over the code space (dense) or a stable sort by code (sparse). Because
//! the scan visits positions left to right, each row comes out sorted
//! without per-row comparison sorting — `occurrences(code)` hands step 2 a
//! contiguous, ascending `&[u32]` slice, `count` is O(1), and `stats`
//! needs no chain walks.
//!
//! Memory model (heap bytes on top of the 1-byte-per-residue `SEQ` array):
//!
//! ```text
//! dense:   ≈ 4·(4^W + 1)          offsets
//!          + 4·indexed_positions  postings
//!          + len(SEQ)/8           indexed-occurrence bit-set
//!
//! sparse:  ≈ 4·k                  populated codes        (k = distinct codes)
//!          + 4·(k + 1)            row offsets
//!          + 4·2k                 open-addressed slot table
//!          + 4·indexed_positions  postings
//!          + len(SEQ)/8           indexed-occurrence bit-set
//! ```
//!
//! Since `k ≤ indexed_positions`, the sparse backend is bounded by
//! `≈ 16·indexed_positions` bytes however large `W` gets — this is what
//! retires the "benches must run at W = 9" workaround: a small query bank
//! at W = 11 no longer pays a 16.8 MB offsets array per transient index.
//!
//! The linked layout cost `4·len(SEQ)` for `next` no matter how many
//! windows were actually indexed; the CSR postings cost `4·indexed_positions`,
//! so low-complexity masking and the asymmetric stride (section 3.4)
//! shrink the index itself, not just the bit-set. For a fully indexed bank
//! (`indexed_positions ≈ len(SEQ)`) the dense layout matches the paper's
//! "approximately 5·N bytes" figure.
//!
//! The one-bit-per-position `indexed` set is retained for the ORIS order
//! guard: during extension the guard must ask "would the global enumeration
//! visit a seed at this position?" — a question about *positions*, which
//! the position-grouped CSR rows cannot answer in O(1). The guard reads the
//! set two ways: random-access probes via [`BankIndex::is_indexed`], and —
//! the hot path — a rolling word cursor over [`BankIndex::indexed_words`]
//! that walks with the extension (see `oris-align::ungapped`).
//!
//! **Exclusion provenance.** The build also records *why* positions are
//! absent from the index. Windows can be missing for two very different
//! reasons:
//!
//! * **window validity** — the window runs off the bank, crosses a record
//!   sentinel, or contains an ambiguous base. These exclusions are
//!   *implied by the guard's run-of-matches invariant*: the guard only
//!   probes a position after observing `W` consecutive matching
//!   nucleotides there, which is itself proof of a valid window, so a
//!   validity-excluded position can never be probed;
//! * **policy** — low-complexity masking or the asymmetric stride
//!   deliberately discarded a *valid* window. Only these exclusions make
//!   the bit-set observable to the guard.
//!
//! [`BankIndex::is_fully_indexed`] is true exactly when no policy
//! exclusion occurred (stride 1, no masked rejection). When both banks of
//! a comparison qualify, every guard probe would answer "yes" and step 2
//! selects the probe-free `OrderedFull` guard instead — the fast path for
//! the common unmasked full-stride case.

use std::ops::Range;

use oris_seqio::Bank;
use rayon::prelude::*;

use crate::mask::MaskSet;
use crate::section::Section;
use crate::seedcode::{RollingCoder, SeedCoder, MAX_SEED_LEN};

/// Which row-lookup structure backs the index.
///
/// Backend choice never changes results: the postings array (and thus
/// every `occurrences` slice, every HSP, every output byte) is identical
/// under either backend. It only trades memory against lookup cost:
/// dense pays `4·(4^W + 1)` bytes for O(1) array indexing; sparse pays
/// `∝ distinct codes` for O(1)-expected hashed lookup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IndexBackend {
    /// Always build the dense `offsets[4^W + 1]` CSR — the large-bank
    /// fast path.
    Dense,
    /// Always build the compact populated-codes table — the small-bank /
    /// large-W memory saver.
    Sparse,
    /// Decide per build from the observed density: dense when
    /// `4^W ≤ 4·indexed_positions` (at least ~¼ of the code space could
    /// be populated, since distinct codes ≤ postings), sparse otherwise.
    #[default]
    Auto,
}

/// Options controlling index construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Seed length `W`.
    pub w: usize,
    /// Index only every `stride`-th valid window (1 = every window).
    ///
    /// `stride = 2` is the paper's *asymmetric indexing*: with 10-nt words
    /// sampled on one bank only, all 11-nt seed matches are still anchored
    /// while the index halves in size (section 3.4).
    pub stride: usize,
    /// Row-lookup backend policy (see [`IndexBackend`]).
    pub backend: IndexBackend,
}

impl IndexConfig {
    /// Full indexing with seed length `w` (the common case).
    pub fn full(w: usize) -> IndexConfig {
        IndexConfig {
            w,
            stride: 1,
            backend: IndexBackend::Auto,
        }
    }

    /// Asymmetric (half-sampled) indexing with seed length `w`.
    pub fn asymmetric(w: usize) -> IndexConfig {
        IndexConfig {
            w,
            stride: 2,
            backend: IndexBackend::Auto,
        }
    }

    /// Same config with an explicit backend policy.
    pub fn with_backend(mut self, backend: IndexBackend) -> IndexConfig {
        self.backend = backend;
        self
    }
}

/// How the CSR arrays are assembled from the rolling scan's
/// `(position, code)` pairs. Both strategies produce byte-identical
/// indexes (pinned by a proptest); they differ only in build cost.
/// The strategy applies to the **dense** backend's offsets assembly; a
/// sparse build is a single stable sort by code and ignores it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BuildStrategy {
    /// One counting sort across the entire `4^W` code space: a count
    /// pass, a full-array exclusive prefix-sum, and a scatter. The
    /// prefix-sum is a serial, loop-carried sweep over all `4^W + 1`
    /// offsets slots even when the bank populates a handful of codes —
    /// the cost the ROADMAP flagged for small banks. Kept as the
    /// reference fallback and benchmark baseline.
    FullSweep,
    /// Radix-partitioned counting sort: codes are partitioned by their
    /// high bits, pairs are bucketed per partition (one stable counting
    /// sort), and each partition then counting-sorts its own slice of
    /// the offsets array independently. A partition with no occurrences
    /// fills its offsets slice with one constant (a vectorized
    /// `slice::fill`, not a data-dependent sum), so a small bank pays
    /// the serial prefix-sum only over the few partitions it touches;
    /// non-empty partitions are independent and processed in parallel.
    #[default]
    RadixPartitioned,
}

/// Occupancy and footprint statistics for a built index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of distinct seeds present.
    pub distinct_seeds: usize,
    /// Total indexed positions (postings).
    pub indexed_positions: usize,
    /// Length of the longest occurrence list.
    pub max_chain_len: usize,
    /// Heap bytes used by the row-lookup arrays + `positions` + the
    /// indexed bit-set (excludes the bank's own array).
    pub index_bytes: usize,
    /// Heap bytes including the underlying `SEQ` array — the paper's ≈5·N
    /// figure when the bank is fully indexed (dense backend).
    pub total_bytes: usize,
}

/// Sentinel for an unoccupied slot in the sparse open-addressed table.
/// `u32::MAX` can never be a valid row id: rows ≤ distinct codes ≤
/// postings, and postings are bounded by the bank-length `< u32::MAX`
/// guard.
pub(crate) const EMPTY_SLOT: u32 = u32::MAX;

/// Slot-table size for `distinct` populated codes: the next power of two
/// at or above `2·distinct`, so the table is always at least half empty
/// (probe chains stay short and every probe sequence terminates at an
/// empty slot). Zero codes need zero slots.
pub(crate) fn sparse_slot_count(distinct: usize) -> usize {
    if distinct == 0 {
        0
    } else {
        (2 * distinct).next_power_of_two()
    }
}

/// Fibonacci-hash home slot for `code` in a power-of-two table of
/// `slots ≥ 2` entries: multiply by 2^32/φ and keep the high bits. Pure
/// u32 arithmetic — deterministic across platforms and runs.
#[inline]
fn fib_slot(code: u32, slots: usize) -> usize {
    debug_assert!(slots.is_power_of_two() && slots >= 2);
    // `slots ≥ 2` ⇒ `trailing_zeros ≥ 1` ⇒ the shift is ≤ 31: never UB.
    (code.wrapping_mul(0x9E37_79B9) >> (32 - slots.trailing_zeros())) as usize
}

/// Builds the open-addressed code→row table for an ascending list of
/// distinct codes. Insertion order is the ascending code order, so the
/// table bytes are a pure function of `codes` — which is what lets the
/// deserializer validate a stored table by rebuilding and comparing.
pub(crate) fn build_slot_table(codes: &[u32]) -> Vec<u32> {
    let s = sparse_slot_count(codes.len());
    let mut slots = vec![EMPTY_SLOT; s];
    for (row, &code) in codes.iter().enumerate() {
        let mut i = fib_slot(code, s);
        while slots[i] != EMPTY_SLOT {
            i = (i + 1) & (s - 1);
        }
        slots[i] = u32::try_from(row).expect("row ids bounded by the bank-length guard");
    }
    slots
}

/// Looks up the row id of `code` via the slot table. Probes terminate
/// because a validated table is at least half empty (and matches an exact
/// rebuild from `codes`, so no corrupt table can reach this loop).
#[inline]
fn sparse_row_of(codes: &[u32], slots: &[u32], code: u32) -> Option<usize> {
    if slots.is_empty() {
        return None;
    }
    let mask = slots.len() - 1;
    let mut i = fib_slot(code, slots.len());
    loop {
        let row = slots[i];
        if row == EMPTY_SLOT {
            return None;
        }
        if codes[row as usize] == code {
            return Some(row as usize);
        }
        i = (i + 1) & mask;
    }
}

/// The row-lookup structure: how a seed code maps to its postings row.
/// Both variants index the same `positions` array; see the module docs
/// for the memory model.
#[derive(Debug, Clone)]
pub(crate) enum RowIndex {
    /// Dense CSR row boundaries: occurrences of `code` live at
    /// `positions[offsets[code] .. offsets[code + 1]]`; `4^W + 1` slots.
    Dense { offsets: Section<u32> },
    /// Populated-codes table: `codes[k]` ascending distinct codes,
    /// `row_offsets[k + 1]` row boundaries (row `r` of `codes[r]` is
    /// `positions[row_offsets[r] .. row_offsets[r + 1]]`), and an
    /// open-addressed `slots` table mapping code → row.
    Sparse {
        codes: Section<u32>,
        row_offsets: Section<u32>,
        slots: Section<u32>,
    },
}

/// The occurrence index over one bank, in CSR layout.
#[derive(Debug, Clone)]
pub struct BankIndex {
    coder: SeedCoder,
    stride: usize,
    /// Code → postings-row lookup. Owned for a fresh build; zero-copy
    /// views into the index file for an mmap attach.
    rows: RowIndex,
    /// All indexed positions, grouped by seed code in ascending code
    /// order, ascending within a group. Same storage duality as `rows`.
    positions: Section<u32>,
    /// One bit per bank position: is a seed occurrence anchored here?
    ///
    /// This answers the question the ORIS order guard must ask during
    /// extension: *would the global enumeration visit a seed at this
    /// position?* A smaller-code window that was excluded (masked as
    /// low-complexity, skipped by the asymmetric stride, or invalid) can
    /// never own an HSP, so it must not trigger an abort.
    indexed: MaskSet,
    /// Exclusion provenance: `true` iff no *policy* exclusion occurred
    /// during the build — stride 1 and no valid window rejected by the
    /// mask predicate. See [`BankIndex::is_fully_indexed`].
    fully_indexed: bool,
    bank_bytes: usize,
    /// Number of distinct populated codes, cached at build/validation
    /// time so `distinct_codes()` is O(1) for either backend (step 2
    /// uses it to pick which index drives the populated-code walk).
    distinct: usize,
}

impl BankIndex {
    /// Builds the index for `bank` under `cfg`, optionally excluding
    /// positions for which `masked(position)` returns true (used by the
    /// low-complexity pre-filter of section 2.1: "W character words
    /// belonging to low-complexity regions are discarded from the index").
    pub fn build_filtered(
        bank: &Bank,
        cfg: IndexConfig,
        masked: impl Fn(usize) -> bool,
    ) -> BankIndex {
        Self::build_filtered_with(bank, cfg, masked, BuildStrategy::default())
    }

    /// Builds the index under an explicit [`BuildStrategy`] (the layout
    /// benches compare [`BuildStrategy::FullSweep`] against the default
    /// radix-partitioned build; both produce identical indexes).
    pub fn build_filtered_with(
        bank: &Bank,
        cfg: IndexConfig,
        masked: impl Fn(usize) -> bool,
        strategy: BuildStrategy,
    ) -> BankIndex {
        assert!(cfg.stride >= 1, "stride must be at least 1");
        let coder = SeedCoder::new(cfg.w);
        let data = bank.data();
        assert!(
            data.len() < u32::MAX as usize,
            "bank too large for u32 positions"
        );

        // Pass 1: one rolling scan collects the surviving (position, code)
        // pairs in ascending position order.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(data.len());
        let mut indexed = MaskSet::new(data.len());
        // Policy exclusions only: every window the rolling coder yields is
        // *valid* (inside one record, no ambiguous base), so any rejection
        // here is a stride/mask decision — the provenance that decides
        // whether the order guard may skip its bit-set probes entirely.
        let mut policy_excluded = 0usize;
        for (pos, code) in RollingCoder::new(coder, data) {
            if pos % cfg.stride != 0 || masked(pos) {
                policy_excluded += 1;
                continue;
            }
            // oris-lint: allow(narrow-cast) — guarded by the `data.len() < u32::MAX` assert above
            pairs.push((pos as u32, code));
            indexed.set(pos);
        }

        // Resolve the Auto policy from the observed density: distinct
        // codes ≤ postings, so `4^W > 4·postings` means under ¼ of the
        // offsets slots could possibly be populated — the dense array
        // would be ≥ 16 bytes per posting of mostly-empty rows.
        let dense = match cfg.backend {
            IndexBackend::Dense => true,
            IndexBackend::Sparse => false,
            IndexBackend::Auto => coder.num_seeds() <= 4 * pairs.len(),
        };

        // Pass 2: assemble the rows.
        let (rows, positions, distinct) = if dense {
            let (offsets, positions) = match strategy {
                BuildStrategy::FullSweep => full_sweep_rows(coder.num_seeds(), &pairs),
                BuildStrategy::RadixPartitioned => radix_rows(cfg.w, coder.num_seeds(), &pairs),
            };
            let distinct = offsets.windows(2).filter(|p| p[0] < p[1]).count();
            (
                RowIndex::Dense {
                    offsets: offsets.into(),
                },
                positions,
                distinct,
            )
        } else {
            let (codes, row_offsets, positions) = sparse_rows(pairs);
            let slots = build_slot_table(&codes);
            let distinct = codes.len();
            (
                RowIndex::Sparse {
                    codes: codes.into(),
                    row_offsets: row_offsets.into(),
                    slots: slots.into(),
                },
                positions,
                distinct,
            )
        };

        BankIndex {
            coder,
            stride: cfg.stride,
            rows,
            positions: positions.into(),
            indexed,
            fully_indexed: cfg.stride == 1 && policy_excluded == 0,
            bank_bytes: data.len(),
            distinct,
        }
    }

    /// Builds the index with no masking.
    pub fn build(bank: &Bank, cfg: IndexConfig) -> BankIndex {
        Self::build_filtered(bank, cfg, |_| false)
    }

    /// Reassembles an index from its raw arrays (the deserialization path
    /// of `persist`), validating every structural invariant the rest of
    /// the system relies on. Returns a description of the first violation
    /// instead of constructing an index that would panic (or silently
    /// corrupt step 2) later.
    pub(crate) fn from_raw_parts(
        w: usize,
        stride: usize,
        rows: RowIndex,
        positions: Section<u32>,
        indexed: MaskSet,
        fully_indexed: bool,
        bank_bytes: usize,
    ) -> Result<BankIndex, String> {
        if !(1..=MAX_SEED_LEN).contains(&w) {
            return Err(format!("seed length {w} outside 1..={MAX_SEED_LEN}"));
        }
        if stride == 0 {
            return Err("stride must be at least 1".into());
        }
        if fully_indexed && stride != 1 {
            // A strided build always policy-excludes windows; the claim is
            // internally contradictory and would wrongly enable step 2's
            // probe-free guard.
            return Err(format!("stride {stride} cannot be fully indexed"));
        }
        if bank_bytes >= u32::MAX as usize {
            return Err("bank length exceeds u32 position space".into());
        }
        let coder = SeedCoder::new(w);
        let num_seeds = coder.num_seeds();
        let distinct = match &rows {
            RowIndex::Dense { offsets } => {
                if offsets.len() != num_seeds + 1 {
                    return Err(format!(
                        "offsets array has {} slots, expected 4^{w} + 1 = {}",
                        offsets.len(),
                        num_seeds + 1
                    ));
                }
                if offsets[0] != 0 {
                    return Err("offsets[0] must be 0".into());
                }
                if offsets.windows(2).any(|p| p[0] > p[1]) {
                    return Err("offsets are not monotonically non-decreasing".into());
                }
                if *offsets.last().unwrap() as usize != positions.len() {
                    return Err(format!(
                        "last offset {} does not match {} positions",
                        offsets.last().unwrap(),
                        positions.len()
                    ));
                }
                offsets.windows(2).filter(|p| p[0] < p[1]).count()
            }
            RowIndex::Sparse {
                codes,
                row_offsets,
                slots,
            } => {
                if codes.len() > num_seeds {
                    return Err(format!(
                        "{} populated codes exceed the 4^{w} code space",
                        codes.len()
                    ));
                }
                if codes.windows(2).any(|p| p[0] >= p[1]) {
                    return Err("populated codes are not strictly ascending".into());
                }
                if let Some(&last) = codes.last() {
                    if last as usize >= num_seeds {
                        return Err(format!("code {last} outside the 4^{w} code space"));
                    }
                }
                if row_offsets.len() != codes.len() + 1 {
                    return Err(format!(
                        "row-offsets array has {} slots, expected {} populated codes + 1",
                        row_offsets.len(),
                        codes.len()
                    ));
                }
                if row_offsets[0] != 0 {
                    return Err("row_offsets[0] must be 0".into());
                }
                // Strictly increasing: a listed code owns at least one
                // posting (the build never materializes an empty row).
                if row_offsets.windows(2).any(|p| p[0] >= p[1]) {
                    return Err("row offsets are not strictly increasing".into());
                }
                if *row_offsets.last().unwrap() as usize != positions.len() {
                    return Err(format!(
                        "last row offset {} does not match {} positions",
                        row_offsets.last().unwrap(),
                        positions.len()
                    ));
                }
                // The slot table must be *exactly* the one this code list
                // produces: rebuild and compare. This is airtight against
                // arbitrary on-disk bytes — a table that passes cannot
                // hold out-of-range rows, duplicates, or broken probe
                // chains, so `sparse_row_of` always terminates and never
                // indexes out of bounds, even on a hostile mmap'd file.
                let expected = build_slot_table(codes);
                if slots.len() != expected.len() || slots.iter().ne(expected.iter()) {
                    return Err("slot table does not match its code list".into());
                }
                codes.len()
            }
        };
        if indexed.len() != bank_bytes {
            return Err(format!(
                "indexed bit-set covers {} positions, bank has {bank_bytes}",
                indexed.len()
            ));
        }
        if indexed.masked_count() != positions.len() {
            return Err(format!(
                "indexed bit-set has {} bits set for {} positions",
                indexed.masked_count(),
                positions.len()
            ));
        }
        // Per-row invariants: strictly ascending positions (step 2 and the
        // uniqueness argument assume the enumeration order), every position
        // inside the bank, every position present in the bit-set.
        let boundaries: &[u32] = match &rows {
            RowIndex::Dense { offsets } => offsets,
            RowIndex::Sparse { row_offsets, .. } => row_offsets,
        };
        for row in boundaries.windows(2) {
            let row = &positions[row[0] as usize..row[1] as usize];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err("row positions are not strictly ascending".into());
                }
            }
            for &p in row {
                if p as usize >= bank_bytes {
                    return Err(format!("position {p} outside bank of {bank_bytes}"));
                }
                if !indexed.contains(p as usize) {
                    return Err(format!("position {p} missing from the indexed bit-set"));
                }
            }
        }
        Ok(BankIndex {
            coder,
            stride,
            rows,
            positions,
            indexed,
            fully_indexed,
            bank_bytes,
            distinct,
        })
    }

    /// The seed coder used by this index.
    #[inline]
    pub fn coder(&self) -> SeedCoder {
        self.coder
    }

    /// Seed length `W`.
    #[inline]
    pub fn w(&self) -> usize {
        self.coder.w()
    }

    /// Sampling stride (1 = full, 2 = asymmetric).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The resolved row-lookup backend — [`IndexBackend::Dense`] or
    /// [`IndexBackend::Sparse`], never `Auto` (Auto is resolved at build
    /// time from the observed density).
    #[inline]
    pub fn backend(&self) -> IndexBackend {
        match self.rows {
            RowIndex::Dense { .. } => IndexBackend::Dense,
            RowIndex::Sparse { .. } => IndexBackend::Sparse,
        }
    }

    /// First occurrence of `code`, or `None` if the seed is absent.
    #[inline]
    pub fn first(&self, code: u32) -> Option<u32> {
        self.occurrences(code).first().copied()
    }

    /// All occurrences of `code` as a contiguous slice, in increasing
    /// position order.
    #[inline]
    pub fn occurrences(&self, code: u32) -> &[u32] {
        match &self.rows {
            RowIndex::Dense { offsets } => {
                let lo = offsets[code as usize] as usize;
                let hi = offsets[code as usize + 1] as usize;
                &self.positions[lo..hi]
            }
            RowIndex::Sparse {
                codes,
                row_offsets,
                slots,
            } => match sparse_row_of(codes, slots, code) {
                Some(row) => {
                    let lo = row_offsets[row] as usize;
                    let hi = row_offsets[row + 1] as usize;
                    &self.positions[lo..hi]
                }
                None => &[],
            },
        }
    }

    /// Number of occurrences of `code` — O(1) offset arithmetic (dense)
    /// or one hashed lookup (sparse).
    #[inline]
    pub fn count(&self, code: u32) -> usize {
        match &self.rows {
            RowIndex::Dense { offsets } => {
                (offsets[code as usize + 1] - offsets[code as usize]) as usize
            }
            RowIndex::Sparse {
                codes,
                row_offsets,
                slots,
            } => match sparse_row_of(codes, slots, code) {
                Some(row) => (row_offsets[row + 1] - row_offsets[row]) as usize,
                None => 0,
            },
        }
    }

    /// The dense CSR row-boundary array (`4^W + 1` entries), or `None`
    /// for a sparse-backed index. Prefer [`BankIndex::populated_in`] /
    /// [`BankIndex::count`] — they are backend-agnostic; this accessor
    /// exists for persistence and the dense-layout tests.
    #[inline]
    pub fn dense_offsets(&self) -> Option<&[u32]> {
        match &self.rows {
            RowIndex::Dense { offsets } => Some(offsets),
            RowIndex::Sparse { .. } => None,
        }
    }

    /// Iterates the *populated* codes in `range` in ascending code order,
    /// yielding `(code, occurrences)` with the occurrences slice exactly
    /// as [`BankIndex::occurrences`] would return it.
    ///
    /// This is the enumeration primitive step 2 schedules and drives on:
    /// dense skips empty rows while sweeping the range; sparse binary-
    /// searches the populated-code list for the range bounds and walks
    /// the rows directly — never touching the `4^W` code space.
    pub fn populated_in(&self, range: Range<u32>) -> PopulatedRows<'_> {
        match &self.rows {
            RowIndex::Dense { offsets } => PopulatedRows::Dense {
                offsets,
                positions: &self.positions,
                next: range.start,
                end: range
                    .end
                    .min(u32::try_from(self.coder.num_seeds()).unwrap_or(u32::MAX)),
            },
            RowIndex::Sparse {
                codes, row_offsets, ..
            } => {
                let lo = codes.partition_point(|&c| c < range.start);
                let hi = codes.partition_point(|&c| c < range.end);
                PopulatedRows::Sparse {
                    codes,
                    row_offsets,
                    positions: &self.positions,
                    row: lo,
                    end_row: hi,
                }
            }
        }
    }

    /// Iterates every populated code of the index in ascending order.
    pub fn populated(&self) -> PopulatedRows<'_> {
        let num = u32::try_from(self.coder.num_seeds()).unwrap_or(u32::MAX);
        self.populated_in(0..num)
    }

    /// Number of distinct populated codes — O(1), cached at build time.
    #[inline]
    pub fn distinct_codes(&self) -> usize {
        self.distinct
    }

    /// Total indexed positions.
    #[inline]
    pub fn indexed_positions(&self) -> usize {
        self.positions.len()
    }

    /// Whether a seed occurrence is anchored at global position `pos`
    /// (i.e. the window there is valid, unmasked and stride-aligned).
    #[inline]
    pub fn is_indexed(&self, pos: usize) -> bool {
        self.indexed.contains(pos)
    }

    /// Whether every *valid* window of the bank is indexed — exclusion
    /// provenance recorded at build time.
    ///
    /// `true` iff the stride is 1 and the mask predicate rejected no
    /// window the rolling scan yielded. Windows missing only for validity
    /// reasons (record boundaries, ambiguous bases) do not count: the
    /// order guard probes a position only after observing a run of `W`
    /// matching nucleotides there, which already implies the window is
    /// valid. Consequently, when both banks of a comparison are fully
    /// indexed, every guard probe would return `true` and the probe-free
    /// `OrderedFull` guard is behaviourally identical — step 2 uses this
    /// predicate to auto-select it.
    #[inline]
    pub fn is_fully_indexed(&self) -> bool {
        self.fully_indexed
    }

    /// The indexed-occurrence bit-set as raw 64-bit words (bit `p % 64`
    /// of word `p / 64` set ⟺ [`BankIndex::is_indexed`]`(p)`).
    ///
    /// The rolled order guard walks these words with a cursor that
    /// advances one bit per extension step, replacing two random-access
    /// probes per candidate seed with a shift (and one word load every 64
    /// steps).
    #[inline]
    pub fn indexed_words(&self) -> &[u64] {
        self.indexed.words()
    }

    /// Computes occupancy/footprint statistics — pure boundary
    /// arithmetic, no postings traversal.
    pub fn stats(&self) -> IndexStats {
        let boundaries: &[u32] = match &self.rows {
            RowIndex::Dense { offsets } => offsets,
            RowIndex::Sparse { row_offsets, .. } => row_offsets,
        };
        let mut max_chain = 0usize;
        for w in boundaries.windows(2) {
            max_chain = max_chain.max((w[1] - w[0]) as usize);
        }
        let index_bytes = self.heap_bytes();
        IndexStats {
            distinct_seeds: self.distinct,
            indexed_positions: self.positions.len(),
            max_chain_len: max_chain,
            index_bytes,
            total_bytes: index_bytes + self.bank_bytes,
        }
    }

    /// Heap bytes used by the index arrays (row lookup, postings and the
    /// indexed-position bit vector). For an mmap-backed index the mapped
    /// sections count zero — their bytes live in the shared, evictable
    /// page cache, not this process's heap; only the copied bit-set
    /// remains resident per attach.
    pub fn heap_bytes(&self) -> usize {
        let rows = match &self.rows {
            RowIndex::Dense { offsets } => offsets.heap_bytes(),
            RowIndex::Sparse {
                codes,
                row_offsets,
                slots,
            } => codes.heap_bytes() + row_offsets.heap_bytes() + slots.heap_bytes(),
        };
        rows + self.positions.heap_bytes() + self.indexed.heap_bytes()
    }

    /// Whether the row-lookup/postings sections are zero-copy views into
    /// a memory-mapped index file (see `oris_index::mmap`).
    pub fn is_mmap_backed(&self) -> bool {
        let rows = match &self.rows {
            RowIndex::Dense { offsets } => offsets.is_mapped(),
            RowIndex::Sparse {
                codes,
                row_offsets,
                slots,
            } => codes.is_mapped() || row_offsets.is_mapped() || slots.is_mapped(),
        };
        rows || self.positions.is_mapped()
    }

    /// The row-lookup structure (persistence needs the raw sections).
    #[inline]
    pub(crate) fn rows(&self) -> &RowIndex {
        &self.rows
    }

    /// The full postings array: every indexed position, grouped by seed
    /// code in ascending code order and ascending within each row.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Length of the bank (its global coordinate space, sentinels
    /// included) this index was built over. A persisted index can only be
    /// reattached to a bank of exactly this length.
    #[inline]
    pub fn bank_len(&self) -> usize {
        self.bank_bytes
    }
}

/// Iterator over the populated `(code, occurrences)` rows of a
/// [`BankIndex`] — see [`BankIndex::populated_in`].
#[derive(Debug)]
pub enum PopulatedRows<'a> {
    #[doc(hidden)]
    Dense {
        offsets: &'a [u32],
        positions: &'a [u32],
        next: u32,
        end: u32,
    },
    #[doc(hidden)]
    Sparse {
        codes: &'a [u32],
        row_offsets: &'a [u32],
        positions: &'a [u32],
        row: usize,
        end_row: usize,
    },
}

impl<'a> Iterator for PopulatedRows<'a> {
    type Item = (u32, &'a [u32]);

    fn next(&mut self) -> Option<(u32, &'a [u32])> {
        match self {
            PopulatedRows::Dense {
                offsets,
                positions,
                next,
                end,
            } => {
                while *next < *end {
                    let code = *next;
                    *next += 1;
                    let lo = offsets[code as usize] as usize;
                    let hi = offsets[code as usize + 1] as usize;
                    if hi > lo {
                        return Some((code, &positions[lo..hi]));
                    }
                }
                None
            }
            PopulatedRows::Sparse {
                codes,
                row_offsets,
                positions,
                row,
                end_row,
            } => {
                if *row >= *end_row {
                    return None;
                }
                let r = *row;
                *row += 1;
                let lo = row_offsets[r] as usize;
                let hi = row_offsets[r + 1] as usize;
                Some((codes[r], &positions[lo..hi]))
            }
        }
    }
}

/// One counting sort across the whole code space ([`BuildStrategy::FullSweep`]).
fn full_sweep_rows(num_seeds: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    // Count per code (stored at `offsets[code]` for now)...
    let mut offsets = vec![0u32; num_seeds + 1];
    for &(_, code) in pairs {
        offsets[code as usize] += 1;
    }
    // ...exclusive prefix-sum in place (`offsets[c]` = start of row
    // `c`; single accumulator, no second array)...
    let mut sum = 0u32;
    for slot in offsets.iter_mut() {
        let count = *slot;
        *slot = sum;
        sum += count;
    }
    // ...and scatter, using each row's start slot as its write cursor.
    // The forward walk preserves the ascending position order inside
    // every row.
    let mut positions = vec![0u32; pairs.len()];
    for &(pos, code) in pairs {
        let slot = &mut offsets[code as usize];
        positions[*slot as usize] = pos;
        *slot += 1;
    }
    // After the scatter `offsets[c]` holds the END of row `c`, which
    // is the start of row `c + 1`: shift right one slot to restore the
    // CSR convention.
    offsets.copy_within(0..num_seeds, 1);
    offsets[0] = 0;
    (offsets, positions)
}

/// Sparse-backend row assembly: a stable sort of the `(position, code)`
/// pairs by code groups the postings by ascending code while preserving
/// the scan's ascending position order inside each group — the exact
/// postings layout the dense scatter produces. One walk then extracts
/// the distinct codes and their row boundaries. Cost is
/// `O(postings · log postings)`, independent of `4^W`.
fn sparse_rows(mut pairs: Vec<(u32, u32)>) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    pairs.sort_by_key(|&(_, code)| code);
    let mut codes: Vec<u32> = Vec::new();
    let mut row_offsets: Vec<u32> = Vec::new();
    let mut positions: Vec<u32> = Vec::with_capacity(pairs.len());
    for &(pos, code) in &pairs {
        if codes.last() != Some(&code) {
            codes.push(code);
            row_offsets.push(
                u32::try_from(positions.len())
                    .expect("position count is u32-bounded by the bank-length guard"),
            );
        }
        positions.push(pos);
    }
    row_offsets.push(
        u32::try_from(positions.len())
            .expect("position count is u32-bounded by the bank-length guard"),
    );
    (codes, row_offsets, positions)
}

/// Number of *bases* of code prefix used as the partition key: up to
/// `4^RADIX_BASES = 1024` partitions, each owning a contiguous,
/// equal-width range of seed codes.
const RADIX_BASES: usize = 5;

/// Radix-partitioned counting sort ([`BuildStrategy::RadixPartitioned`]).
///
/// The pairs are first bucketed by the high `RADIX_BASES` bases of their
/// code (a stable counting sort over ≤ 1024 buckets, so each bucket keeps
/// its pairs in ascending position order). Each partition then owns two
/// disjoint slices — its stretch of the offsets array and its stretch of
/// the postings array — and fills them independently: empty partitions
/// write one constant (`fill`, a memset-speed sweep instead of the
/// loop-carried prefix-sum), non-empty partitions run the count /
/// prefix-sum / scatter dance locally and in parallel.
fn radix_rows(w: usize, num_seeds: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let part_bases = RADIX_BASES.min(w);
    let parts = 1usize << (2 * part_bases);
    // Codes per partition; exact because `part_bases <= w`.
    let width = num_seeds / parts;
    let shift = 2 * u32::try_from(w - part_bases).expect("seed width fits u32");

    // Stable bucketing by partition: histogram, exclusive prefix over the
    // (small) partition table, scatter.
    let mut part_counts = vec![0u32; parts];
    for &(_, code) in pairs {
        part_counts[(code >> shift) as usize] += 1;
    }
    let mut pbase = vec![0u32; parts + 1];
    for p in 0..parts {
        pbase[p + 1] = pbase[p] + part_counts[p];
    }
    let mut bucketed = vec![(0u32, 0u32); pairs.len()];
    let mut cursor = pbase.clone();
    for &pair in pairs {
        let p = (pair.1 >> shift) as usize;
        bucketed[cursor[p] as usize] = pair;
        cursor[p] += 1;
    }

    // Because postings are grouped by code and codes are grouped by
    // partition, partition `p`'s postings occupy exactly
    // `positions[pbase[p]..pbase[p+1]]` — the same extent as its bucketed
    // pairs. Split both output arrays into per-partition mutable slices so
    // the fills are independent.
    // Per-partition work unit: (partition id, offsets stretch, postings
    // stretch, this partition's bucketed pairs).
    type PartitionTask<'t> = (usize, &'t mut [u32], &'t mut [u32], &'t [(u32, u32)]);
    let mut offsets = vec![0u32; num_seeds + 1];
    let mut positions = vec![0u32; pairs.len()];
    {
        let mut tasks: Vec<PartitionTask<'_>> = Vec::with_capacity(parts);
        let mut off_rest: &mut [u32] = &mut offsets[..num_seeds];
        let mut pos_rest: &mut [u32] = &mut positions[..];
        for p in 0..parts {
            let (off_chunk, rest) = off_rest.split_at_mut(width);
            off_rest = rest;
            let (pos_chunk, rest) = pos_rest.split_at_mut(part_counts[p] as usize);
            pos_rest = rest;
            tasks.push((
                p,
                off_chunk,
                pos_chunk,
                &bucketed[pbase[p] as usize..pbase[p + 1] as usize],
            ));
        }
        tasks
            .into_par_iter()
            .for_each(|(p, off_chunk, pos_chunk, pair_chunk)| {
                let base = pbase[p];
                if pair_chunk.is_empty() {
                    // Every row in an empty partition starts (and ends) at
                    // the partition base.
                    off_chunk.fill(base);
                    return;
                }
                let code_lo = (p as u32) << shift;
                for &(_, code) in pair_chunk {
                    off_chunk[(code - code_lo) as usize] += 1;
                }
                let mut sum = base;
                for slot in off_chunk.iter_mut() {
                    let count = *slot;
                    *slot = sum;
                    sum += count;
                }
                for &(pos, code) in pair_chunk {
                    let slot = &mut off_chunk[(code - code_lo) as usize];
                    pos_chunk[(*slot - base) as usize] = pos;
                    *slot += 1;
                }
                // Same end-of-row → start-of-row shift as the full sweep,
                // local to the partition: the first row starts at the
                // partition base, and the last row's end is the next
                // partition's base (written by that partition's own fill).
                off_chunk.copy_within(0..width - 1, 1);
                off_chunk[0] = base;
            });
    }
    offsets[num_seeds] =
        u32::try_from(pairs.len()).expect("position count is u32-bounded by the bank-length guard");
    (offsets, positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;
    use proptest::prelude::*;

    fn bank_of(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    /// Brute-force reference: all (pos, code) with optional stride.
    fn reference_occurrences(bank: &Bank, w: usize, stride: usize) -> Vec<(u32, u32)> {
        let coder = SeedCoder::new(w);
        let data = bank.data();
        let mut out = Vec::new();
        for pos in 0..data.len().saturating_sub(w - 1) {
            if pos % stride != 0 {
                continue;
            }
            if let Some(code) = coder.encode(&data[pos..pos + w]) {
                out.push((pos as u32, code));
            }
        }
        out
    }

    #[test]
    fn finds_all_occurrences_sorted() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let coder = idx.coder();
        let code = coder.string_to_code("ACGT").unwrap();
        // positions are global (bank data starts with a sentinel at 0)
        assert_eq!(idx.occurrences(code), &[1, 5, 9]);
    }

    #[test]
    fn chains_do_not_cross_sequence_boundaries() {
        // "ACGT" at the end of s0 and start of s1 — the window spanning the
        // sentinel must not be indexed.
        let bank = bank_of(&["TTACGT", "ACGTTT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let code = idx.coder().string_to_code("ACGT").unwrap();
        let occ = idx.occurrences(code);
        assert_eq!(occ.len(), 2);
        // Every occurrence is fully inside one record.
        for &p in occ {
            let rec = bank.locate(p as usize).unwrap();
            assert!(p as usize + 4 <= bank.record(rec).end());
        }
    }

    #[test]
    fn ambiguous_windows_excluded() {
        let bank = bank_of(&["ACGNACG"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let code = idx.coder().string_to_code("ACG").unwrap();
        assert_eq!(idx.count(code), 2);
        let cgn = idx.coder().string_to_code("CGN");
        assert!(cgn.is_none());
    }

    #[test]
    fn absent_seed_has_no_occurrences() {
        let bank = bank_of(&["AAAA"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let code = idx.coder().string_to_code("GGG").unwrap();
        assert_eq!(idx.first(code), None);
        assert_eq!(idx.count(code), 0);
        assert!(idx.occurrences(code).is_empty());
    }

    #[test]
    fn asymmetric_stride_halves_positions() {
        let bank = bank_of(&[&"ACGT".repeat(100)]);
        let full = BankIndex::build(&bank, IndexConfig::full(8));
        let half = BankIndex::build(&bank, IndexConfig::asymmetric(8));
        assert!(half.indexed_positions() * 2 <= full.indexed_positions() + 2);
        assert!(half.indexed_positions() > 0);
    }

    #[test]
    fn masked_positions_excluded() {
        let bank = bank_of(&["ACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p < 3);
        let code = idx.coder().string_to_code("ACGT").unwrap();
        assert_eq!(idx.occurrences(code), &[5]);
    }

    /// The dense CSR footprint model: 4 bytes per offsets slot (4^W + 1),
    /// 4 bytes per *indexed* position, 1 bit per bank position for the
    /// occurrence set. The `stats_match_footprint_model_*` tests pin this
    /// model, so they force [`IndexBackend::Dense`] — Auto would pick
    /// sparse for these banks at W = 8.
    fn expected_index_bytes(bank: &Bank, w: usize, indexed_positions: usize) -> usize {
        let n = bank.data().len();
        4 * ((1usize << (2 * w)) + 1) + 4 * indexed_positions + n.div_ceil(64) * 8
    }

    /// The sparse footprint model: 4 bytes per populated code, 4·(k+1)
    /// row offsets, 4 bytes per slot-table entry, postings and bit-set
    /// as dense.
    fn expected_sparse_bytes(bank: &Bank, distinct: usize, indexed_positions: usize) -> usize {
        let n = bank.data().len();
        4 * distinct
            + 4 * (distinct + 1)
            + 4 * sparse_slot_count(distinct)
            + 4 * indexed_positions
            + n.div_ceil(64) * 8
    }

    #[test]
    fn stats_match_footprint_model_full() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]); // 16 kb
        let cfg = IndexConfig::full(8).with_backend(IndexBackend::Dense);
        let idx = BankIndex::build(&bank, cfg);
        let stats = idx.stats();
        let n = bank.data().len();
        assert_eq!(
            stats.index_bytes,
            expected_index_bytes(&bank, 8, stats.indexed_positions)
        );
        assert_eq!(stats.total_bytes, stats.index_bytes + n);
        assert!(stats.indexed_positions > 0);
        assert!(stats.distinct_seeds > 0);
        assert!(stats.max_chain_len >= 1);
        // Fully indexed: postings = one entry per valid window, the
        // paper's ≈5·N regime (4 bytes of postings + 1 byte of SEQ per
        // position).
        assert_eq!(stats.indexed_positions, bank.num_residues() - 7);
    }

    #[test]
    fn stats_match_footprint_model_masked() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]);
        let n = bank.data().len();
        let cfg = IndexConfig::full(8).with_backend(IndexBackend::Dense);
        // Mask the first half of the bank: the postings array must shrink
        // by (roughly) the masked windows, unlike the linked layout whose
        // `next` array stayed at 4·N bytes regardless.
        let idx = BankIndex::build_filtered(&bank, cfg, |p| p < n / 2);
        let stats = idx.stats();
        assert_eq!(
            stats.index_bytes,
            expected_index_bytes(&bank, 8, stats.indexed_positions)
        );
        let full = BankIndex::build(&bank, cfg).stats();
        assert!(stats.indexed_positions * 2 <= full.indexed_positions + 16);
        assert!(stats.index_bytes < full.index_bytes);
    }

    #[test]
    fn stats_match_footprint_model_asymmetric() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]);
        let cfg = IndexConfig::asymmetric(8).with_backend(IndexBackend::Dense);
        let idx = BankIndex::build(&bank, cfg);
        let stats = idx.stats();
        assert_eq!(
            stats.index_bytes,
            expected_index_bytes(&bank, 8, stats.indexed_positions)
        );
        // Half the windows → half the postings bytes (+offsets/bit-set,
        // which don't depend on the stride).
        let full = BankIndex::build(
            &bank,
            IndexConfig::full(8).with_backend(IndexBackend::Dense),
        )
        .stats();
        assert!(stats.indexed_positions * 2 <= full.indexed_positions + 2);
        assert_eq!(
            full.index_bytes - stats.index_bytes,
            4 * (full.indexed_positions - stats.indexed_positions)
        );
    }

    #[test]
    fn sparse_stats_match_sparse_footprint_model() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]);
        let cfg = IndexConfig::full(8).with_backend(IndexBackend::Sparse);
        let idx = BankIndex::build(&bank, cfg);
        assert_eq!(idx.backend(), IndexBackend::Sparse);
        let stats = idx.stats();
        assert_eq!(
            stats.index_bytes,
            expected_sparse_bytes(&bank, stats.distinct_seeds, stats.indexed_positions)
        );
        assert_eq!(stats.distinct_seeds, idx.distinct_codes());
    }

    #[test]
    fn sparse_footprint_wins_big_at_w11() {
        // The acceptance criterion of the backend: at W = 11 on a small
        // bank, sparse is ≤ 1/10 the dense footprint (dense pays the
        // 16.8 MB offsets array regardless of bank size).
        let bank = bank_of(&[&"ACGTTGCAAGGTTCCAATGC".repeat(500)]); // 10 kb
        let dense = BankIndex::build(
            &bank,
            IndexConfig::full(11).with_backend(IndexBackend::Dense),
        );
        let sparse = BankIndex::build(
            &bank,
            IndexConfig::full(11).with_backend(IndexBackend::Sparse),
        );
        let db = dense.stats().index_bytes;
        let sb = sparse.stats().index_bytes;
        assert!(
            sb * 10 <= db,
            "sparse {sb} bytes not ≤ 1/10 of dense {db} bytes"
        );
    }

    #[test]
    fn auto_picks_sparse_for_small_bank_large_w() {
        // 10 kb of bank cannot populate more than ~10k of the 4^11 ≈ 4.2M
        // codes: Auto must choose sparse.
        let bank = bank_of(&[&"ACGTTGCAAGGTTCCAATGC".repeat(500)]);
        let idx = BankIndex::build(&bank, IndexConfig::full(11));
        assert_eq!(idx.backend(), IndexBackend::Sparse);
    }

    #[test]
    fn auto_picks_dense_for_dense_code_space() {
        // 16 kb of bank at W = 4 (256 codes): essentially every code is
        // populated — Auto must choose dense.
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        assert_eq!(idx.backend(), IndexBackend::Dense);
    }

    #[test]
    fn empty_bank_builds() {
        let bank = Bank::empty();
        for backend in [
            IndexBackend::Dense,
            IndexBackend::Sparse,
            IndexBackend::Auto,
        ] {
            let idx = BankIndex::build(&bank, IndexConfig::full(4).with_backend(backend));
            assert_eq!(idx.indexed_positions(), 0);
            assert_eq!(idx.stats().distinct_seeds, 0);
            assert_eq!(idx.populated().count(), 0);
            // No window was policy-excluded (vacuously): the fast path is
            // safe.
            assert!(idx.is_fully_indexed());
        }
    }

    #[test]
    fn provenance_full_build_is_fully_indexed() {
        // Ambiguous bases and record boundaries exclude windows for
        // *validity* only — they must not disqualify the fast path.
        let bank = bank_of(&["ACGTNACGT", "TTGGCC"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        assert!(idx.is_fully_indexed());
    }

    #[test]
    fn provenance_mask_that_never_fires_is_fully_indexed() {
        // Provenance tracks what *happened*, not what was requested: a
        // predicate that rejects nothing leaves the index complete.
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |_| false);
        assert!(idx.is_fully_indexed());
    }

    #[test]
    fn provenance_masked_build_is_not_fully_indexed() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p == 1);
        assert!(!idx.is_fully_indexed());
    }

    #[test]
    fn provenance_strided_build_is_not_fully_indexed() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::asymmetric(4));
        assert!(!idx.is_fully_indexed());
    }

    #[test]
    fn indexed_words_agree_with_is_indexed() {
        let bank = bank_of(&["ACGTNACGTTTGG", "CCAA"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p % 5 == 0);
        let words = idx.indexed_words();
        for p in 0..bank.data().len() {
            let bit = words[p / 64] & (1u64 << (p % 64)) != 0;
            assert_eq!(bit, idx.is_indexed(p), "position {p}");
        }
    }

    #[test]
    fn offsets_are_monotonic_and_cover_positions() {
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGT"]);
        let idx = BankIndex::build(
            &bank,
            IndexConfig::full(4).with_backend(IndexBackend::Dense),
        );
        let off = idx.dense_offsets().expect("dense build has dense offsets");
        assert_eq!(off.len(), idx.coder().num_seeds() + 1);
        assert_eq!(off[0], 0);
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*off.last().unwrap() as usize, idx.indexed_positions());
    }

    #[test]
    fn sparse_has_no_dense_offsets() {
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGT"]);
        let idx = BankIndex::build(
            &bank,
            IndexConfig::full(4).with_backend(IndexBackend::Sparse),
        );
        assert!(idx.dense_offsets().is_none());
        assert_eq!(idx.backend(), IndexBackend::Sparse);
    }

    #[test]
    fn populated_in_respects_range_bounds() {
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGT"]);
        for backend in [IndexBackend::Dense, IndexBackend::Sparse] {
            let idx = BankIndex::build(&bank, IndexConfig::full(4).with_backend(backend));
            let num = idx.coder().num_seeds() as u32;
            let all: Vec<u32> = idx.populated().map(|(c, _)| c).collect();
            assert!(all.windows(2).all(|p| p[0] < p[1]), "ascending codes");
            assert_eq!(all.len(), idx.distinct_codes());
            // Split the space at an arbitrary boundary: the two halves
            // must partition the full walk.
            let mid = num / 3;
            let lo: Vec<u32> = idx.populated_in(0..mid).map(|(c, _)| c).collect();
            let hi: Vec<u32> = idx.populated_in(mid..num).map(|(c, _)| c).collect();
            let glued: Vec<u32> = lo.iter().chain(hi.iter()).copied().collect();
            assert_eq!(glued, all, "{backend:?}");
            // Row contents agree with occurrences().
            for (code, row) in idx.populated() {
                assert_eq!(row, idx.occurrences(code));
                assert!(!row.is_empty());
            }
        }
    }

    proptest! {
        /// The CSR index reproduces the brute-force occurrence list for
        /// every seed, in sorted order, for random banks and strides —
        /// under either backend.
        #[test]
        fn index_equals_bruteforce(
            seqs in proptest::collection::vec("[ACGTN]{0,40}", 1..4),
            w in 2usize..6,
            stride in 1usize..3,
            dense in 0usize..2,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let backend = if dense == 1 { IndexBackend::Dense } else { IndexBackend::Sparse };
            let cfg = IndexConfig { stride, ..IndexConfig::full(w) }.with_backend(backend);
            let idx = BankIndex::build(&bank, cfg);
            let mut expected = reference_occurrences(&bank, w, stride);
            expected.sort_by_key(|&(_, code)| code);

            let mut got: Vec<(u32, u32)> = Vec::new();
            for code in 0..idx.coder().num_seeds() as u32 {
                let occ = idx.occurrences(code);
                // rows are sorted ascending
                prop_assert!(occ.windows(2).all(|p| p[0] < p[1]));
                // count agrees with the slice
                prop_assert_eq!(idx.count(code), occ.len());
                got.extend(occ.iter().map(|&p| (p, code)));
            }
            let mut expected_sorted = expected.clone();
            expected_sorted.sort();
            got.sort();
            prop_assert_eq!(got, expected_sorted);
        }

        /// The sparse backend is observationally identical to the dense
        /// backend: same occurrences slice for every code, same postings
        /// array, same bit-set, provenance, distinct/max-chain stats and
        /// populated-row walk — only the footprint differs.
        #[test]
        fn sparse_backend_equals_dense(
            seqs in proptest::collection::vec("[ACGTN]{0,60}", 1..4),
            w in 2usize..8,
            stride in 1usize..3,
            mask_mod in 1usize..9,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let masked = |p: usize| mask_mod > 1 && p.is_multiple_of(mask_mod);
            let base = IndexConfig { stride, ..IndexConfig::full(w) };
            let dense = BankIndex::build_filtered(
                &bank, base.with_backend(IndexBackend::Dense), masked,
            );
            let sparse = BankIndex::build_filtered(
                &bank, base.with_backend(IndexBackend::Sparse), masked,
            );
            prop_assert_eq!(dense.positions(), sparse.positions());
            prop_assert_eq!(dense.indexed_words(), sparse.indexed_words());
            prop_assert_eq!(dense.is_fully_indexed(), sparse.is_fully_indexed());
            prop_assert_eq!(dense.distinct_codes(), sparse.distinct_codes());
            for code in 0..dense.coder().num_seeds() as u32 {
                prop_assert_eq!(dense.occurrences(code), sparse.occurrences(code));
                prop_assert_eq!(dense.count(code), sparse.count(code));
            }
            let dw: Vec<(u32, Vec<u32>)> =
                dense.populated().map(|(c, r)| (c, r.to_vec())).collect();
            let sw: Vec<(u32, Vec<u32>)> =
                sparse.populated().map(|(c, r)| (c, r.to_vec())).collect();
            prop_assert_eq!(dw, sw);
            let ds = dense.stats();
            let ss = sparse.stats();
            prop_assert_eq!(ds.distinct_seeds, ss.distinct_seeds);
            prop_assert_eq!(ds.indexed_positions, ss.indexed_positions);
            prop_assert_eq!(ds.max_chain_len, ss.max_chain_len);
        }

        /// The radix-partitioned build and the full-sweep fallback produce
        /// identical indexes — same offsets, postings, bit-set and
        /// provenance — for random banks, widths, strides and masks.
        /// (Dense-backend property: the strategy only affects the dense
        /// offsets assembly.)
        #[test]
        fn radix_build_equals_full_sweep(
            seqs in proptest::collection::vec("[ACGTN]{0,60}", 1..4),
            w in 2usize..8,
            stride in 1usize..3,
            mask_mod in 1usize..9,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let cfg = IndexConfig { stride, ..IndexConfig::full(w) }
                .with_backend(IndexBackend::Dense);
            let masked = |p: usize| mask_mod > 1 && p.is_multiple_of(mask_mod);
            let radix = BankIndex::build_filtered_with(
                &bank, cfg, masked, BuildStrategy::RadixPartitioned,
            );
            let sweep = BankIndex::build_filtered_with(
                &bank, cfg, masked, BuildStrategy::FullSweep,
            );
            prop_assert_eq!(radix.dense_offsets().unwrap(), sweep.dense_offsets().unwrap());
            prop_assert_eq!(radix.positions(), sweep.positions());
            prop_assert_eq!(radix.indexed_words(), sweep.indexed_words());
            prop_assert_eq!(radix.is_fully_indexed(), sweep.is_fully_indexed());
            prop_assert_eq!(radix.stats(), sweep.stats());
        }

        /// indexed_positions equals the number of valid windows.
        #[test]
        fn position_count_matches(seq in "[ACGT]{0,200}", w in 2usize..6) {
            let bank = bank_of(&[seq.as_str()]);
            let idx = BankIndex::build(&bank, IndexConfig::full(w));
            let expected = seq.len().saturating_sub(w - 1);
            prop_assert_eq!(idx.indexed_positions(), expected);
        }

        /// The slot table round-trips every inserted code and rejects
        /// absent ones, across random distinct code sets (collision
        /// probing included).
        #[test]
        fn slot_table_lookup_is_exact(
            raw in proptest::collection::vec(0u32..4096, 0..64),
        ) {
            let mut raw = raw;
            raw.sort_unstable();
            raw.dedup();
            let slots = build_slot_table(&raw);
            prop_assert_eq!(slots.len(), sparse_slot_count(raw.len()));
            for (row, &code) in raw.iter().enumerate() {
                prop_assert_eq!(sparse_row_of(&raw, &slots, code), Some(row));
            }
            for probe in 0..4096u32 {
                if raw.binary_search(&probe).is_err() {
                    prop_assert_eq!(sparse_row_of(&raw, &slots, probe), None);
                }
            }
        }
    }
}
