//! The bank index — Figure 2 of the paper, flattened to a CSR layout.
//!
//! The paper draws the occurrence index as a linked structure: a seed
//! dictionary `dict[4^W]` pointing at the first occurrence of each seed,
//! and a successor array `next[len(SEQ)]` chaining every occurrence to the
//! next one (`int *INDEX` in the paper). That shape is faithful to the
//! figure but hostile to step 2's inner loops: every `next` hop is a
//! dependent, unpredictable load across a `4·len(SEQ)`-byte array.
//!
//! This module stores the same information as a **compressed sparse row**
//! (CSR) inverted index instead:
//!
//! * `offsets[4^W + 1]` — row boundaries: the occurrences of seed `code`
//!   are `positions[offsets[code] .. offsets[code + 1]]`;
//! * `positions[indexed_positions]` — every occurrence, grouped by seed
//!   code and in **ascending position order** within each group.
//!
//! The build is a counting sort: one rolling scan collects the
//! `(position, code)` pairs, a count/prefix-sum pass sizes the rows, and a
//! forward scatter fills them. Because the scan visits positions left to
//! right, each row comes out sorted without a comparison sort —
//! `occurrences(code)` hands step 2 a contiguous, ascending `&[u32]` slice,
//! so the ordered enumeration streams through memory instead of chasing
//! pointers, `count` is O(1) arithmetic, and `stats` needs no chain walks.
//!
//! Memory model (heap bytes on top of the 1-byte-per-residue `SEQ` array):
//!
//! ```text
//! ≈ 4·(4^W + 1)          offsets
//! + 4·indexed_positions  postings
//! + len(SEQ)/8           indexed-occurrence bit-set
//! ```
//!
//! The linked layout cost `4·len(SEQ)` for `next` no matter how many
//! windows were actually indexed; the CSR postings cost `4·indexed_positions`,
//! so low-complexity masking and the asymmetric stride (section 3.4) now
//! shrink the index itself, not just the bit-set. For a fully indexed bank
//! (`indexed_positions ≈ len(SEQ)`) both layouts match the paper's
//! "approximately 5·N bytes" figure.
//!
//! The one-bit-per-position `indexed` set is retained for the ORIS order
//! guard: during extension the guard must ask "would the global enumeration
//! visit a seed at this position?" — a question about *positions*, which
//! the position-grouped CSR rows cannot answer in O(1). The guard reads the
//! set two ways: random-access probes via [`BankIndex::is_indexed`], and —
//! the hot path — a rolling word cursor over [`BankIndex::indexed_words`]
//! that walks with the extension (see `oris-align::ungapped`).
//!
//! **Exclusion provenance.** The build also records *why* positions are
//! absent from the index. Windows can be missing for two very different
//! reasons:
//!
//! * **window validity** — the window runs off the bank, crosses a record
//!   sentinel, or contains an ambiguous base. These exclusions are
//!   *implied by the guard's run-of-matches invariant*: the guard only
//!   probes a position after observing `W` consecutive matching
//!   nucleotides there, which is itself proof of a valid window, so a
//!   validity-excluded position can never be probed;
//! * **policy** — low-complexity masking or the asymmetric stride
//!   deliberately discarded a *valid* window. Only these exclusions make
//!   the bit-set observable to the guard.
//!
//! [`BankIndex::is_fully_indexed`] is true exactly when no policy
//! exclusion occurred (stride 1, no masked rejection). When both banks of
//! a comparison qualify, every guard probe would answer "yes" and step 2
//! selects the probe-free `OrderedFull` guard instead — the fast path for
//! the common unmasked full-stride case.

use oris_seqio::Bank;
use rayon::prelude::*;

use crate::mask::MaskSet;
use crate::section::Section;
use crate::seedcode::{RollingCoder, SeedCoder, MAX_SEED_LEN};

/// Options controlling index construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Seed length `W`.
    pub w: usize,
    /// Index only every `stride`-th valid window (1 = every window).
    ///
    /// `stride = 2` is the paper's *asymmetric indexing*: with 10-nt words
    /// sampled on one bank only, all 11-nt seed matches are still anchored
    /// while the index halves in size (section 3.4).
    pub stride: usize,
}

impl IndexConfig {
    /// Full indexing with seed length `w` (the common case).
    pub fn full(w: usize) -> IndexConfig {
        IndexConfig { w, stride: 1 }
    }

    /// Asymmetric (half-sampled) indexing with seed length `w`.
    pub fn asymmetric(w: usize) -> IndexConfig {
        IndexConfig { w, stride: 2 }
    }
}

/// How the CSR arrays are assembled from the rolling scan's
/// `(position, code)` pairs. Both strategies produce byte-identical
/// indexes (pinned by a proptest); they differ only in build cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BuildStrategy {
    /// One counting sort across the entire `4^W` code space: a count
    /// pass, a full-array exclusive prefix-sum, and a scatter. The
    /// prefix-sum is a serial, loop-carried sweep over all `4^W + 1`
    /// offsets slots even when the bank populates a handful of codes —
    /// the cost the ROADMAP flagged for small banks. Kept as the
    /// reference fallback and benchmark baseline.
    FullSweep,
    /// Radix-partitioned counting sort: codes are partitioned by their
    /// high bits, pairs are bucketed per partition (one stable counting
    /// sort), and each partition then counting-sorts its own slice of
    /// the offsets array independently. A partition with no occurrences
    /// fills its offsets slice with one constant (a vectorized
    /// `slice::fill`, not a data-dependent sum), so a small bank pays
    /// the serial prefix-sum only over the few partitions it touches;
    /// non-empty partitions are independent and processed in parallel.
    #[default]
    RadixPartitioned,
}

/// Occupancy and footprint statistics for a built index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of distinct seeds present.
    pub distinct_seeds: usize,
    /// Total indexed positions (postings).
    pub indexed_positions: usize,
    /// Length of the longest occurrence list.
    pub max_chain_len: usize,
    /// Heap bytes used by `offsets` + `positions` + the indexed bit-set
    /// (excludes the bank's own array).
    pub index_bytes: usize,
    /// Heap bytes including the underlying `SEQ` array — the paper's ≈5·N
    /// figure when the bank is fully indexed.
    pub total_bytes: usize,
}

/// The occurrence index over one bank, in CSR layout.
#[derive(Debug, Clone)]
pub struct BankIndex {
    coder: SeedCoder,
    stride: usize,
    /// Row boundaries: occurrences of `code` live at
    /// `positions[offsets[code] .. offsets[code + 1]]`. Owned for a fresh
    /// build; a zero-copy view into the index file for an mmap attach.
    offsets: Section<u32>,
    /// All indexed positions, grouped by seed code, ascending within a
    /// group. Same storage duality as `offsets`.
    positions: Section<u32>,
    /// One bit per bank position: is a seed occurrence anchored here?
    ///
    /// This answers the question the ORIS order guard must ask during
    /// extension: *would the global enumeration visit a seed at this
    /// position?* A smaller-code window that was excluded (masked as
    /// low-complexity, skipped by the asymmetric stride, or invalid) can
    /// never own an HSP, so it must not trigger an abort.
    indexed: MaskSet,
    /// Exclusion provenance: `true` iff no *policy* exclusion occurred
    /// during the build — stride 1 and no valid window rejected by the
    /// mask predicate. See [`BankIndex::is_fully_indexed`].
    fully_indexed: bool,
    bank_bytes: usize,
}

impl BankIndex {
    /// Builds the index for `bank` under `cfg`, optionally excluding
    /// positions for which `masked(position)` returns true (used by the
    /// low-complexity pre-filter of section 2.1: "W character words
    /// belonging to low-complexity regions are discarded from the index").
    pub fn build_filtered(
        bank: &Bank,
        cfg: IndexConfig,
        masked: impl Fn(usize) -> bool,
    ) -> BankIndex {
        Self::build_filtered_with(bank, cfg, masked, BuildStrategy::default())
    }

    /// Builds the index under an explicit [`BuildStrategy`] (the layout
    /// benches compare [`BuildStrategy::FullSweep`] against the default
    /// radix-partitioned build; both produce identical indexes).
    pub fn build_filtered_with(
        bank: &Bank,
        cfg: IndexConfig,
        masked: impl Fn(usize) -> bool,
        strategy: BuildStrategy,
    ) -> BankIndex {
        assert!(cfg.stride >= 1, "stride must be at least 1");
        let coder = SeedCoder::new(cfg.w);
        let data = bank.data();
        assert!(
            data.len() < u32::MAX as usize,
            "bank too large for u32 positions"
        );

        // Pass 1: one rolling scan collects the surviving (position, code)
        // pairs in ascending position order.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(data.len());
        let mut indexed = MaskSet::new(data.len());
        // Policy exclusions only: every window the rolling coder yields is
        // *valid* (inside one record, no ambiguous base), so any rejection
        // here is a stride/mask decision — the provenance that decides
        // whether the order guard may skip its bit-set probes entirely.
        let mut policy_excluded = 0usize;
        for (pos, code) in RollingCoder::new(coder, data) {
            if pos % cfg.stride != 0 || masked(pos) {
                policy_excluded += 1;
                continue;
            }
            // oris-lint: allow(narrow-cast) — guarded by the `data.len() < u32::MAX` assert above
            pairs.push((pos as u32, code));
            indexed.set(pos);
        }

        // Pass 2: counting sort into CSR rows.
        let (offsets, positions) = match strategy {
            BuildStrategy::FullSweep => full_sweep_rows(coder.num_seeds(), &pairs),
            BuildStrategy::RadixPartitioned => radix_rows(cfg.w, coder.num_seeds(), &pairs),
        };

        BankIndex {
            coder,
            stride: cfg.stride,
            offsets: offsets.into(),
            positions: positions.into(),
            indexed,
            fully_indexed: cfg.stride == 1 && policy_excluded == 0,
            bank_bytes: data.len(),
        }
    }

    /// Builds the index with no masking.
    pub fn build(bank: &Bank, cfg: IndexConfig) -> BankIndex {
        Self::build_filtered(bank, cfg, |_| false)
    }

    /// Reassembles an index from its raw arrays (the deserialization path
    /// of `persist`), validating every structural invariant the rest of
    /// the system relies on. Returns a description of the first violation
    /// instead of constructing an index that would panic (or silently
    /// corrupt step 2) later.
    pub(crate) fn from_raw_parts(
        w: usize,
        stride: usize,
        offsets: Section<u32>,
        positions: Section<u32>,
        indexed: MaskSet,
        fully_indexed: bool,
        bank_bytes: usize,
    ) -> Result<BankIndex, String> {
        if !(1..=MAX_SEED_LEN).contains(&w) {
            return Err(format!("seed length {w} outside 1..={MAX_SEED_LEN}"));
        }
        if stride == 0 {
            return Err("stride must be at least 1".into());
        }
        if fully_indexed && stride != 1 {
            // A strided build always policy-excludes windows; the claim is
            // internally contradictory and would wrongly enable step 2's
            // probe-free guard.
            return Err(format!("stride {stride} cannot be fully indexed"));
        }
        if bank_bytes >= u32::MAX as usize {
            return Err("bank length exceeds u32 position space".into());
        }
        let coder = SeedCoder::new(w);
        let num_seeds = coder.num_seeds();
        if offsets.len() != num_seeds + 1 {
            return Err(format!(
                "offsets array has {} slots, expected 4^{w} + 1 = {}",
                offsets.len(),
                num_seeds + 1
            ));
        }
        if offsets[0] != 0 {
            return Err("offsets[0] must be 0".into());
        }
        if offsets.windows(2).any(|p| p[0] > p[1]) {
            return Err("offsets are not monotonically non-decreasing".into());
        }
        if *offsets.last().unwrap() as usize != positions.len() {
            return Err(format!(
                "last offset {} does not match {} positions",
                offsets.last().unwrap(),
                positions.len()
            ));
        }
        if indexed.len() != bank_bytes {
            return Err(format!(
                "indexed bit-set covers {} positions, bank has {bank_bytes}",
                indexed.len()
            ));
        }
        if indexed.masked_count() != positions.len() {
            return Err(format!(
                "indexed bit-set has {} bits set for {} positions",
                indexed.masked_count(),
                positions.len()
            ));
        }
        // Per-row invariants: strictly ascending positions (step 2 and the
        // uniqueness argument assume the enumeration order), every position
        // inside the bank, every position present in the bit-set.
        for row in offsets.windows(2) {
            let row = &positions[row[0] as usize..row[1] as usize];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err("row positions are not strictly ascending".into());
                }
            }
            for &p in row {
                if p as usize >= bank_bytes {
                    return Err(format!("position {p} outside bank of {bank_bytes}"));
                }
                if !indexed.contains(p as usize) {
                    return Err(format!("position {p} missing from the indexed bit-set"));
                }
            }
        }
        Ok(BankIndex {
            coder,
            stride,
            offsets,
            positions,
            indexed,
            fully_indexed,
            bank_bytes,
        })
    }

    /// The seed coder used by this index.
    #[inline]
    pub fn coder(&self) -> SeedCoder {
        self.coder
    }

    /// Seed length `W`.
    #[inline]
    pub fn w(&self) -> usize {
        self.coder.w()
    }

    /// Sampling stride (1 = full, 2 = asymmetric).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// First occurrence of `code`, or `None` if the seed is absent.
    #[inline]
    pub fn first(&self, code: u32) -> Option<u32> {
        self.occurrences(code).first().copied()
    }

    /// All occurrences of `code` as a contiguous slice, in increasing
    /// position order.
    #[inline]
    pub fn occurrences(&self, code: u32) -> &[u32] {
        let lo = self.offsets[code as usize] as usize;
        let hi = self.offsets[code as usize + 1] as usize;
        &self.positions[lo..hi]
    }

    /// Number of occurrences of `code` — O(1) offset arithmetic.
    #[inline]
    pub fn count(&self, code: u32) -> usize {
        (self.offsets[code as usize + 1] - self.offsets[code as usize]) as usize
    }

    /// The CSR row-boundary array, `4^W + 1` entries: the occurrences of
    /// seed `code` are `positions()[offsets()[code] .. offsets()[code+1]]`.
    ///
    /// Step 2's work-balanced scheduler reads per-code occurrence counts
    /// straight from here (`offsets[c+1] − offsets[c]`) without touching
    /// the postings.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total indexed positions.
    #[inline]
    pub fn indexed_positions(&self) -> usize {
        self.positions.len()
    }

    /// Whether a seed occurrence is anchored at global position `pos`
    /// (i.e. the window there is valid, unmasked and stride-aligned).
    #[inline]
    pub fn is_indexed(&self, pos: usize) -> bool {
        self.indexed.contains(pos)
    }

    /// Whether every *valid* window of the bank is indexed — exclusion
    /// provenance recorded at build time.
    ///
    /// `true` iff the stride is 1 and the mask predicate rejected no
    /// window the rolling scan yielded. Windows missing only for validity
    /// reasons (record boundaries, ambiguous bases) do not count: the
    /// order guard probes a position only after observing a run of `W`
    /// matching nucleotides there, which already implies the window is
    /// valid. Consequently, when both banks of a comparison are fully
    /// indexed, every guard probe would return `true` and the probe-free
    /// `OrderedFull` guard is behaviourally identical — step 2 uses this
    /// predicate to auto-select it.
    #[inline]
    pub fn is_fully_indexed(&self) -> bool {
        self.fully_indexed
    }

    /// The indexed-occurrence bit-set as raw 64-bit words (bit `p % 64`
    /// of word `p / 64` set ⟺ [`BankIndex::is_indexed`]`(p)`).
    ///
    /// The rolled order guard walks these words with a cursor that
    /// advances one bit per extension step, replacing two random-access
    /// probes per candidate seed with a shift (and one word load every 64
    /// steps).
    #[inline]
    pub fn indexed_words(&self) -> &[u64] {
        self.indexed.words()
    }

    /// Computes occupancy/footprint statistics — pure offset arithmetic,
    /// no postings traversal.
    pub fn stats(&self) -> IndexStats {
        let mut distinct = 0usize;
        let mut max_chain = 0usize;
        for w in self.offsets.windows(2) {
            let len = (w[1] - w[0]) as usize;
            if len > 0 {
                distinct += 1;
                max_chain = max_chain.max(len);
            }
        }
        let index_bytes = self.heap_bytes();
        IndexStats {
            distinct_seeds: distinct,
            indexed_positions: self.positions.len(),
            max_chain_len: max_chain,
            index_bytes,
            total_bytes: index_bytes + self.bank_bytes,
        }
    }

    /// Heap bytes used by the index arrays (row offsets, postings and the
    /// indexed-position bit vector). For an mmap-backed index the mapped
    /// sections count zero — their bytes live in the shared, evictable
    /// page cache, not this process's heap; only the copied bit-set
    /// remains resident per attach.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.heap_bytes() + self.positions.heap_bytes() + self.indexed.heap_bytes()
    }

    /// Whether the offsets/postings sections are zero-copy views into a
    /// memory-mapped index file (see `oris_index::mmap`).
    pub fn is_mmap_backed(&self) -> bool {
        self.offsets.is_mapped() || self.positions.is_mapped()
    }

    /// The full postings array: every indexed position, grouped by seed
    /// code (row `code` = `positions()[offsets()[code]..offsets()[code+1]]`)
    /// and ascending within each row.
    #[inline]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Length of the bank (its global coordinate space, sentinels
    /// included) this index was built over. A persisted index can only be
    /// reattached to a bank of exactly this length.
    #[inline]
    pub fn bank_len(&self) -> usize {
        self.bank_bytes
    }
}

/// One counting sort across the whole code space ([`BuildStrategy::FullSweep`]).
fn full_sweep_rows(num_seeds: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    // Count per code (stored at `offsets[code]` for now)...
    let mut offsets = vec![0u32; num_seeds + 1];
    for &(_, code) in pairs {
        offsets[code as usize] += 1;
    }
    // ...exclusive prefix-sum in place (`offsets[c]` = start of row
    // `c`; single accumulator, no second array)...
    let mut sum = 0u32;
    for slot in offsets.iter_mut() {
        let count = *slot;
        *slot = sum;
        sum += count;
    }
    // ...and scatter, using each row's start slot as its write cursor.
    // The forward walk preserves the ascending position order inside
    // every row.
    let mut positions = vec![0u32; pairs.len()];
    for &(pos, code) in pairs {
        let slot = &mut offsets[code as usize];
        positions[*slot as usize] = pos;
        *slot += 1;
    }
    // After the scatter `offsets[c]` holds the END of row `c`, which
    // is the start of row `c + 1`: shift right one slot to restore the
    // CSR convention.
    offsets.copy_within(0..num_seeds, 1);
    offsets[0] = 0;
    (offsets, positions)
}

/// Number of *bases* of code prefix used as the partition key: up to
/// `4^RADIX_BASES = 1024` partitions, each owning a contiguous,
/// equal-width range of seed codes.
const RADIX_BASES: usize = 5;

/// Radix-partitioned counting sort ([`BuildStrategy::RadixPartitioned`]).
///
/// The pairs are first bucketed by the high `RADIX_BASES` bases of their
/// code (a stable counting sort over ≤ 1024 buckets, so each bucket keeps
/// its pairs in ascending position order). Each partition then owns two
/// disjoint slices — its stretch of the offsets array and its stretch of
/// the postings array — and fills them independently: empty partitions
/// write one constant (`fill`, a memset-speed sweep instead of the
/// loop-carried prefix-sum), non-empty partitions run the count /
/// prefix-sum / scatter dance locally and in parallel.
fn radix_rows(w: usize, num_seeds: usize, pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let part_bases = RADIX_BASES.min(w);
    let parts = 1usize << (2 * part_bases);
    // Codes per partition; exact because `part_bases <= w`.
    let width = num_seeds / parts;
    let shift = 2 * u32::try_from(w - part_bases).expect("seed width fits u32");

    // Stable bucketing by partition: histogram, exclusive prefix over the
    // (small) partition table, scatter.
    let mut part_counts = vec![0u32; parts];
    for &(_, code) in pairs {
        part_counts[(code >> shift) as usize] += 1;
    }
    let mut pbase = vec![0u32; parts + 1];
    for p in 0..parts {
        pbase[p + 1] = pbase[p] + part_counts[p];
    }
    let mut bucketed = vec![(0u32, 0u32); pairs.len()];
    let mut cursor = pbase.clone();
    for &pair in pairs {
        let p = (pair.1 >> shift) as usize;
        bucketed[cursor[p] as usize] = pair;
        cursor[p] += 1;
    }

    // Because postings are grouped by code and codes are grouped by
    // partition, partition `p`'s postings occupy exactly
    // `positions[pbase[p]..pbase[p+1]]` — the same extent as its bucketed
    // pairs. Split both output arrays into per-partition mutable slices so
    // the fills are independent.
    // Per-partition work unit: (partition id, offsets stretch, postings
    // stretch, this partition's bucketed pairs).
    type PartitionTask<'t> = (usize, &'t mut [u32], &'t mut [u32], &'t [(u32, u32)]);
    let mut offsets = vec![0u32; num_seeds + 1];
    let mut positions = vec![0u32; pairs.len()];
    {
        let mut tasks: Vec<PartitionTask<'_>> = Vec::with_capacity(parts);
        let mut off_rest: &mut [u32] = &mut offsets[..num_seeds];
        let mut pos_rest: &mut [u32] = &mut positions[..];
        for p in 0..parts {
            let (off_chunk, rest) = off_rest.split_at_mut(width);
            off_rest = rest;
            let (pos_chunk, rest) = pos_rest.split_at_mut(part_counts[p] as usize);
            pos_rest = rest;
            tasks.push((
                p,
                off_chunk,
                pos_chunk,
                &bucketed[pbase[p] as usize..pbase[p + 1] as usize],
            ));
        }
        tasks
            .into_par_iter()
            .for_each(|(p, off_chunk, pos_chunk, pair_chunk)| {
                let base = pbase[p];
                if pair_chunk.is_empty() {
                    // Every row in an empty partition starts (and ends) at
                    // the partition base.
                    off_chunk.fill(base);
                    return;
                }
                let code_lo = (p as u32) << shift;
                for &(_, code) in pair_chunk {
                    off_chunk[(code - code_lo) as usize] += 1;
                }
                let mut sum = base;
                for slot in off_chunk.iter_mut() {
                    let count = *slot;
                    *slot = sum;
                    sum += count;
                }
                for &(pos, code) in pair_chunk {
                    let slot = &mut off_chunk[(code - code_lo) as usize];
                    pos_chunk[(*slot - base) as usize] = pos;
                    *slot += 1;
                }
                // Same end-of-row → start-of-row shift as the full sweep,
                // local to the partition: the first row starts at the
                // partition base, and the last row's end is the next
                // partition's base (written by that partition's own fill).
                off_chunk.copy_within(0..width - 1, 1);
                off_chunk[0] = base;
            });
    }
    offsets[num_seeds] =
        u32::try_from(pairs.len()).expect("position count is u32-bounded by the bank-length guard");
    (offsets, positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::BankBuilder;
    use proptest::prelude::*;

    fn bank_of(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    /// Brute-force reference: all (pos, code) with optional stride.
    fn reference_occurrences(bank: &Bank, w: usize, stride: usize) -> Vec<(u32, u32)> {
        let coder = SeedCoder::new(w);
        let data = bank.data();
        let mut out = Vec::new();
        for pos in 0..data.len().saturating_sub(w - 1) {
            if pos % stride != 0 {
                continue;
            }
            if let Some(code) = coder.encode(&data[pos..pos + w]) {
                out.push((pos as u32, code));
            }
        }
        out
    }

    #[test]
    fn finds_all_occurrences_sorted() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let coder = idx.coder();
        let code = coder.string_to_code("ACGT").unwrap();
        // positions are global (bank data starts with a sentinel at 0)
        assert_eq!(idx.occurrences(code), &[1, 5, 9]);
    }

    #[test]
    fn chains_do_not_cross_sequence_boundaries() {
        // "ACGT" at the end of s0 and start of s1 — the window spanning the
        // sentinel must not be indexed.
        let bank = bank_of(&["TTACGT", "ACGTTT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let code = idx.coder().string_to_code("ACGT").unwrap();
        let occ = idx.occurrences(code);
        assert_eq!(occ.len(), 2);
        // Every occurrence is fully inside one record.
        for &p in occ {
            let rec = bank.locate(p as usize).unwrap();
            assert!(p as usize + 4 <= bank.record(rec).end());
        }
    }

    #[test]
    fn ambiguous_windows_excluded() {
        let bank = bank_of(&["ACGNACG"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let code = idx.coder().string_to_code("ACG").unwrap();
        assert_eq!(idx.count(code), 2);
        let cgn = idx.coder().string_to_code("CGN");
        assert!(cgn.is_none());
    }

    #[test]
    fn absent_seed_has_no_occurrences() {
        let bank = bank_of(&["AAAA"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(3));
        let code = idx.coder().string_to_code("GGG").unwrap();
        assert_eq!(idx.first(code), None);
        assert_eq!(idx.count(code), 0);
        assert!(idx.occurrences(code).is_empty());
    }

    #[test]
    fn asymmetric_stride_halves_positions() {
        let bank = bank_of(&[&"ACGT".repeat(100)]);
        let full = BankIndex::build(&bank, IndexConfig::full(8));
        let half = BankIndex::build(&bank, IndexConfig::asymmetric(8));
        assert!(half.indexed_positions() * 2 <= full.indexed_positions() + 2);
        assert!(half.indexed_positions() > 0);
    }

    #[test]
    fn masked_positions_excluded() {
        let bank = bank_of(&["ACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p < 3);
        let code = idx.coder().string_to_code("ACGT").unwrap();
        assert_eq!(idx.occurrences(code), &[5]);
    }

    /// The CSR footprint model: 4 bytes per offsets slot (4^W + 1), 4
    /// bytes per *indexed* position, 1 bit per bank position for the
    /// occurrence set.
    fn expected_index_bytes(bank: &Bank, w: usize, indexed_positions: usize) -> usize {
        let n = bank.data().len();
        4 * ((1usize << (2 * w)) + 1) + 4 * indexed_positions + n.div_ceil(64) * 8
    }

    #[test]
    fn stats_match_footprint_model_full() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]); // 16 kb
        let idx = BankIndex::build(&bank, IndexConfig::full(8));
        let stats = idx.stats();
        let n = bank.data().len();
        assert_eq!(
            stats.index_bytes,
            expected_index_bytes(&bank, 8, stats.indexed_positions)
        );
        assert_eq!(stats.total_bytes, stats.index_bytes + n);
        assert!(stats.indexed_positions > 0);
        assert!(stats.distinct_seeds > 0);
        assert!(stats.max_chain_len >= 1);
        // Fully indexed: postings = one entry per valid window, the
        // paper's ≈5·N regime (4 bytes of postings + 1 byte of SEQ per
        // position).
        assert_eq!(stats.indexed_positions, bank.num_residues() - 7);
    }

    #[test]
    fn stats_match_footprint_model_masked() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]);
        let n = bank.data().len();
        // Mask the first half of the bank: the postings array must shrink
        // by (roughly) the masked windows, unlike the linked layout whose
        // `next` array stayed at 4·N bytes regardless.
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(8), |p| p < n / 2);
        let stats = idx.stats();
        assert_eq!(
            stats.index_bytes,
            expected_index_bytes(&bank, 8, stats.indexed_positions)
        );
        let full = BankIndex::build(&bank, IndexConfig::full(8)).stats();
        assert!(stats.indexed_positions * 2 <= full.indexed_positions + 16);
        assert!(stats.index_bytes < full.index_bytes);
    }

    #[test]
    fn stats_match_footprint_model_asymmetric() {
        let bank = bank_of(&[&"ACGTTGCA".repeat(2000)]);
        let idx = BankIndex::build(&bank, IndexConfig::asymmetric(8));
        let stats = idx.stats();
        assert_eq!(
            stats.index_bytes,
            expected_index_bytes(&bank, 8, stats.indexed_positions)
        );
        // Half the windows → half the postings bytes (+offsets/bit-set,
        // which don't depend on the stride).
        let full = BankIndex::build(&bank, IndexConfig::full(8)).stats();
        assert!(stats.indexed_positions * 2 <= full.indexed_positions + 2);
        assert_eq!(
            full.index_bytes - stats.index_bytes,
            4 * (full.indexed_positions - stats.indexed_positions)
        );
    }

    #[test]
    fn empty_bank_builds() {
        let bank = Bank::empty();
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        assert_eq!(idx.indexed_positions(), 0);
        assert_eq!(idx.stats().distinct_seeds, 0);
        // No window was policy-excluded (vacuously): the fast path is safe.
        assert!(idx.is_fully_indexed());
    }

    #[test]
    fn provenance_full_build_is_fully_indexed() {
        // Ambiguous bases and record boundaries exclude windows for
        // *validity* only — they must not disqualify the fast path.
        let bank = bank_of(&["ACGTNACGT", "TTGGCC"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        assert!(idx.is_fully_indexed());
    }

    #[test]
    fn provenance_mask_that_never_fires_is_fully_indexed() {
        // Provenance tracks what *happened*, not what was requested: a
        // predicate that rejects nothing leaves the index complete.
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |_| false);
        assert!(idx.is_fully_indexed());
    }

    #[test]
    fn provenance_masked_build_is_not_fully_indexed() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p == 1);
        assert!(!idx.is_fully_indexed());
    }

    #[test]
    fn provenance_strided_build_is_not_fully_indexed() {
        let bank = bank_of(&["ACGTACGTACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::asymmetric(4));
        assert!(!idx.is_fully_indexed());
    }

    #[test]
    fn indexed_words_agree_with_is_indexed() {
        let bank = bank_of(&["ACGTNACGTTTGG", "CCAA"]);
        let idx = BankIndex::build_filtered(&bank, IndexConfig::full(4), |p| p % 5 == 0);
        let words = idx.indexed_words();
        for p in 0..bank.data().len() {
            let bit = words[p / 64] & (1u64 << (p % 64)) != 0;
            assert_eq!(bit, idx.is_indexed(p), "position {p}");
        }
    }

    #[test]
    fn offsets_are_monotonic_and_cover_positions() {
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGT"]);
        let idx = BankIndex::build(&bank, IndexConfig::full(4));
        let off = idx.offsets();
        assert_eq!(off.len(), idx.coder().num_seeds() + 1);
        assert_eq!(off[0], 0);
        assert!(off.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*off.last().unwrap() as usize, idx.indexed_positions());
    }

    proptest! {
        /// The CSR index reproduces the brute-force occurrence list for
        /// every seed, in sorted order, for random banks and strides.
        #[test]
        fn index_equals_bruteforce(
            seqs in proptest::collection::vec("[ACGTN]{0,40}", 1..4),
            w in 2usize..6,
            stride in 1usize..3,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let cfg = IndexConfig { w, stride };
            let idx = BankIndex::build(&bank, cfg);
            let mut expected = reference_occurrences(&bank, w, stride);
            expected.sort_by_key(|&(_, code)| code);

            let mut got: Vec<(u32, u32)> = Vec::new();
            for code in 0..idx.coder().num_seeds() as u32 {
                let occ = idx.occurrences(code);
                // rows are sorted ascending
                prop_assert!(occ.windows(2).all(|p| p[0] < p[1]));
                // count agrees with the slice
                prop_assert_eq!(idx.count(code), occ.len());
                got.extend(occ.iter().map(|&p| (p, code)));
            }
            let mut expected_sorted = expected.clone();
            expected_sorted.sort();
            got.sort();
            prop_assert_eq!(got, expected_sorted);
        }

        /// The radix-partitioned build and the full-sweep fallback produce
        /// identical indexes — same offsets, postings, bit-set and
        /// provenance — for random banks, widths, strides and masks.
        #[test]
        fn radix_build_equals_full_sweep(
            seqs in proptest::collection::vec("[ACGTN]{0,60}", 1..4),
            w in 2usize..8,
            stride in 1usize..3,
            mask_mod in 1usize..9,
        ) {
            let refs: Vec<&str> = seqs.iter().map(|s| s.as_str()).collect();
            let bank = bank_of(&refs);
            let cfg = IndexConfig { w, stride };
            let masked = |p: usize| mask_mod > 1 && p.is_multiple_of(mask_mod);
            let radix = BankIndex::build_filtered_with(
                &bank, cfg, masked, BuildStrategy::RadixPartitioned,
            );
            let sweep = BankIndex::build_filtered_with(
                &bank, cfg, masked, BuildStrategy::FullSweep,
            );
            prop_assert_eq!(radix.offsets(), sweep.offsets());
            prop_assert_eq!(radix.positions(), sweep.positions());
            prop_assert_eq!(radix.indexed_words(), sweep.indexed_words());
            prop_assert_eq!(radix.is_fully_indexed(), sweep.is_fully_indexed());
            prop_assert_eq!(radix.stats(), sweep.stats());
        }

        /// indexed_positions equals the number of valid windows.
        #[test]
        fn position_count_matches(seq in "[ACGT]{0,200}", w in 2usize..6) {
            let bank = bank_of(&[seq.as_str()]);
            let idx = BankIndex::build(&bank, IndexConfig::full(w));
            let expected = seq.len().saturating_sub(w - 1);
            prop_assert_eq!(idx.indexed_positions(), expected);
        }
    }
}
