//! The paper's literal Figure-2 linked layout, kept as a benchmark
//! baseline.
//!
//! [`LinkedBankIndex`] is the structure [`crate::BankIndex`] used before
//! the CSR flattening: `dict[4^W]` holds the first occurrence of each
//! seed, `next[len(SEQ)]` chains every occurrence to the following one
//! (the paper's `int *INDEX`), and chains are kept ascending by building
//! them with one reverse scan. Walking a chain performs one dependent load
//! per occurrence across a `4·len(SEQ)`-byte array — the access pattern
//! whose cost the `indexing`/`pipeline` benches and the
//! `bench_index_snapshot` tool quantify against the CSR slices.
//!
//! Production code must use [`crate::BankIndex`]; nothing outside benches
//! and tests should depend on this module.

use oris_seqio::Bank;

use crate::seedcode::{RollingCoder, SeedCoder};
use crate::structure::IndexConfig;

/// Sentinel marking an empty dictionary slot / end of a chain.
const EMPTY: u32 = u32::MAX;

/// The Figure-2 linked occurrence index (benchmark baseline).
#[derive(Debug, Clone)]
pub struct LinkedBankIndex {
    coder: SeedCoder,
    dict: Vec<u32>,
    next: Vec<u32>,
    indexed_positions: usize,
}

impl LinkedBankIndex {
    /// Builds the linked index for `bank` under `cfg` (no masking; the
    /// baseline exists for layout comparisons, not production use).
    pub fn build(bank: &Bank, cfg: IndexConfig) -> LinkedBankIndex {
        assert!(cfg.stride >= 1, "stride must be at least 1");
        let coder = SeedCoder::new(cfg.w);
        let data = bank.data();
        assert!(
            data.len() < EMPTY as usize,
            "bank too large for u32 positions"
        );

        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(data.len());
        for (pos, code) in RollingCoder::new(coder, data) {
            if pos % cfg.stride != 0 {
                continue;
            }
            // oris-lint: allow(narrow-cast) — guarded by the `data.len() < EMPTY` assert above
            pairs.push((pos as u32, code));
        }
        // Reverse scan: pushing each position onto the front of its seed's
        // chain leaves every chain ascending.
        let mut dict = vec![EMPTY; coder.num_seeds()];
        let mut next = vec![EMPTY; data.len()];
        for &(pos, code) in pairs.iter().rev() {
            next[pos as usize] = dict[code as usize];
            dict[code as usize] = pos;
        }

        LinkedBankIndex {
            coder,
            dict,
            next,
            indexed_positions: pairs.len(),
        }
    }

    /// The seed coder used by this index.
    #[inline]
    pub fn coder(&self) -> SeedCoder {
        self.coder
    }

    /// First occurrence of `code`, or `None`.
    #[inline]
    pub fn first(&self, code: u32) -> Option<u32> {
        let p = self.dict[code as usize];
        (p != EMPTY).then_some(p)
    }

    /// Occurrence of the same seed following position `pos`, if any — one
    /// dependent load into the `next` array, the hop the CSR layout
    /// eliminates.
    #[inline]
    pub fn next_occurrence(&self, pos: u32) -> Option<u32> {
        let p = self.next[pos as usize];
        (p != EMPTY).then_some(p)
    }

    /// Iterator walking the chain of `code` (ascending positions).
    pub fn occurrences(&self, code: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cursor = self.dict[code as usize];
        std::iter::from_fn(move || {
            if cursor == EMPTY {
                return None;
            }
            let pos = cursor;
            cursor = self.next[pos as usize];
            Some(pos)
        })
    }

    /// Total indexed positions.
    #[inline]
    pub fn indexed_positions(&self) -> usize {
        self.indexed_positions
    }

    /// Heap bytes used by `dict` + `next` — `4·4^W + 4·len(SEQ)` no matter
    /// how many windows were indexed.
    pub fn heap_bytes(&self) -> usize {
        self.dict.len() * 4 + self.next.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::BankIndex;
    use oris_seqio::BankBuilder;

    fn bank_of(seqs: &[&str]) -> Bank {
        let mut b = BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn linked_and_csr_agree_on_every_seed() {
        let bank = bank_of(&["ACGTACGTACGTTTGGCCAA", "TTACGTGGCCAATTACGT"]);
        for stride in [1usize, 2] {
            let cfg = IndexConfig {
                stride,
                ..IndexConfig::full(4)
            };
            let linked = LinkedBankIndex::build(&bank, cfg);
            let csr = BankIndex::build(&bank, cfg);
            assert_eq!(linked.indexed_positions(), csr.indexed_positions());
            for code in 0..csr.coder().num_seeds() as u32 {
                let chain: Vec<u32> = linked.occurrences(code).collect();
                assert_eq!(chain.as_slice(), csr.occurrences(code), "code {code}");
                assert_eq!(linked.first(code), csr.first(code));
            }
        }
    }

    #[test]
    fn linked_footprint_does_not_shrink_with_stride() {
        // The motivating asymmetry: linked `next` is sized by the bank, CSR
        // postings by the indexed windows.
        let bank = bank_of(&[&"ACGTTGCA".repeat(500)]);
        let full = LinkedBankIndex::build(&bank, IndexConfig::full(8));
        let half = LinkedBankIndex::build(&bank, IndexConfig::asymmetric(8));
        assert_eq!(full.heap_bytes(), half.heap_bytes());
        let csr_full = BankIndex::build(&bank, IndexConfig::full(8));
        let csr_half = BankIndex::build(&bank, IndexConfig::asymmetric(8));
        assert!(csr_half.heap_bytes() < csr_full.heap_bytes());
    }
}
