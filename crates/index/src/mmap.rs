//! Read-only memory mapping of index files.
//!
//! The sharded-database workload holds many persisted volumes and wants
//! them attached cheaply: [`map_index_file`] maps an index file once and
//! hands [`crate::BankIndex`] zero-copy views of its two big sections
//! (row offsets and postings), so attaching a volume costs one mapping
//! plus the small heap pieces (the bit-set, whose word array the order
//! guard walks with a cursor, is still copied — it is `len/8` bytes,
//! an order of magnitude below the postings). The file's whole-stream
//! checksum and every structural invariant are verified at attach time,
//! exactly as the heap-copy loader does, so a mapped index gives the
//! same corruption guarantees — the two loaders are equivalence-tested.
//!
//! The mapping is implemented with direct `mmap(2)`/`munmap(2)` calls
//! (declared `extern "C"` — this build environment has no crates.io
//! access, and the platform C library already exports them). On
//! non-Unix targets, or if the kernel refuses the mapping,
//! [`map_index_file`] falls back to [`crate::read_index_file`]'s heap
//! copy: callers always get a working index, mapped when possible.
//!
//! **Caveat** (inherent to file mappings, not this implementation): the
//! kernel does not snapshot the file. Truncating or rewriting an index
//! file while a process holds it mapped can deliver `SIGBUS` on access.
//! The `makedb`/`Database` layer writes volumes once and never rewrites
//! them in place, which is the discipline this module assumes.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

use crate::persist::PersistError;
use crate::structure::BankIndex;
use crate::IndexMeta;

/// A read-only, shared mapping of an entire file.
pub struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and never handed out
// mutably; see `Section`'s rationale.
unsafe impl Send for Mapping {}
// SAFETY: same rationale as `Send` above — all access is through `&self`
// into immutable pages, so concurrent shared references are sound.
unsafe impl Sync for Mapping {}

#[cfg(unix)]
mod sys {
    use std::os::unix::io::RawFd;

    // Minimal prototypes for the two calls used, matching the Linux/BSD
    // C library ABI. `mmap` takes a 6th `off_t` argument; declaring it
    // `i64` matches 64-bit `off_t` on the LP64 targets this runs on.
    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: RawFd,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;
}

impl Mapping {
    /// Maps `file` read-only in its entirety.
    ///
    /// Returns `Err` when the platform has no `mmap` (non-Unix) or the
    /// kernel refuses; callers are expected to fall back to a buffered
    /// read.
    #[cfg(unix)]
    pub fn of_file(file: &File) -> io::Result<Mapping> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        if len == 0 {
            // A zero-length mmap is EINVAL; an empty file is simply an
            // empty byte slice.
            return Ok(Mapping {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we hold
        // open; the result is checked against MAP_FAILED before use.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr.cast(),
            len,
        })
    }

    #[cfg(not(unix))]
    pub fn of_file(_file: &File) -> io::Result<Mapping> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is only implemented on Unix targets",
        ))
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mapping {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        if self.len == 0 {
            &[]
        } else {
            // SAFETY: `ptr` is a live PROT_READ mapping of `len` bytes,
            // unmapped only in Drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: exactly the region mmap returned; errors at unmap
            // time are unreportable and ignored (the standard idiom).
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

/// How a persisted index should be brought into memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttachMode {
    /// `mmap` the file and reference the offsets/postings sections
    /// zero-copy (falling back to [`AttachMode::HeapCopy`] if the
    /// platform cannot map, e.g. non-Unix or a misaligned section).
    #[default]
    Mmap,
    /// Read the file into fresh heap arrays ([`crate::read_index_file`]).
    HeapCopy,
}

/// Loads an index file under `mode`. Both modes verify the same header,
/// checksum and structural invariants and produce behaviourally
/// identical indexes; they differ only in where the two big array
/// sections live (page cache vs heap).
pub fn attach_index_file(
    path: impl AsRef<Path>,
    mode: AttachMode,
) -> Result<(BankIndex, IndexMeta), PersistError> {
    match mode {
        AttachMode::HeapCopy => crate::persist::read_index_file(path),
        AttachMode::Mmap => map_index_file(path),
    }
}

/// Maps an index file written by [`crate::write_index_file`] and builds a
/// [`BankIndex`] whose offsets and postings sections are zero-copy views
/// of the mapping. Falls back to the heap-copy loader when the platform
/// cannot map the file; returns the same typed errors as
/// [`crate::persist::read_index`] for malformed files.
pub fn map_index_file(path: impl AsRef<Path>) -> Result<(BankIndex, IndexMeta), PersistError> {
    let path = path.as_ref();
    let file = File::open(path).map_err(PersistError::Io)?;
    let map = match Mapping::of_file(&file) {
        Ok(m) => Arc::new(m),
        // Unsupported platform / kernel refusal: same bytes, heap copy.
        Err(_) => return crate::persist::read_index_file(path),
    };
    crate::persist::index_from_mapping(&map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("oris_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mapping_exposes_file_bytes() {
        let path = tmp_file("bytes", b"hello mapping");
        let map = Mapping::of_file(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapping");
        assert_eq!(map.len(), 13);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp_file("empty", b"");
        let map = Mapping::of_file(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, b"");
    }

    fn bank_of(seqs: &[&str]) -> oris_seqio::Bank {
        let mut b = oris_seqio::BankBuilder::new();
        for (i, s) in seqs.iter().enumerate() {
            b.push_str(&format!("s{i}"), s).unwrap();
        }
        b.finish()
    }

    #[test]
    fn mmap_attach_equals_heap_copy() {
        use crate::structure::{BankIndex, IndexBackend, IndexConfig};
        // The equivalence the database layer relies on: both attach modes
        // produce behaviourally identical indexes — same occurrences
        // slices, stats, provenance — differing only in where the big
        // sections live. Covered for both row-lookup backends.
        let bank = bank_of(&["ACGTACGTTTGGCCAAACGTNACGT", "TTGGCCAAGGTTACCA"]);
        for base in [IndexConfig::full(4), IndexConfig::asymmetric(5)] {
            for backend in [IndexBackend::Dense, IndexBackend::Sparse] {
                let cfg = base.with_backend(backend);
                let idx = BankIndex::build(&bank, cfg);
                assert_eq!(idx.backend(), backend);
                let meta = IndexMeta {
                    masked_fraction: 0.0,
                    filter_code: 1,
                    bank_hash: crate::persist::fnv1a(bank.data()),
                };
                let path = {
                    let mut buf = Vec::new();
                    crate::persist::write_index(&mut buf, &idx, &meta).unwrap();
                    tmp_file(
                        &format!("attach_w{}s{}b{:?}", cfg.w, cfg.stride, backend),
                        &buf,
                    )
                };
                let (mapped, m_meta) = attach_index_file(&path, AttachMode::Mmap).unwrap();
                let (copied, c_meta) = attach_index_file(&path, AttachMode::HeapCopy).unwrap();
                assert_eq!(m_meta, c_meta);
                assert_eq!(m_meta, meta);
                assert!(mapped.is_mmap_backed(), "unix target must really map");
                assert!(!copied.is_mmap_backed());
                assert_eq!(mapped.backend(), backend);
                assert_eq!(copied.backend(), backend);
                assert_eq!(mapped.dense_offsets(), copied.dense_offsets());
                assert_eq!(mapped.positions(), copied.positions());
                assert_eq!(mapped.indexed_words(), copied.indexed_words());
                assert_eq!(mapped.is_fully_indexed(), copied.is_fully_indexed());
                assert_eq!(mapped.bank_len(), copied.bank_len());
                assert_eq!(mapped.distinct_codes(), copied.distinct_codes());
                for code in 0..mapped.coder().num_seeds() as u32 {
                    assert_eq!(mapped.occurrences(code), copied.occurrences(code));
                }
                // The mapped index keeps the big sections off the heap.
                assert!(mapped.heap_bytes() < copied.heap_bytes());
                // A clone of a mapped index shares the mapping and stays
                // valid after the original is dropped.
                let cloned = mapped.clone();
                drop(mapped);
                assert_eq!(cloned.positions(), copied.positions());
                for code in 0..cloned.coder().num_seeds() as u32 {
                    assert_eq!(cloned.occurrences(code), copied.occurrences(code));
                }
            }
        }
    }

    #[test]
    fn both_loaders_reject_the_same_corruptions() {
        use crate::structure::{BankIndex, IndexBackend, IndexConfig};
        let bank = bank_of(&["ACGTACGTACGTTTGGCCAA"]);
        for backend in [IndexBackend::Dense, IndexBackend::Sparse] {
            let idx = BankIndex::build(&bank, IndexConfig::full(4).with_backend(backend));
            let mut clean = Vec::new();
            crate::persist::write_index(&mut clean, &idx, &IndexMeta::default()).unwrap();

            // Truncations, a payload flip, and trailing junk: the mapped
            // loader must return an error (never panic or accept) exactly
            // where the streaming loader does.
            let mut variants: Vec<Vec<u8>> = vec![];
            for cut in [0, 8, 40, clean.len() / 2, clean.len() - 1] {
                variants.push(clean[..cut].to_vec());
            }
            let mut flipped = clean.clone();
            let mid = clean.len() / 2;
            flipped[mid] ^= 0x04;
            variants.push(flipped);
            let mut trailing = clean.clone();
            trailing.push(0);
            variants.push(trailing);

            for (i, bytes) in variants.iter().enumerate() {
                let path = tmp_file(&format!("corrupt{backend:?}{i}"), bytes);
                let via_map = attach_index_file(&path, AttachMode::Mmap);
                let via_copy = attach_index_file(&path, AttachMode::HeapCopy);
                assert!(via_map.is_err(), "variant {i} must be rejected by mmap");
                assert!(via_copy.is_err(), "variant {i} must be rejected by copy");
            }
        }
    }

    #[test]
    fn both_loaders_reject_a_restamped_slot_table() {
        use crate::persist::fnv1a;
        use crate::structure::{BankIndex, IndexBackend, IndexConfig};
        // A corrupt sparse slot table with a *recomputed* checksum gets
        // past the hash; the structural rebuild-and-compare must reject
        // it in both attach modes (this is the mmap path's guarantee
        // that hostile file bytes can't cause unterminated probes).
        let bank = bank_of(&["ACGTACGTACGTTTGGCCAA"]);
        let idx = BankIndex::build(
            &bank,
            IndexConfig::full(4).with_backend(IndexBackend::Sparse),
        );
        let mut bytes = Vec::new();
        crate::persist::write_index(&mut bytes, &idx, &IndexMeta::default()).unwrap();
        let k = idx.distinct_codes();
        assert!(k >= 2);
        // Sections: header 76 → pad → codes(k) → pad → row_offsets(k+1)
        // → pad → slots. Zero the first slot word and restamp.
        let align = |at: usize| at + (8 - at % 8) % 8;
        let codes_at = align(76);
        let row_at = align(codes_at + 4 * k);
        let slots_at = align(row_at + 4 * (k + 1));
        bytes[slots_at..slots_at + 4].copy_from_slice(&0xDEAD_u32.to_le_bytes());
        let body = bytes.len() - 8;
        let h = fnv1a(&bytes[..body]);
        bytes[body..].copy_from_slice(&h.to_le_bytes());
        let path = tmp_file("restamped_slots", &bytes);
        for mode in [AttachMode::Mmap, AttachMode::HeapCopy] {
            match attach_index_file(&path, mode) {
                Err(PersistError::Corrupt(msg)) => {
                    assert!(msg.contains("slot table"), "{mode:?}: {msg}")
                }
                other => panic!("{mode:?} accepted a corrupt slot table: {other:?}"),
            }
        }
    }
}
