//! The paper's `codeSEED` encoding and rolling window updates.
//!
//! Section 2.1 defines, for a seed `S` of `W` characters:
//!
//! ```text
//! codeSEED(S) = sum_{i=0}^{W-1}  4^i * codeNT(S_i)
//! ```
//!
//! i.e. the *first* character of the word occupies the **low-order** 2 bits.
//! This is the opposite of the usual big-endian k-mer packing, and it
//! matters: the ordering `code(SA) < code(SB)` induced by this little-endian
//! layout is the one the uniqueness proof of step 2 relies on, and our
//! property tests compare codes produced by three independent routes
//! (direct sum, left-rolling, right-rolling).
//!
//! A window is *valid* only if all `W` bytes are concrete nucleotides
//! (codes 0–3); windows containing [`oris_seqio::AMBIG`] or
//! [`oris_seqio::SENTINEL`] have no code.

use oris_seqio::alphabet::is_nucleotide;

/// Maximum supported seed length.
///
/// `4^13` dictionary entries × 4 bytes = 256 MiB, the practical ceiling for
/// the direct-addressed dictionary on a laptop-scale machine. The paper uses
/// `W = 11` (and `W = 10` for the asymmetric mode).
pub const MAX_SEED_LEN: usize = 13;

/// Encoder/decoder for W-mer seed codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedCoder {
    w: usize,
    mask: u32,
}

impl SeedCoder {
    /// Creates a coder for seeds of `w` nucleotides.
    ///
    /// # Panics
    /// Panics unless `1 <= w <= MAX_SEED_LEN`.
    pub fn new(w: usize) -> SeedCoder {
        assert!(
            (1..=MAX_SEED_LEN).contains(&w),
            "seed length {w} outside 1..={MAX_SEED_LEN}"
        );
        SeedCoder {
            w,
            mask: if w == 16 {
                u32::MAX
            } else {
                (1u32 << (2 * w)) - 1
            },
        }
    }

    /// Seed length `W`.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Number of possible seeds, `4^W`.
    #[inline]
    pub fn num_seeds(&self) -> usize {
        1usize << (2 * self.w)
    }

    /// Bit mask covering `2·W` bits.
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Encodes the window starting at `window[0]`, or `None` if any of the
    /// `W` bytes is not a concrete nucleotide.
    ///
    /// # Panics
    /// Panics if `window.len() < W`.
    #[inline]
    pub fn encode(&self, window: &[u8]) -> Option<u32> {
        let mut code = 0u32;
        for (i, &c) in window.iter().enumerate().take(self.w) {
            if !is_nucleotide(c) {
                return None;
            }
            code |= (c as u32) << (2 * i);
        }
        Some(code)
    }

    /// Encodes assuming all bytes are valid nucleotides (used by hot loops
    /// that have already established validity).
    #[inline]
    pub fn encode_unchecked(&self, window: &[u8]) -> u32 {
        let mut code = 0u32;
        for (i, &c) in window.iter().enumerate().take(self.w) {
            debug_assert!(is_nucleotide(c));
            code |= (c as u32) << (2 * i);
        }
        code
    }

    /// Decodes a code back to `W` nucleotide code bytes.
    pub fn decode(&self, code: u32) -> Vec<u8> {
        assert!(
            code <= self.mask,
            "code {code} out of range for W={}",
            self.w
        );
        (0..self.w)
            // oris-lint: allow(narrow-cast) — masked to two bits, always < 256
            .map(|i| ((code >> (2 * i)) & 0b11) as u8)
            .collect()
    }

    /// Slides a window one position to the **right**: drops the first
    /// character (low bits) and appends `incoming` as the new last
    /// character (high bits).
    #[inline]
    pub fn roll_right(&self, code: u32, incoming: u8) -> u32 {
        debug_assert!(is_nucleotide(incoming));
        (code >> 2) | ((incoming as u32) << (2 * (self.w - 1)))
    }

    /// Slides a window one position to the **left**: the new first
    /// character `incoming` takes the low bits and the old last character
    /// falls off the high end.
    #[inline]
    pub fn roll_left(&self, code: u32, incoming: u8) -> u32 {
        debug_assert!(is_nucleotide(incoming));
        ((code << 2) & self.mask) | incoming as u32
    }

    /// Renders a code as an ASCII seed string (for diagnostics).
    pub fn code_to_string(&self, code: u32) -> String {
        self.decode(code)
            .into_iter()
            .map(oris_seqio::code_to_char)
            .collect()
    }

    /// Parses an ASCII seed of exactly `W` characters into a code.
    pub fn string_to_code(&self, s: &str) -> Option<u32> {
        if s.len() != self.w {
            return None;
        }
        let codes: Vec<u8> = s.bytes().map(oris_seqio::nuc_from_char).collect();
        self.encode(&codes)
    }
}

/// Incremental coder walking a code array left-to-right, skipping invalid
/// windows (those containing sentinels or ambiguous bases).
///
/// Yields `(position, code)` for every position `p` such that
/// `data[p..p+W]` is a valid seed window. Each byte is examined exactly
/// once: the code is maintained by [`SeedCoder::roll_right`] and a
/// run-length counter tracks how many consecutive valid nucleotides end at
/// the scan head, so any invalid byte simply resets the run.
#[derive(Debug)]
pub struct RollingCoder<'a> {
    coder: SeedCoder,
    data: &'a [u8],
    /// Scan head: index of the next byte to consume.
    head: usize,
    /// Number of consecutive valid nucleotides ending just before `head`.
    run: usize,
    /// Rolling code of the last `W` consumed bytes (meaningful once
    /// `run >= W`; always `< 4^W` by construction).
    code: u32,
}

impl<'a> RollingCoder<'a> {
    /// Starts a rolling scan of `data` with the given coder.
    pub fn new(coder: SeedCoder, data: &'a [u8]) -> RollingCoder<'a> {
        RollingCoder {
            coder,
            data,
            head: 0,
            run: 0,
            code: 0,
        }
    }
}

impl<'a> Iterator for RollingCoder<'a> {
    type Item = (usize, u32);

    #[inline]
    fn next(&mut self) -> Option<(usize, u32)> {
        let w = self.coder.w();
        while self.head < self.data.len() {
            let c = self.data[self.head];
            let consumed_at = self.head;
            self.head += 1;
            if !is_nucleotide(c) {
                self.run = 0;
                continue;
            }
            self.code = self.coder.roll_right(self.code, c);
            self.run += 1;
            if self.run >= w {
                return Some((consumed_at + 1 - w, self.code));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::alphabet::{AMBIG, SENTINEL};
    use oris_seqio::nuc_from_char;
    use proptest::prelude::*;

    fn codes(s: &str) -> Vec<u8> {
        s.bytes().map(nuc_from_char).collect()
    }

    #[test]
    fn encode_matches_paper_formula() {
        // codeSEED("CAG") with A=00,C=01,G=11:
        //   4^0*1 + 4^1*0 + 4^2*3 = 1 + 0 + 48 = 49
        let coder = SeedCoder::new(3);
        assert_eq!(coder.encode(&codes("CAG")), Some(49));
    }

    #[test]
    fn first_char_is_low_order() {
        let coder = SeedCoder::new(2);
        // "CA" = 1 + 4*0 = 1 ; "AC" = 0 + 4*1 = 4
        assert_eq!(coder.encode(&codes("CA")), Some(1));
        assert_eq!(coder.encode(&codes("AC")), Some(4));
    }

    #[test]
    fn all_a_is_zero_and_all_g_is_max() {
        let coder = SeedCoder::new(5);
        assert_eq!(coder.encode(&codes("AAAAA")), Some(0));
        assert_eq!(coder.encode(&codes("GGGGG")), Some(coder.mask()));
    }

    #[test]
    fn invalid_window_has_no_code() {
        let coder = SeedCoder::new(3);
        assert_eq!(coder.encode(&[0, AMBIG, 1]), None);
        assert_eq!(coder.encode(&[0, SENTINEL, 1]), None);
    }

    #[test]
    fn decode_roundtrip_exhaustive_w3() {
        let coder = SeedCoder::new(3);
        for code in 0..coder.num_seeds() as u32 {
            let word = coder.decode(code);
            assert_eq!(coder.encode(&word), Some(code));
        }
    }

    #[test]
    fn roll_right_matches_reencode() {
        let coder = SeedCoder::new(4);
        let data = codes("ACGTTGCA");
        let mut code = coder.encode(&data[0..4]).unwrap();
        for start in 1..=4 {
            code = coder.roll_right(code, data[start + 3]);
            assert_eq!(Some(code), coder.encode(&data[start..start + 4]));
        }
    }

    #[test]
    fn roll_left_matches_reencode() {
        let coder = SeedCoder::new(4);
        let data = codes("ACGTTGCA");
        let mut code = coder.encode(&data[4..8]).unwrap();
        for start in (0..4).rev() {
            code = coder.roll_left(code, data[start]);
            assert_eq!(Some(code), coder.encode(&data[start..start + 4]));
        }
    }

    #[test]
    fn string_code_roundtrip() {
        let coder = SeedCoder::new(8);
        let s = "AACTGTAA";
        let code = coder.string_to_code(s).unwrap();
        assert_eq!(coder.code_to_string(code), s);
    }

    #[test]
    fn rolling_coder_simple() {
        let coder = SeedCoder::new(3);
        let data = codes("ACGTA");
        let got: Vec<(usize, u32)> = RollingCoder::new(coder, &data).collect();
        assert_eq!(got.len(), 3);
        for (pos, code) in got {
            assert_eq!(Some(code), coder.encode(&data[pos..pos + 3]));
        }
    }

    #[test]
    fn rolling_coder_skips_ambiguous() {
        let coder = SeedCoder::new(3);
        let data = codes("ACGNACG");
        let got: Vec<usize> = RollingCoder::new(coder, &data).map(|(p, _)| p).collect();
        assert_eq!(got, vec![0, 4]);
    }

    #[test]
    fn rolling_coder_skips_sentinels() {
        let coder = SeedCoder::new(2);
        let mut data = codes("ACG");
        data.push(SENTINEL);
        data.extend(codes("TT"));
        let got: Vec<usize> = RollingCoder::new(coder, &data).map(|(p, _)| p).collect();
        assert_eq!(got, vec![0, 1, 4]);
    }

    #[test]
    fn rolling_coder_short_input() {
        let coder = SeedCoder::new(5);
        let data = codes("ACG");
        assert_eq!(RollingCoder::new(coder, &data).count(), 0);
    }

    #[test]
    #[should_panic]
    fn w_zero_rejected() {
        let _ = SeedCoder::new(0);
    }

    #[test]
    #[should_panic]
    fn w_too_large_rejected() {
        let _ = SeedCoder::new(MAX_SEED_LEN + 1);
    }

    proptest! {
        /// Rolling scan yields exactly the positions whose windows encode,
        /// with codes equal to direct encoding.
        #[test]
        fn rolling_equals_direct(data in proptest::collection::vec(0u8..6, 0..200), w in 1usize..7) {
            let coder = SeedCoder::new(w);
            let direct: Vec<(usize, u32)> = (0..data.len().saturating_sub(w - 1))
                .filter_map(|p| coder.encode(&data[p..p + w]).map(|c| (p, c)))
                .collect();
            let rolled: Vec<(usize, u32)> = RollingCoder::new(coder, &data).collect();
            prop_assert_eq!(direct, rolled);
        }

        /// decode ∘ encode is the identity on valid windows.
        #[test]
        fn decode_encode_roundtrip(word in proptest::collection::vec(0u8..4, 1..10)) {
            let coder = SeedCoder::new(word.len());
            let code = coder.encode(&word).unwrap();
            prop_assert_eq!(coder.decode(code), word);
        }

        /// The code order is a strict total order consistent with
        /// little-endian radix-4 interpretation.
        #[test]
        fn order_is_radix4_little_endian(a in proptest::collection::vec(0u8..4, 6), b in proptest::collection::vec(0u8..4, 6)) {
            let coder = SeedCoder::new(6);
            let ca = coder.encode(&a).unwrap();
            let cb = coder.encode(&b).unwrap();
            // Compare as little-endian radix-4 numbers.
            let va: u64 = a.iter().enumerate().map(|(i, &c)| (c as u64) << (2 * i)).sum();
            let vb: u64 = b.iter().enumerate().map(|(i, &c)| (c as u64) << (2 * i)).sum();
            prop_assert_eq!(ca.cmp(&cb), va.cmp(&vb));
        }
    }
}
