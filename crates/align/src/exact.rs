//! The optimal dynamic-programming family (paper references \[1\]\[2\]\[3\]).
//!
//! The paper's introduction frames ORIS against the exact algorithms:
//! Needleman–Wunsch (global, 1970), Smith–Waterman (local, 1981) and
//! Gotoh's affine-gap refinement (1982). They are implemented here in
//! full — quadratic time and space, with traceback — and serve two roles
//! in the reproduction:
//!
//! * **oracles**: heuristic results (HSPs, gapped X-drop extensions) are
//!   validated against the optimum on small instances;
//! * **completeness**: a downstream user gets the whole algorithm family
//!   the paper situates itself in.

use crate::cigar::AlignOp;
use crate::scoring::ScoringScheme;

const NEG: i32 = i32::MIN / 4;

/// An optimal alignment with explicit coordinates and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactAlignment {
    /// Optimal score.
    pub score: i32,
    /// Start offset on sequence 1 (0 for global alignments).
    pub start1: usize,
    /// Start offset on sequence 2.
    pub start2: usize,
    /// Operations, left to right.
    pub ops: Vec<AlignOp>,
}

impl ExactAlignment {
    /// Characters consumed on sequence 1.
    pub fn len1(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Match | AlignOp::Mismatch | AlignOp::Ins))
            .count()
    }

    /// Characters consumed on sequence 2.
    pub fn len2(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, AlignOp::Match | AlignOp::Mismatch | AlignOp::Del))
            .count()
    }
}

/// Needleman–Wunsch global alignment with linear gap costs.
///
/// Gap columns cost `scheme.gap_extend` each (no opening charge), matching
/// the original 1970 formulation with a linear gap model.
pub fn needleman_wunsch(s1: &[u8], s2: &[u8], scheme: &ScoringScheme) -> ExactAlignment {
    let n = s1.len();
    let m = s2.len();
    let g = scheme.gap_extend;
    let width = m + 1;
    let mut dp = vec![0i32; (n + 1) * width];
    // 0 = diag, 1 = up (consume s1), 2 = left (consume s2)
    let mut tb = vec![0u8; (n + 1) * width];

    for j in 1..=m {
        dp[j] = g * j as i32;
        tb[j] = 2;
    }
    for i in 1..=n {
        dp[i * width] = g * i as i32;
        tb[i * width] = 1;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = dp[(i - 1) * width + j - 1] + scheme.pair(s1[i - 1], s2[j - 1]);
            let up = dp[(i - 1) * width + j] + g;
            let left = dp[i * width + j - 1] + g;
            let (best, dir) = if diag >= up && diag >= left {
                (diag, 0u8)
            } else if up >= left {
                (up, 1u8)
            } else {
                (left, 2u8)
            };
            dp[i * width + j] = best;
            tb[i * width + j] = dir;
        }
    }

    let mut ops = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        match tb[i * width + j] {
            0 => {
                ops.push(if scheme.is_match(s1[i - 1], s2[j - 1]) {
                    AlignOp::Match
                } else {
                    AlignOp::Mismatch
                });
                i -= 1;
                j -= 1;
            }
            1 => {
                ops.push(AlignOp::Ins);
                i -= 1;
            }
            _ => {
                ops.push(AlignOp::Del);
                j -= 1;
            }
        }
    }
    ops.reverse();
    ExactAlignment {
        score: dp[n * width + m],
        start1: 0,
        start2: 0,
        ops,
    }
}

/// Smith–Waterman local alignment with linear gap costs.
pub fn smith_waterman(s1: &[u8], s2: &[u8], scheme: &ScoringScheme) -> ExactAlignment {
    let n = s1.len();
    let m = s2.len();
    let g = scheme.gap_extend;
    let width = m + 1;
    let mut dp = vec![0i32; (n + 1) * width];
    // 0 = stop (cell value 0), 1 = diag, 2 = up, 3 = left
    let mut tb = vec![0u8; (n + 1) * width];
    let mut best = 0i32;
    let mut best_ij = (0usize, 0usize);

    for i in 1..=n {
        for j in 1..=m {
            let diag = dp[(i - 1) * width + j - 1] + scheme.pair(s1[i - 1], s2[j - 1]);
            let up = dp[(i - 1) * width + j] + g;
            let left = dp[i * width + j - 1] + g;
            let mut val = 0i32;
            let mut dir = 0u8;
            if diag > val {
                val = diag;
                dir = 1;
            }
            if up > val {
                val = up;
                dir = 2;
            }
            if left > val {
                val = left;
                dir = 3;
            }
            dp[i * width + j] = val;
            tb[i * width + j] = dir;
            if val > best {
                best = val;
                best_ij = (i, j);
            }
        }
    }

    let mut ops = Vec::new();
    let (mut i, mut j) = best_ij;
    while tb[i * width + j] != 0 {
        match tb[i * width + j] {
            1 => {
                ops.push(if scheme.is_match(s1[i - 1], s2[j - 1]) {
                    AlignOp::Match
                } else {
                    AlignOp::Mismatch
                });
                i -= 1;
                j -= 1;
            }
            2 => {
                ops.push(AlignOp::Ins);
                i -= 1;
            }
            _ => {
                ops.push(AlignOp::Del);
                j -= 1;
            }
        }
    }
    ops.reverse();
    ExactAlignment {
        score: best,
        start1: i,
        start2: j,
        ops,
    }
}

/// Gotoh local alignment with affine gap costs (open + extend).
///
/// This is the model the heuristic gapped stage approximates, so it is the
/// oracle used to validate step 3 on small instances.
pub fn gotoh_local(s1: &[u8], s2: &[u8], scheme: &ScoringScheme) -> ExactAlignment {
    let n = s1.len();
    let m = s2.len();
    let (open, ext) = (scheme.gap_open, scheme.gap_extend);
    let width = m + 1;
    let idx = |i: usize, j: usize| i * width + j;

    let mut h = vec![0i32; (n + 1) * width];
    let mut e = vec![NEG; (n + 1) * width];
    let mut f = vec![NEG; (n + 1) * width];
    // H source: 0 stop, 1 diag-from-H, 2 diag-from-E, 3 diag-from-F
    let mut tbh = vec![0u8; (n + 1) * width];
    // E source: 0 open-from-H, 1 extend; F likewise
    let mut tbe = vec![0u8; (n + 1) * width];
    let mut tbf = vec![0u8; (n + 1) * width];

    let mut best = 0i32;
    let mut best_ij = (0usize, 0usize);

    for i in 1..=n {
        for j in 1..=m {
            let e_open = h[idx(i, j - 1)] + open + ext;
            let e_ext = e[idx(i, j - 1)] + ext;
            if e_open >= e_ext {
                e[idx(i, j)] = e_open;
                tbe[idx(i, j)] = 0;
            } else {
                e[idx(i, j)] = e_ext;
                tbe[idx(i, j)] = 1;
            }

            let f_open = h[idx(i - 1, j)] + open + ext;
            let f_ext = f[idx(i - 1, j)] + ext;
            if f_open >= f_ext {
                f[idx(i, j)] = f_open;
                tbf[idx(i, j)] = 0;
            } else {
                f[idx(i, j)] = f_ext;
                tbf[idx(i, j)] = 1;
            }

            let pair = scheme.pair(s1[i - 1], s2[j - 1]);
            let dh = h[idx(i - 1, j - 1)] + pair;
            let de = e[idx(i - 1, j - 1)] + pair;
            let df = f[idx(i - 1, j - 1)] + pair;
            let mut val = 0i32;
            let mut src = 0u8;
            if dh > val {
                val = dh;
                src = 1;
            }
            if de > val {
                val = de;
                src = 2;
            }
            if df > val {
                val = df;
                src = 3;
            }
            h[idx(i, j)] = val;
            tbh[idx(i, j)] = src;
            if val > best {
                best = val;
                best_ij = (i, j);
            }
        }
    }

    // Traceback over three matrices; state 0 = H, 1 = E, 2 = F.
    let mut ops = Vec::new();
    let (mut i, mut j) = best_ij;
    let mut state = 0u8;
    loop {
        match state {
            0 => {
                let src = tbh[idx(i, j)];
                if src == 0 {
                    break;
                }
                ops.push(if scheme.is_match(s1[i - 1], s2[j - 1]) {
                    AlignOp::Match
                } else {
                    AlignOp::Mismatch
                });
                i -= 1;
                j -= 1;
                state = src - 1; // 1→H, 2→E, 3→F
            }
            1 => {
                ops.push(AlignOp::Del);
                let src = tbe[idx(i, j)];
                j -= 1;
                state = if src == 1 { 1 } else { 0 };
            }
            _ => {
                ops.push(AlignOp::Ins);
                let src = tbf[idx(i, j)];
                i -= 1;
                state = if src == 1 { 2 } else { 0 };
            }
        }
    }
    ops.reverse();
    ExactAlignment {
        score: best,
        start1: i,
        start2: j,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cigar::AlignStats;
    use oris_seqio::nuc_from_char;
    use proptest::prelude::*;

    fn codes(s: &str) -> Vec<u8> {
        s.bytes().map(nuc_from_char).collect()
    }

    fn scheme() -> ScoringScheme {
        ScoringScheme::blastn()
    }

    #[test]
    fn nw_identical() {
        let a = codes("ACGTACGT");
        let out = needleman_wunsch(&a, &a, &scheme());
        assert_eq!(out.score, 8);
        assert!(out.ops.iter().all(|&o| o == AlignOp::Match));
    }

    #[test]
    fn nw_one_gap() {
        let a = codes("ACGTACGT");
        let b = codes("ACGACGT"); // T deleted
        let out = needleman_wunsch(&a, &b, &scheme());
        // 7 matches + one gap column at linear cost -2
        assert_eq!(out.score, 7 - 2);
        let st = AlignStats::from_ops(&out.ops);
        assert_eq!(st.consumed1, 8);
        assert_eq!(st.consumed2, 7);
    }

    #[test]
    fn nw_empty_vs_nonempty() {
        let a = codes("");
        let b = codes("ACG");
        let out = needleman_wunsch(&a, &b, &scheme());
        assert_eq!(out.score, -6);
        assert_eq!(out.ops, vec![AlignOp::Del; 3]);
    }

    #[test]
    fn sw_finds_embedded_homology() {
        // Shared core "ACGTACGTACG" (11 nt) embedded in dissimilar flanks.
        let a = codes("TTTTTTACGTACGTACGGGGGG");
        let b = codes("CCCCCACGTACGTACGCCCCCC");
        let out = smith_waterman(&a, &b, &scheme());
        assert_eq!(out.score, 11);
        assert_eq!(out.start1, 6);
        assert_eq!(out.start2, 5);
        assert_eq!(out.ops.len(), 11);
    }

    #[test]
    fn sw_no_similarity_is_empty() {
        let a = codes("AAAAAA");
        let b = codes("GGGGGG");
        let out = smith_waterman(&a, &b, &scheme());
        assert_eq!(out.score, 0);
        assert!(out.ops.is_empty());
    }

    #[test]
    fn gotoh_prefers_one_long_gap() {
        // Non-periodic 40-mer with "GG" inserted at its middle: bridging
        // with one affine gap (40 − 5 − 4 = 31) beats the best gapless
        // alignment (20). The optimum must contain exactly one opening of
        // length 2.
        let a = codes("ACGTTGCAATCGGATCCTAGGTACCATGGCAATTCGCGAT");
        let mut bv = a.clone();
        bv.splice(20..20, codes("GG"));
        let out = gotoh_local(&a, &bv, &scheme());
        let st = AlignStats::from_ops(&out.ops);
        assert_eq!(out.score, 40 - 9);
        assert_eq!(st.gap_opens, 1);
        assert_eq!(st.gap_columns, 2);
    }

    #[test]
    fn gotoh_equals_sw_when_gapless() {
        let a = codes("TTACGTACGTTT");
        let b = codes("GGACGTACGTGG");
        let g = gotoh_local(&a, &b, &scheme());
        let s = smith_waterman(&a, &b, &scheme());
        assert_eq!(g.score, s.score);
    }

    #[test]
    fn len_helpers() {
        let a = codes("ACGT");
        let b = codes("ACT");
        let out = needleman_wunsch(&a, &b, &scheme());
        assert_eq!(out.len1(), 4);
        assert_eq!(out.len2(), 3);
    }

    proptest! {
        /// NW traceback rescoring (linear gaps) equals the DP score.
        #[test]
        fn nw_traceback_consistent(s1 in "[ACGT]{0,25}", s2 in "[ACGT]{0,25}") {
            let a = codes(&s1);
            let b = codes(&s2);
            let sc = scheme();
            let out = needleman_wunsch(&a, &b, &sc);
            let st = AlignStats::from_ops(&out.ops);
            let linear = st.matches as i32 * sc.matsch
                + st.mismatches as i32 * sc.mismatch
                + st.gap_columns as i32 * sc.gap_extend;
            prop_assert_eq!(linear, out.score);
            prop_assert_eq!(st.consumed1, a.len());
            prop_assert_eq!(st.consumed2, b.len());
        }

        /// SW score is ≥ 0, ≤ min(len)·match, and the traceback rescoring
        /// agrees (linear gaps).
        #[test]
        fn sw_invariants(s1 in "[ACGT]{0,25}", s2 in "[ACGT]{0,25}") {
            let a = codes(&s1);
            let b = codes(&s2);
            let sc = scheme();
            let out = smith_waterman(&a, &b, &sc);
            prop_assert!(out.score >= 0);
            prop_assert!(out.score <= a.len().min(b.len()) as i32 * sc.matsch);
            let st = AlignStats::from_ops(&out.ops);
            let linear = st.matches as i32 * sc.matsch
                + st.mismatches as i32 * sc.mismatch
                + st.gap_columns as i32 * sc.gap_extend;
            prop_assert_eq!(linear, out.score);
        }

        /// Gotoh traceback rescoring (affine) equals the DP score, and
        /// Gotoh ≤ SW score when gap open cost is 0-extra... instead:
        /// affine optimum is ≤ linear optimum under same extend cost.
        #[test]
        fn gotoh_invariants(s1 in "[ACGT]{0,25}", s2 in "[ACGT]{0,25}") {
            let a = codes(&s1);
            let b = codes(&s2);
            let sc = scheme();
            let out = gotoh_local(&a, &b, &sc);
            prop_assert!(out.score >= 0);
            let st = AlignStats::from_ops(&out.ops);
            prop_assert_eq!(st.score(&sc), out.score);
            let sw = smith_waterman(&a, &b, &sc);
            // affine charges opening on top of extension → never better
            prop_assert!(out.score <= sw.score);
        }

        /// Local optimum never decreases when sequences are extended.
        #[test]
        fn sw_monotone_under_extension(s1 in "[ACGT]{1,20}", s2 in "[ACGT]{1,20}", extra in "[ACGT]{1,10}") {
            let a = codes(&s1);
            let b = codes(&s2);
            let mut a_ext = a.clone();
            a_ext.extend(codes(&extra));
            let sc = scheme();
            prop_assert!(smith_waterman(&a_ext, &b, &sc).score >= smith_waterman(&a, &b, &sc).score);
        }
    }
}
