//! Hit extension with the ordered-seed abort rule (paper section 2.2).
//!
//! Given a seed hit — the same W-mer at position `p1` of bank 1 and `p2` of
//! bank 2 — the extension walks left and right computing the running score
//! of the ungapped alignment through the seed, keeping the maximum, and
//! stopping when the score drops `xdrop` below the maximum (the classical
//! X-drop rule of BLAST).
//!
//! The ORIS twist is the **order guard**. While extending, a run counter
//! `L` tracks consecutive both-sequence matches; every time `L ≥ W`, the W
//! matching characters form *another* seed hit inside the same HSP. Seeds
//! are enumerated globally in increasing `codeSEED` order, so:
//!
//! * if a hit with a **strictly smaller** code exists inside the HSP, that
//!   seed already generated (or will generate) this HSP — abort;
//! * among equal-code hits, the **leftmost** is canonical: the left walk
//!   aborts on `code ≤ start_code`, the right walk only on
//!   `code < start_code`.
//!
//! The result: each HSP is emitted exactly once, by the leftmost occurrence
//! of its smallest contained seed, with no duplicate-suppression data
//! structure. Our property tests verify that invariant against a
//! brute-force generator (see `tests/` and the core crate).
//!
//! The rolling seed code is maintained over bank-1 characters only (codes
//! identify bank-1 windows; a *hit* additionally requires the run of
//! matches, which implies bank 2 agrees). Non-nucleotide bytes (ambiguous
//! bases) cannot be rolled; they also never match, so the run counter
//! resets and by the time `L` reaches `W` again the code has been fully
//! refreshed by `W` valid rolls — staleness is unobservable.

use oris_index::{BankIndex, SeedCoder};
use oris_seqio::alphabet::SENTINEL;

use crate::scoring::ScoringScheme;

/// Whether — and against which seed universe — the ordered-seed abort
/// rule is active.
///
/// The rule may only defer to a seed the global enumeration will actually
/// visit. When the banks are indexed with exclusions (low-complexity
/// masking discards words from the index, asymmetric sampling skips every
/// other bank-2 window), a smaller-code window that was excluded can
/// never own an HSP; aborting in its favour would silently lose the HSP.
/// [`OrderGuard::OrderedIndexed`] therefore consults both indexes'
/// occurrence bit-sets before aborting; [`OrderGuard::OrderedFull`] is
/// the fast path when every valid window is known to be indexed.
///
/// [`OrderGuard::None`] turns the extension into a plain BLAST-style
/// ungapped X-drop extension — used by the BLASTN baseline and by the A1
/// ablation (duplicate suppression via hashing instead of ordering).
#[derive(Debug, Clone, Copy)]
pub enum OrderGuard<'a> {
    /// No order checks; every hit extends fully.
    None,
    /// ORIS rule assuming full indexing on both banks: every candidate
    /// seed window is enumerated, so any smaller code aborts.
    OrderedFull,
    /// ORIS rule under index exclusions: a candidate aborts the extension
    /// only if **both** banks index an occurrence at its position.
    OrderedIndexed {
        /// Bank-1 index (masking exclusions).
        idx1: &'a BankIndex,
        /// Bank-2 index (masking and stride exclusions).
        idx2: &'a BankIndex,
    },
}

impl OrderGuard<'_> {
    /// Whether any ordering rule is active.
    #[inline]
    pub fn is_ordered(&self) -> bool {
        !matches!(self, OrderGuard::None)
    }

    /// Whether the candidate windows at `(pos1, pos2)` are enumerated by
    /// the global seed loop (and may therefore own an HSP).
    #[inline]
    fn candidate_enumerated(&self, pos1: usize, pos2: usize) -> bool {
        match self {
            OrderGuard::None => false,
            OrderGuard::OrderedFull => true,
            OrderGuard::OrderedIndexed { idx1, idx2 } => {
                idx1.is_indexed(pos1) && idx2.is_indexed(pos2)
            }
        }
    }
}

/// Parameters of the ungapped extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UngappedParams {
    /// Seed length `W`.
    pub w: usize,
    /// X-drop threshold (positive). Extension stops when the running score
    /// falls `xdrop` below the best score seen.
    pub xdrop: i32,
    /// Scoring scheme.
    pub scheme: ScoringScheme,
    /// Maximum residues explored on each side of the seed (the paper's
    /// `length` argument bounding the search space).
    pub max_span: usize,
}

impl UngappedParams {
    /// Paper-flavoured defaults for a given seed length: X-drop 20 with the
    /// BLASTN scheme, effectively unbounded span.
    pub fn new(w: usize) -> UngappedParams {
        UngappedParams {
            w,
            xdrop: 20,
            scheme: ScoringScheme::blastn(),
            max_span: usize::MAX / 4,
        }
    }
}

/// Result of extending one seed hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionOutcome {
    /// The order guard fired: this HSP belongs to a different seed.
    Aborted,
    /// The extension completed; the HSP extent is reported.
    Hsp {
        /// Total ungapped score, seed included.
        score: i32,
        /// Residues included to the left of the seed start.
        left: usize,
        /// Residues included to the right of the seed end.
        right: usize,
    },
}

/// Extends the seed hit `(p1, p2)` of width `params.w` in both directions.
///
/// `d1` and `d2` are bank code arrays (sentinel-framed: extensions stop at
/// sentinels and at array bounds). `start_code` must be the seed code of
/// `d1[p1..p1+w]` (equal to that of `d2[p2..p2+w]` by definition of a hit).
#[allow(clippy::too_many_arguments)]
pub fn extend_hit(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    guard: OrderGuard<'_>,
) -> ExtensionOutcome {
    debug_assert_eq!(coder.w(), params.w);
    debug_assert_eq!(
        coder.encode(&d1[p1..p1 + params.w]),
        Some(start_code),
        "start_code does not match the window at p1"
    );

    let (left_best, left_off) = match extend_left(d1, d2, p1, p2, start_code, coder, params, guard)
    {
        Some(r) => r,
        None => return ExtensionOutcome::Aborted,
    };
    let (right_best, right_off) =
        match extend_right(d1, d2, p1, p2, start_code, coder, params, guard) {
            Some(r) => r,
            None => return ExtensionOutcome::Aborted,
        };

    let seed_score = params.w as i32 * params.scheme.matsch;
    ExtensionOutcome::Hsp {
        score: left_best + right_best - seed_score,
        left: left_off,
        right: right_off,
    }
}

/// Left walk. Returns `(best_score_including_seed, residues_left_of_seed)`
/// or `None` on an order abort.
#[allow(clippy::too_many_arguments)]
fn extend_left(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    guard: OrderGuard<'_>,
) -> Option<(i32, usize)> {
    let scheme = &params.scheme;
    let w = params.w;
    let seed_score = w as i32 * scheme.matsch;
    let mut score = seed_score;
    let mut best = seed_score;
    let mut best_off = 0usize;
    let mut run = w; // consecutive matches from the current left edge
    let mut code = start_code;
    let ordered = guard.is_ordered();

    let mut l = 0usize;
    while best - score < params.xdrop && l < params.max_span {
        if p1 < l + 1 || p2 < l + 1 {
            break;
        }
        let c1 = d1[p1 - 1 - l];
        let c2 = d2[p2 - 1 - l];
        if c1 == SENTINEL || c2 == SENTINEL {
            break;
        }
        if c1 < 4 {
            code = coder.roll_left(code, c1);
        }
        if scheme.is_match(c1, c2) {
            score += scheme.matsch;
            run += 1;
            if score > best {
                best = score;
                best_off = l + 1;
            }
            // A window of W matches starting at the current position is a
            // hit; the leftmost-minimal-code *enumerated* seed owns the
            // HSP, so an equal-or-smaller code to the left means we are
            // not it. Windows skipped by asymmetric sampling cannot own
            // anything.
            if ordered
                && run >= w
                && code <= start_code
                && guard.candidate_enumerated(p1 - 1 - l, p2 - 1 - l)
            {
                return None;
            }
        } else {
            score += scheme.mismatch;
            run = 0;
        }
        l += 1;
    }
    Some((best, best_off))
}

/// Right walk. Returns `(best_score_including_seed, residues_right_of_seed)`
/// or `None` on an order abort.
#[allow(clippy::too_many_arguments)]
fn extend_right(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    guard: OrderGuard<'_>,
) -> Option<(i32, usize)> {
    let scheme = &params.scheme;
    let w = params.w;
    let seed_score = w as i32 * scheme.matsch;
    let mut score = seed_score;
    let mut best = seed_score;
    let mut best_off = 0usize;
    let mut run = w;
    let mut code = start_code;
    let ordered = guard.is_ordered();

    let mut l = 0usize;
    while best - score < params.xdrop && l < params.max_span {
        let i1 = p1 + w + l;
        let i2 = p2 + w + l;
        if i1 >= d1.len() || i2 >= d2.len() {
            break;
        }
        let c1 = d1[i1];
        let c2 = d2[i2];
        if c1 == SENTINEL || c2 == SENTINEL {
            break;
        }
        if c1 < 4 {
            code = coder.roll_right(code, c1);
        }
        if scheme.is_match(c1, c2) {
            score += scheme.matsch;
            run += 1;
            if score > best {
                best = score;
                best_off = l + 1;
            }
            // The window of W matches *ending* here starts right of the
            // originating seed; a strictly smaller *enumerated* code owns
            // the HSP. Equal codes do not abort: the leftmost equal seed
            // (us) is canonical.
            if ordered
                && run >= w
                && code < start_code
                && guard.candidate_enumerated(p1 + l + 1, p2 + l + 1)
            {
                return None;
            }
        } else {
            score += scheme.mismatch;
            run = 0;
        }
        l += 1;
    }
    Some((best, best_off))
}

/// Rescoring helper: total ungapped score of aligning `d1[a1..a1+len]`
/// against `d2[a2..a2+len]`, plus the number of identical pairs.
pub fn ungapped_score(
    d1: &[u8],
    d2: &[u8],
    a1: usize,
    a2: usize,
    len: usize,
    scheme: &ScoringScheme,
) -> (i32, usize) {
    let mut score = 0i32;
    let mut matches = 0usize;
    for i in 0..len {
        if scheme.is_match(d1[a1 + i], d2[a2 + i]) {
            score += scheme.matsch;
            matches += 1;
        } else {
            score += scheme.mismatch;
        }
    }
    (score, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::nuc_from_char;
    use proptest::prelude::*;

    fn codes(s: &str) -> Vec<u8> {
        s.bytes().map(nuc_from_char).collect()
    }

    /// Frame a code slice with sentinels, returning (data, offset_shift).
    fn framed(s: &str) -> Vec<u8> {
        let mut v = vec![SENTINEL];
        v.extend(codes(s));
        v.push(SENTINEL);
        v
    }

    fn params(w: usize, xdrop: i32) -> UngappedParams {
        UngappedParams {
            w,
            xdrop,
            scheme: ScoringScheme::blastn(),
            max_span: usize::MAX / 4,
        }
    }

    /// Find the seed position of `word` in framed data.
    fn find(d: &[u8], word: &[u8]) -> usize {
        d.windows(word.len()).position(|w| w == word).unwrap()
    }

    #[test]
    fn perfect_match_extends_fully() {
        let d1 = framed("TTTTACGTACGTTTTT");
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let word = codes("ACGT");
        let p = find(&d1, &word);
        let code = coder.encode(&word).unwrap();
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            code,
            coder,
            &params(4, 20),
            OrderGuard::None,
        );
        match out {
            ExtensionOutcome::Hsp { score, left, right } => {
                assert_eq!(score, 16); // whole 16-nt sequence matches
                assert_eq!(left, p - 1);
                assert_eq!(right, d1.len() - 1 - (p + 4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stops_at_sentinel() {
        let d1 = framed("ACGT");
        let d2 = framed("ACGT");
        let coder = SeedCoder::new(4);
        let code = coder.encode(&codes("ACGT")).unwrap();
        let out = extend_hit(
            &d1,
            &d2,
            1,
            1,
            code,
            coder,
            &params(4, 20),
            OrderGuard::None,
        );
        assert_eq!(
            out,
            ExtensionOutcome::Hsp {
                score: 4,
                left: 0,
                right: 0
            }
        );
    }

    #[test]
    fn xdrop_terminates_extension() {
        // seed then a long mismatch desert then a big match region: with a
        // small xdrop the extension must not reach the far region.
        let left = "ACGTACGTACGT";
        let d1 = framed(&format!("{left}GGGG{}", "ACGTACGTACGTACGTACGTACGT"));
        let d2 = framed(&format!("{left}CCCC{}", "ACGTACGTACGTACGTACGTACGT"));
        let coder = SeedCoder::new(4);
        let code = coder.encode(&codes("ACGT")).unwrap();
        // seed at start of the shared left block (position 1)
        let out = extend_hit(&d1, &d2, 1, 1, code, coder, &params(4, 5), OrderGuard::None);
        match out {
            ExtensionOutcome::Hsp { right, .. } => {
                // right extension covers the remaining 8 matching chars of
                // `left` then hits the 4-mismatch desert: 4 * -3 = -12 < -5
                // so it stops inside the desert; the far region is not
                // reached (which would have made right ≥ 12+24).
                assert!(right <= 8 + 2, "right = {right}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ordered_guard_aborts_on_smaller_seed_left() {
        // "AAAA" (code 0, minimal) sits left of "CCCC" inside one perfect
        // HSP: extension from CCCC must abort.
        let s = "TTGGAAAACCCCGGTT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p = find(&d1, &codes("CCCC"));
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert_eq!(out, ExtensionOutcome::Aborted);
    }

    #[test]
    fn ordered_guard_aborts_on_smaller_seed_right() {
        let s = "TTGGCCCCAAAAGGTT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p = find(&d1, &codes("CCCC"));
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert_eq!(out, ExtensionOutcome::Aborted);
    }

    #[test]
    fn minimal_seed_survives() {
        // From the smallest seed (AAAA here) the extension must complete.
        let s = "TTGGAAAACCCCGGTT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let aaaa = coder.encode(&codes("AAAA")).unwrap();
        let p = find(&d1, &codes("AAAA"));
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            aaaa,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert!(matches!(out, ExtensionOutcome::Hsp { .. }), "{out:?}");
    }

    #[test]
    fn equal_code_leftmost_is_canonical() {
        // Two occurrences of the same minimal word (AAAA, code 0) inside
        // one HSP: the leftmost completes, the rightmost aborts (the left
        // rule uses ≤, the right rule uses <).
        let s = "TTAAAATTAAAATT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let aaaa = coder.encode(&codes("AAAA")).unwrap();
        let first = 3; // framed position of s[2..6]
        let second = 9; // framed position of s[8..12]
        assert_eq!(&d1[first..first + 4], codes("AAAA").as_slice());
        assert_eq!(&d1[second..second + 4], codes("AAAA").as_slice());
        let a = extend_hit(
            &d1,
            &d2,
            first,
            first,
            aaaa,
            coder,
            &params(4, 100),
            OrderGuard::OrderedFull,
        );
        let b = extend_hit(
            &d1,
            &d2,
            second,
            second,
            aaaa,
            coder,
            &params(4, 100),
            OrderGuard::OrderedFull,
        );
        assert!(matches!(a, ExtensionOutcome::Hsp { .. }), "{a:?}");
        assert_eq!(b, ExtensionOutcome::Aborted);
    }

    #[test]
    fn example_from_paper_generates_hsp_exactly_once() {
        // The paper's section-2.2 example: one ungapped alignment anchored
        // by both AACTGTAA and AATTGCTC (and several other 8-mers). With
        // the order guard, exactly ONE of all in-HSP seeds completes.
        let s1 = "ATATGATGTGCAACTGTAATTGCTCAGATTCTATG";
        let s2 = "ATATGATGTGCAACTGTAATTGCTCAGGTTCTCTG";
        let d1 = framed(s1);
        let d2 = framed(s2);
        let w = 8usize;
        let coder = SeedCoder::new(w);
        let mut completed = 0usize;
        let mut aborted = 0usize;
        for p in 1..d1.len() - w {
            if d1[p..p + w] != d2[p..p + w] {
                continue; // not a hit on the main diagonal
            }
            let Some(code) = coder.encode(&d1[p..p + w]) else {
                continue;
            };
            match extend_hit(
                &d1,
                &d2,
                p,
                p,
                code,
                coder,
                &params(8, 1000),
                OrderGuard::OrderedFull,
            ) {
                ExtensionOutcome::Hsp { .. } => completed += 1,
                ExtensionOutcome::Aborted => aborted += 1,
            }
        }
        // The common prefix is 27 nt: 20 hit seeds, one canonical.
        assert_eq!(completed, 1, "exactly one seed owns the HSP");
        assert!(aborted >= 19, "the other seeds abort (got {aborted})");
    }

    #[test]
    fn guard_ignores_seeds_broken_by_mismatch() {
        // d1 contains AAAA (code 0 — would trump the CCCC seed), but it is
        // fully mismatched on d2, so it is not a *hit* and must not abort
        // the extension. Every genuine hit window here has a code larger
        // than CCCC's (85).
        let s1 = "TTGTAAAAGTTCCCCTGT";
        let s2 = "TTGTGGGGGTTCCCCTGT";
        let d1 = framed(s1);
        let d2 = framed(s2);
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p1 = find(&d1, &codes("CCCC"));
        let p2 = find(&d2, &codes("CCCC"));
        assert_eq!(p1, p2);
        let out = extend_hit(
            &d1,
            &d2,
            p1,
            p2,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert!(matches!(out, ExtensionOutcome::Hsp { .. }), "{out:?}");
    }

    #[test]
    fn ungapped_score_counts_matches() {
        let d1 = codes("ACGTACGT");
        let d2 = codes("ACGAACGT");
        let (score, matches) = ungapped_score(&d1, &d2, 0, 0, 8, &ScoringScheme::blastn());
        assert_eq!(matches, 7);
        assert_eq!(score, 7 - 3);
    }

    /// Brute force: best ungapped extension through the seed with unlimited
    /// xdrop equals max over prefixes/suffixes.
    fn brute_best(
        d1: &[u8],
        d2: &[u8],
        p1: usize,
        p2: usize,
        w: usize,
        scheme: &ScoringScheme,
    ) -> i32 {
        let seed = w as i32 * scheme.matsch;
        // left prefix scores
        let mut best_left = 0;
        let mut acc = 0;
        let mut l = 1;
        while p1 >= l && p2 >= l {
            let (c1, c2) = (d1[p1 - l], d2[p2 - l]);
            if c1 == SENTINEL || c2 == SENTINEL {
                break;
            }
            acc += scheme.pair(c1, c2);
            best_left = best_left.max(acc);
            l += 1;
        }
        let mut best_right = 0;
        let mut acc = 0;
        let mut r = 0;
        while p1 + w + r < d1.len() && p2 + w + r < d2.len() {
            let (c1, c2) = (d1[p1 + w + r], d2[p2 + w + r]);
            if c1 == SENTINEL || c2 == SENTINEL {
                break;
            }
            acc += scheme.pair(c1, c2);
            best_right = best_right.max(acc);
            r += 1;
        }
        seed + best_left + best_right
    }

    proptest! {
        /// With a saturating X-drop and no order guard, the extension score
        /// equals the brute-force optimum of the through-seed ungapped
        /// alignment.
        #[test]
        fn unguarded_extension_is_optimal(
            s1 in "[ACGT]{20,60}",
            s2 in "[ACGT]{20,60}",
            off in 0usize..10,
        ) {
            let w = 4usize;
            // Plant a common seed so a hit exists.
            let mut a = s1.clone();
            let mut b = s2.clone();
            let seedword = "ACGT";
            let ia = 5 + off.min(a.len().saturating_sub(10));
            let ib = 5;
            a.replace_range(ia..ia + w, seedword);
            b.replace_range(ib..ib + w, seedword);
            let d1 = framed(&a);
            let d2 = framed(&b);
            let coder = SeedCoder::new(w);
            let code = coder.encode(&codes(seedword)).unwrap();
            let p1 = ia + 1; // +1 for the framing sentinel
            let p2 = ib + 1;
            let pars = UngappedParams { w, xdrop: i32::MAX / 4, scheme: ScoringScheme::blastn(), max_span: usize::MAX / 4 };
            match extend_hit(&d1, &d2, p1, p2, code, coder, &pars, OrderGuard::None) {
                ExtensionOutcome::Hsp { score, .. } => {
                    let expect = brute_best(&d1, &d2, p1, p2, w, &pars.scheme);
                    prop_assert_eq!(score, expect);
                }
                ExtensionOutcome::Aborted => prop_assert!(false, "unguarded extension aborted"),
            }
        }

        /// The reported extent re-scores to the reported score.
        #[test]
        fn extent_rescoring_consistent(s in "[ACGT]{30,80}") {
            let w = 5usize;
            let d1 = framed(&s);
            let d2 = d1.clone();
            let coder = SeedCoder::new(w);
            let p = 1 + s.len() / 3;
            if let Some(code) = coder.encode(&d1[p..p + w]) {
                let pars = UngappedParams { w, xdrop: 12, scheme: ScoringScheme::blastn(), max_span: usize::MAX / 4 };
                if let ExtensionOutcome::Hsp { score, left, right } =
                    extend_hit(&d1, &d2, p, p, code, coder, &pars, OrderGuard::None)
                {
                    let start = p - left;
                    let len = left + w + right;
                    let (rescore, _) = ungapped_score(&d1, &d2, start, start, len, &pars.scheme);
                    prop_assert_eq!(rescore, score);
                }
            }
        }
    }
}
