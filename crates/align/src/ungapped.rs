//! Hit extension with the ordered-seed abort rule (paper section 2.2).
//!
//! Given a seed hit — the same W-mer at position `p1` of bank 1 and `p2` of
//! bank 2 — the extension walks left and right computing the running score
//! of the ungapped alignment through the seed, keeping the maximum, and
//! stopping when the score drops `xdrop` below the maximum (the classical
//! X-drop rule of BLAST).
//!
//! The ORIS twist is the **order guard**. While extending, a run counter
//! `L` tracks consecutive both-sequence matches; every time `L ≥ W`, the W
//! matching characters form *another* seed hit inside the same HSP. Seeds
//! are enumerated globally in increasing `codeSEED` order, so:
//!
//! * if a hit with a **strictly smaller** code exists inside the HSP, that
//!   seed already generated (or will generate) this HSP — abort;
//! * among equal-code hits, the **leftmost** is canonical: the left walk
//!   aborts on `code ≤ start_code`, the right walk only on
//!   `code < start_code`.
//!
//! The result: each HSP is emitted exactly once, by the leftmost occurrence
//! of its smallest contained seed, with no duplicate-suppression data
//! structure. Our property tests verify that invariant against a
//! brute-force generator (see `tests/` and the core crate).
//!
//! # Guard specialization — the fast path and the rolled probe
//!
//! A candidate may only abort the extension if the global enumeration will
//! actually *visit* it, i.e. if its position is indexed on both banks. How
//! that question is answered is the hottest constant factor in step 2, and
//! the [`OrderGuard`] variants are specializations of it:
//!
//! * [`OrderGuard::OrderedFull`] — **the fast path.** When both banks are
//!   fully indexed (`BankIndex::is_fully_indexed`), every probe would
//!   answer "yes": a candidate is only considered after a run of `W`
//!   matching nucleotides, which already proves its window is valid, and
//!   with no masking or stride every valid window is enumerated. The
//!   guard therefore does *no memory access at all* — the two bit-set
//!   probes per candidate vanish from the inner loop.
//! * [`OrderGuard::OrderedIndexed`] — **the rolled guard** for masked or
//!   asymmetric indexes. Each walk direction carries a 64-bit register
//!   holding the *conjunction* of the two indexed bit-sets
//!   ([`oris_index::MaskSet::words`]) over a window of candidate
//!   positions. The register is gathered lazily at the first candidate of
//!   the walk and re-anchored at most once per 64 probed positions, so a
//!   probe is a subtract-shift-test on a register instead of two
//!   random-access loads; steps without a candidate never touch the guard
//!   at all. The bank-1 window halves depend only on `p1`, so step 2
//!   gathers them once per occurrence `a` ([`PreparedGuard`]) and shares
//!   them across every bank-2 partner `b` — hoisting the bank-1 word
//!   loads out of the `X2` inner loop entirely.
//! * [`OrderGuard::OrderedIndexedProbe`] — the pre-specialization
//!   behaviour (two random-access `is_indexed` probes per candidate),
//!   kept callable as the benchmark baseline so `bench_guard` can measure
//!   what the rolled representation buys.
//!
//! All three are monomorphized through the private `GuardWalk` trait: the
//! extension loops compile once per guard shape with the guard logic
//! inlined, so [`OrderGuard::None`] (the BLASTN baseline) and the fast
//! path pay nothing for the machinery.
//!
//! The rolling seed code is maintained over bank-1 characters only (codes
//! identify bank-1 windows; a *hit* additionally requires the run of
//! matches, which implies bank 2 agrees). Non-nucleotide bytes (ambiguous
//! bases) cannot be rolled; they also never match, so the run counter
//! resets and by the time `L` reaches `W` again the code has been fully
//! refreshed by `W` valid rolls — staleness is unobservable.

use oris_index::{BankIndex, SeedCoder};
use oris_seqio::alphabet::SENTINEL;

use crate::scoring::ScoringScheme;

/// Whether — and against which seed universe — the ordered-seed abort
/// rule is active.
///
/// The rule may only defer to a seed the global enumeration will actually
/// visit. When the banks are indexed with exclusions (low-complexity
/// masking discards words from the index, asymmetric sampling skips every
/// other bank-2 window), a smaller-code window that was excluded can
/// never own an HSP; aborting in its favour would silently lose the HSP.
/// [`OrderGuard::OrderedIndexed`] therefore consults both indexes'
/// occurrence bit-sets before aborting (via rolling word cursors — see
/// the module docs); [`OrderGuard::OrderedFull`] is the probe-free fast
/// path when every valid window is known to be indexed
/// (`BankIndex::is_fully_indexed` on both banks).
///
/// [`OrderGuard::None`] turns the extension into a plain BLAST-style
/// ungapped X-drop extension — used by the BLASTN baseline and by the A1
/// ablation (duplicate suppression via hashing instead of ordering).
#[derive(Debug, Clone, Copy)]
pub enum OrderGuard<'a> {
    /// No order checks; every hit extends fully.
    None,
    /// ORIS rule assuming full indexing on both banks: every candidate
    /// seed window is enumerated, so any smaller code aborts — no bit-set
    /// access at all.
    OrderedFull,
    /// ORIS rule under index exclusions: a candidate aborts the extension
    /// only if **both** banks index an occurrence at its position.
    /// Membership rolls with the walk (one shift per step) instead of
    /// random-probing per candidate.
    OrderedIndexed {
        /// Bank-1 index (masking exclusions).
        idx1: &'a BankIndex,
        /// Bank-2 index (masking and stride exclusions).
        idx2: &'a BankIndex,
    },
    /// Same rule and output as [`OrderGuard::OrderedIndexed`], answered
    /// with the pre-specialization representation: two random-access
    /// `is_indexed` bit-set probes per candidate seed. Kept callable as
    /// the benchmark baseline (`bench_guard`, `bench_index_snapshot`) so
    /// the rolled guard's win stays measurable; not used by production
    /// paths.
    OrderedIndexedProbe {
        /// Bank-1 index (masking exclusions).
        idx1: &'a BankIndex,
        /// Bank-2 index (masking and stride exclusions).
        idx2: &'a BankIndex,
    },
}

impl OrderGuard<'_> {
    /// Whether any ordering rule is active.
    #[inline]
    pub fn is_ordered(&self) -> bool {
        !matches!(self, OrderGuard::None)
    }
}

/// Extracts the 64 bits *starting* at `pos` from a bit-set's backing
/// words: result bit `i` = set bit `pos + i`. Positions beyond the set
/// read as 0 — the extension loops bounds-check before consuming such
/// bits, so the zero-fill is never observed.
#[inline]
fn gather_up(words: &[u64], pos: usize) -> u64 {
    let w = pos / 64;
    let b = (pos % 64) as u32;
    let lo = words.get(w).copied().unwrap_or(0) >> b;
    if b == 0 {
        lo
    } else {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - b))
    }
}

/// Extracts the 64 bits *ending* at `pos`, left-aligned: result bit
/// `63 − i` = set bit `pos − i`. Positions below 0 read as 0 (same
/// never-consumed argument as [`gather_up`]).
#[inline]
fn gather_down(words: &[u64], pos: usize) -> u64 {
    let w = pos / 64;
    let b = (pos % 64) as u32;
    let hi = words.get(w).copied().unwrap_or(0) << (63 - b);
    if b == 63 {
        hi
    } else {
        // `wrapping_sub` + `get`: `w == 0` wraps far out of range and
        // reads as 0, like every other out-of-range position.
        let lower = words.get(w.wrapping_sub(1)).copied().unwrap_or(0);
        hi | (lower >> (b + 1))
    }
}

/// Monomorphized per-walk guard behaviour. One implementation per
/// [`OrderGuard`] shape (and walk direction, for the rolled register), so
/// the extension loops inline the guard logic with zero dispatch.
///
/// `enumerated` is the *only* hook: it is called lazily, inside the abort
/// condition's short-circuit (`run ≥ W` and the code comparison hold), so
/// a guard pays nothing on the overwhelming majority of walk steps where
/// no candidate seed exists. Implementations may memoize across calls —
/// within one walk, successive calls carry strictly increasing step
/// offsets.
trait GuardWalk {
    /// Compile-time: is the ordering rule active? When `false` the
    /// rolling seed code and the abort condition vanish from the
    /// compiled loop.
    const ORDERED: bool;
    /// Whether the candidate windows at `(pos1, pos2)` — the walk's
    /// current positions — are enumerated by the global seed loop.
    fn enumerated(&mut self, pos1: usize, pos2: usize) -> bool;
}

/// [`OrderGuard::None`]: no rule, nothing tracked.
struct NoWalk;

impl GuardWalk for NoWalk {
    const ORDERED: bool = false;
    #[inline]
    fn enumerated(&mut self, _: usize, _: usize) -> bool {
        false
    }
}

/// [`OrderGuard::OrderedFull`]: every candidate is enumerated.
struct FullWalk;

impl GuardWalk for FullWalk {
    const ORDERED: bool = true;
    #[inline]
    fn enumerated(&mut self, _: usize, _: usize) -> bool {
        true
    }
}

/// [`OrderGuard::OrderedIndexed`]: the rolled guard, walking down
/// (`UP = false`, left walk) or up (`UP = true`, right walk).
///
/// A probe is answered from a 64-bit register holding the *conjunction*
/// of the two indexed bit-sets over a window of walk positions, so a
/// probe is a subtract-shift-test on a register. The register is gathered
/// lazily, at the first probe of the walk — when that probe sits within
/// the first 64 steps (virtually always under a realistic X-drop), the
/// bank-1 half was already gathered once per occurrence by
/// [`PreparedGuard`] and only the bank-2 half is composed — and
/// re-gathered at most once per 64 probed positions. Walk steps without a
/// candidate seed never touch the guard at all, exactly like the probe
/// baseline, but candidate-dense stretches (long match runs, the repeat
/// case that dominates skewed banks) collapse 2 random loads per
/// candidate into 1 bit each.
struct RolledWalk<'a, const UP: bool> {
    words1: &'a [u64],
    words2: &'a [u64],
    /// The walk origin on bank 1 (the seed position `p1`): probes arrive
    /// at `origin1 ± k` and `k` is recovered from `pos1`.
    origin1: usize,
    /// Prepared bank-1 gather anchored at step 1 for this direction
    /// ([`gather_up`]`(words1, p1+1)` / [`gather_down`]`(words1, p1−1)`).
    half1: u64,
    /// Conjunction window; bit `k − base` (from bit 0 for `UP`, from bit
    /// 63 downward for `!UP`) answers the probe at step `k`.
    reg: u64,
    /// Step offset of the register anchor; 0 = not gathered yet (probes
    /// start at step 1).
    base: usize,
}

impl<'a, const UP: bool> RolledWalk<'a, UP> {
    #[inline]
    fn new(words1: &'a [u64], words2: &'a [u64], half1: u64, origin1: usize) -> Self {
        RolledWalk {
            words1,
            words2,
            origin1,
            half1,
            reg: 0,
            base: 0,
        }
    }

    /// Anchors the register so it covers step `k` (probe positions are
    /// valid bank positions — the walk bounds-checks before testing).
    #[cold]
    fn gather(&mut self, k: usize, pos1: usize, pos2: usize) {
        if self.base == 0 && k <= 64 {
            // First probe, within reach of the prepared bank-1 half:
            // anchor at step 1 and compose only the bank-2 side.
            let start2 = if UP {
                gather_up(self.words2, pos2 - (k - 1))
            } else {
                gather_down(self.words2, pos2 + (k - 1))
            };
            self.reg = self.half1 & start2;
            self.base = 1;
        } else {
            self.reg = if UP {
                gather_up(self.words1, pos1) & gather_up(self.words2, pos2)
            } else {
                gather_down(self.words1, pos1) & gather_down(self.words2, pos2)
            };
            self.base = k;
        }
    }
}

impl<const UP: bool> GuardWalk for RolledWalk<'_, UP> {
    const ORDERED: bool = true;
    #[inline]
    fn enumerated(&mut self, pos1: usize, pos2: usize) -> bool {
        let k = if UP {
            pos1 - self.origin1
        } else {
            self.origin1 - pos1
        };
        if self.base == 0 || k - self.base >= 64 {
            self.gather(k, pos1, pos2);
        }
        let off = (k - self.base) as u32;
        if UP {
            self.reg >> off & 1 != 0
        } else {
            self.reg >> (63 - off) & 1 != 0
        }
    }
}

/// [`OrderGuard::OrderedIndexedProbe`]: the pre-rolled baseline — two
/// random-access probes per candidate, no memoization.
struct ProbeWalk<'a> {
    idx1: &'a BankIndex,
    idx2: &'a BankIndex,
}

impl GuardWalk for ProbeWalk<'_> {
    const ORDERED: bool = true;
    #[inline]
    fn enumerated(&mut self, pos1: usize, pos2: usize) -> bool {
        self.idx1.is_indexed(pos1) && self.idx2.is_indexed(pos2)
    }
}

/// Guard state resolved once per bank-1 occurrence, shared across every
/// bank-2 partner of that occurrence.
///
/// [`prepare`](PreparedGuard::prepare) resolves the [`OrderGuard`] enum
/// and — for the rolled guard — gathers the bank-1 halves of both
/// direction registers (the 64 indexed-set bits left of `p1` and right of
/// `p1 + 1`). Step 2's inner loop then calls [`extend_hit_prepared`] per
/// `(p1, p2)` pair: for every `b ∈ X2` the bank-1 gathers are reused and
/// only the bank-2 halves are composed, hoisting the bank-1 word loads
/// out of the `X2` loop.
#[derive(Debug, Clone, Copy)]
pub struct PreparedGuard<'a> {
    /// The `p1` this guard was prepared for (checked in debug builds).
    p1: usize,
    kind: PreparedKind<'a>,
}

#[derive(Debug, Clone, Copy)]
enum PreparedKind<'a> {
    None,
    Full,
    Rolled {
        words1: &'a [u64],
        words2: &'a [u64],
        /// `gather_down(words1, p1 − 1)`: bank-1 half of the left walk's
        /// first register.
        down1: u64,
        /// `gather_up(words1, p1 + 1)`: bank-1 half of the right walk's
        /// first register.
        up1: u64,
    },
    Probe {
        idx1: &'a BankIndex,
        idx2: &'a BankIndex,
    },
}

impl<'a> PreparedGuard<'a> {
    /// Resolves `guard` for extensions of hits anchored at bank-1
    /// position `p1` (which must be a valid, in-record seed position).
    #[inline]
    pub fn prepare(guard: OrderGuard<'a>, p1: usize) -> PreparedGuard<'a> {
        let kind = match guard {
            OrderGuard::None => PreparedKind::None,
            OrderGuard::OrderedFull => PreparedKind::Full,
            OrderGuard::OrderedIndexed { idx1, idx2 } => {
                let words1 = idx1.indexed_words();
                PreparedKind::Rolled {
                    words1,
                    words2: idx2.indexed_words(),
                    down1: gather_down(words1, p1.wrapping_sub(1)),
                    up1: gather_up(words1, p1 + 1),
                }
            }
            OrderGuard::OrderedIndexedProbe { idx1, idx2 } => PreparedKind::Probe { idx1, idx2 },
        };
        PreparedGuard { p1, kind }
    }
}

/// Parameters of the ungapped extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UngappedParams {
    /// Seed length `W`.
    pub w: usize,
    /// X-drop threshold (positive). Extension stops when the running score
    /// falls `xdrop` below the best score seen.
    pub xdrop: i32,
    /// Scoring scheme.
    pub scheme: ScoringScheme,
    /// Maximum residues explored on each side of the seed (the paper's
    /// `length` argument bounding the search space).
    pub max_span: usize,
}

impl UngappedParams {
    /// Paper-flavoured defaults for a given seed length: X-drop 20 with the
    /// BLASTN scheme, effectively unbounded span.
    pub fn new(w: usize) -> UngappedParams {
        UngappedParams {
            w,
            xdrop: 20,
            scheme: ScoringScheme::blastn(),
            max_span: usize::MAX / 4,
        }
    }
}

/// Result of extending one seed hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtensionOutcome {
    /// The order guard fired: this HSP belongs to a different seed.
    Aborted,
    /// The extension completed; the HSP extent is reported.
    Hsp {
        /// Total ungapped score, seed included.
        score: i32,
        /// Residues included to the left of the seed start.
        left: usize,
        /// Residues included to the right of the seed end.
        right: usize,
    },
}

/// Extends the seed hit `(p1, p2)` of width `params.w` in both directions.
///
/// `d1` and `d2` are bank code arrays (sentinel-framed: extensions stop at
/// sentinels and at array bounds). `start_code` must be the seed code of
/// `d1[p1..p1+w]` (equal to that of `d2[p2..p2+w]` by definition of a hit).
///
/// Convenience wrapper that prepares the guard per call; a loop extending
/// many hits that share `p1` should prepare once and call
/// [`extend_hit_prepared`].
pub fn extend_hit(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    guard: OrderGuard<'_>,
) -> ExtensionOutcome {
    let prepared = PreparedGuard::prepare(guard, p1);
    extend_hit_prepared(d1, d2, p1, p2, start_code, coder, params, &prepared)
}

/// [`extend_hit`] with the guard state already resolved for `p1` —
/// `prepared` must come from [`PreparedGuard::prepare`] with the same
/// `p1`. This is the step-2 inner-loop entry point: one preparation per
/// bank-1 occurrence serves all its bank-2 partners, keeping the bank-1
/// guard-word loads (and the guard-shape dispatch inputs) out of the
/// `X2` loop.
pub fn extend_hit_prepared(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    prepared: &PreparedGuard<'_>,
) -> ExtensionOutcome {
    debug_assert_eq!(coder.w(), params.w);
    debug_assert_eq!(
        coder.encode(&d1[p1..p1 + params.w]),
        Some(start_code),
        "start_code does not match the window at p1"
    );
    debug_assert_eq!(prepared.p1, p1, "guard prepared for a different p1");

    match prepared.kind {
        PreparedKind::None => {
            extend_walks(d1, d2, p1, p2, start_code, coder, params, NoWalk, NoWalk)
        }
        PreparedKind::Full => extend_walks(
            d1, d2, p1, p2, start_code, coder, params, FullWalk, FullWalk,
        ),
        PreparedKind::Rolled {
            words1,
            words2,
            down1,
            up1,
        } => extend_walks(
            d1,
            d2,
            p1,
            p2,
            start_code,
            coder,
            params,
            RolledWalk::<false>::new(words1, words2, down1, p1),
            RolledWalk::<true>::new(words1, words2, up1, p1),
        ),
        PreparedKind::Probe { idx1, idx2 } => extend_walks(
            d1,
            d2,
            p1,
            p2,
            start_code,
            coder,
            params,
            ProbeWalk { idx1, idx2 },
            ProbeWalk { idx1, idx2 },
        ),
    }
}

/// Shared body: runs both direction walks with their monomorphized guard
/// states and assembles the outcome.
fn extend_walks<L: GuardWalk, R: GuardWalk>(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    left_walk: L,
    right_walk: R,
) -> ExtensionOutcome {
    let (left_best, left_off) =
        match extend_left(d1, d2, p1, p2, start_code, coder, params, left_walk) {
            Some(r) => r,
            None => return ExtensionOutcome::Aborted,
        };
    let (right_best, right_off) =
        match extend_right(d1, d2, p1, p2, start_code, coder, params, right_walk) {
            Some(r) => r,
            None => return ExtensionOutcome::Aborted,
        };

    let seed_score = params.w as i32 * params.scheme.matsch;
    ExtensionOutcome::Hsp {
        score: left_best + right_best - seed_score,
        left: left_off,
        right: right_off,
    }
}

/// Left walk. Returns `(best_score_including_seed, residues_left_of_seed)`
/// or `None` on an order abort.
fn extend_left<W: GuardWalk>(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    mut walk: W,
) -> Option<(i32, usize)> {
    let scheme = &params.scheme;
    let w = params.w;
    let seed_score = w as i32 * scheme.matsch;
    let mut score = seed_score;
    let mut best = seed_score;
    let mut best_off = 0usize;
    let mut run = w; // consecutive matches from the current left edge
    let mut code = start_code;

    let mut l = 0usize;
    while best - score < params.xdrop && l < params.max_span {
        if p1 < l + 1 || p2 < l + 1 {
            break;
        }
        let c1 = d1[p1 - 1 - l];
        let c2 = d2[p2 - 1 - l];
        if c1 == SENTINEL || c2 == SENTINEL {
            break;
        }
        if W::ORDERED && c1 < 4 {
            code = coder.roll_left(code, c1);
        }
        if scheme.is_match(c1, c2) {
            score += scheme.matsch;
            run += 1;
            if score > best {
                best = score;
                best_off = l + 1;
            }
            // A window of W matches starting at the current position is a
            // hit; the leftmost-minimal-code *enumerated* seed owns the
            // HSP, so an equal-or-smaller code to the left means we are
            // not it. Windows skipped by masking or asymmetric sampling
            // cannot own anything.
            if W::ORDERED
                && run >= w
                && code <= start_code
                && walk.enumerated(p1 - 1 - l, p2 - 1 - l)
            {
                return None;
            }
        } else {
            score += scheme.mismatch;
            run = 0;
        }
        l += 1;
    }
    Some((best, best_off))
}

/// Right walk. Returns `(best_score_including_seed, residues_right_of_seed)`
/// or `None` on an order abort.
fn extend_right<W: GuardWalk>(
    d1: &[u8],
    d2: &[u8],
    p1: usize,
    p2: usize,
    start_code: u32,
    coder: SeedCoder,
    params: &UngappedParams,
    mut walk: W,
) -> Option<(i32, usize)> {
    let scheme = &params.scheme;
    let w = params.w;
    let seed_score = w as i32 * scheme.matsch;
    let mut score = seed_score;
    let mut best = seed_score;
    let mut best_off = 0usize;
    let mut run = w;
    let mut code = start_code;

    let mut l = 0usize;
    while best - score < params.xdrop && l < params.max_span {
        let i1 = p1 + w + l;
        let i2 = p2 + w + l;
        if i1 >= d1.len() || i2 >= d2.len() {
            break;
        }
        let c1 = d1[i1];
        let c2 = d2[i2];
        if c1 == SENTINEL || c2 == SENTINEL {
            break;
        }
        if W::ORDERED && c1 < 4 {
            code = coder.roll_right(code, c1);
        }
        if scheme.is_match(c1, c2) {
            score += scheme.matsch;
            run += 1;
            if score > best {
                best = score;
                best_off = l + 1;
            }
            // The window of W matches *ending* here starts right of the
            // originating seed; a strictly smaller *enumerated* code owns
            // the HSP. Equal codes do not abort: the leftmost equal seed
            // (us) is canonical.
            if W::ORDERED
                && run >= w
                && code < start_code
                && walk.enumerated(p1 + l + 1, p2 + l + 1)
            {
                return None;
            }
        } else {
            score += scheme.mismatch;
            run = 0;
        }
        l += 1;
    }
    Some((best, best_off))
}

/// Rescoring helper: total ungapped score of aligning `d1[a1..a1+len]`
/// against `d2[a2..a2+len]`, plus the number of identical pairs.
pub fn ungapped_score(
    d1: &[u8],
    d2: &[u8],
    a1: usize,
    a2: usize,
    len: usize,
    scheme: &ScoringScheme,
) -> (i32, usize) {
    let mut score = 0i32;
    let mut matches = 0usize;
    for i in 0..len {
        if scheme.is_match(d1[a1 + i], d2[a2 + i]) {
            score += scheme.matsch;
            matches += 1;
        } else {
            score += scheme.mismatch;
        }
    }
    (score, matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::nuc_from_char;
    use proptest::prelude::*;

    fn codes(s: &str) -> Vec<u8> {
        s.bytes().map(nuc_from_char).collect()
    }

    /// Frame a code slice with sentinels, returning (data, offset_shift).
    fn framed(s: &str) -> Vec<u8> {
        let mut v = vec![SENTINEL];
        v.extend(codes(s));
        v.push(SENTINEL);
        v
    }

    fn params(w: usize, xdrop: i32) -> UngappedParams {
        UngappedParams {
            w,
            xdrop,
            scheme: ScoringScheme::blastn(),
            max_span: usize::MAX / 4,
        }
    }

    /// Find the seed position of `word` in framed data.
    fn find(d: &[u8], word: &[u8]) -> usize {
        d.windows(word.len()).position(|w| w == word).unwrap()
    }

    #[test]
    fn perfect_match_extends_fully() {
        let d1 = framed("TTTTACGTACGTTTTT");
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let word = codes("ACGT");
        let p = find(&d1, &word);
        let code = coder.encode(&word).unwrap();
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            code,
            coder,
            &params(4, 20),
            OrderGuard::None,
        );
        match out {
            ExtensionOutcome::Hsp { score, left, right } => {
                assert_eq!(score, 16); // whole 16-nt sequence matches
                assert_eq!(left, p - 1);
                assert_eq!(right, d1.len() - 1 - (p + 4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stops_at_sentinel() {
        let d1 = framed("ACGT");
        let d2 = framed("ACGT");
        let coder = SeedCoder::new(4);
        let code = coder.encode(&codes("ACGT")).unwrap();
        let out = extend_hit(
            &d1,
            &d2,
            1,
            1,
            code,
            coder,
            &params(4, 20),
            OrderGuard::None,
        );
        assert_eq!(
            out,
            ExtensionOutcome::Hsp {
                score: 4,
                left: 0,
                right: 0
            }
        );
    }

    #[test]
    fn xdrop_terminates_extension() {
        // seed then a long mismatch desert then a big match region: with a
        // small xdrop the extension must not reach the far region.
        let left = "ACGTACGTACGT";
        let d1 = framed(&format!("{left}GGGG{}", "ACGTACGTACGTACGTACGTACGT"));
        let d2 = framed(&format!("{left}CCCC{}", "ACGTACGTACGTACGTACGTACGT"));
        let coder = SeedCoder::new(4);
        let code = coder.encode(&codes("ACGT")).unwrap();
        // seed at start of the shared left block (position 1)
        let out = extend_hit(&d1, &d2, 1, 1, code, coder, &params(4, 5), OrderGuard::None);
        match out {
            ExtensionOutcome::Hsp { right, .. } => {
                // right extension covers the remaining 8 matching chars of
                // `left` then hits the 4-mismatch desert: 4 * -3 = -12 < -5
                // so it stops inside the desert; the far region is not
                // reached (which would have made right ≥ 12+24).
                assert!(right <= 8 + 2, "right = {right}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ordered_guard_aborts_on_smaller_seed_left() {
        // "AAAA" (code 0, minimal) sits left of "CCCC" inside one perfect
        // HSP: extension from CCCC must abort.
        let s = "TTGGAAAACCCCGGTT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p = find(&d1, &codes("CCCC"));
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert_eq!(out, ExtensionOutcome::Aborted);
    }

    #[test]
    fn ordered_guard_aborts_on_smaller_seed_right() {
        let s = "TTGGCCCCAAAAGGTT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p = find(&d1, &codes("CCCC"));
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert_eq!(out, ExtensionOutcome::Aborted);
    }

    #[test]
    fn minimal_seed_survives() {
        // From the smallest seed (AAAA here) the extension must complete.
        let s = "TTGGAAAACCCCGGTT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let aaaa = coder.encode(&codes("AAAA")).unwrap();
        let p = find(&d1, &codes("AAAA"));
        let out = extend_hit(
            &d1,
            &d2,
            p,
            p,
            aaaa,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert!(matches!(out, ExtensionOutcome::Hsp { .. }), "{out:?}");
    }

    #[test]
    fn equal_code_leftmost_is_canonical() {
        // Two occurrences of the same minimal word (AAAA, code 0) inside
        // one HSP: the leftmost completes, the rightmost aborts (the left
        // rule uses ≤, the right rule uses <).
        let s = "TTAAAATTAAAATT";
        let d1 = framed(s);
        let d2 = d1.clone();
        let coder = SeedCoder::new(4);
        let aaaa = coder.encode(&codes("AAAA")).unwrap();
        let first = 3; // framed position of s[2..6]
        let second = 9; // framed position of s[8..12]
        assert_eq!(&d1[first..first + 4], codes("AAAA").as_slice());
        assert_eq!(&d1[second..second + 4], codes("AAAA").as_slice());
        let a = extend_hit(
            &d1,
            &d2,
            first,
            first,
            aaaa,
            coder,
            &params(4, 100),
            OrderGuard::OrderedFull,
        );
        let b = extend_hit(
            &d1,
            &d2,
            second,
            second,
            aaaa,
            coder,
            &params(4, 100),
            OrderGuard::OrderedFull,
        );
        assert!(matches!(a, ExtensionOutcome::Hsp { .. }), "{a:?}");
        assert_eq!(b, ExtensionOutcome::Aborted);
    }

    #[test]
    fn example_from_paper_generates_hsp_exactly_once() {
        // The paper's section-2.2 example: one ungapped alignment anchored
        // by both AACTGTAA and AATTGCTC (and several other 8-mers). With
        // the order guard, exactly ONE of all in-HSP seeds completes.
        let s1 = "ATATGATGTGCAACTGTAATTGCTCAGATTCTATG";
        let s2 = "ATATGATGTGCAACTGTAATTGCTCAGGTTCTCTG";
        let d1 = framed(s1);
        let d2 = framed(s2);
        let w = 8usize;
        let coder = SeedCoder::new(w);
        let mut completed = 0usize;
        let mut aborted = 0usize;
        for p in 1..d1.len() - w {
            if d1[p..p + w] != d2[p..p + w] {
                continue; // not a hit on the main diagonal
            }
            let Some(code) = coder.encode(&d1[p..p + w]) else {
                continue;
            };
            match extend_hit(
                &d1,
                &d2,
                p,
                p,
                code,
                coder,
                &params(8, 1000),
                OrderGuard::OrderedFull,
            ) {
                ExtensionOutcome::Hsp { .. } => completed += 1,
                ExtensionOutcome::Aborted => aborted += 1,
            }
        }
        // The common prefix is 27 nt: 20 hit seeds, one canonical.
        assert_eq!(completed, 1, "exactly one seed owns the HSP");
        assert!(aborted >= 19, "the other seeds abort (got {aborted})");
    }

    #[test]
    fn guard_ignores_seeds_broken_by_mismatch() {
        // d1 contains AAAA (code 0 — would trump the CCCC seed), but it is
        // fully mismatched on d2, so it is not a *hit* and must not abort
        // the extension. Every genuine hit window here has a code larger
        // than CCCC's (85).
        let s1 = "TTGTAAAAGTTCCCCTGT";
        let s2 = "TTGTGGGGGTTCCCCTGT";
        let d1 = framed(s1);
        let d2 = framed(s2);
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p1 = find(&d1, &codes("CCCC"));
        let p2 = find(&d2, &codes("CCCC"));
        assert_eq!(p1, p2);
        let out = extend_hit(
            &d1,
            &d2,
            p1,
            p2,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert!(matches!(out, ExtensionOutcome::Hsp { .. }), "{out:?}");
    }

    #[test]
    fn gathers_match_direct_indexing() {
        // A bit pattern spanning several words; the gathered windows must
        // reproduce direct bit tests at every alignment, zero-filling
        // beyond either end.
        let words: Vec<u64> = vec![0x8000_0000_0000_0001, 0xDEAD_BEEF_CAFE_F00D, 0x0123_4567];
        let bit_at = |p: usize| words[p / 64] & (1u64 << (p % 64)) != 0;
        let len = words.len() * 64;
        for pos in [0usize, 1, 7, 63, 64, 65, 100, 127, 128, len - 2, len - 1] {
            let up = gather_up(&words, pos);
            for i in 0..64usize {
                let expect = pos + i < len && bit_at(pos + i);
                assert_eq!(up & (1u64 << i) != 0, expect, "up pos {pos} bit {i}");
            }
            let down = gather_down(&words, pos);
            for i in 0..64usize {
                let expect = pos >= i && bit_at(pos - i);
                assert_eq!(
                    down & (1u64 << (63 - i)) != 0,
                    expect,
                    "down pos {pos} bit {i}"
                );
            }
        }
        // Out-of-range gathers read as all-zero instead of panicking.
        assert_eq!(gather_up(&words, len + 5), 0);
        assert_eq!(gather_down(&words, usize::MAX), 0);
    }

    #[test]
    fn rolled_walks_match_probe_across_refills() {
        // Probe sequences spanning several register anchors (dense,
        // sparse and late-first-probe step patterns, both directions):
        // every answer must equal the direct double bit test.
        let mk = |seed: u64, n: usize| -> Vec<u64> {
            // simple deterministic bit soup
            let mut s = seed;
            (0..n)
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s
                })
                .collect()
        };
        let w1 = mk(7, 4);
        let w2 = mk(13, 4);
        let bit = |ws: &[u64], p: usize| ws[p / 64] & (1u64 << (p % 64)) != 0;
        let (o1, o2) = (150usize, 130usize);
        // every step / every 3rd step / first probe beyond the prepared
        // 64-step window
        let patterns: [Vec<usize>; 3] = [
            (1..100).collect(),
            (1..100).step_by(3).collect(),
            (70..100).collect(),
        ];
        for steps in &patterns {
            let mut up = RolledWalk::<true>::new(&w1, &w2, gather_up(&w1, o1 + 1), o1);
            for &k in steps {
                assert_eq!(
                    up.enumerated(o1 + k, o2 + k),
                    bit(&w1, o1 + k) && bit(&w2, o2 + k),
                    "up step {k}"
                );
            }
            let mut down = RolledWalk::<false>::new(&w1, &w2, gather_down(&w1, o1 - 1), o1);
            for &k in steps {
                if k > o2 {
                    break;
                }
                assert_eq!(
                    down.enumerated(o1 - k, o2 - k),
                    bit(&w1, o1 - k) && bit(&w2, o2 - k),
                    "down step {k}"
                );
            }
        }
    }

    #[test]
    fn prepared_guard_is_reusable_across_partners() {
        // One preparation at p1 must serve extensions against different
        // p2 partners — the step-2 hoisting contract.
        let s = "TTGGAAAACCCCGGTT";
        let d1 = framed(s);
        let d2 = framed(&format!("AA{s}"));
        let coder = SeedCoder::new(4);
        let cccc = coder.encode(&codes("CCCC")).unwrap();
        let p1 = find(&d1, &codes("CCCC"));
        let p2 = find(&d2, &codes("CCCC"));
        let prepared = PreparedGuard::prepare(OrderGuard::OrderedFull, p1);
        let direct_a = extend_hit(
            &d1,
            &d2,
            p1,
            p2,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        let via_prep_a =
            extend_hit_prepared(&d1, &d2, p1, p2, cccc, coder, &params(4, 50), &prepared);
        assert_eq!(direct_a, via_prep_a);
        // Same prepared guard, same d2 but a hypothetical second partner:
        // reuse d1 as its own partner (CCCC at the same offset).
        let via_prep_b =
            extend_hit_prepared(&d1, &d1, p1, p1, cccc, coder, &params(4, 50), &prepared);
        let direct_b = extend_hit(
            &d1,
            &d1,
            p1,
            p1,
            cccc,
            coder,
            &params(4, 50),
            OrderGuard::OrderedFull,
        );
        assert_eq!(direct_b, via_prep_b);
    }

    #[test]
    fn ungapped_score_counts_matches() {
        let d1 = codes("ACGTACGT");
        let d2 = codes("ACGAACGT");
        let (score, matches) = ungapped_score(&d1, &d2, 0, 0, 8, &ScoringScheme::blastn());
        assert_eq!(matches, 7);
        assert_eq!(score, 7 - 3);
    }

    /// Brute force: best ungapped extension through the seed with unlimited
    /// xdrop equals max over prefixes/suffixes.
    fn brute_best(
        d1: &[u8],
        d2: &[u8],
        p1: usize,
        p2: usize,
        w: usize,
        scheme: &ScoringScheme,
    ) -> i32 {
        let seed = w as i32 * scheme.matsch;
        // left prefix scores
        let mut best_left = 0;
        let mut acc = 0;
        let mut l = 1;
        while p1 >= l && p2 >= l {
            let (c1, c2) = (d1[p1 - l], d2[p2 - l]);
            if c1 == SENTINEL || c2 == SENTINEL {
                break;
            }
            acc += scheme.pair(c1, c2);
            best_left = best_left.max(acc);
            l += 1;
        }
        let mut best_right = 0;
        let mut acc = 0;
        let mut r = 0;
        while p1 + w + r < d1.len() && p2 + w + r < d2.len() {
            let (c1, c2) = (d1[p1 + w + r], d2[p2 + w + r]);
            if c1 == SENTINEL || c2 == SENTINEL {
                break;
            }
            acc += scheme.pair(c1, c2);
            best_right = best_right.max(acc);
            r += 1;
        }
        seed + best_left + best_right
    }

    proptest! {
        /// With a saturating X-drop and no order guard, the extension score
        /// equals the brute-force optimum of the through-seed ungapped
        /// alignment.
        #[test]
        fn unguarded_extension_is_optimal(
            s1 in "[ACGT]{20,60}",
            s2 in "[ACGT]{20,60}",
            off in 0usize..10,
        ) {
            let w = 4usize;
            // Plant a common seed so a hit exists.
            let mut a = s1.clone();
            let mut b = s2.clone();
            let seedword = "ACGT";
            let ia = 5 + off.min(a.len().saturating_sub(10));
            let ib = 5;
            a.replace_range(ia..ia + w, seedword);
            b.replace_range(ib..ib + w, seedword);
            let d1 = framed(&a);
            let d2 = framed(&b);
            let coder = SeedCoder::new(w);
            let code = coder.encode(&codes(seedword)).unwrap();
            let p1 = ia + 1; // +1 for the framing sentinel
            let p2 = ib + 1;
            let pars = UngappedParams { w, xdrop: i32::MAX / 4, scheme: ScoringScheme::blastn(), max_span: usize::MAX / 4 };
            match extend_hit(&d1, &d2, p1, p2, code, coder, &pars, OrderGuard::None) {
                ExtensionOutcome::Hsp { score, .. } => {
                    let expect = brute_best(&d1, &d2, p1, p2, w, &pars.scheme);
                    prop_assert_eq!(score, expect);
                }
                ExtensionOutcome::Aborted => prop_assert!(false, "unguarded extension aborted"),
            }
        }

        /// The rolled guard (word cursors advancing with the walk) and the
        /// probe baseline (random-access `is_indexed` per candidate) are
        /// the same function: identical outcomes for every hit pair of
        /// random masked banks.
        #[test]
        fn rolled_guard_equals_probe_guard(
            s1 in "[ACGTN]{20,80}",
            s2 in "[ACGTN]{20,80}",
            w in 3usize..6,
            mask_mod in 2usize..7,
            stride in 1usize..3,
        ) {
            use oris_index::{BankIndex, IndexConfig};
            use oris_seqio::BankBuilder;
            let mut bb = BankBuilder::new();
            bb.push_str("a", &s1).unwrap();
            let b1 = bb.finish();
            let mut bb = BankBuilder::new();
            bb.push_str("b", &s2).unwrap();
            let b2 = bb.finish();
            let i1 = BankIndex::build_filtered(&b1, IndexConfig::full(w), |p| p % mask_mod == 0);
            let i2 = BankIndex::build(&b2, IndexConfig { stride, ..IndexConfig::full(w) });
            let coder = i1.coder();
            let pars = UngappedParams {
                w,
                xdrop: 20,
                scheme: ScoringScheme::blastn(),
                max_span: usize::MAX / 4,
            };
            let rolled = OrderGuard::OrderedIndexed { idx1: &i1, idx2: &i2 };
            let probe = OrderGuard::OrderedIndexedProbe { idx1: &i1, idx2: &i2 };
            for code in 0..coder.num_seeds() as u32 {
                for &a in i1.occurrences(code) {
                    let prepared = PreparedGuard::prepare(rolled, a as usize);
                    for &b in i2.occurrences(code) {
                        let r = extend_hit_prepared(
                            b1.data(), b2.data(), a as usize, b as usize,
                            code, coder, &pars, &prepared,
                        );
                        let p = extend_hit(
                            b1.data(), b2.data(), a as usize, b as usize,
                            code, coder, &pars, probe,
                        );
                        prop_assert_eq!(r, p);
                    }
                }
            }
        }

        /// The reported extent re-scores to the reported score.
        #[test]
        fn extent_rescoring_consistent(s in "[ACGT]{30,80}") {
            let w = 5usize;
            let d1 = framed(&s);
            let d2 = d1.clone();
            let coder = SeedCoder::new(w);
            let p = 1 + s.len() / 3;
            if let Some(code) = coder.encode(&d1[p..p + w]) {
                let pars = UngappedParams { w, xdrop: 12, scheme: ScoringScheme::blastn(), max_span: usize::MAX / 4 };
                if let ExtensionOutcome::Hsp { score, left, right } =
                    extend_hit(&d1, &d2, p, p, code, coder, &pars, OrderGuard::None)
                {
                    let start = p - left;
                    let len = left + w + right;
                    let (rescore, _) = ungapped_score(&d1, &d2, start, start, len, &pars.scheme);
                    prop_assert_eq!(rescore, score);
                }
            }
        }
    }
}
