//! # oris-align — alignment kernels for the ORIS reproduction
//!
//! Four families of routines:
//!
//! * [`ungapped`]: the paper's section-2.2 hit extension — X-drop ungapped
//!   extension with the **ordered-seed abort rule** that makes every HSP
//!   unique without a duplicate-suppression pass. This is the core
//!   algorithmic contribution of the paper.
//! * [`gapped`]: X-drop banded affine-gap extension used by step 3 to grow
//!   HSPs into gapped alignments, with traceback.
//! * [`exact`]: the classical optimal algorithms the paper cites as the
//!   dynamic-programming family — Needleman–Wunsch (global), Smith–Waterman
//!   (local) and Gotoh (affine local). They serve as test oracles and as
//!   reference implementations.
//! * [`cigar`]: alignment operation lists and the derived statistics that
//!   the BLAST `-m 8` tabular format reports (identity %, mismatches, gap
//!   openings).

pub mod cigar;
pub mod exact;
pub mod gapped;
pub mod scoring;
pub mod ungapped;

pub use cigar::{AlignOp, AlignStats};
pub use exact::{gotoh_local, needleman_wunsch, smith_waterman, ExactAlignment};
pub use gapped::{extend_gapped_both, extend_gapped_right, GappedExtension, GappedParams};
pub use scoring::ScoringScheme;
pub use ungapped::{
    extend_hit, extend_hit_prepared, ungapped_score, ExtensionOutcome, OrderGuard, PreparedGuard,
    UngappedParams,
};
