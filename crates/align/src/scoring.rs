//! Nucleotide scoring schemes.
//!
//! The paper's prototype scores like BLASTN: a reward for a match, a
//! penalty for a mismatch, and affine gap costs for the gapped stage
//! (Gotoh's improvement, reference \[3\] of the paper). All values are kept
//! as they contribute to the score: `mismatch`, `gap_open` and
//! `gap_extend` are negative.

use oris_seqio::alphabet::is_nucleotide;

/// Match/mismatch/affine-gap scoring parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoringScheme {
    /// Score contribution of an identical nucleotide pair (positive).
    pub matsch: i32,
    /// Score contribution of a substitution (negative).
    pub mismatch: i32,
    /// Cost of opening a gap, charged on the first gapped position
    /// together with `gap_extend` (negative).
    pub gap_open: i32,
    /// Cost of each gapped position (negative).
    pub gap_extend: i32,
}

impl ScoringScheme {
    /// NCBI BLASTN 2.2.x defaults: +1/−3, gap open −5, gap extend −2.
    /// This is what the paper's experiments effectively ran with.
    pub const fn blastn() -> ScoringScheme {
        ScoringScheme {
            matsch: 1,
            mismatch: -3,
            gap_open: -5,
            gap_extend: -2,
        }
    }

    /// Megablast-style +1/−2 scheme, useful for highly similar sequences.
    pub const fn megablast() -> ScoringScheme {
        ScoringScheme {
            matsch: 1,
            mismatch: -2,
            gap_open: -2,
            gap_extend: -1,
        }
    }

    /// Custom scheme with basic validation.
    ///
    /// # Panics
    /// Panics if `matsch <= 0`, `mismatch >= 0`, `gap_open > 0` or
    /// `gap_extend >= 0`.
    pub fn new(matsch: i32, mismatch: i32, gap_open: i32, gap_extend: i32) -> ScoringScheme {
        assert!(matsch > 0, "match score must be positive");
        assert!(mismatch < 0, "mismatch score must be negative");
        assert!(gap_open <= 0, "gap open cost must be non-positive");
        assert!(gap_extend < 0, "gap extend cost must be negative");
        ScoringScheme {
            matsch,
            mismatch,
            gap_open,
            gap_extend,
        }
    }

    /// Score of aligning code bytes `a` against `b`.
    ///
    /// Ambiguous bases and sentinels never match anything (including
    /// themselves) — this is the rule that keeps seeds and extensions from
    /// crossing `N` runs and sequence boundaries.
    #[inline]
    pub fn pair(&self, a: u8, b: u8) -> i32 {
        if a == b && is_nucleotide(a) {
            self.matsch
        } else {
            self.mismatch
        }
    }

    /// `true` when `a` and `b` are a concrete matching pair.
    #[inline]
    pub fn is_match(&self, a: u8, b: u8) -> bool {
        a == b && is_nucleotide(a)
    }

    /// Total cost of a gap of `len` positions (open charged once).
    #[inline]
    pub fn gap(&self, len: usize) -> i32 {
        if len == 0 {
            0
        } else {
            self.gap_open + self.gap_extend * len as i32
        }
    }
}

impl Default for ScoringScheme {
    fn default() -> Self {
        ScoringScheme::blastn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oris_seqio::alphabet::{AMBIG, SENTINEL};

    #[test]
    fn blastn_defaults() {
        let s = ScoringScheme::blastn();
        assert_eq!(s.pair(0, 0), 1);
        assert_eq!(s.pair(0, 1), -3);
        assert_eq!(s.gap(1), -7);
        assert_eq!(s.gap(3), -11);
    }

    #[test]
    fn ambig_never_matches_itself() {
        let s = ScoringScheme::blastn();
        assert_eq!(s.pair(AMBIG, AMBIG), s.mismatch);
        assert!(!s.is_match(AMBIG, AMBIG));
    }

    #[test]
    fn sentinel_never_matches_itself() {
        let s = ScoringScheme::blastn();
        assert_eq!(s.pair(SENTINEL, SENTINEL), s.mismatch);
        assert!(!s.is_match(SENTINEL, SENTINEL));
    }

    #[test]
    fn zero_length_gap_is_free() {
        assert_eq!(ScoringScheme::blastn().gap(0), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_positive_mismatch() {
        let _ = ScoringScheme::new(1, 1, -5, -2);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_match() {
        let _ = ScoringScheme::new(0, -3, -5, -2);
    }
}
