//! Gapped X-drop extension (paper section 2.3).
//!
//! Step 3 of ORIS grows each surviving HSP into a gapped alignment:
//! "alignments are constructed starting from the middle of an HSP and
//! performing an extension on both extremities by dynamic programming
//! techniques. The extension is controlled by an XDROP value."
//!
//! This module implements the NCBI-style adaptive-band X-drop DP with
//! affine gaps and full traceback:
//!
//! * the DP advances row by row (one row per consumed character of
//!   sequence 1), keeping only the *live band* of columns whose best state
//!   value is within `xdrop` of the best score seen so far;
//! * the band adapts — it can drift, widen along gap chains and shrink as
//!   cells die — so the cost is proportional to the alignment's "score
//!   corridor", not to the product of the extension lengths;
//! * a hard `max_cells` cap bounds memory on pathological inputs.
//!
//! Left extensions run the same forward DP on reversed tapes; the
//! two-sided entry point [`extend_gapped_both`] merges both halves around
//! the HSP midpoint exactly as step 3 does.

use oris_seqio::alphabet::SENTINEL;

use crate::cigar::AlignOp;
use crate::scoring::ScoringScheme;

const NEG: i32 = i32::MIN / 4;

// Traceback encoding: bits 0..2 = H source, bit 3 = E source, bit 4 = F source.
const TB_H_FROM_H: u8 = 0;
const TB_H_FROM_E: u8 = 1;
const TB_H_FROM_F: u8 = 2;
const TB_H_START: u8 = 3;
const TB_H_DEAD: u8 = 7;
const TB_H_MASK: u8 = 0b111;
const TB_E_EXTEND: u8 = 1 << 3;
const TB_F_EXTEND: u8 = 1 << 4;

/// Parameters of the gapped extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GappedParams {
    /// Scoring scheme (affine gaps).
    pub scheme: ScoringScheme,
    /// X-drop threshold (positive).
    pub xdrop: i32,
    /// Maximum characters consumed per tape in each direction.
    pub max_span: usize,
    /// Hard cap on DP cells computed per direction (memory guard).
    pub max_cells: usize,
}

impl Default for GappedParams {
    fn default() -> Self {
        GappedParams {
            scheme: ScoringScheme::blastn(),
            xdrop: 25,
            max_span: 1 << 20,
            max_cells: 1 << 24,
        }
    }
}

/// One-directional gapped extension result.
///
/// The alignment consumes `len1` characters of tape 1 and `len2` of tape 2,
/// with `ops` listed from the extension origin outward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GappedExtension {
    /// Best path score (0 for the empty extension).
    pub score: i32,
    /// Characters consumed on sequence 1.
    pub len1: usize,
    /// Characters consumed on sequence 2.
    pub len2: usize,
    /// Alignment operations from the origin outward.
    pub ops: Vec<AlignOp>,
}

impl GappedExtension {
    /// The empty extension.
    pub fn empty() -> GappedExtension {
        GappedExtension {
            score: 0,
            len1: 0,
            len2: 0,
            ops: Vec::new(),
        }
    }
}

/// Copies the extension tape starting at `origin` in direction `dir`
/// (`+1` right, `-1` left), stopping at a sentinel, the array bounds or
/// `max_span` characters.
///
/// Callers pass an adaptive `max_span` (see [`extend_gapped_right`]):
/// copying to the next sentinel unconditionally would move whole
/// chromosome tails per extension, while the X-drop band typically dies
/// within a few hundred columns.
fn materialize(d: &[u8], origin: usize, dir: i64, max_span: usize) -> Vec<u8> {
    let mut out = Vec::new();
    let mut pos = origin as i64;
    while out.len() < max_span && pos >= 0 && (pos as usize) < d.len() {
        let c = d[pos as usize];
        if c == SENTINEL {
            break;
        }
        out.push(c);
        pos += dir;
    }
    out
}

/// Forward X-drop DP over two sentinel-free tapes.
///
/// Traceback bytes for all rows live in one contiguous pool (`tb_pool`)
/// with per-row `(lo, offset, len)` descriptors, and the three working
/// state vectors are double-buffered — the loop performs no per-row
/// allocations, which matters because step 3 runs this DP once per
/// surviving HSP.
/// Returns the extension plus a `hit_end` flag: `true` when the live band
/// reached the end of either tape, i.e. a longer tape *could* change the
/// result (used by the adaptive-growth wrappers).
fn xdrop_dp(t1: &[u8], t2: &[u8], params: &GappedParams) -> (GappedExtension, bool) {
    let scheme = &params.scheme;
    let (open, ext) = (scheme.gap_open, scheme.gap_extend);
    let n1 = t1.len();
    let n2 = t2.len();

    let mut best = 0i32;
    let mut best_i = 0usize;
    let mut best_j = 0usize;

    // Previous row working band: columns [plo, plo + ph.len()).
    let mut plo = 0usize;
    let mut ph: Vec<i32> = vec![0];
    let mut pe: Vec<i32> = vec![NEG];
    let mut pf: Vec<i32> = vec![NEG];

    // Traceback storage: one pool, one (lo, offset, len) descriptor per row.
    let mut tb_pool: Vec<u8> = Vec::with_capacity(256);
    let mut tb_rows: Vec<(usize, usize, usize)> = Vec::with_capacity(64);

    // Row 0: origin cell plus the leading-gap E chain.
    {
        tb_pool.push(TB_H_START);
        let mut j = 1usize;
        while j <= n2 {
            let e_open = ph[j - 1] + open + ext;
            let e_ext = pe[j - 1] + ext;
            let (e, ebit) = if e_open >= e_ext {
                (e_open, 0u8)
            } else {
                (e_ext, TB_E_EXTEND)
            };
            if e < best - params.xdrop {
                break;
            }
            ph.push(NEG);
            pe.push(e);
            pf.push(NEG);
            tb_pool.push(TB_H_DEAD | ebit);
            j += 1;
        }
        tb_rows.push((0, 0, tb_pool.len()));
    }

    let mut cells = ph.len();
    let mut hit_end = ph.len() == n2 + 1; // row-0 E chain reached the tape end
    let mut ran_all_rows = n1 == 0;
    // Double buffers for the current row.
    let mut h: Vec<i32> = Vec::with_capacity(ph.len() + 2);
    let mut e: Vec<i32> = Vec::with_capacity(ph.len() + 2);
    let mut f: Vec<i32> = Vec::with_capacity(ph.len() + 2);

    for i in 1..=n1 {
        let phi = plo + ph.len() - 1; // last column of previous band
        let lo = plo;
        let c1 = t1[i - 1];

        h.clear();
        e.clear();
        f.clear();
        let tb_offset = tb_pool.len();

        let mut first_live: Option<usize> = None;
        let mut last_live = 0usize;

        let prev = |j: usize| -> Option<usize> {
            if j >= plo && j <= phi {
                Some(j - plo)
            } else {
                None
            }
        };

        let mut j = lo;
        while j <= n2 {
            // H: diagonal move from (i-1, j-1).
            let (hv, hsrc) = if j >= 1 {
                match prev(j - 1) {
                    Some(pi) => {
                        let (dv, dsrc) = {
                            let mut v = ph[pi];
                            let mut s = TB_H_FROM_H;
                            if pe[pi] > v {
                                v = pe[pi];
                                s = TB_H_FROM_E;
                            }
                            if pf[pi] > v {
                                v = pf[pi];
                                s = TB_H_FROM_F;
                            }
                            (v, s)
                        };
                        if dv <= NEG / 2 {
                            (NEG, TB_H_DEAD)
                        } else {
                            (dv + scheme.pair(c1, t2[j - 1]), dsrc)
                        }
                    }
                    None => (NEG, TB_H_DEAD),
                }
            } else {
                (NEG, TB_H_DEAD)
            };

            // F: vertical move from (i-1, j).
            let (fv, fbit) = match prev(j) {
                Some(pi) => {
                    let f_open = ph[pi] + open + ext;
                    let f_ext = pf[pi] + ext;
                    if f_open >= f_ext {
                        (f_open, 0u8)
                    } else {
                        (f_ext, TB_F_EXTEND)
                    }
                }
                None => (NEG, 0u8),
            };

            // E: horizontal move from (i, j-1) in the current row.
            let (ev, ebit) = if j > lo && !h.is_empty() {
                let cur = h.len() - 1;
                let e_open = h[cur] + open + ext;
                let e_ext = e[cur] + ext;
                if e_open >= e_ext {
                    (e_open, 0u8)
                } else {
                    (e_ext, TB_E_EXTEND)
                }
            } else {
                (NEG, 0u8)
            };

            let val = hv.max(ev).max(fv);
            let cutoff = best - params.xdrop;
            if val < cutoff {
                // Dead cell.
                if j > phi + 1 {
                    // Beyond the previous band only the E chain can live;
                    // once it dies the row is finished.
                    break;
                }
                h.push(NEG);
                e.push(NEG);
                f.push(NEG);
                tb_pool.push(TB_H_DEAD);
            } else {
                if first_live.is_none() {
                    first_live = Some(j);
                }
                last_live = j;
                if hv > best {
                    best = hv;
                    best_i = i;
                    best_j = j;
                }
                h.push(hv);
                e.push(ev);
                f.push(fv);
                tb_pool.push(hsrc | ebit | fbit);
            }
            j += 1;
        }

        cells += h.len();
        tb_rows.push((lo, tb_offset, tb_pool.len() - tb_offset));
        if last_live >= n2 && first_live.is_some() {
            hit_end = true; // band touched the last column
        }
        if i == n1 && first_live.is_some() {
            ran_all_rows = true; // band alive on the final row
        }

        let Some(fl) = first_live else { break };
        // Trim the working band to the live region for the next row.
        let a = fl - lo;
        let b = last_live - lo + 1;
        if a > 0 || b < h.len() {
            h.truncate(b);
            e.truncate(b);
            f.truncate(b);
            h.drain(..a);
            e.drain(..a);
            f.drain(..a);
        }
        plo = fl;
        std::mem::swap(&mut ph, &mut h);
        std::mem::swap(&mut pe, &mut e);
        std::mem::swap(&mut pf, &mut f);

        if cells > params.max_cells {
            break;
        }
    }

    // Traceback from the best H cell.
    let mut ops: Vec<AlignOp> = Vec::new();
    let (mut i, mut j) = (best_i, best_j);
    // 0 = H, 1 = E, 2 = F
    let mut state = 0u8;
    while !(i == 0 && j == 0 && state == 0) {
        let (row_lo, offset, len) = tb_rows[i];
        debug_assert!(j >= row_lo && j - row_lo < len, "traceback out of band");
        let byte = tb_pool[offset + (j - row_lo)];
        match state {
            0 => {
                let src = byte & TB_H_MASK;
                debug_assert_ne!(src, TB_H_DEAD, "traceback hit a dead cell");
                if src == TB_H_START {
                    break;
                }
                let op = if scheme.is_match(t1[i - 1], t2[j - 1]) {
                    AlignOp::Match
                } else {
                    AlignOp::Mismatch
                };
                ops.push(op);
                i -= 1;
                j -= 1;
                state = match src {
                    TB_H_FROM_H => 0,
                    TB_H_FROM_E => 1,
                    _ => 2,
                };
            }
            1 => {
                ops.push(AlignOp::Del);
                let from_ext = byte & TB_E_EXTEND != 0;
                j -= 1;
                state = if from_ext { 1 } else { 0 };
            }
            _ => {
                ops.push(AlignOp::Ins);
                let from_ext = byte & TB_F_EXTEND != 0;
                i -= 1;
                state = if from_ext { 2 } else { 0 };
            }
        }
    }
    ops.reverse();

    (
        GappedExtension {
            score: best,
            len1: best_i,
            len2: best_j,
            ops,
        },
        hit_end || ran_all_rows,
    )
}

/// Runs the DP with adaptively grown tapes: start at 4 kB and enlarge
/// only when the live band actually reached a tape end. Alignments are
/// typically a few hundred columns, so this avoids copying chromosome
/// tails per extension while remaining exact for arbitrarily long ones.
fn xdrop_dp_adaptive(
    d1: &[u8],
    d2: &[u8],
    o1: usize,
    o2: usize,
    dir: i64,
    params: &GappedParams,
) -> GappedExtension {
    let mut cap = 4096usize;
    loop {
        let t1 = materialize(d1, o1, dir, cap.min(params.max_span));
        let t2 = materialize(d2, o2, dir, cap.min(params.max_span));
        let truncated = t1.len() == cap || t2.len() == cap;
        let (out, hit_end) = xdrop_dp(&t1, &t2, params);
        if !(hit_end && truncated) || cap >= params.max_span {
            return out;
        }
        cap *= 8;
    }
}

/// Extends rightward from `(o1, o2)`: the first aligned pair considered is
/// `d1[o1]` / `d2[o2]`.
pub fn extend_gapped_right(
    d1: &[u8],
    d2: &[u8],
    o1: usize,
    o2: usize,
    params: &GappedParams,
) -> GappedExtension {
    xdrop_dp_adaptive(d1, d2, o1, o2, 1, params)
}

/// Extends leftward from `(o1, o2)`: the first aligned pair considered is
/// `d1[o1]` / `d2[o2]`, walking toward lower positions. Ops come back in
/// left-to-right (original) order.
pub fn extend_gapped_left(
    d1: &[u8],
    d2: &[u8],
    o1: usize,
    o2: usize,
    params: &GappedParams,
) -> GappedExtension {
    let mut out = xdrop_dp_adaptive(d1, d2, o1, o2, -1, params);
    out.ops.reverse();
    out
}

/// Two-sided gapped extension around the midpoint pair `(m1, m2)` — the
/// step-3 operation. The right half starts at `(m1, m2)` inclusive; the
/// left half starts at `(m1-1, m2-1)`.
///
/// Returns the merged extension plus the global start coordinates
/// `(start1, start2)` of the alignment on each array.
pub fn extend_gapped_both(
    d1: &[u8],
    d2: &[u8],
    m1: usize,
    m2: usize,
    params: &GappedParams,
) -> (GappedExtension, usize, usize) {
    let right = extend_gapped_right(d1, d2, m1, m2, params);
    let left = if m1 > 0 && m2 > 0 {
        extend_gapped_left(d1, d2, m1 - 1, m2 - 1, params)
    } else {
        GappedExtension::empty()
    };

    let mut ops = left.ops;
    ops.extend_from_slice(&right.ops);
    let merged = GappedExtension {
        score: left.score + right.score,
        len1: left.len1 + right.len1,
        len2: left.len2 + right.len2,
        ops,
    };
    (merged, m1 - left.len1, m2 - left.len2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cigar::AlignStats;
    use crate::exact::gotoh_local;
    use oris_seqio::nuc_from_char;
    use proptest::prelude::*;

    fn codes(s: &str) -> Vec<u8> {
        s.bytes().map(nuc_from_char).collect()
    }

    fn params(xdrop: i32) -> GappedParams {
        GappedParams {
            scheme: ScoringScheme::blastn(),
            xdrop,
            max_span: 1 << 16,
            max_cells: 1 << 22,
        }
    }

    #[test]
    fn identical_sequences_extend_fully() {
        let a = codes("ACGTACGTAC");
        let out = extend_gapped_right(&a, &a, 0, 0, &params(20));
        assert_eq!(out.score, 10);
        assert_eq!(out.len1, 10);
        assert_eq!(out.len2, 10);
        assert_eq!(out.ops.len(), 10);
        assert!(out.ops.iter().all(|&o| o == AlignOp::Match));
    }

    #[test]
    fn empty_tapes_give_empty_extension() {
        let a = codes("");
        let b = codes("ACGT");
        let out = extend_gapped_right(&a, &b, 0, 0, &params(20));
        assert_eq!(out, GappedExtension::empty());
    }

    #[test]
    fn single_substitution_is_absorbed() {
        let a = codes("ACGTACGTACGT");
        let mut bv = a.clone();
        bv[5] ^= 1; // mutate one base
        let out = extend_gapped_right(&a, &bv, 0, 0, &params(20));
        assert_eq!(out.len1, 12);
        assert_eq!(out.score, 11 - 3);
        let stats = AlignStats::from_ops(&out.ops);
        assert_eq!(stats.mismatches, 1);
        assert_eq!(stats.matches, 11);
    }

    #[test]
    fn insertion_produces_gap_ops() {
        // d2 has 2 extra bases in the middle: alignment must contain one
        // gap of length 2 (Del ops: consuming d2 only).
        let a = codes("ACGTACGTACGTACGTCCGGAATT");
        let mut bv = a.clone();
        bv.splice(12..12, codes("TT"));
        let out = extend_gapped_right(&a, &bv, 0, 0, &params(30));
        assert_eq!(out.len1, a.len());
        assert_eq!(out.len2, bv.len());
        let stats = AlignStats::from_ops(&out.ops);
        assert_eq!(stats.gap_opens, 1);
        assert_eq!(stats.gap_columns, 2);
        // score: 24 matches + open + 2*extend = 24 - 5 - 4
        assert_eq!(out.score, 24 - 9);
    }

    #[test]
    fn xdrop_stops_in_mismatch_desert() {
        // Two mismatches (−6) separate two 12-match blocks. With xdrop 5
        // the extension dies inside the desert even though crossing it
        // would pay off (12 − 6 + 12 = 18 > 12).
        let a = codes(&format!("{}{}{}", "ACGTACGTACGT", "AA", "ACGTACGTACGT"));
        let b = codes(&format!("{}{}{}", "ACGTACGTACGT", "TT", "ACGTACGTACGT"));
        let out = extend_gapped_right(&a, &b, 0, 0, &params(5));
        assert_eq!(out.len1, 12);
        assert_eq!(out.score, 12);
    }

    #[test]
    fn big_xdrop_bridges_desert() {
        let a = codes(&format!("{}{}{}", "ACGTACGTACGT", "AA", "ACGTACGTACGT"));
        let b = codes(&format!("{}{}{}", "ACGTACGTACGT", "TT", "ACGTACGTACGT"));
        let out = extend_gapped_right(&a, &b, 0, 0, &params(40));
        assert_eq!(out.len1, 26);
        assert_eq!(out.score, 24 - 6);
    }

    #[test]
    fn extension_stops_at_sentinel() {
        let mut a = codes("ACGTAC");
        a.push(SENTINEL);
        a.extend(codes("GGGGGG"));
        let b = codes("ACGTACGGGGGG");
        let out = extend_gapped_right(&a, &b, 0, 0, &params(50));
        assert_eq!(out.len1, 6, "must not align across the sentinel");
    }

    #[test]
    fn left_extension_mirrors_right() {
        let a = codes("ACGTACGTAC");
        let out_r = extend_gapped_right(&a, &a, 0, 0, &params(20));
        let out_l = extend_gapped_left(&a, &a, a.len() - 1, a.len() - 1, &params(20));
        assert_eq!(out_r.score, out_l.score);
        assert_eq!(out_r.len1, out_l.len1);
    }

    #[test]
    fn both_extension_covers_whole_region() {
        let s = "ACGTACGTACGTGGCCACGT";
        let a = codes(s);
        let (merged, start1, start2) = extend_gapped_both(&a, &a, 10, 10, &params(20));
        assert_eq!(start1, 0);
        assert_eq!(start2, 0);
        assert_eq!(merged.len1, s.len());
        assert_eq!(merged.score, s.len() as i32);
    }

    #[test]
    fn ops_consume_correct_lengths() {
        let a = codes("ACGTACGTACGTACGTCCGGAATT");
        let mut bv = a.clone();
        bv.splice(10..10, codes("GG"));
        bv[3] ^= 2;
        let out = extend_gapped_right(&a, &bv, 0, 0, &params(30));
        let stats = AlignStats::from_ops(&out.ops);
        assert_eq!(stats.consumed1, out.len1);
        assert_eq!(stats.consumed2, out.len2);
    }

    proptest! {
        /// With a saturating xdrop, the two-sided extension through a
        /// planted exact core scores at least the Gotoh local optimum of
        /// the surrounding window (they coincide when the optimum passes
        /// through the core, which a long planted core guarantees).
        #[test]
        fn matches_gotoh_on_planted_homology(
            prefix in "[ACGT]{0,15}",
            suffix in "[ACGT]{0,15}",
            core in "[ACGT]{16,24}",
            noise1 in "[ACGT]{0,10}",
            noise2 in "[ACGT]{0,10}",
        ) {
            let s1 = format!("{noise1}{core}{prefix}");
            let s2 = format!("{noise2}{core}{suffix}");
            let d1 = codes(&s1);
            let d2 = codes(&s2);
            let m1 = noise1.len() + core.len() / 2;
            let m2 = noise2.len() + core.len() / 2;
            let p = GappedParams { scheme: ScoringScheme::blastn(), xdrop: 1000, max_span: 1 << 12, max_cells: 1 << 22 };
            let (merged, _, _) = extend_gapped_both(&d1, &d2, m1, m2, &p);
            let oracle = gotoh_local(&d1, &d2, &p.scheme);
            // The oracle is an upper bound; through-midpoint extension must
            // reach at least the core score.
            prop_assert!(merged.score <= oracle.score);
            prop_assert!(merged.score >= core.len() as i32);
        }

        /// Traceback op counts always agree with consumed lengths and the
        /// score recomputed from ops matches the DP score.
        #[test]
        fn traceback_is_self_consistent(s1 in "[ACGT]{1,40}", s2 in "[ACGT]{1,40}") {
            let d1 = codes(&s1);
            let d2 = codes(&s2);
            let p = params(15);
            let out = extend_gapped_right(&d1, &d2, 0, 0, &p);
            let stats = AlignStats::from_ops(&out.ops);
            prop_assert_eq!(stats.consumed1, out.len1);
            prop_assert_eq!(stats.consumed2, out.len2);
            prop_assert_eq!(stats.score(&p.scheme), out.score);
        }
    }
}
