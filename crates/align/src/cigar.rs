//! Alignment operations and derived statistics.
//!
//! The BLAST `-m 8` tabular format — the output format of both SCORIS-N
//! and the paper's BLASTN runs — reports per-alignment statistics that all
//! derive from the operation list: alignment length (columns), identity
//! percentage, mismatch count and gap-opening count. [`AlignStats`]
//! computes them once from a `&[AlignOp]`.

use crate::scoring::ScoringScheme;

/// One alignment column (edit operation), sequence 1 → sequence 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignOp {
    /// Identical pair.
    Match,
    /// Substitution.
    Mismatch,
    /// Column consumes sequence 1 only (gap in sequence 2).
    Ins,
    /// Column consumes sequence 2 only (gap in sequence 1).
    Del,
}

/// Statistics derived from an operation list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlignStats {
    /// Total alignment columns.
    pub length: usize,
    /// Identical pairs.
    pub matches: usize,
    /// Substituted pairs.
    pub mismatches: usize,
    /// Number of gap openings (maximal runs of Ins or Del).
    pub gap_opens: usize,
    /// Total gapped columns.
    pub gap_columns: usize,
    /// Characters consumed on sequence 1.
    pub consumed1: usize,
    /// Characters consumed on sequence 2.
    pub consumed2: usize,
}

impl AlignStats {
    /// Computes statistics from an operation list.
    pub fn from_ops(ops: &[AlignOp]) -> AlignStats {
        let mut s = AlignStats::default();
        let mut prev_gap: Option<AlignOp> = None;
        for &op in ops {
            s.length += 1;
            match op {
                AlignOp::Match => {
                    s.matches += 1;
                    s.consumed1 += 1;
                    s.consumed2 += 1;
                    prev_gap = None;
                }
                AlignOp::Mismatch => {
                    s.mismatches += 1;
                    s.consumed1 += 1;
                    s.consumed2 += 1;
                    prev_gap = None;
                }
                AlignOp::Ins => {
                    s.gap_columns += 1;
                    s.consumed1 += 1;
                    if prev_gap != Some(AlignOp::Ins) {
                        s.gap_opens += 1;
                    }
                    prev_gap = Some(AlignOp::Ins);
                }
                AlignOp::Del => {
                    s.gap_columns += 1;
                    s.consumed2 += 1;
                    if prev_gap != Some(AlignOp::Del) {
                        s.gap_opens += 1;
                    }
                    prev_gap = Some(AlignOp::Del);
                }
            }
        }
        s
    }

    /// Identity percentage over alignment columns, the `-m 8` `pident`.
    pub fn identity_pct(&self) -> f64 {
        if self.length == 0 {
            0.0
        } else {
            100.0 * self.matches as f64 / self.length as f64
        }
    }

    /// Recomputes the alignment score under `scheme` (affine gaps).
    pub fn score(&self, scheme: &ScoringScheme) -> i32 {
        self.matches as i32 * scheme.matsch
            + self.mismatches as i32 * scheme.mismatch
            + self.gap_opens as i32 * scheme.gap_open
            + self.gap_columns as i32 * scheme.gap_extend
    }
}

/// Renders ops as a compact CIGAR-like string (`=`, `X`, `I`, `D` runs).
pub fn ops_to_string(ops: &[AlignOp]) -> String {
    let mut out = String::new();
    let mut run: Option<(AlignOp, usize)> = None;
    let sym = |op: AlignOp| match op {
        AlignOp::Match => '=',
        AlignOp::Mismatch => 'X',
        AlignOp::Ins => 'I',
        AlignOp::Del => 'D',
    };
    for &op in ops {
        match run {
            Some((o, n)) if o == op => run = Some((o, n + 1)),
            Some((o, n)) => {
                out.push_str(&format!("{n}{}", sym(o)));
                run = Some((op, 1));
                let _ = n;
            }
            None => run = Some((op, 1)),
        }
    }
    if let Some((o, n)) = run {
        out.push_str(&format!("{n}{}", sym(o)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use AlignOp::*;

    #[test]
    fn counts_basic() {
        let ops = [Match, Match, Mismatch, Ins, Ins, Match, Del, Match];
        let s = AlignStats::from_ops(&ops);
        assert_eq!(s.length, 8);
        assert_eq!(s.matches, 4);
        assert_eq!(s.mismatches, 1);
        assert_eq!(s.gap_opens, 2);
        assert_eq!(s.gap_columns, 3);
        assert_eq!(s.consumed1, 7);
        assert_eq!(s.consumed2, 6);
    }

    #[test]
    fn adjacent_different_gaps_open_twice() {
        let ops = [Match, Ins, Del, Match];
        let s = AlignStats::from_ops(&ops);
        assert_eq!(s.gap_opens, 2);
    }

    #[test]
    fn identity_pct_full() {
        let ops = [Match, Match];
        assert!((AlignStats::from_ops(&ops).identity_pct() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn identity_pct_empty_is_zero() {
        assert_eq!(AlignStats::from_ops(&[]).identity_pct(), 0.0);
    }

    #[test]
    fn score_matches_manual() {
        let scheme = ScoringScheme::blastn();
        let ops = [Match, Match, Mismatch, Ins, Ins, Match];
        let s = AlignStats::from_ops(&ops);
        // 3 matches - 3 + open(-5) + 2*extend(-2)
        assert_eq!(s.score(&scheme), 3 - 3 - 5 - 4);
    }

    #[test]
    fn cigar_string_runs() {
        let ops = [Match, Match, Mismatch, Ins, Ins, Match];
        assert_eq!(ops_to_string(&ops), "2=1X2I1=");
    }

    #[test]
    fn cigar_string_empty() {
        assert_eq!(ops_to_string(&[]), "");
    }
}
