//! Genome-scale bank generation with shared repeat families.
//!
//! The paper's large-bank experiments (BCT, VRL, H10, H19) compare whole
//! genomes and chromosome-scale sequences. Alignments between such banks
//! come overwhelmingly from *repeat families* (interspersed elements,
//! segmental duplications) rather than orthologous genes — which is also
//! why the paper singles out "genomes having a large number of repeat
//! sequences" as the stress case.
//!
//! A [`RepeatLibrary`] is a fixed, globally shared set of consensus
//! elements (think Alu/LINE analogues). Every genome bank embeds divergent
//! copies drawn from the same library, so any two banks share homology
//! through their repeat content, with per-copy divergence controlling
//! identity percentages.

use oris_seqio::{Bank, BankBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dna::random_codes;
use crate::mutate::{mutate, MutationModel};

/// A shared library of repeat-element consensus sequences.
#[derive(Debug, Clone)]
pub struct RepeatLibrary {
    elements: Vec<Vec<u8>>,
}

impl RepeatLibrary {
    /// Generates a library of `num` elements with lengths in
    /// `[min_len, max_len]`.
    pub fn generate(seed: u64, num: usize, min_len: usize, max_len: usize) -> RepeatLibrary {
        let mut rng = StdRng::seed_from_u64(seed);
        let elements = (0..num)
            .map(|_| {
                let len = rng.gen_range(min_len..=max_len);
                random_codes(&mut rng, len, 0.45)
            })
            .collect();
        RepeatLibrary { elements }
    }

    /// The library shared by the eukaryotic/viral paper banks (H10, H19,
    /// VRL): interspersed-element analogues. Human chromosomes and the
    /// viral division share abundant homology in the paper (H10 vs VRL:
    /// 490k alignments) — retro-elements, integrated sequence — which this
    /// shared library models.
    pub fn paper_default() -> RepeatLibrary {
        RepeatLibrary::generate(0xA1u64 << 32 | 0x0515, 24, 150, 400)
    }

    /// The *separate* library used by the bacterial bank (BCT): IS
    /// elements and rRNA-operon analogues shared among bacteria but not
    /// with the eukaryotic banks. The paper found essentially no
    /// human–bacteria homology (H10 vs BCT: 0 alignments; H19 vs BCT: 11)
    /// while bacteria still align to ESTs (library contamination) — see
    /// `oris-simulate::est` for the contamination knob.
    pub fn bacterial_default() -> RepeatLibrary {
        RepeatLibrary::generate(0xBAC7_0000_0000_0515, 16, 200, 500)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Element at `idx`.
    pub fn element(&self, idx: usize) -> &[u8] {
        &self.elements[idx]
    }
}

/// Configuration of one genome bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenomeConfig {
    /// Number of sequences (chromosomes / genomes / viral segments).
    pub num_seqs: usize,
    /// Total residues across all sequences.
    pub target_nt: usize,
    /// Mean spacing between repeat insertions (nt of background per
    /// repeat copy). Smaller = more repeat-dense, the paper's stress case.
    pub repeat_spacing: usize,
    /// Divergence of each repeat copy from its consensus.
    pub copy_divergence: f64,
    /// Background GC content.
    pub gc: f64,
}

impl GenomeConfig {
    /// Human-chromosome-like: few long sequences, dense repeats.
    pub fn chromosome_like(num_seqs: usize, target_nt: usize) -> GenomeConfig {
        GenomeConfig {
            num_seqs,
            target_nt,
            repeat_spacing: 1_600,
            copy_divergence: 0.08,
            gc: 0.41,
        }
    }

    /// Bacterial-genome-like: few sequences, sparse repeats.
    pub fn bacterial_like(num_seqs: usize, target_nt: usize) -> GenomeConfig {
        GenomeConfig {
            num_seqs,
            target_nt,
            repeat_spacing: 5_000,
            copy_divergence: 0.05,
            gc: 0.50,
        }
    }

    /// Viral-division-like: many short genomes (~900 nt at the paper's
    /// mean), moderate repeat use. The spacing must be well below the
    /// per-sequence length or most short genomes would receive no element
    /// at all and the bank would share nothing with anyone.
    pub fn viral_like(num_seqs: usize, target_nt: usize) -> GenomeConfig {
        let per_seq = (target_nt / num_seqs.max(1)).max(200);
        GenomeConfig {
            num_seqs,
            target_nt,
            repeat_spacing: (per_seq / 2).clamp(100, 2_500),
            copy_divergence: 0.10,
            gc: 0.44,
        }
    }
}

/// Generates one genome bank embedding copies from `library`.
pub fn genome_bank(
    library: &RepeatLibrary,
    seed: u64,
    name_prefix: &str,
    cfg: &GenomeConfig,
) -> Bank {
    assert!(!library.is_empty(), "repeat library is empty");
    assert!(cfg.num_seqs > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let per_seq = cfg.target_nt / cfg.num_seqs;
    let mut b = BankBuilder::with_capacity(cfg.target_nt + 1024, cfg.num_seqs);
    let model = MutationModel::divergence(cfg.copy_divergence);

    for s in 0..cfg.num_seqs {
        let mut codes: Vec<u8> = Vec::with_capacity(per_seq + 512);
        while codes.len() < per_seq {
            // Background stretch, then a repeat copy.
            let bg = rng.gen_range(cfg.repeat_spacing / 2..=cfg.repeat_spacing * 3 / 2);
            let take = bg.min(per_seq - codes.len());
            codes.extend(random_codes(&mut rng, take, cfg.gc));
            if codes.len() >= per_seq {
                break;
            }
            let el = library.element(rng.gen_range(0..library.len()));
            // occasional truncated copy (5' truncation, as real elements)
            let start = if rng.gen::<f64>() < 0.3 {
                rng.gen_range(0..el.len() / 2)
            } else {
                0
            };
            let copy = mutate(&mut rng, &el[start..], &model);
            codes.extend(copy);
        }
        codes.truncate(per_seq);
        b.push_codes(&format!("{name_prefix}_{s}"), &codes);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> RepeatLibrary {
        RepeatLibrary::generate(11, 8, 150, 300)
    }

    #[test]
    fn library_deterministic() {
        let a = RepeatLibrary::generate(3, 5, 100, 200);
        let b = RepeatLibrary::generate(3, 5, 100, 200);
        assert_eq!(a.elements, b.elements);
    }

    #[test]
    fn bank_shape() {
        let bank = genome_bank(&lib(), 1, "chr", &GenomeConfig::chromosome_like(3, 90_000));
        assert_eq!(bank.num_sequences(), 3);
        assert_eq!(bank.num_residues(), 90_000);
        assert_eq!(bank.record(0).name, "chr_0");
    }

    #[test]
    fn two_banks_share_repeat_kmers() {
        use std::collections::HashSet;
        fn kmers(bank: &Bank) -> HashSet<Vec<u8>> {
            let mut set = HashSet::new();
            for i in 0..bank.num_sequences() {
                for w in bank.sequence(i).windows(14) {
                    set.insert(w.to_vec());
                }
            }
            set
        }
        let shared = lib();
        let a = genome_bank(&shared, 1, "a", &GenomeConfig::chromosome_like(1, 60_000));
        let b = genome_bank(&shared, 2, "b", &GenomeConfig::viral_like(10, 60_000));
        // Independent libraries → near-zero sharing.
        let other = RepeatLibrary::generate(99, 8, 150, 300);
        let c = genome_bank(&other, 3, "c", &GenomeConfig::viral_like(10, 60_000));
        let (ka, kb, kc) = (kmers(&a), kmers(&b), kmers(&c));
        let same = ka.intersection(&kb).count();
        let cross = ka.intersection(&kc).count();
        assert!(
            same > 5 * (cross + 1),
            "shared-library {same} vs independent {cross}"
        );
    }

    #[test]
    fn repeat_density_scales_with_spacing() {
        // Denser spacing → more shared k-mers with the library elements.
        use std::collections::HashSet;
        let l = lib();
        let mut libkmers = HashSet::new();
        for i in 0..l.len() {
            for w in l.element(i).windows(14) {
                libkmers.insert(w.to_vec());
            }
        }
        let count_hits = |bank: &Bank| {
            let mut n = 0usize;
            for i in 0..bank.num_sequences() {
                for w in bank.sequence(i).windows(14) {
                    if libkmers.contains(w) {
                        n += 1;
                    }
                }
            }
            n
        };
        let dense = genome_bank(
            &l,
            5,
            "d",
            &GenomeConfig {
                repeat_spacing: 800,
                ..GenomeConfig::chromosome_like(1, 50_000)
            },
        );
        let sparse = genome_bank(
            &l,
            5,
            "s",
            &GenomeConfig {
                repeat_spacing: 6_000,
                ..GenomeConfig::chromosome_like(1, 50_000)
            },
        );
        assert!(count_hits(&dense) > 2 * count_hits(&sparse));
    }

    #[test]
    fn deterministic_bank() {
        let l = lib();
        let cfg = GenomeConfig::bacterial_like(2, 30_000);
        assert_eq!(genome_bank(&l, 7, "x", &cfg), genome_bank(&l, 7, "x", &cfg));
    }
}
