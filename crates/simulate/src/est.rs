//! EST bank generation from a shared latent gene pool.
//!
//! The paper's EST banks are *random samples of the GenBank EST division*;
//! two such samples share homology because they sample transcripts of the
//! same underlying genes. We model this directly: a [`GenePool`] is a
//! deterministic collection of synthetic "gene" sequences; an EST is a
//! mutated fragment of a random gene (log-normal length, ~3 % divergence,
//! frequent poly-A tail), or — with some probability — a novel random
//! sequence with no homolog anywhere.
//!
//! Two banks generated from the **same pool** with different seeds behave
//! like the paper's EST1–EST7: abundant cross-bank alignments of varying
//! identity, plus background noise.

use oris_seqio::{Bank, BankBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dna::{lognormal_len, random_codes};
use crate::mutate::{mutate, MutationModel};
use oris_seqio::alphabet::CODE_A;

/// A deterministic pool of latent gene sequences.
#[derive(Debug, Clone)]
pub struct GenePool {
    genes: Vec<Vec<u8>>,
}

impl GenePool {
    /// Generates a pool of `num_genes` genes with log-normal lengths
    /// around `mean_len`.
    pub fn generate(seed: u64, num_genes: usize, mean_len: usize, gc: f64) -> GenePool {
        let mut rng = StdRng::seed_from_u64(seed);
        let genes = (0..num_genes)
            .map(|_| {
                let len = lognormal_len(&mut rng, mean_len as f64, 0.35, 300, mean_len * 4);
                random_codes(&mut rng, len, gc)
            })
            .collect();
        GenePool { genes }
    }

    /// The default pool shared by every paper EST bank (fixed seed).
    pub fn paper_default() -> GenePool {
        GenePool::generate(0x0515_C0DE, 1500, 1400, 0.47)
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// `true` if the pool holds no genes.
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Gene at `idx`.
    pub fn gene(&self, idx: usize) -> &[u8] {
        &self.genes[idx]
    }
}

/// Configuration of one EST bank draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstBankConfig {
    /// Total residues to generate (the bank's "nb. nt").
    pub target_nt: usize,
    /// Mean EST length (paper mean ≈ 490 nt).
    pub mean_len: usize,
    /// Fraction of ESTs drawn as novel random sequences (no homolog).
    pub novel_fraction: f64,
    /// Mutation model applied to gene fragments.
    pub mutation: MutationModel,
    /// Probability an EST carries a poly-A tail.
    pub polya_prob: f64,
    /// Mean poly-A tail length.
    pub polya_mean_len: usize,
}

impl Default for EstBankConfig {
    fn default() -> Self {
        EstBankConfig {
            target_nt: 250_000,
            mean_len: 490,
            novel_fraction: 0.15,
            mutation: MutationModel::est_default(),
            polya_prob: 0.4,
            polya_mean_len: 18,
        }
    }
}

/// Draws one EST bank from `pool`.
pub fn est_bank(pool: &GenePool, seed: u64, cfg: &EstBankConfig) -> Bank {
    est_bank_with_contaminants(pool, seed, cfg, &[], 0.0)
}

/// Like [`est_bank`], with a contamination source: with probability
/// `contam_prob`, an EST is a (mutated) fragment of one of `contaminants`
/// instead of a gene-pool transcript.
///
/// Real EST libraries carry bacterial contamination — the reason the
/// paper's BCT-vs-EST7 comparison reports ~2000 alignments while
/// human-vs-BCT reports essentially none. The paper-bank builder passes
/// the bacterial repeat library here with a small probability.
pub fn est_bank_with_contaminants(
    pool: &GenePool,
    seed: u64,
    cfg: &EstBankConfig,
    contaminants: &[Vec<u8>],
    contam_prob: f64,
) -> Bank {
    assert!(!pool.is_empty(), "gene pool is empty");
    assert!((0.0..=1.0).contains(&contam_prob));
    let mut rng = StdRng::seed_from_u64(seed);
    let est_estimate = cfg.target_nt / cfg.mean_len.max(1) + 1;
    let mut b = BankBuilder::with_capacity(cfg.target_nt + cfg.target_nt / 10, est_estimate);
    let mut idx = 0usize;
    while b.residues() < cfg.target_nt {
        let name = format!("est_{seed}_{idx}");
        idx += 1;
        let len = lognormal_len(&mut rng, cfg.mean_len as f64, 0.45, 80, cfg.mean_len * 6);
        let mut codes: Vec<u8>;
        if !contaminants.is_empty() && rng.gen::<f64>() < contam_prob {
            let src = &contaminants[rng.gen_range(0..contaminants.len())];
            let flen = len.min(src.len());
            let start = rng.gen_range(0..=src.len() - flen);
            codes = mutate(&mut rng, &src[start..start + flen], &cfg.mutation);
        } else if rng.gen::<f64>() < cfg.novel_fraction {
            codes = random_codes(&mut rng, len, 0.45);
        } else {
            let gene = pool.gene(rng.gen_range(0..pool.len()));
            let flen = len.min(gene.len());
            let start = rng.gen_range(0..=gene.len() - flen);
            codes = mutate(&mut rng, &gene[start..start + flen], &cfg.mutation);
        }
        if rng.gen::<f64>() < cfg.polya_prob {
            let tail = 1 + rng.gen_range(0..cfg.polya_mean_len.max(1) * 2);
            codes.extend(std::iter::repeat_n(CODE_A, tail));
        }
        b.push_codes(&name, &codes);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool() -> GenePool {
        GenePool::generate(1, 20, 800, 0.5)
    }

    #[test]
    fn pool_is_deterministic() {
        let a = GenePool::generate(5, 10, 600, 0.5);
        let b = GenePool::generate(5, 10, 600, 0.5);
        assert_eq!(a.genes, b.genes);
    }

    #[test]
    fn bank_reaches_target_size() {
        let pool = small_pool();
        let cfg = EstBankConfig {
            target_nt: 50_000,
            ..Default::default()
        };
        let bank = est_bank(&pool, 9, &cfg);
        assert!(bank.num_residues() >= 50_000);
        assert!(
            bank.num_residues() < 55_000,
            "overshoot: {}",
            bank.num_residues()
        );
    }

    #[test]
    fn mean_length_plausible() {
        let pool = small_pool();
        let cfg = EstBankConfig {
            target_nt: 200_000,
            mean_len: 490,
            polya_prob: 0.0,
            ..Default::default()
        };
        let bank = est_bank(&pool, 3, &cfg);
        let mean = bank.num_residues() as f64 / bank.num_sequences() as f64;
        // log-normal with sigma .45 has mean e^{σ²/2} ≈ 1.11× the median
        assert!(mean > 380.0 && mean < 700.0, "mean = {mean}");
    }

    #[test]
    fn two_banks_share_homology() {
        // Count shared 16-mers between two banks from the same pool vs two
        // banks from different pools: shared-pool banks overlap far more.
        use std::collections::HashSet;
        fn kmers(bank: &Bank) -> HashSet<Vec<u8>> {
            let mut set = HashSet::new();
            for i in 0..bank.num_sequences() {
                let s = bank.sequence(i);
                for w in s.windows(16) {
                    if w.iter().all(|&c| c < 4) {
                        set.insert(w.to_vec());
                    }
                }
            }
            set
        }
        let pool = small_pool();
        let other_pool = GenePool::generate(999, 20, 800, 0.5);
        let cfg = EstBankConfig {
            target_nt: 40_000,
            ..Default::default()
        };
        let a = est_bank(&pool, 10, &cfg);
        let b = est_bank(&pool, 11, &cfg);
        let c = est_bank(&other_pool, 12, &cfg);
        let ka = kmers(&a);
        let kb = kmers(&b);
        let kc = kmers(&c);
        let shared_same = ka.intersection(&kb).count();
        let shared_diff = ka.intersection(&kc).count();
        assert!(
            shared_same > 10 * (shared_diff + 1),
            "same-pool {shared_same} vs cross-pool {shared_diff}"
        );
    }

    #[test]
    fn polya_tails_present() {
        let pool = small_pool();
        let cfg = EstBankConfig {
            target_nt: 50_000,
            polya_prob: 1.0,
            ..Default::default()
        };
        let bank = est_bank(&pool, 4, &cfg);
        // Every sequence ends in at least one A.
        let tails = (0..bank.num_sequences())
            .filter(|&i| bank.sequence(i).last() == Some(&CODE_A))
            .count();
        assert_eq!(tails, bank.num_sequences());
    }

    #[test]
    fn contaminated_bank_shares_kmers_with_source() {
        use std::collections::HashSet;
        let pool = small_pool();
        let contaminant = {
            let mut r = rand::rngs::StdRng::seed_from_u64(77);
            crate::dna::random_codes(&mut r, 2000, 0.5)
        };
        let cfg = EstBankConfig {
            target_nt: 60_000,
            polya_prob: 0.0,
            ..Default::default()
        };
        let with =
            est_bank_with_contaminants(&pool, 5, &cfg, std::slice::from_ref(&contaminant), 0.3);
        let without = est_bank(&pool, 5, &cfg);
        let src: HashSet<&[u8]> = contaminant.windows(16).collect();
        let count_hits = |bank: &Bank| {
            let mut n = 0usize;
            for i in 0..bank.num_sequences() {
                for w in bank.sequence(i).windows(16) {
                    if src.contains(w) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(count_hits(&with) > 100, "contamination absent");
        assert_eq!(count_hits(&without), 0);
    }

    #[test]
    fn deterministic_bank() {
        let pool = small_pool();
        let cfg = EstBankConfig::default();
        let a = est_bank(&pool, 77, &cfg);
        let b = est_bank(&pool, 77, &cfg);
        assert_eq!(a, b);
    }
}
