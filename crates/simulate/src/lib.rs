//! # oris-simulate — synthetic DNA banks for the ORIS reproduction
//!
//! The paper evaluates on GenBank data: seven randomly-sampled EST banks
//! (6.4–40 Mbp), the viral division (VRL), a set of bacterial genomes
//! (BCT) and human chromosomes 10 and 19. None of that data ships with
//! this reproduction, so this crate builds *statistical analogues* whose
//! properties drive the same code paths (see the substitution table in
//! DESIGN.md):
//!
//! * **EST banks** ([`est`]): short sequences (log-normal lengths around
//!   ~490 nt, the paper's mean) sampled as mutated fragments of a shared
//!   latent *gene pool* — two banks sampled from the same pool share
//!   homologous fragments exactly as two random GenBank EST samples share
//!   genes. Poly-A tails and occasional low-complexity inserts exercise
//!   the filters.
//! * **Genome banks** ([`genome`]): few, long sequences with divergent
//!   copies of a global *repeat library* embedded in random background —
//!   cross-bank alignments then arise from shared repeat families, as they
//!   do between real genomes.
//! * **The paper's data-set table** ([`banks`]): [`paper_banks`] rebuilds
//!   the section-3.2 table at 1/10 scale (EST) and 1/20 scale (large
//!   banks) with fixed seeds, so every experiment in `oris-bench` is
//!   deterministic.
//!
//! All generators are deterministic given their seed (rand `StdRng`).

pub mod banks;
pub mod dna;
pub mod est;
pub mod genome;
pub mod mutate;

pub use banks::{
    paper_bank, paper_bank_specs, paper_banks, BankKind, BankSpec, NamedBank, SimConfig,
};
pub use dna::{random_bank, random_codes};
pub use est::{est_bank, est_bank_with_contaminants, EstBankConfig, GenePool};
pub use genome::{genome_bank, GenomeConfig, RepeatLibrary};
pub use mutate::{mutate, MutationModel};
