//! The paper's section-3.2 data-set table, regenerated synthetically.
//!
//! Every bank of the paper gets a named analogue here, scaled down 10×
//! (EST banks) or 20× (large banks) so the full experiment grid runs on a
//! laptop — see DESIGN.md §6. The `scale` parameter multiplies sizes
//! further (e.g. `scale = 0.1` for quick tests; `scale = 1.0` is the
//! standard reduced grid).
//!
//! All EST banks sample the **same** gene pool and all genome banks embed
//! the **same** repeat library (both fixed-seed), which is what produces
//! cross-bank homology, exactly as the paper's banks share GenBank genes
//! and genomic repeat families.

use oris_seqio::Bank;

use crate::est::{est_bank_with_contaminants, EstBankConfig, GenePool};
use crate::genome::{genome_bank, GenomeConfig, RepeatLibrary};

/// What kind of data a bank analogue models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankKind {
    /// Short expressed-sequence-tag reads (EST1–EST7).
    Est,
    /// Many short viral genomes (VRL / gbvrl1).
    Viral,
    /// Few bacterial genomes (BCT).
    Bacterial,
    /// Chromosome-scale human sequence (H10, H19).
    Chromosome,
}

/// One row of the paper's data-set table with its scaled-down target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankSpec {
    /// Bank name as used in the paper (EST1 … H19).
    pub name: &'static str,
    /// Kind of generator used.
    pub kind: BankKind,
    /// The original size reported in the paper (Mbp).
    pub paper_mbp: f64,
    /// Original number of sequences in the paper.
    pub paper_seqs: usize,
    /// Residues generated at `scale = 1.0`.
    pub unit_nt: usize,
    /// Sequences generated at `scale = 1.0` (genome kinds only; EST/viral
    /// sequence counts follow from the size).
    pub unit_seqs: usize,
    /// Deterministic per-bank seed.
    pub seed: u64,
}

/// Global simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Size multiplier applied to every `unit_nt` (1.0 = the reduced grid
    /// of DESIGN.md §6).
    pub scale: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { scale: 1.0 }
    }
}

/// A generated bank together with its paper name.
#[derive(Debug, Clone)]
pub struct NamedBank {
    /// Paper name (EST1 … H19).
    pub name: String,
    /// The generated bank.
    pub bank: Bank,
}

/// The full data-set table (paper section 3.2), reduced 10×/20×.
pub fn paper_bank_specs() -> Vec<BankSpec> {
    use BankKind::*;
    vec![
        BankSpec {
            name: "EST1",
            kind: Est,
            paper_mbp: 6.44,
            paper_seqs: 13013,
            unit_nt: 644_000,
            unit_seqs: 0,
            seed: 101,
        },
        BankSpec {
            name: "EST2",
            kind: Est,
            paper_mbp: 6.65,
            paper_seqs: 11220,
            unit_nt: 665_000,
            unit_seqs: 0,
            seed: 102,
        },
        BankSpec {
            name: "EST3",
            kind: Est,
            paper_mbp: 14.64,
            paper_seqs: 37483,
            unit_nt: 1_464_000,
            unit_seqs: 0,
            seed: 103,
        },
        BankSpec {
            name: "EST4",
            kind: Est,
            paper_mbp: 14.87,
            paper_seqs: 34902,
            unit_nt: 1_487_000,
            unit_seqs: 0,
            seed: 104,
        },
        BankSpec {
            name: "EST5",
            kind: Est,
            paper_mbp: 25.48,
            paper_seqs: 50537,
            unit_nt: 2_548_000,
            unit_seqs: 0,
            seed: 105,
        },
        BankSpec {
            name: "EST6",
            kind: Est,
            paper_mbp: 25.20,
            paper_seqs: 53550,
            unit_nt: 2_520_000,
            unit_seqs: 0,
            seed: 106,
        },
        BankSpec {
            name: "EST7",
            kind: Est,
            paper_mbp: 40.08,
            paper_seqs: 88452,
            unit_nt: 4_008_000,
            unit_seqs: 0,
            seed: 107,
        },
        BankSpec {
            name: "VRL",
            kind: Viral,
            paper_mbp: 65.84,
            paper_seqs: 72113,
            unit_nt: 3_292_000,
            unit_seqs: 3600,
            seed: 201,
        },
        BankSpec {
            name: "BCT",
            kind: Bacterial,
            paper_mbp: 98.10,
            paper_seqs: 59,
            unit_nt: 4_905_000,
            unit_seqs: 8,
            seed: 202,
        },
        BankSpec {
            name: "H10",
            kind: Chromosome,
            paper_mbp: 131.73,
            paper_seqs: 19,
            unit_nt: 6_586_000,
            unit_seqs: 3,
            seed: 203,
        },
        BankSpec {
            name: "H19",
            kind: Chromosome,
            paper_mbp: 56.03,
            paper_seqs: 6,
            unit_nt: 2_801_000,
            unit_seqs: 2,
            seed: 204,
        },
    ]
}

/// Looks up a spec by paper name (case-insensitive).
pub fn spec_by_name(name: &str) -> Option<BankSpec> {
    paper_bank_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// Generates the analogue of one paper bank at the given scale.
///
/// # Panics
/// Panics if `name` is not one of the paper bank names.
pub fn paper_bank(name: &str, scale: f64) -> NamedBank {
    let spec = spec_by_name(name)
        .unwrap_or_else(|| panic!("unknown paper bank {name:?}; see paper_bank_specs()"));
    build(&spec, SimConfig { scale })
}

/// Generates a bank from its spec.
pub fn build(spec: &BankSpec, cfg: SimConfig) -> NamedBank {
    assert!(cfg.scale > 0.0, "scale must be positive");
    let nt = ((spec.unit_nt as f64 * cfg.scale) as usize).max(2_000);
    let bank = match spec.kind {
        BankKind::Est => {
            let pool = GenePool::paper_default();
            let est_cfg = EstBankConfig {
                target_nt: nt,
                ..Default::default()
            };
            // ~1.5 % bacterial library contamination, as in real EST
            // divisions — the source of the paper's BCT-vs-EST alignments.
            let bact = RepeatLibrary::bacterial_default();
            let contaminants: Vec<Vec<u8>> =
                (0..bact.len()).map(|i| bact.element(i).to_vec()).collect();
            est_bank_with_contaminants(&pool, spec.seed, &est_cfg, &contaminants, 0.015)
        }
        BankKind::Viral => {
            let lib = RepeatLibrary::paper_default();
            let seqs = ((spec.unit_seqs as f64 * cfg.scale) as usize).max(4);
            genome_bank(
                &lib,
                spec.seed,
                spec.name,
                &GenomeConfig::viral_like(seqs, nt),
            )
        }
        BankKind::Bacterial => {
            // Bacteria carry their own repeat families — no homology with
            // the eukaryotic/viral banks, as in the paper (H10 vs BCT: 0).
            let lib = RepeatLibrary::bacterial_default();
            let seqs = spec.unit_seqs.max(1);
            genome_bank(
                &lib,
                spec.seed,
                spec.name,
                &GenomeConfig::bacterial_like(seqs, nt),
            )
        }
        BankKind::Chromosome => {
            let lib = RepeatLibrary::paper_default();
            let seqs = spec.unit_seqs.max(1);
            genome_bank(
                &lib,
                spec.seed,
                spec.name,
                &GenomeConfig::chromosome_like(seqs, nt),
            )
        }
    };
    NamedBank {
        name: spec.name.to_string(),
        bank,
    }
}

/// Generates several paper banks at once.
pub fn paper_banks(names: &[&str], scale: f64) -> Vec<NamedBank> {
    names.iter().map(|n| paper_bank(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_have_unique_names_and_seeds() {
        let specs = paper_bank_specs();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), specs.len());
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn scaling_is_proportional_to_paper_sizes() {
        // unit sizes are paper sizes /10 (EST) or /20 (large)
        for s in paper_bank_specs() {
            let ratio = s.paper_mbp * 1e6 / s.unit_nt as f64;
            match s.kind {
                BankKind::Est => assert!((ratio - 10.0).abs() < 0.1, "{}: {ratio}", s.name),
                _ => assert!((ratio - 20.0).abs() < 0.2, "{}: {ratio}", s.name),
            }
        }
    }

    #[test]
    fn small_scale_est_bank_builds() {
        let nb = paper_bank("EST1", 0.02);
        assert_eq!(nb.name, "EST1");
        assert!(nb.bank.num_residues() >= 10_000);
        assert!(nb.bank.num_sequences() > 10);
    }

    #[test]
    fn small_scale_genome_banks_build() {
        for name in ["VRL", "BCT", "H10", "H19"] {
            let nb = paper_bank(name, 0.01);
            assert!(nb.bank.num_residues() >= 2_000, "{name}");
            assert!(nb.bank.num_sequences() >= 1, "{name}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_bank("EST2", 0.02);
        let b = paper_bank("EST2", 0.02);
        assert_eq!(a.bank, b.bank);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(spec_by_name("est1").is_some());
        assert!(spec_by_name("h19").is_some());
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    #[should_panic]
    fn unknown_bank_panics() {
        let _ = paper_bank("EST99", 1.0);
    }
}
