//! Sequence mutation model: substitutions with transition bias, indels.

use rand::rngs::StdRng;
use rand::Rng;

use oris_seqio::alphabet::{CODE_A, CODE_C, CODE_G, CODE_T, NUC_CODES};

/// Parameters of the point-mutation process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationModel {
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-base probability of starting an indel.
    pub indel_rate: f64,
    /// Fraction of substitutions that are transitions (A↔G, C↔T);
    /// biological data sits around 2/3.
    pub ts_fraction: f64,
    /// Mean indel length (geometric, capped at `max_indel`).
    pub mean_indel_len: f64,
    /// Maximum indel length.
    pub max_indel: usize,
}

impl MutationModel {
    /// A model with only substitutions.
    pub fn substitutions_only(sub_rate: f64) -> MutationModel {
        MutationModel {
            sub_rate,
            indel_rate: 0.0,
            ts_fraction: 2.0 / 3.0,
            mean_indel_len: 1.5,
            max_indel: 10,
        }
    }

    /// EST-style divergence: ~3 % substitutions, ~0.3 % indels (sequencing
    /// errors plus allelic variation).
    pub fn est_default() -> MutationModel {
        MutationModel {
            sub_rate: 0.03,
            indel_rate: 0.003,
            ts_fraction: 2.0 / 3.0,
            mean_indel_len: 1.5,
            max_indel: 8,
        }
    }

    /// Repeat-family divergence (older copies drift further).
    pub fn divergence(rate: f64) -> MutationModel {
        MutationModel {
            sub_rate: rate,
            indel_rate: rate / 10.0,
            ts_fraction: 2.0 / 3.0,
            mean_indel_len: 2.0,
            max_indel: 12,
        }
    }

    /// The identity model.
    pub fn none() -> MutationModel {
        MutationModel {
            sub_rate: 0.0,
            indel_rate: 0.0,
            ts_fraction: 0.0,
            mean_indel_len: 0.0,
            max_indel: 0,
        }
    }
}

/// Transition partner of a nucleotide code (A↔G, C↔T).
fn transition(code: u8) -> u8 {
    match code {
        CODE_A => CODE_G,
        CODE_G => CODE_A,
        CODE_C => CODE_T,
        CODE_T => CODE_C,
        other => other,
    }
}

/// Random transversion partner.
fn transversion(rng: &mut StdRng, code: u8) -> u8 {
    // The two nucleotides in the other chemical class.
    let purine = matches!(code, CODE_A | CODE_G);
    let choices = if purine {
        [CODE_C, CODE_T]
    } else {
        [CODE_A, CODE_G]
    };
    choices[rng.gen_range(0..2)]
}

/// Geometric length with the given mean, ≥ 1, capped.
fn geometric_len(rng: &mut StdRng, mean: f64, cap: usize) -> usize {
    let p = (1.0 / mean.max(1.0)).clamp(0.01, 1.0);
    let mut len = 1usize;
    while len < cap && rng.gen::<f64>() > p {
        len += 1;
    }
    len
}

/// Applies the mutation model to a code sequence, returning the mutated
/// copy. Ambiguous codes pass through substitutions untouched.
pub fn mutate(rng: &mut StdRng, seq: &[u8], model: &MutationModel) -> Vec<u8> {
    let mut out = Vec::with_capacity(seq.len() + 16);
    let mut i = 0usize;
    while i < seq.len() {
        let c = seq[i];
        // Indel events.
        if model.indel_rate > 0.0 && rng.gen::<f64>() < model.indel_rate {
            let len = geometric_len(rng, model.mean_indel_len, model.max_indel);
            if rng.gen::<bool>() {
                // insertion of random bases
                for _ in 0..len {
                    out.push(NUC_CODES[rng.gen_range(0..4)]);
                }
                // current base still emitted below
            } else {
                // deletion: skip `len` bases including this one
                i += len;
                continue;
            }
        }
        // Substitution.
        if c < 4 && model.sub_rate > 0.0 && rng.gen::<f64>() < model.sub_rate {
            let m = if rng.gen::<f64>() < model.ts_fraction {
                transition(c)
            } else {
                transversion(rng, c)
            };
            out.push(m);
        } else {
            out.push(c);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn hamming_fraction(a: &[u8], b: &[u8]) -> f64 {
        let n = a.len().min(b.len());
        let d = (0..n).filter(|&i| a[i] != b[i]).count();
        d as f64 / n as f64
    }

    #[test]
    fn identity_model_is_identity() {
        let mut r = rng(1);
        let seq: Vec<u8> = (0..200).map(|i| (i % 4) as u8).collect();
        assert_eq!(mutate(&mut r, &seq, &MutationModel::none()), seq);
    }

    #[test]
    fn substitution_rate_is_respected() {
        let mut r = rng(2);
        let seq = crate::dna::random_codes(&mut r, 100_000, 0.5);
        let out = mutate(&mut r, &seq, &MutationModel::substitutions_only(0.05));
        assert_eq!(out.len(), seq.len());
        let f = hamming_fraction(&seq, &out);
        assert!((f - 0.05).abs() < 0.01, "observed rate {f}");
    }

    #[test]
    fn transitions_dominate() {
        let mut r = rng(3);
        let seq = vec![CODE_A; 100_000];
        let model = MutationModel::substitutions_only(0.5);
        let out = mutate(&mut r, &seq, &model);
        let to_g = out.iter().filter(|&&c| c == CODE_G).count() as f64;
        let to_ct = out.iter().filter(|&&c| c == CODE_C || c == CODE_T).count() as f64;
        let ts_frac = to_g / (to_g + to_ct);
        assert!((ts_frac - 2.0 / 3.0).abs() < 0.03, "ts fraction {ts_frac}");
    }

    #[test]
    fn indels_change_length() {
        let mut r = rng(4);
        let seq = crate::dna::random_codes(&mut r, 10_000, 0.5);
        let model = MutationModel {
            sub_rate: 0.0,
            indel_rate: 0.02,
            ts_fraction: 0.5,
            mean_indel_len: 2.0,
            max_indel: 6,
        };
        let out = mutate(&mut r, &seq, &model);
        assert_ne!(out.len(), seq.len());
        // length change bounded by total indel mass
        let delta = (out.len() as i64 - seq.len() as i64).unsigned_abs() as usize;
        assert!(delta < 2_000, "delta {delta}");
    }

    #[test]
    fn substitutions_never_produce_identity() {
        // transition() and transversion() always move to a different base
        let mut r = rng(5);
        for c in NUC_CODES {
            assert_ne!(transition(c), c);
            for _ in 0..10 {
                assert_ne!(transversion(&mut r, c), c);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let seq = {
            let mut r = rng(6);
            crate::dna::random_codes(&mut r, 5_000, 0.5)
        };
        let a = mutate(&mut rng(42), &seq, &MutationModel::est_default());
        let b = mutate(&mut rng(42), &seq, &MutationModel::est_default());
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_len_bounds() {
        let mut r = rng(7);
        for _ in 0..1000 {
            let l = geometric_len(&mut r, 2.0, 5);
            assert!((1..=5).contains(&l));
        }
    }
}
