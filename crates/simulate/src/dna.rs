//! Random DNA generation primitives.

use oris_seqio::{Bank, BankBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use oris_seqio::alphabet::{CODE_A, CODE_C, CODE_G, CODE_T};

/// Draws `len` random nucleotide codes with the given GC content.
pub fn random_codes(rng: &mut StdRng, len: usize, gc: f64) -> Vec<u8> {
    assert!((0.0..=1.0).contains(&gc), "gc must be a fraction");
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let c = if rng.gen::<f64>() < gc {
            if rng.gen::<bool>() {
                CODE_G
            } else {
                CODE_C
            }
        } else if rng.gen::<bool>() {
            CODE_A
        } else {
            CODE_T
        };
        out.push(c);
    }
    out
}

/// Standard-normal draw via Box–Muller (rand ships no normal distribution
/// in the sanctioned dependency set).
pub fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal length draw around `mean` with multiplicative spread
/// `sigma`, clamped to `[min, max]`.
pub fn lognormal_len(rng: &mut StdRng, mean: f64, sigma: f64, min: usize, max: usize) -> usize {
    let x = mean * (sigma * normal(rng)).exp();
    (x as usize).clamp(min, max)
}

/// A bank of unrelated random sequences (negative control: no planted
/// homology).
pub fn random_bank(seed: u64, num_seqs: usize, seq_len: usize, gc: f64) -> Bank {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = BankBuilder::with_capacity(num_seqs * seq_len, num_seqs);
    for i in 0..num_seqs {
        let codes = random_codes(&mut rng, seq_len, gc);
        b.push_codes(&format!("rand_{seed}_{i}"), &codes);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = random_bank(7, 5, 100, 0.5);
        let b = random_bank(7, 5, 100, 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_bank(7, 2, 200, 0.5);
        let b = random_bank(8, 2, 200, 0.5);
        assert_ne!(a, b);
    }

    #[test]
    fn gc_content_controlled() {
        let mut rng = StdRng::seed_from_u64(1);
        let codes = random_codes(&mut rng, 50_000, 0.7);
        let gc = codes
            .iter()
            .filter(|&&c| c == CODE_G || c == CODE_C)
            .count() as f64
            / codes.len() as f64;
        assert!((gc - 0.7).abs() < 0.02, "gc = {gc}");
    }

    #[test]
    fn lognormal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let l = lognormal_len(&mut rng, 500.0, 0.5, 80, 2000);
            assert!((80..=2000).contains(&l));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| normal(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn bank_metadata() {
        let b = random_bank(1, 3, 50, 0.5);
        assert_eq!(b.num_sequences(), 3);
        assert_eq!(b.num_residues(), 150);
    }
}
