//! # oris-cli — command-line front ends
//!
//! Two binaries:
//!
//! * **`scoris-n`** — the paper's prototype as a tool: compares two FASTA
//!   banks and writes BLAST `-m 8` records to stdout or a file. The
//!   `--engine blast` flag runs the BLASTN-style baseline instead, so the
//!   paper's timing methodology (`time scoris-n A B` vs the baseline) can
//!   be replayed from a shell.
//! * **`mkbank`** — materializes the synthetic paper banks (EST1…H19) or
//!   custom random banks as FASTA files.
//!
//! Argument parsing is hand-rolled (the sanctioned dependency set carries
//! no CLI crate); [`args`] holds the tiny parser shared by both binaries.

pub mod args;

pub use args::{ArgError, Args};
