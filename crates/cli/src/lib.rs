//! # oris-cli — command-line front ends
//!
//! Three binaries:
//!
//! * **`scoris-n`** — the paper's prototype as a tool: compares two FASTA
//!   banks and writes BLAST `-m 8` records to stdout or a file. The
//!   `--engine blast` flag runs the BLASTN-style baseline instead, so the
//!   paper's timing methodology (`time scoris-n A B` vs the baseline) can
//!   be replayed from a shell. With `--index FILE` the subject bank's
//!   index is loaded from a `mkindex` file instead of being rebuilt —
//!   the intensive-comparison workflow, with byte-identical output.
//! * **`mkindex`** — builds a bank's occurrence index once (mask + CSR
//!   arrays, exactly as `scoris-n` would for its second bank) and
//!   persists it in the versioned `oris-index` on-disk format.
//! * **`mkbank`** — materializes the synthetic paper banks (EST1…H19) or
//!   custom random banks as FASTA files.
//!
//! Argument parsing is hand-rolled (the sanctioned dependency set carries
//! no CLI crate); [`args`] holds the tiny parser shared by the binaries.
//! It accepts `--key value` and `--key=value` spellings interchangeably.

pub mod args;

pub use args::{ArgError, Args};
