//! Minimal command-line argument parser.
//!
//! Supports `--flag`, `--key value`, `--key=value` and positional
//! arguments; short aliases are declared by the caller. No dependency, no
//! macros — just enough for the binaries.

use std::collections::HashMap;

/// Argument parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed arguments: positionals in order, options by canonical name.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments in order of appearance.
    pub positional: Vec<String>,
    /// `--key value` options, keyed by canonical (long) name.
    // oris-lint: allow(det-hash) — keyed lookup only; option values are fetched by name, never iterated
    pub options: HashMap<String, String>,
    /// `--flag` switches present, by canonical name.
    pub flags: Vec<String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    ///
    /// `value_keys` lists option names (long form, no dashes) that take a
    /// value; `flag_keys` lists boolean switches; `aliases` maps short
    /// names (e.g. `"W"`) to canonical long names (e.g. `"word"`).
    pub fn parse(
        argv: &[String],
        value_keys: &[&str],
        flag_keys: &[&str],
        aliases: &[(&str, &str)],
    ) -> Result<Args, ArgError> {
        let canon = |raw: &str| -> String {
            let stripped = raw.trim_start_matches('-');
            aliases
                .iter()
                .find(|(a, _)| *a == stripped)
                .map(|(_, c)| c.to_string())
                .unwrap_or_else(|| stripped.to_string())
        };
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if arg.starts_with('-')
                && arg.len() > 1
                && !arg.chars().nth(1).unwrap().is_ascii_digit()
            {
                // `--key=value` spelling: split on the first `=`; the
                // value keeps any further `=` signs verbatim.
                let (raw, inline_value) = match arg.split_once('=') {
                    Some((head, tail)) => (head, Some(tail)),
                    None => (arg.as_str(), None),
                };
                let name = canon(raw);
                if flag_keys.contains(&name.as_str()) {
                    if inline_value.is_some() {
                        return Err(ArgError(format!("flag --{name} takes no value")));
                    }
                    out.flags.push(name);
                } else if value_keys.contains(&name.as_str()) {
                    let val = match inline_value {
                        Some(v) => v.to_string(),
                        None => it
                            .next()
                            .ok_or_else(|| ArgError(format!("option --{name} needs a value")))?
                            .clone(),
                    };
                    out.options.insert(name, val);
                } else {
                    return Err(ArgError(format!("unknown option {arg}")));
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// Option value parsed as `T`, or `default` when absent.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value {v:?} for --{key}"))),
        }
    }

    /// Whether a flag is present.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// The `--index-backend` option (`dense` | `sparse` | `auto`),
    /// shared by `scoris-n`, `mkindex` and `makedb`. Absent means
    /// [`oris_index::IndexBackend::Auto`] — per-build selection by
    /// code-space density.
    pub fn index_backend(&self) -> Result<oris_index::IndexBackend, ArgError> {
        use oris_index::IndexBackend;
        match self
            .options
            .get("index-backend")
            .map(String::as_str)
            .unwrap_or("auto")
        {
            "dense" => Ok(IndexBackend::Dense),
            "sparse" => Ok(IndexBackend::Sparse),
            "auto" => Ok(IndexBackend::Auto),
            other => Err(ArgError(format!(
                "invalid value {other:?} for --index-backend (dense | sparse | auto)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positional_and_options() {
        let a = Args::parse(
            &argv(&["a.fa", "b.fa", "--word", "11", "-e", "0.001"]),
            &["word", "evalue"],
            &[],
            &[("W", "word"), ("e", "evalue")],
        )
        .unwrap();
        assert_eq!(a.positional, vec!["a.fa", "b.fa"]);
        assert_eq!(a.get_or("word", 0usize).unwrap(), 11);
        assert_eq!(a.get_or("evalue", 1.0f64).unwrap(), 0.001);
    }

    #[test]
    fn flags_and_defaults() {
        let a = Args::parse(&argv(&["--stats", "x"]), &["word"], &["stats"], &[]).unwrap();
        assert!(a.has_flag("stats"));
        assert!(!a.has_flag("verbose"));
        assert_eq!(a.get_or("word", 7usize).unwrap(), 7);
    }

    #[test]
    fn unknown_option_is_error() {
        assert!(Args::parse(&argv(&["--nope"]), &[], &[], &[]).is_err());
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(&argv(&["--word"]), &["word"], &[], &[]).is_err());
    }

    #[test]
    fn key_equals_value_spelling() {
        let a = Args::parse(
            &argv(&["--word=11", "-e=0.001", "a.fa"]),
            &["word", "evalue"],
            &[],
            &[("e", "evalue")],
        )
        .unwrap();
        assert_eq!(a.get_or("word", 0usize).unwrap(), 11);
        assert_eq!(a.get_or("evalue", 1.0f64).unwrap(), 0.001);
        assert_eq!(a.positional, vec!["a.fa"]);
    }

    #[test]
    fn equals_value_keeps_further_equals_signs() {
        let a = Args::parse(&argv(&["--out=a=b=c"]), &["out"], &[], &[]).unwrap();
        assert_eq!(a.options.get("out").unwrap(), "a=b=c");
    }

    #[test]
    fn empty_equals_value_is_empty_string() {
        let a = Args::parse(&argv(&["--out="]), &["out"], &[], &[]).unwrap();
        assert_eq!(a.options.get("out").unwrap(), "");
    }

    #[test]
    fn flag_with_equals_value_is_error() {
        assert!(Args::parse(&argv(&["--stats=yes"]), &[], &["stats"], &[]).is_err());
    }

    #[test]
    fn unknown_key_equals_value_is_error() {
        assert!(Args::parse(&argv(&["--nope=1"]), &["word"], &[], &[]).is_err());
    }

    #[test]
    fn negative_numbers_are_positional() {
        let a = Args::parse(&argv(&["-5"]), &[], &[], &[]).unwrap();
        assert_eq!(a.positional, vec!["-5"]);
    }

    #[test]
    fn bad_value_type_is_error() {
        let a = Args::parse(&argv(&["--word", "xyz"]), &["word"], &[], &[]).unwrap();
        assert!(a.get_or("word", 0usize).is_err());
    }

    #[test]
    fn index_backend_parses_and_defaults_to_auto() {
        use oris_index::IndexBackend;
        let keys: &[&str] = &["index-backend"];
        let a = Args::parse(&argv(&[]), keys, &[], &[]).unwrap();
        assert_eq!(a.index_backend().unwrap(), IndexBackend::Auto);
        for (spelling, want) in [
            ("dense", IndexBackend::Dense),
            ("sparse", IndexBackend::Sparse),
            ("auto", IndexBackend::Auto),
        ] {
            let a = Args::parse(&argv(&["--index-backend", spelling]), keys, &[], &[]).unwrap();
            assert_eq!(a.index_backend().unwrap(), want);
        }
        let a = Args::parse(&argv(&["--index-backend", "csr"]), keys, &[], &[]).unwrap();
        assert!(a.index_backend().is_err());
    }
}
