//! `verifydb` — offline integrity check (fsck) for a `makedb` database.
//!
//! ```text
//! verifydb <db-dir> [--attach mmap|copy] [--quiet]
//!
//!       --attach MODE   index loader to exercise: mmap (default, the
//!                       zero-copy serving path) | copy (the streaming
//!                       heap loader) — both reject identical corruptions
//!       --quiet         print only failures (and nothing on success)
//! ```
//!
//! Checks, per volume: the FASTA is readable and parseable, its content
//! hash matches the manifest, residue and sequence counts match, the
//! index file is structurally sound (magic, version, whole-stream
//! checksum), and the index agrees with the manifest on configuration
//! and content hash. The manifest itself (trailing checksum, residue
//! totals, volume ids) is validated before any volume is touched.
//!
//! One line per volume (`OK` / `FAILED: <cause>`), worst result decides
//! the exit code:
//!
//! * `0` — every volume passed
//! * `1` — usage error
//! * `2` — manifest invalid (nothing per-volume to report)
//! * `3` — at least one volume failed verification
//! * `4` — database directory / manifest unreadable (I/O)

use std::process::ExitCode;
use std::sync::Arc;

use oris_cli::Args;
use oris_db::{verify_db, RealIo, VerifyOptions};

fn usage() -> &'static str {
    "usage: verifydb <db-dir> [--attach mmap|copy] [--quiet]"
}

struct CliError {
    msg: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError { msg, code: 1 }
    }
}

fn run() -> Result<(), CliError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&argv, &["attach"], &["quiet", "help"], &[("h", "help")])
        .map_err(|e| format!("{e}\n{}", usage()))?;
    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    if args.positional.len() != 1 {
        return Err(format!("expected one database directory\n{}", usage()).into());
    }
    let dir = &args.positional[0];
    let attach = match args
        .options
        .get("attach")
        .map(String::as_str)
        .unwrap_or("mmap")
    {
        "mmap" => oris_index::AttachMode::Mmap,
        "copy" => oris_index::AttachMode::HeapCopy,
        other => return Err(format!("unknown attach mode {other:?} (mmap | copy)").into()),
    };
    let quiet = args.has_flag("quiet");

    let report =
        verify_db(dir, Arc::new(RealIo), &VerifyOptions { attach }).map_err(|e| CliError {
            msg: format!("{dir}: {e}"),
            code: e.exit_code(),
        })?;

    for v in &report.volumes {
        match &v.error {
            None => {
                if !quiet {
                    println!("volume {:05}: OK ({} + {})", v.volume, v.fasta, v.index);
                }
            }
            Some(e) => println!("volume {:05}: FAILED: {e}", v.volume),
        }
    }
    if report.is_ok() {
        if !quiet {
            println!(
                "{dir}: OK — {} volumes, {} residues",
                report.volumes.len(),
                report.total_residues
            );
        }
        Ok(())
    } else {
        Err(CliError {
            msg: format!(
                "{dir}: {} of {} volumes failed verification",
                report.failures().count(),
                report.volumes.len()
            ),
            code: report.exit_code(),
        })
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("verifydb: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}
