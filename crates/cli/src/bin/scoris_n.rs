//! `scoris-n` — Sequence COmparison using the ORIS algorithm on
//! Nucleotides (the paper's prototype, as a command-line tool).
//!
//! ```text
//! scoris-n <bank1.fa> <bank2.fa> [options]
//!
//!   -W, --word N        seed length (default 11)
//!   -e, --evalue X      e-value threshold (default 1e-3, the paper's -e)
//!   -x, --xdrop N       ungapped X-drop (default 20)
//!   -X, --xdrop-gap N   gapped X-drop (default 25)
//!   -s, --minscore N    minimum HSP score S1 (default 18)
//!   -f, --filter KIND   none | entropy | dust (default entropy)
//!   -t, --threads N     worker threads (default: all cores)
//!       --engine NAME   oris | blast (default oris)
//!       --asymmetric    asymmetric (W−1)-mer indexing (section 3.4)
//!       --both-strands  also search the complementary strand (sstart > send)
//!       --index FILE    load bank 2's index from a `mkindex` file instead
//!                       of building it (must match -W/-f/--asymmetric)
//!       --stats         print per-step timings to stderr
//!   -o, --out FILE      write -m 8 records to FILE (default stdout)
//! ```

use std::io::Write;
use std::process::ExitCode;

use oris_cli::Args;
use oris_core::{FilterKind, OrisConfig, PreparedBank, Session};

fn usage() -> &'static str {
    "usage: scoris-n <bank1.fa> <bank2.fa> [-W n] [-e x] [-x n] [-X n] [-s n]\n\
     \t[-f none|entropy|dust] [-t n] [--engine oris|blast] [--asymmetric]\n\
     \t[--both-strands] [--index bank2.oidx]\n\
     \t[--stats] [-o out.m8]"
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(
        &argv,
        &[
            "word",
            "evalue",
            "xdrop",
            "xdrop-gap",
            "minscore",
            "filter",
            "threads",
            "engine",
            "index",
            "out",
        ],
        &["asymmetric", "both-strands", "stats", "help"],
        &[
            ("W", "word"),
            ("e", "evalue"),
            ("x", "xdrop"),
            ("X", "xdrop-gap"),
            ("s", "minscore"),
            ("f", "filter"),
            ("t", "threads"),
            ("o", "out"),
            ("h", "help"),
        ],
    )
    .map_err(|e| format!("{e}\n{}", usage()))?;

    if args.has_flag("help") {
        println!("{}", usage());
        return Ok(());
    }
    if args.positional.len() != 2 {
        return Err(format!("expected two FASTA banks\n{}", usage()));
    }

    let filter = match args
        .options
        .get("filter")
        .map(String::as_str)
        .unwrap_or("entropy")
    {
        "none" => FilterKind::None,
        "entropy" => FilterKind::Entropy,
        "dust" => FilterKind::Dust,
        other => return Err(format!("unknown filter {other:?}")),
    };
    let threads: usize = args.get_or("threads", 0).map_err(|e| e.to_string())?;

    let cfg = OrisConfig {
        w: args.get_or("word", 11).map_err(|e| e.to_string())?,
        evalue_threshold: args.get_or("evalue", 1e-3).map_err(|e| e.to_string())?,
        xdrop_ungapped: args.get_or("xdrop", 20).map_err(|e| e.to_string())?,
        xdrop_gapped: args.get_or("xdrop-gap", 25).map_err(|e| e.to_string())?,
        min_hsp_score: args.get_or("minscore", 18).map_err(|e| e.to_string())?,
        filter,
        asymmetric: args.has_flag("asymmetric"),
        both_strands: args.has_flag("both-strands"),
        threads: (threads > 0).then_some(threads),
        ..OrisConfig::default()
    };
    cfg.validate()?;

    let bank1 = oris_seqio::read_fasta_file(&args.positional[0])
        .map_err(|e| format!("{}: {e}", args.positional[0]))?;
    let bank2 = oris_seqio::read_fasta_file(&args.positional[1])
        .map_err(|e| format!("{}: {e}", args.positional[1]))?;

    let engine = args
        .options
        .get("engine")
        .map(String::as_str)
        .unwrap_or("oris");

    if engine != "oris" && args.options.contains_key("index") {
        return Err("--index is only supported by the oris engine".into());
    }

    let (records, report) = match engine {
        "oris" => {
            // The subject (bank 2) is prepared once — built here, or
            // loaded from a `mkindex` file — and the per-run stats report
            // the amortized cost: `index` covers only the query's build,
            // the subject's one-time cost is its own field.
            let t0 = std::time::Instant::now();
            let (session, subject_source) = match args.options.get("index") {
                None => {
                    let session = Session::new(&bank2, &cfg)?;
                    (session, "subject_built")
                }
                Some(path) => {
                    let (idx, meta) =
                        oris_index::read_index_file(path).map_err(|e| format!("{path}: {e}"))?;
                    if meta.filter_code != cfg.filter.code() {
                        let prepared_with = match FilterKind::from_code(meta.filter_code) {
                            Some(kind) => format!("filter {kind:?}"),
                            None => format!("an unknown filter (code {})", meta.filter_code),
                        };
                        return Err(format!(
                            "{path}: index was prepared with {prepared_with}, \
                             run requests filter {:?}",
                            cfg.filter
                        ));
                    }
                    let prepared = PreparedBank::from_index(&bank2, idx, &meta)
                        .map_err(|e| format!("{path}: {e}"))?;
                    let session = Session::with_subject(prepared, &cfg)
                        .map_err(|e| format!("{path}: {e}"))?;
                    (session, "subject_loaded")
                }
            };
            let subject_secs = t0.elapsed().as_secs_f64();
            let subject = session.subject_stats();
            let r = session.run(&bank1);
            let s = r.stats;
            (
                r.alignments,
                format!(
                    "engine=oris {subject_source}={subject_secs:.3}s subject_builds={} index={:.3}s index_builds={} step2={:.3}s step3={:.3}s step4={:.3}s hsps={} alignments={} pairs={} aborted={} below={} kept={} masked1={:.4} masked2={:.4}",
                    subject.builds,
                    s.index_secs, s.index_builds, s.step2_secs, s.step3_secs, s.step4_secs, s.hsps, s.step4.emitted,
                    s.step2.pairs_examined, s.step2.aborted, s.step2.below_threshold, s.step2.kept,
                    s.masked_fraction1, s.masked_fraction2
                ),
            )
        }
        "blast" => {
            let bcfg = oris_blast::BlastConfig::matched(&cfg);
            let r = oris_blast::compare_banks(&bank1, &bank2, &bcfg);
            let s = r.stats;
            (
                r.alignments,
                format!(
                    "engine=blast lookup={:.3}s scan={:.3}s gapped={:.3}s output={:.3}s hsps={} alignments={} probes={} hits={} suppressed={} extensions={}",
                    s.lookup_secs, s.scan_secs, s.gapped_secs, s.output_secs, s.hsps, s.raw_alignments,
                    s.scan.probes, s.scan.hits, s.scan.suppressed, s.scan.extensions
                ),
            )
        }
        other => return Err(format!("unknown engine {other:?}")),
    };

    let mut out: Box<dyn Write> = match args.options.get("out") {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };
    for r in &records {
        writeln!(out, "{r}").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;

    if args.has_flag("stats") {
        eprintln!("{report}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scoris-n: {e}");
            ExitCode::FAILURE
        }
    }
}
